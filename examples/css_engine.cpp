/**
 * @file
 * CSS layout-engine example (§6.3): schedule the 244-rule CSS-full
 * grammar with Hecate's domain-specific ILP synthesis and with the
 * FTL-style Prolog search, showing the efficiency gap of Fig. 15.
 */

#include <cstdio>

#include "baselines/ftl.hpp"
#include "grammars/grammars.hpp"
#include "lang/printer.hpp"
#include "obs/telemetry.hpp"
#include "support/timer.hpp"
#include "synth/autotuner.hpp"

using namespace hecate;

int
main()
{
    const grammars::Benchmark& bench = grammars::cssFull();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    std::printf("%s: %s\n%zu rules, %zu classes\n\n", bench.name.c_str(),
                bench.description.c_str(), grammar.ruleCount(),
                grammar.classes().size());

    tree::EnumConfig verify;
    verify.maxDepth = 3;
    verify.limit = 64;

    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar,
        synth::makeSkeleton(grammar, synth::SkeletonStyle::Sandwich));
    synth::SynthesisConfig config;
    config.verify = verify;
    obs::Telemetry telemetry;
    Timer hecate_timer;
    synth::SynthesisResult hecate =
        synth::synthesize(skeleton, root, {}, config, telemetry);
    double hecate_seconds = hecate_timer.seconds();
    if (!hecate.schedule.has_value()) {
        std::printf("Hecate failed: %s\n", hecate.failure.c_str());
        return 1;
    }
    std::printf("Hecate (domain-specific ILP): %.3f s, %.0f constraints, "
                "%.0f terms\n",
                hecate_seconds, telemetry.counter("ilp.constraints"),
                telemetry.counter("ilp.constraint_terms"));

    baselines::FtlResult ftl = baselines::ftlSynthesize(grammar, root,
                                                        verify);
    if (ftl.traversal.has_value()) {
        std::printf("FTL (Prolog-style search): %.3f s, %llu assignments "
                    "tried\n",
                    ftl.seconds,
                    (unsigned long long)ftl.assignmentsTried);
        std::printf("Hecate speedup over FTL: %.1fx\n\n",
                    ftl.seconds / hecate_seconds);
    } else {
        std::printf("FTL failed within budget (%.3f s)\n\n", ftl.seconds);
    }

    std::string text = lang::printTraversal(
        hecate.schedule->toConcreteTraversal(skeleton));
    std::printf("first case of the synthesized CSS traversal:\n%s\n",
                text.substr(0, text.find("    case", 20)).c_str());
    return 0;
}
