/**
 * @file
 * `hecate` command-line driver.
 *
 * Single-shot mode: synthesize a traversal schedule for an L_a
 * grammar file and print or emit the result.
 *
 *   hecate_cli GRAMMAR.hec [TRAVERSAL.hec] [--root IFACE]
 *              [--engine ilp|sat] [--emit-cpp] [--depth K]
 *              [--threads N] [--scratch]
 *
 * With no traversal file, the HecateA auto-tuner searches for a
 * skeleton. The synthesized concrete traversal is printed to stdout;
 * --emit-cpp additionally prints the generated C++. A per-phase
 * breakdown (encode/solve/verify seconds, plan-cache hits) goes to
 * stderr. --threads sets the verification worker count (default:
 * $HECATE_VERIFY_THREADS or hardware concurrency); --scratch disables
 * the incremental ILP session and verifier-state reuse, i.e. runs the
 * from-scratch reference pipeline.
 *
 * Batch mode: drive many requests through the synthesis service
 * (schedule cache + single-flight dedup + thread pool) and report
 * per-request provenance plus aggregate hit/dedup rates and latency
 * percentiles.
 *
 *   hecate_cli batch REQUESTS.txt [--engine ilp|sat] [--depth K]
 *              [--workers N] [--repeat K] [--cache-dir DIR]
 *              [--threads N] [--scratch]
 *
 * Each non-comment line of REQUESTS.txt is one request:
 *
 *   <grammar> [<traversal>] [root=IFACE]
 *
 * where <grammar> is a path to an L_a file or "builtin:NAME" for one
 * of the bundled benchmarks (binarytree, fmm, piecewise, ast,
 * rendertree, cssfloat, cssmargin, cssfull). Without a traversal the
 * auto-tuner picks the skeleton. --repeat duplicates the request list
 * K times (cache/dedup exercise); --cache-dir loads a persisted
 * schedule cache before the run and saves it after.
 *
 * Run mode: synthesize (or load from the cache) a schedule, compile it
 * to bytecode, and execute it over a generated arena instance:
 *
 *   hecate_cli run GRAMMAR [TRAVERSAL.hec] [--root IFACE]
 *              [--engine ilp|sat] [--depth K] [--cache-dir DIR]
 *              [--tree-size N] [--tree-depth D] [--seed S]
 *              [--grain G] [--exec-threads N] [--seq] [--check]
 *
 * GRAMMAR is a path or "builtin:NAME" as in batch mode. --tree-size
 * picks the generated instance's node budget, --tree-depth caps its
 * depth (0 = unbounded), --grain sets the parallel chunk size, and
 * --exec-threads sizes the execution pool (0 = hardware concurrency;
 * --seq forces the sequential executor). --check re-evaluates every
 * output attribute with exec::computeReference and fails on any
 * mismatch.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include <memory>

#include "codegen/cpp_emitter.hpp"
#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "runtime/executor.hpp"
#include "service/synth_service.hpp"
#include "support/timer.hpp"
#include "synth/autotuner.hpp"

using namespace hecate;

namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        userError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: hecate_cli GRAMMAR.hec [TRAVERSAL.hec]\n"
        "       [--root IFACE] [--engine ilp|sat] [--emit-cpp]\n"
        "       [--depth K] [--threads N] [--scratch]\n"
        "   or: hecate_cli batch REQUESTS.txt [--engine ilp|sat]\n"
        "       [--depth K] [--workers N] [--repeat K]\n"
        "       [--cache-dir DIR] [--threads N] [--scratch]\n"
        "   or: hecate_cli run GRAMMAR [TRAVERSAL.hec] [--root IFACE]\n"
        "       [--engine ilp|sat] [--depth K] [--cache-dir DIR]\n"
        "       [--tree-size N] [--tree-depth D] [--seed S]\n"
        "       [--grain G] [--exec-threads N] [--seq] [--check]\n");
    return 2;
}

/** Resolve "builtin:NAME" to a bundled benchmark, or nullptr. */
const grammars::Benchmark*
builtinBenchmark(const std::string& name)
{
    if (name == "binarytree")
        return &grammars::binaryTree();
    if (name == "fmm")
        return &grammars::fmm();
    if (name == "piecewise")
        return &grammars::piecewise();
    if (name == "ast")
        return &grammars::astBench();
    if (name == "rendertree")
        return &grammars::renderTree();
    if (name == "cssfloat")
        return &grammars::cssFloat();
    if (name == "cssmargin")
        return &grammars::cssMargin();
    if (name == "cssfull")
        return &grammars::cssFull();
    return nullptr;
}

/** Parse one REQUESTS.txt line into a service request. */
service::SynthRequest
parseRequestLine(const std::string& line,
                 const synth::SynthesisConfig& config)
{
    service::SynthRequest request;
    request.config = config;

    std::istringstream in(line);
    std::string token;
    int bare = 0;
    while (in >> token) {
        if (token.rfind("root=", 0) == 0) {
            request.rootInterface = token.substr(5);
        } else if (bare == 0) {
            if (token.rfind("builtin:", 0) == 0) {
                const grammars::Benchmark* bench =
                    builtinBenchmark(token.substr(8));
                if (bench == nullptr)
                    userError("unknown builtin grammar '" + token + "'");
                request.grammarSrc = bench->source;
                request.rootInterface = bench->rootInterface;
            } else {
                request.grammarSrc = readFile(token);
            }
            ++bare;
        } else if (bare == 1) {
            request.traversalSrc = readFile(token);
            ++bare;
        } else {
            userError("too many fields in request line: " + line);
        }
    }
    if (bare == 0)
        userError("empty request line");
    return request;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

int
runBatch(int argc, char** argv)
{
    std::string requests_path, cache_dir, engine = "ilp";
    uint32_t depth = 3;
    size_t workers = 0;
    uint32_t repeat = 1;
    uint32_t verify_threads = 0;
    bool scratch = false;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--depth" && i + 1 < argc) {
            depth = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<size_t>(std::atoi(argv[++i]));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            verify_threads = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--scratch") {
            scratch = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (requests_path.empty()) {
            requests_path = arg;
        } else {
            return usage();
        }
    }
    if (requests_path.empty() || repeat == 0)
        return usage();

    synth::SynthesisConfig synth_config;
    synth_config.verify.maxDepth = depth;
    synth_config.engine = engine == "sat"
                              ? synth::Engine::GeneralPurposeSat
                              : synth::Engine::DomainSpecificIlp;
    synth_config.verifyThreads = verify_threads;
    if (scratch) {
        synth_config.incrementalEncoding = false;
        synth_config.reuseVerifierState = false;
    }

    // Parse the request list (before starting the clock).
    std::vector<service::SynthRequest> requests;
    {
        std::ifstream in(requests_path);
        if (!in)
            userError("cannot open '" + requests_path + "'");
        std::string line;
        while (std::getline(in, line)) {
            size_t first = line.find_first_not_of(" \t\r");
            if (first == std::string::npos || line[first] == '#')
                continue;
            requests.push_back(parseRequestLine(line, synth_config));
        }
    }
    if (requests.empty())
        userError("no requests in '" + requests_path + "'");
    const size_t unique_count = requests.size();
    for (uint32_t r = 1; r < repeat; ++r) {
        for (size_t i = 0; i < unique_count; ++i)
            requests.push_back(requests[i]);
    }

    service::ServiceConfig service_config;
    service_config.workers = workers;
    service::SynthService svc(service_config);
    if (!cache_dir.empty()) {
        service::ScheduleCache::LoadReport report =
            svc.cache().load(cache_dir);
        for (const std::string& diag : report.diagnostics)
            std::fprintf(stderr, "hecate: %s\n", diag.c_str());
        if (report.loaded > 0) {
            std::fprintf(stderr, "cache: loaded %zu entr%s from %s\n",
                         report.loaded, report.loaded == 1 ? "y" : "ies",
                         cache_dir.c_str());
        }
    }

    Timer wall;
    std::vector<std::future<service::SynthOutcome>> futures;
    futures.reserve(requests.size());
    for (service::SynthRequest& request : requests)
        futures.push_back(svc.submit(std::move(request)));

    std::vector<service::SynthOutcome> outcomes;
    outcomes.reserve(futures.size());
    for (auto& future : futures)
        outcomes.push_back(future.get());
    const double total_seconds = wall.seconds();

    // Per-request report.
    std::printf("%5s  %-6s  %10s  %6s  %s\n", "req", "source", "ms",
                "iters", "status");
    std::vector<double> latencies_ms;
    size_t failures = 0;
    double encode_s = 0.0, solve_s = 0.0, verify_s = 0.0;
    size_t plan_hits = 0, plan_misses = 0;
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const service::SynthOutcome& outcome = outcomes[i];
        latencies_ms.push_back(outcome.seconds * 1e3);
        encode_s += outcome.encodeSeconds;
        solve_s += outcome.solveSeconds;
        verify_s += outcome.verifySeconds;
        plan_hits += outcome.planCacheHits;
        plan_misses += outcome.planCacheMisses;
        if (!outcome.ok)
            ++failures;
        std::printf("%5zu  %-6s  %10.2f  %6u  %s\n", i,
                    service::provenanceName(outcome.provenance),
                    outcome.seconds * 1e3, outcome.cegisIterations,
                    outcome.ok ? "ok" : outcome.failure.c_str());
    }

    // Aggregate report.
    service::ServiceStats stats = svc.stats();
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double n = static_cast<double>(outcomes.size());
    std::printf("\nbatch: %zu requests (%zu unique lines x %u) in %.2fs "
                "(%.1f req/s)\n",
                outcomes.size(), unique_count, repeat, total_seconds,
                total_seconds > 0 ? n / total_seconds : 0.0);
    std::printf("  fresh %llu | cache-hit %llu | joined %llu | "
                "failed %zu\n",
                static_cast<unsigned long long>(stats.freshRuns),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.joinedInFlight),
                failures);
    std::printf("  hit rate %.1f%% | dedup rate %.1f%%\n",
                100.0 * static_cast<double>(stats.cacheHits) / n,
                100.0 * static_cast<double>(stats.joinedInFlight) / n);
    std::printf("  latency p50 %.2fms | p95 %.2fms | max %.2fms\n",
                percentile(latencies_ms, 0.50),
                percentile(latencies_ms, 0.95),
                latencies_ms.empty() ? 0.0 : latencies_ms.back());
    std::printf("  leader phases: encode %.2fms | solve %.2fms | "
                "verify %.2fms\n",
                encode_s * 1e3, solve_s * 1e3, verify_s * 1e3);
    std::printf("  plan cache: %zu hits / %zu misses (%.1f%% hit rate)\n",
                plan_hits, plan_misses,
                plan_hits + plan_misses > 0
                    ? 100.0 * static_cast<double>(plan_hits) /
                          static_cast<double>(plan_hits + plan_misses)
                    : 0.0);

    if (!cache_dir.empty()) {
        size_t written = svc.cache().save(cache_dir);
        std::fprintf(stderr, "cache: saved %zu entr%s to %s\n", written,
                     written == 1 ? "y" : "ies", cache_dir.c_str());
    }
    return failures == 0 ? 0 : 1;
}

int
runSingle(int argc, char** argv)
{
    std::string grammar_path, traversal_path, root_name, engine = "ilp";
    bool emit_cpp = false;
    uint32_t depth = 3;
    uint32_t verify_threads = 0;
    bool scratch = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root_name = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--depth" && i + 1 < argc) {
            depth = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--threads" && i + 1 < argc) {
            verify_threads = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--scratch") {
            scratch = true;
        } else if (arg == "--emit-cpp") {
            emit_cpp = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (grammar_path.empty()) {
            grammar_path = arg;
        } else if (traversal_path.empty()) {
            traversal_path = arg;
        } else {
            return usage();
        }
    }
    if (grammar_path.empty())
        return usage();

    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(readFile(grammar_path)));
    sem::InterfaceId root = root_name.empty()
                                ? grammar.cls(0).iface
                                : grammar.findInterface(root_name);
    if (root == sem::kInvalidId)
        userError("unknown root interface '" + root_name + "'");

    synth::SynthesisConfig config;
    config.verify.maxDepth = depth;
    config.engine = engine == "sat" ? synth::Engine::GeneralPurposeSat
                                    : synth::Engine::DomainSpecificIlp;
    config.verifyThreads = verify_threads;
    if (scratch) {
        config.incrementalEncoding = false;
        config.reuseVerifierState = false;
    }

    auto report_phases = [](const synth::SynthesisResult& result) {
        std::fprintf(stderr,
                     "phases: encode %.2fms | solve %.2fms | "
                     "verify %.2fms (%u thread%s)\n",
                     (result.generalStats.encodeSeconds +
                      result.ilpStats.encodeSeconds) * 1e3,
                     (result.generalStats.solveSeconds +
                      result.ilpStats.solveSeconds) * 1e3,
                     result.verifySeconds * 1e3, result.verifyThreadsUsed,
                     result.verifyThreadsUsed == 1 ? "" : "s");
        std::fprintf(stderr, "plan cache: %zu hits / %zu misses\n",
                     result.planCacheHits, result.planCacheMisses);
    };

    std::optional<sched::Skeleton> skeleton;
    std::optional<sched::Schedule> schedule;
    if (traversal_path.empty()) {
        synth::AutotuneResult tuned = synth::autotune(grammar, root, config);
        if (!tuned.schedule.has_value())
            userError("auto-tuning failed: " + tuned.lastSynthesis.failure);
        std::fprintf(stderr, "auto-tuner: %s skeleton (%u tried)\n",
                     synth::skeletonStyleName(tuned.style),
                     tuned.skeletonsTried);
        report_phases(tuned.lastSynthesis);
        skeleton = std::move(tuned.skeleton);
        schedule = std::move(tuned.schedule);
    } else {
        skeleton.emplace(sched::Skeleton::resolve(
            grammar, lang::parseTraversal(readFile(traversal_path))));
        synth::SynthesisResult result =
            synth::synthesize(*skeleton, root, {}, config);
        if (!result.schedule.has_value())
            userError("synthesis failed: " + result.failure);
        std::fprintf(stderr,
                     "synthesized in %u CEGIS round(s), "
                     "%zu trees verified\n",
                     result.cegisIterations, result.verifiedTrees);
        report_phases(result);
        schedule = std::move(result.schedule);
    }

    std::printf("%s",
                lang::printTraversal(schedule->toConcreteTraversal(*skeleton))
                    .c_str());
    if (emit_cpp)
        std::printf("\n%s", codegen::emitCpp(*skeleton, *schedule).c_str());
    return 0;
}

int
runRun(int argc, char** argv)
{
    std::string grammar_arg, traversal_path, root_name, cache_dir,
        engine = "ilp";
    uint32_t depth = 3;
    long long tree_size = 1000000;
    long long tree_depth = 0;
    long long grain = 1024;
    long long exec_threads = 0;
    long long seed = 1;
    bool sequential = false;
    bool check = false;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root_name = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--depth" && i + 1 < argc) {
            depth = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg == "--tree-size" && i + 1 < argc) {
            tree_size = std::atoll(argv[++i]);
        } else if (arg == "--tree-depth" && i + 1 < argc) {
            tree_depth = std::atoll(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::atoll(argv[++i]);
        } else if (arg == "--grain" && i + 1 < argc) {
            grain = std::atoll(argv[++i]);
        } else if (arg == "--exec-threads" && i + 1 < argc) {
            exec_threads = std::atoll(argv[++i]);
        } else if (arg == "--seq") {
            sequential = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (grammar_arg.empty()) {
            grammar_arg = arg;
        } else if (traversal_path.empty()) {
            traversal_path = arg;
        } else {
            return usage();
        }
    }
    if (grammar_arg.empty())
        return usage();
    if (tree_size < 1 || tree_size > (1ll << 31))
        userError("--tree-size must be between 1 and 2^31");
    if (tree_depth < 0)
        userError("--tree-depth must be non-negative (0 = unbounded)");
    if (grain < 1 || grain > (1ll << 30))
        userError("--grain must be between 1 and 2^30");
    if (exec_threads < 0 || exec_threads > 4096)
        userError("--exec-threads must be between 0 and 4096 "
                  "(0 = hardware concurrency)");
    if (seed < 0)
        userError("--seed must be non-negative");

    // 1. Synthesize (or load) the schedule through the service layer.
    service::SynthRequest request;
    request.config.verify.maxDepth = depth;
    request.config.engine = engine == "sat"
                                ? synth::Engine::GeneralPurposeSat
                                : synth::Engine::DomainSpecificIlp;
    if (grammar_arg.rfind("builtin:", 0) == 0) {
        const grammars::Benchmark* bench =
            builtinBenchmark(grammar_arg.substr(8));
        if (bench == nullptr)
            userError("unknown builtin grammar '" + grammar_arg + "'");
        request.grammarSrc = bench->source;
        request.rootInterface = bench->rootInterface;
    } else {
        request.grammarSrc = readFile(grammar_arg);
    }
    if (!traversal_path.empty())
        request.traversalSrc = readFile(traversal_path);
    if (!root_name.empty())
        request.rootInterface = root_name;

    service::ServiceConfig service_config;
    service_config.workers = 1;
    service::SynthService svc(service_config);
    if (!cache_dir.empty())
        svc.cache().load(cache_dir);
    service::SynthOutcome outcome = svc.runNow(request);
    if (!cache_dir.empty())
        svc.cache().save(cache_dir);
    if (!outcome.ok)
        userError("synthesis failed: " + outcome.failure);
    std::fprintf(stderr, "schedule: %s in %.2fms\n",
                 service::provenanceName(outcome.provenance),
                 outcome.seconds * 1e3);
    std::printf("%s", outcome.concreteTraversal.c_str());

    // 2. Compile the concrete (hole-free) traversal to bytecode.
    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(request.grammarSrc));
    sem::InterfaceId root =
        request.rootInterface.empty()
            ? grammar.cls(0).iface
            : grammar.findInterface(request.rootInterface);
    if (root == sem::kInvalidId)
        userError("unknown root interface '" + request.rootInterface + "'");
    sched::Skeleton concrete = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(outcome.concreteTraversal));
    runtime::Program program =
        runtime::Program::compile(concrete, sched::Schedule{});

    // 3. Generate the arena instance.
    runtime::GenConfig gen;
    gen.targetNodes = static_cast<uint32_t>(tree_size);
    gen.maxDepth = static_cast<uint32_t>(tree_depth);
    gen.seed = static_cast<uint64_t>(seed);
    Timer gen_timer;
    runtime::TreeArena arena = runtime::TreeArena::generate(grammar, root, gen);
    std::fprintf(stderr, "arena: %u nodes, depth %u, built in %.2fms\n",
                 arena.size(), arena.depth(), gen_timer.seconds() * 1e3);

    // 4. Execute.
    runtime::ExecOptions options;
    options.grain = static_cast<uint32_t>(grain);
    std::unique_ptr<ThreadPool> pool;
    if (!sequential) {
        pool = std::make_unique<ThreadPool>(
            static_cast<size_t>(exec_threads));
        options.pool = pool.get();
    }
    Timer exec_timer;
    runtime::RuntimeStats stats = runtime::execute(program, arena, options);
    double secs = exec_timer.seconds();
    std::fprintf(stderr,
                 "run: %s, %zu worker(s), grain %lld\n",
                 sequential ? "sequential" : "parallel",
                 pool ? pool->workerCount() : 1, grain);
    std::fprintf(stderr,
                 "run: %.2fms | %.1fM nodes/s | %.1fM rules/s\n",
                 secs * 1e3,
                 secs > 0 ? stats.nodeVisits / secs / 1e6 : 0.0,
                 secs > 0 ? stats.rulesEvaluated / secs / 1e6 : 0.0);
    std::fprintf(stderr,
                 "run: %llu visits | %llu rules | %llu fork regions | "
                 "%llu tasks | %llu help-join runs\n",
                 static_cast<unsigned long long>(stats.nodeVisits),
                 static_cast<unsigned long long>(stats.rulesEvaluated),
                 static_cast<unsigned long long>(stats.parallelRegions),
                 static_cast<unsigned long long>(stats.tasksSpawned),
                 static_cast<unsigned long long>(stats.helpJoinRuns));

    // 5. Optional differential check against the reference evaluator.
    if (check) {
        tree::Tree reference = arena.toTree();
        exec::computeReference(reference);
        uint64_t mismatches = 0;
        for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
            const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
            const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
            for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
                uint32_t col = arena.layout().column(cls.iface, attr);
                if (reference.node(node).values[attr] !=
                    arena.value(node, col)) {
                    ++mismatches;
                }
            }
        }
        if (mismatches != 0) {
            std::fprintf(stderr,
                         "check: FAILED, %llu mismatching cells\n",
                         static_cast<unsigned long long>(mismatches));
            return 1;
        }
        std::fprintf(stderr, "check: ok (all cells match the reference)\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        if (argc >= 2 && std::strcmp(argv[1], "batch") == 0)
            return runBatch(argc, argv);
        if (argc >= 2 && std::strcmp(argv[1], "run") == 0)
            return runRun(argc, argv);
        return runSingle(argc, argv);
    } catch (const UserError& error) {
        std::fprintf(stderr, "hecate: %s\n", error.what());
        return 1;
    }
}
