/**
 * @file
 * `hecate` command-line driver. All three modes run through the
 * pipeline::Pipeline compiler driver and share its engine parsing,
 * builtin-grammar resolution, cache handling and telemetry.
 *
 * Synth mode (the default; `synth` may be spelled explicitly):
 * synthesize a traversal schedule for an L_a grammar and print or emit
 * the result.
 *
 *   hecate_cli [synth] GRAMMAR [TRAVERSAL.hec] [--root IFACE]
 *              [--engine ilp|sat] [--emit-cpp] [--depth K]
 *              [--threads N] [--scratch]
 *              [--trace-out FILE] [--stats-json FILE]
 *
 * GRAMMAR is a path to an L_a file or "builtin:NAME" for a bundled
 * benchmark (binarytree, fmm, piecewise, ast, rendertree, cssfloat,
 * cssmargin, cssfull). With no traversal file, the HecateA auto-tuner
 * searches for a skeleton. The synthesized concrete traversal is
 * printed to stdout; --emit-cpp additionally prints the generated C++.
 * A per-phase breakdown (encode/solve/verify seconds, plan-cache hits)
 * goes to stderr. --threads sets the verification worker count
 * (default: $HECATE_VERIFY_THREADS or hardware concurrency);
 * --scratch disables the incremental ILP session and verifier-state
 * reuse, i.e. runs the from-scratch reference pipeline.
 *
 * --trace-out writes a Chrome trace-event JSON of the whole run (open
 * in chrome://tracing or Perfetto): one span per pipeline stage, one
 * per CEGIS round with the encode/solve spans of each solver call and
 * the verify pass nested inside. --stats-json writes the flat counter
 * and per-stage timing summary. Both flags work in every mode.
 *
 * Batch mode: drive many requests through the synthesis service
 * (schedule cache + single-flight dedup + thread pool) and report
 * per-request provenance plus aggregate hit/dedup rates and latency
 * percentiles.
 *
 *   hecate_cli batch REQUESTS.txt [--engine ilp|sat] [--depth K]
 *              [--workers N] [--repeat K] [--cache-dir DIR]
 *              [--threads N] [--scratch]
 *              [--trace-out FILE] [--stats-json FILE]
 *
 * Each non-comment line of REQUESTS.txt is one request:
 *
 *   <grammar> [<traversal>] [root=IFACE]
 *
 * where <grammar> is a path or "builtin:NAME". Without a traversal the
 * auto-tuner picks the skeleton. --repeat duplicates the request list
 * K times (cache/dedup exercise); --cache-dir loads a persisted
 * schedule cache before the run and saves it after.
 *
 * Run mode: synthesize (or load from the cache) a schedule, compile it
 * to bytecode, and execute it over a generated arena instance:
 *
 *   hecate_cli run GRAMMAR [TRAVERSAL.hec] [--root IFACE]
 *              [--engine ilp|sat] [--depth K] [--cache-dir DIR]
 *              [--tree-size N] [--tree-depth D] [--seed S]
 *              [--batch-count B] [--strategy NAME] [--no-simd]
 *              [--expr-engine auto|strip|interp]
 *              [--grain G] [--exec-threads N] [--tile-bytes B]
 *              [--seq] [--check]
 *              [--tier bytecode|native|auto] [--native-cache-dir DIR]
 *              [--edit-storm N] [--edit-size K] [--edit-seed S]
 *              [--trace-out FILE] [--stats-json FILE]
 *
 * --edit-storm runs N rounds after the initial execution; each round
 * applies a burst of random edits (input mutations plus subtree
 * replacements of about --edit-size nodes, deterministic in
 * --edit-seed) and heals the arena with an incremental re-execution
 * (DESIGN.md §13), reporting the per-round time and the speedup over
 * repeating the full recompute. Requires --batch-count 1.
 *
 * --tree-size picks the generated instance's node budget, --tree-depth
 * caps its depth (0 = unbounded), --grain sets the parallel chunk
 * size, and --exec-threads sizes the execution pool (0 = hardware
 * concurrency; --seq forces the sequential executor). --batch-count
 * packs B independently generated trees (tree-size nodes each) into
 * one ForestArena and runs them in a single batched execution.
 * --strategy picks the sweep engine: auto (default; measured-stats
 * selection between the four engines, recorded in the stats line and
 * exec.select.* counters), stack (explicit-stack traversal), linear
 * (node-id order sweeps), segmented (class-segregated
 * level-synchronous kernels), or tiled (cache-sized subtree blocks on
 * the work-stealing tile scheduler; --tile-bytes overrides the
 * per-tile footprint budget, 0 = L2-sized default). --no-simd runs
 * the segmented and tiled kernels through the portable scalar
 * variant. --expr-engine picks how residual-bytecode rules execute
 * inside those kernels: auto/strip run register-form expressions
 * strip-mined across the segment (predicated, vectorizable), interp
 * forces the node-major stack interpreter — the differential
 * baseline. --check re-evaluates every
 * output attribute (of every tree in the batch) with
 * exec::computeReference and fails on any mismatch.
 *
 * --tier picks the execution tier (README "Native tier"): bytecode
 * (default) interprets the compiled program; native emits a
 * schedule-specialized C++ TU, drives the system compiler ($HECATE_CXX
 * / $CXX, else the first of c++/g++/clang++ on $PATH) into a .so, and
 * executes through it, blocking on the cold compile; auto serves on
 * bytecode and hot-swaps to native when the background compile lands.
 * --native-cache-dir persists compiled .so artifacts across runs
 * (checksummed; corrupt entries are evicted and rebuilt). Without a
 * usable compiler the run degrades to bytecode with a single stderr
 * note — it never fails.
 *
 * Serve mode: run the long-lived daemon speaking the length-prefixed
 * JSON protocol (README "Serving"):
 *
 *   hecate_cli serve [--port P] [--host ADDR] [--threads N]
 *              [--exec-threads N]
 *              [--queue-cap N] [--max-conns N] [--max-frame BYTES]
 *              [--max-outbuf BYTES] [--quota-rps R] [--quota-burst B]
 *              [--allow-remote-drain] [--cache-dir DIR]
 *              [--tier bytecode|native|auto] [--native-cache-dir DIR]
 *              [--trace-out FILE] [--stats-json FILE]
 *
 * --threads sizes the request worker pool (0 = hardware concurrency),
 * --exec-threads caps per-request execution parallelism (0 = auto:
 * hardware threads / request workers, so a saturated daemon never
 * oversubscribes; the metrics op reports the effective value),
 * --queue-cap bounds the admission queue (overload answers
 * over_capacity rejections instead of queueing without bound), and
 * --quota-rps/--quota-burst set the per-client token bucket (0
 * disables quotas). --max-outbuf caps a connection's unflushed
 * response bytes (reads pause past the cap), and the drain op is
 * loopback-only unless --allow-remote-drain is given. --cache-dir
 * warm-loads the schedule cache at
 * startup and persists it on drain. SIGTERM and SIGINT begin a
 * graceful drain: stop accepting, finish in-flight requests, flush
 * responses, save the cache, exit 0. --stats-json is written after
 * the drain (it includes the cache.warm.* startup counters).
 *
 * Exit codes: 0 success, 1 user error (bad input, failed synthesis or
 * check), 2 usage, 3 internal invariant violation, 4 unexpected error.
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "codegen/cpp_emitter.hpp"
#include "exec/interp.hpp"
#include "net/server.hpp"
#include "pipeline/pipeline.hpp"
#include "service/synth_service.hpp"
#include "support/timer.hpp"

using namespace hecate;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: hecate_cli [synth] GRAMMAR [TRAVERSAL.hec]\n"
        "       [--root IFACE] [--engine ilp|sat] [--emit-cpp]\n"
        "       [--depth K] [--threads N] [--scratch]\n"
        "       [--trace-out FILE] [--stats-json FILE]\n"
        "   or: hecate_cli batch REQUESTS.txt [--engine ilp|sat]\n"
        "       [--depth K] [--workers N] [--repeat K]\n"
        "       [--cache-dir DIR] [--threads N] [--scratch]\n"
        "       [--trace-out FILE] [--stats-json FILE]\n"
        "   or: hecate_cli run GRAMMAR [TRAVERSAL.hec] [--root IFACE]\n"
        "       [--engine ilp|sat] [--depth K] [--cache-dir DIR]\n"
        "       [--tree-size N] [--tree-depth D] [--seed S]\n"
        "       [--batch-count B]\n"
        "       [--strategy auto|stack|linear|segmented|tiled]\n"
        "       [--no-simd] [--expr-engine auto|strip|interp]\n"
        "       [--grain G] [--exec-threads N]\n"
        "       [--tile-bytes B] [--seq]\n"
        "       [--check] [--tier bytecode|native|auto]\n"
        "       [--native-cache-dir DIR]\n"
        "       [--edit-storm N] [--edit-size K] [--edit-seed S]\n"
        "       [--trace-out FILE] [--stats-json FILE]\n"
        "   or: hecate_cli serve [--port P] [--host ADDR] [--threads N]\n"
        "       [--exec-threads N]\n"
        "       [--queue-cap N] [--max-conns N] [--max-frame BYTES]\n"
        "       [--max-outbuf BYTES] [--quota-rps R] [--quota-burst B]\n"
        "       [--allow-remote-drain] [--cache-dir DIR]\n"
        "       [--tier bytecode|native|auto] [--native-cache-dir DIR]\n"
        "       [--trace-out FILE] [--stats-json FILE]\n");
    return 2;
}

/** Options every mode shares (one parser instead of three). */
struct CommonOptions {
    std::string engine = "ilp";
    std::string rootName;
    uint32_t depth = 3;
    uint32_t verifyThreads = 0;
    bool scratch = false;
    std::string traceOut;
    std::string statsJson;
};

/**
 * Try to consume one shared option at argv[i] (advancing i over its
 * value). Returns false when the argument is not a shared option.
 */
bool
parseCommonOption(CommonOptions& options, int argc, char** argv, int& i)
{
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
        if (i + 1 >= argc)
            userError("missing value for " + arg);
        return argv[++i];
    };
    if (arg == "--engine") {
        options.engine = value();
    } else if (arg == "--root") {
        options.rootName = value();
    } else if (arg == "--depth") {
        options.depth = static_cast<uint32_t>(std::atoi(value()));
    } else if (arg == "--threads") {
        options.verifyThreads = static_cast<uint32_t>(std::atoi(value()));
    } else if (arg == "--scratch") {
        options.scratch = true;
    } else if (arg == "--trace-out") {
        options.traceOut = value();
    } else if (arg == "--stats-json") {
        options.statsJson = value();
    } else {
        return false;
    }
    return true;
}

/** Build the SynthesisConfig the shared options describe. */
synth::SynthesisConfig
makeSynthConfig(const CommonOptions& options)
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = options.depth;
    config.engine = pipeline::parseEngineName(options.engine);
    config.verifyThreads = options.verifyThreads;
    if (options.scratch) {
        config.incrementalEncoding = false;
        config.reuseVerifierState = false;
    }
    return config;
}

/** Write --trace-out / --stats-json outputs when requested. */
void
exportTelemetry(const obs::Telemetry& telemetry,
                const CommonOptions& options)
{
    if (!options.traceOut.empty()) {
        std::ofstream out(options.traceOut);
        if (!out)
            userError("cannot write '" + options.traceOut + "'");
        telemetry.writeChromeTrace(out);
    }
    if (!options.statsJson.empty()) {
        std::ofstream out(options.statsJson);
        if (!out)
            userError("cannot write '" + options.statsJson + "'");
        telemetry.writeStatsJson(out);
    }
}

/** stderr phase breakdown from the run's telemetry. */
void
reportPhases(const obs::Telemetry& telemetry, uint32_t verifyThreads)
{
    std::fprintf(stderr,
                 "phases: encode %.2fms | solve %.2fms | "
                 "verify %.2fms (%u thread%s)\n",
                 telemetry.spanSeconds("encode") * 1e3,
                 telemetry.spanSeconds("solve") * 1e3,
                 telemetry.spanSeconds("verify") * 1e3, verifyThreads,
                 verifyThreads == 1 ? "" : "s");
    std::fprintf(stderr, "plan cache: %.0f hits / %.0f misses\n",
                 telemetry.counter("plan_cache.hits"),
                 telemetry.counter("plan_cache.misses"));
}

/** Parse one REQUESTS.txt line into a service request. */
service::SynthRequest
parseRequestLine(const std::string& line,
                 const synth::SynthesisConfig& config)
{
    service::SynthRequest request;
    request.config = config;

    std::istringstream in(line);
    std::string token;
    int bare = 0;
    while (in >> token) {
        if (token.rfind("root=", 0) == 0) {
            request.rootInterface = token.substr(5);
        } else if (bare == 0) {
            pipeline::GrammarSource source =
                pipeline::resolveGrammarArg(token);
            request.grammarSrc = std::move(source.source);
            if (!source.rootInterface.empty())
                request.rootInterface = source.rootInterface;
            ++bare;
        } else if (bare == 1) {
            request.traversalSrc = pipeline::readTextFile(token);
            ++bare;
        } else {
            userError("too many fields in request line: " + line);
        }
    }
    if (bare == 0)
        userError("empty request line");
    return request;
}

/** Parse a --tier value; throws UserError on unknown names. */
service::ExecTier
parseTierArg(const std::string& name)
{
    std::optional<service::ExecTier> tier = service::parseTierName(name);
    if (!tier)
        userError("unknown execution tier '" + name +
                  "' (expected bytecode, native or auto)");
    return *tier;
}

/** Parse a --strategy value; throws UserError on unknown names. */
runtime::SweepStrategy
parseStrategyName(const std::string& name)
{
    if (name == "auto")
        return runtime::SweepStrategy::Auto;
    if (name == "stack")
        return runtime::SweepStrategy::Stack;
    if (name == "linear")
        return runtime::SweepStrategy::Linear;
    if (name == "segmented")
        return runtime::SweepStrategy::Segmented;
    if (name == "tiled")
        return runtime::SweepStrategy::Tiled;
    userError("unknown sweep strategy '" + name +
              "' (expected auto, stack, linear, segmented or tiled)");
}

/** Parse an --expr-engine value; throws UserError on unknown names. */
runtime::ExprEngine
parseExprEngineName(const std::string& name)
{
    if (name == "auto")
        return runtime::ExprEngine::Auto;
    if (name == "strip")
        return runtime::ExprEngine::Strip;
    if (name == "interp")
        return runtime::ExprEngine::Interp;
    userError("unknown expression engine '" + name +
              "' (expected auto, strip or interp)");
}

/**
 * Count output cells of @p arena nodes [begin, end) that disagree with
 * @p reference (whose node ids are local, i.e. shifted by -begin).
 */
uint64_t
countMismatches(const sem::Grammar& grammar,
                const runtime::TreeArena& arena, runtime::NodeIdx begin,
                runtime::NodeIdx end, const tree::Tree& reference)
{
    uint64_t mismatches = 0;
    for (runtime::NodeIdx node = begin; node < end; ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            uint32_t col = arena.layout().column(cls.iface, attr);
            if (reference.node(node - begin).values[attr] !=
                arena.value(node, col)) {
                ++mismatches;
            }
        }
    }
    return mismatches;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

int
runBatch(int argc, char** argv)
{
    CommonOptions common;
    std::string requests_path, cache_dir;
    size_t workers = 0;
    uint32_t repeat = 1;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (parseCommonOption(common, argc, argv, i)) {
            continue;
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<size_t>(std::atoi(argv[++i]));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (requests_path.empty()) {
            requests_path = arg;
        } else {
            return usage();
        }
    }
    if (requests_path.empty() || repeat == 0)
        return usage();

    synth::SynthesisConfig synth_config = makeSynthConfig(common);
    obs::Telemetry telemetry;

    // Parse the request list (before starting the clock).
    std::vector<service::SynthRequest> requests;
    {
        std::ifstream in(requests_path);
        if (!in)
            userError("cannot open '" + requests_path + "'");
        std::string line;
        while (std::getline(in, line)) {
            size_t first = line.find_first_not_of(" \t\r");
            if (first == std::string::npos || line[first] == '#')
                continue;
            requests.push_back(parseRequestLine(line, synth_config));
            requests.back().telemetry = &telemetry;
        }
    }
    if (requests.empty())
        userError("no requests in '" + requests_path + "'");
    const size_t unique_count = requests.size();
    for (uint32_t r = 1; r < repeat; ++r) {
        for (size_t i = 0; i < unique_count; ++i)
            requests.push_back(requests[i]);
    }

    service::ServiceConfig service_config;
    service_config.workers = workers;
    service::SynthService svc(service_config);
    if (!cache_dir.empty()) {
        service::ScheduleCache::LoadReport report =
            service::warmLoad(svc.cache(), cache_dir, telemetry);
        for (const std::string& diag : report.diagnostics)
            std::fprintf(stderr, "hecate: %s\n", diag.c_str());
        if (report.loaded > 0) {
            std::fprintf(stderr, "cache: loaded %zu entr%s from %s\n",
                         report.loaded, report.loaded == 1 ? "y" : "ies",
                         cache_dir.c_str());
        }
    }

    Timer wall;
    std::vector<std::future<service::SynthOutcome>> futures;
    futures.reserve(requests.size());
    for (service::SynthRequest& request : requests)
        futures.push_back(svc.submit(std::move(request)));

    std::vector<service::SynthOutcome> outcomes;
    outcomes.reserve(futures.size());
    for (auto& future : futures)
        outcomes.push_back(future.get());
    const double total_seconds = wall.seconds();

    // Per-request report.
    std::printf("%5s  %-6s  %10s  %6s  %s\n", "req", "source", "ms",
                "iters", "status");
    std::vector<double> latencies_ms;
    size_t failures = 0;
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const service::SynthOutcome& outcome = outcomes[i];
        latencies_ms.push_back(outcome.seconds * 1e3);
        if (!outcome.ok)
            ++failures;
        std::printf("%5zu  %-6s  %10.2f  %6u  %s\n", i,
                    service::provenanceName(outcome.provenance),
                    outcome.seconds * 1e3, outcome.cegisIterations,
                    outcome.ok ? "ok" : outcome.failure.c_str());
    }

    // Aggregate report: request telemetry was absorbed into one sink.
    service::ServiceStats stats = svc.stats();
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double n = static_cast<double>(outcomes.size());
    std::printf("\nbatch: %zu requests (%zu unique lines x %u) in %.2fs "
                "(%.1f req/s)\n",
                outcomes.size(), unique_count, repeat, total_seconds,
                total_seconds > 0 ? n / total_seconds : 0.0);
    std::printf("  fresh %llu | cache-hit %llu | joined %llu | "
                "failed %zu\n",
                static_cast<unsigned long long>(stats.freshRuns),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.joinedInFlight),
                failures);
    std::printf("  hit rate %.1f%% | dedup rate %.1f%%\n",
                100.0 * static_cast<double>(stats.cacheHits) / n,
                100.0 * static_cast<double>(stats.joinedInFlight) / n);
    std::printf("  latency p50 %.2fms | p95 %.2fms | max %.2fms\n",
                percentile(latencies_ms, 0.50),
                percentile(latencies_ms, 0.95),
                latencies_ms.empty() ? 0.0 : latencies_ms.back());
    std::printf("  leader phases: encode %.2fms | solve %.2fms | "
                "verify %.2fms\n",
                telemetry.spanSeconds("encode") * 1e3,
                telemetry.spanSeconds("solve") * 1e3,
                telemetry.spanSeconds("verify") * 1e3);
    double plan_hits = telemetry.counter("plan_cache.hits");
    double plan_misses = telemetry.counter("plan_cache.misses");
    std::printf("  plan cache: %.0f hits / %.0f misses (%.1f%% hit rate)\n",
                plan_hits, plan_misses,
                plan_hits + plan_misses > 0
                    ? 100.0 * plan_hits / (plan_hits + plan_misses)
                    : 0.0);

    if (!cache_dir.empty()) {
        size_t written = svc.cache().save(cache_dir);
        std::fprintf(stderr, "cache: saved %zu entr%s to %s\n", written,
                     written == 1 ? "y" : "ies", cache_dir.c_str());
    }
    exportTelemetry(telemetry, common);
    return failures == 0 ? 0 : 1;
}

int
runSingle(int first, int argc, char** argv)
{
    CommonOptions common;
    std::string grammar_arg, traversal_path;
    bool emit_cpp = false;

    for (int i = first; i < argc; ++i) {
        std::string arg = argv[i];
        if (parseCommonOption(common, argc, argv, i)) {
            continue;
        } else if (arg == "--emit-cpp") {
            emit_cpp = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (grammar_arg.empty()) {
            grammar_arg = arg;
        } else if (traversal_path.empty()) {
            traversal_path = arg;
        } else {
            return usage();
        }
    }
    if (grammar_arg.empty())
        return usage();

    obs::Telemetry telemetry;
    pipeline::GrammarSource source =
        pipeline::resolveGrammarArg(grammar_arg);

    pipeline::PipelineOptions options;
    options.config = makeSynthConfig(common);
    options.rootInterface = common.rootName.empty() ? source.rootInterface
                                                    : common.rootName;
    options.telemetry = &telemetry;
    std::string traversal_src =
        traversal_path.empty() ? std::string()
                               : pipeline::readTextFile(traversal_path);
    pipeline::Pipeline pipe(std::move(source.source),
                            std::move(traversal_src), std::move(options));

    const pipeline::SynthArtifact& artifact = pipe.synthesize();
    if (!artifact.ok)
        userError(artifact.failure);
    if (artifact.autoTuned) {
        std::fprintf(stderr, "auto-tuner: %s skeleton (%u tried)\n",
                     synth::skeletonStyleName(artifact.style),
                     artifact.skeletonsTried);
    } else {
        std::fprintf(stderr,
                     "synthesized in %u CEGIS round(s), "
                     "%zu trees verified\n",
                     artifact.cegisIterations, artifact.verifiedTrees);
    }
    reportPhases(telemetry, artifact.verifyThreadsUsed);

    std::printf("%s", artifact.concreteTraversal.c_str());
    if (emit_cpp) {
        std::printf("\n%s", codegen::emitCpp(pipe.skeleton(),
                                             *artifact.schedule)
                                .c_str());
    }
    exportTelemetry(telemetry, common);
    return 0;
}

int
runRun(int argc, char** argv)
{
    CommonOptions common;
    std::string grammar_arg, traversal_path, cache_dir;
    long long tree_size = 1000000;
    long long tree_depth = 0;
    long long grain = 1024;
    long long exec_threads = 0;
    long long tile_bytes = 0;
    long long seed = 1;
    long long batch_count = 1;
    std::string strategy_name = "auto";
    std::string expr_engine_name = "auto";
    std::string tier_name = "bytecode";
    std::string native_cache_dir;
    long long edit_storm = 0;
    long long edit_size = 8;
    long long edit_seed = 42;
    bool no_simd = false;
    bool sequential = false;
    bool check = false;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (parseCommonOption(common, argc, argv, i)) {
            continue;
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg == "--tier" && i + 1 < argc) {
            tier_name = argv[++i];
        } else if (arg == "--native-cache-dir" && i + 1 < argc) {
            native_cache_dir = argv[++i];
        } else if (arg == "--tree-size" && i + 1 < argc) {
            tree_size = std::atoll(argv[++i]);
        } else if (arg == "--tree-depth" && i + 1 < argc) {
            tree_depth = std::atoll(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::atoll(argv[++i]);
        } else if (arg == "--grain" && i + 1 < argc) {
            grain = std::atoll(argv[++i]);
        } else if (arg == "--exec-threads" && i + 1 < argc) {
            exec_threads = std::atoll(argv[++i]);
        } else if (arg == "--tile-bytes" && i + 1 < argc) {
            tile_bytes = std::atoll(argv[++i]);
        } else if (arg == "--batch-count" && i + 1 < argc) {
            batch_count = std::atoll(argv[++i]);
        } else if (arg == "--strategy" && i + 1 < argc) {
            strategy_name = argv[++i];
        } else if (arg == "--expr-engine" && i + 1 < argc) {
            expr_engine_name = argv[++i];
        } else if (arg == "--edit-storm" && i + 1 < argc) {
            edit_storm = std::atoll(argv[++i]);
        } else if (arg == "--edit-size" && i + 1 < argc) {
            edit_size = std::atoll(argv[++i]);
        } else if (arg == "--edit-seed" && i + 1 < argc) {
            edit_seed = std::atoll(argv[++i]);
        } else if (arg == "--no-simd") {
            no_simd = true;
        } else if (arg == "--seq") {
            sequential = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (grammar_arg.empty()) {
            grammar_arg = arg;
        } else if (traversal_path.empty()) {
            traversal_path = arg;
        } else {
            return usage();
        }
    }
    if (grammar_arg.empty())
        return usage();
    if (tree_size < 1 || tree_size > (1ll << 31))
        userError("--tree-size must be between 1 and 2^31");
    if (tree_depth < 0)
        userError("--tree-depth must be non-negative (0 = unbounded)");
    if (grain < 1 || grain > (1ll << 30))
        userError("--grain must be between 1 and 2^30");
    if (exec_threads < 0 || exec_threads > 4096)
        userError("--exec-threads must be between 0 and 4096 "
                  "(0 = hardware concurrency)");
    if (tile_bytes < 0 || tile_bytes > (1ll << 32))
        userError("--tile-bytes must be between 0 and 2^32 "
                  "(0 = default L2-sized budget)");
    if (seed < 0)
        userError("--seed must be non-negative");
    if (batch_count < 1 || batch_count > (1ll << 20))
        userError("--batch-count must be between 1 and 2^20");
    if (edit_storm < 0 || edit_storm > (1ll << 20))
        userError("--edit-storm must be between 0 and 2^20");
    if (edit_size < 1 || edit_size > (1ll << 20))
        userError("--edit-size must be between 1 and 2^20");
    if (edit_seed < 0)
        userError("--edit-seed must be non-negative");
    if (edit_storm > 0 && batch_count > 1)
        userError("--edit-storm requires --batch-count 1 (structural "
                  "edits are not supported on packed forests)");
    runtime::SweepStrategy strategy = parseStrategyName(strategy_name);
    runtime::ExprEngine expr_engine = parseExprEngineName(expr_engine_name);
    service::ExecTier tier = parseTierArg(tier_name);

    obs::Telemetry telemetry;
    pipeline::GrammarSource source =
        pipeline::resolveGrammarArg(grammar_arg);

    service::ScheduleCache cache;
    if (!cache_dir.empty())
        service::warmLoad(cache, cache_dir, telemetry);

    // The tier controller must outlive the pipeline (which keeps a
    // pointer); declared before `pipe` so destruction joins any
    // background compile after the last execution.
    service::NativeTierConfig native_config;
    native_config.cacheDir = native_cache_dir;
    service::NativeTier native_tier(native_config);

    pipeline::PipelineOptions options;
    options.config = makeSynthConfig(common);
    options.rootInterface = common.rootName.empty() ? source.rootInterface
                                                    : common.rootName;
    options.cache = &cache;
    options.telemetry = &telemetry;
    options.nativeTier = &native_tier;
    options.tier = tier;
    std::string traversal_src =
        traversal_path.empty() ? std::string()
                               : pipeline::readTextFile(traversal_path);
    pipeline::Pipeline pipe(std::move(source.source),
                            std::move(traversal_src), std::move(options));

    // 1. Synthesize (or load) the schedule.
    const pipeline::SynthArtifact& artifact = pipe.synthesize();
    if (!cache_dir.empty())
        cache.save(cache_dir);
    if (!artifact.ok)
        userError(artifact.failure);
    std::fprintf(stderr, "schedule: %s in %.2fms\n",
                 pipeline::provenanceName(artifact.provenance),
                 artifact.seconds * 1e3);
    std::printf("%s", artifact.concreteTraversal.c_str());

    // 2. + 3. + 4. Compile to bytecode, generate the instance(s),
    // execute (one batched run when --batch-count > 1).
    pipeline::ExecuteRequest request;
    request.gen.targetNodes = static_cast<uint32_t>(tree_size);
    request.gen.maxDepth = static_cast<uint32_t>(tree_depth);
    request.gen.seed = static_cast<uint64_t>(seed);
    request.exec.grain = static_cast<uint32_t>(grain);
    request.exec.strategy = strategy;
    request.exec.exprEngine = expr_engine;
    request.exec.tileBytes = static_cast<uint64_t>(tile_bytes);
    if (no_simd)
        request.exec.simd = false;
    request.batchCount = static_cast<uint32_t>(batch_count);
    std::unique_ptr<ThreadPool> pool;
    if (!sequential) {
        pool = std::make_unique<ThreadPool>(
            static_cast<size_t>(exec_threads));
        request.exec.pool = pool.get();
    }

    runtime::RuntimeStats stats;
    std::optional<pipeline::ExecuteArtifact> single;
    std::optional<pipeline::ForestExecuteArtifact> batched;
    double gen_secs = 0.0;
    double secs = 0.0;
    if (batch_count > 1) {
        batched.emplace(pipe.executeForest(request));
        stats = batched->stats;
        gen_secs = batched->generateSeconds;
        secs = batched->executeSeconds;
        std::fprintf(stderr,
                     "forest: %u trees, %u nodes total, built in %.2fms\n",
                     batched->forest.treeCount(), batched->forest.size(),
                     gen_secs * 1e3);
    } else {
        single.emplace(pipe.execute(request));
        stats = single->stats;
        gen_secs = single->generateSeconds;
        secs = single->executeSeconds;
        std::fprintf(stderr,
                     "arena: %u nodes, depth %u, built in %.2fms\n",
                     single->arena.size(), single->arena.depth(),
                     gen_secs * 1e3);
    }
    std::fprintf(stderr,
                 "run: %s, %zu worker(s), grain %lld, strategy %s%s\n",
                 sequential ? "sequential" : "parallel",
                 pool ? pool->workerCount() : 1, grain,
                 strategy_name.c_str(), no_simd ? ", simd off" : "");
    std::fprintf(stderr,
                 "run: %.2fms | %.1fM nodes/s | %.1fM rules/s\n",
                 secs * 1e3,
                 secs > 0 ? stats.nodeVisits / secs / 1e6 : 0.0,
                 secs > 0 ? stats.rulesEvaluated / secs / 1e6 : 0.0);
    std::fprintf(stderr,
                 "run: %llu visits | %llu rules | %llu fork regions | "
                 "%llu tasks | %llu help-join runs\n",
                 static_cast<unsigned long long>(stats.nodeVisits),
                 static_cast<unsigned long long>(stats.rulesEvaluated),
                 static_cast<unsigned long long>(stats.parallelRegions),
                 static_cast<unsigned long long>(stats.tasksSpawned),
                 static_cast<unsigned long long>(stats.helpJoinRuns));
    std::fprintf(stderr,
                 "run: %llu level waves | %llu segment kernels | "
                 "%llu tiles | %llu tile steals\n",
                 static_cast<unsigned long long>(stats.levelWaves),
                 static_cast<unsigned long long>(stats.segmentKernels),
                 static_cast<unsigned long long>(stats.tilesExecuted),
                 static_cast<unsigned long long>(stats.tileSteals));
    std::fprintf(stderr,
                 "run: %llu strips | %llu predicated ops | "
                 "%llu fallback nodes\n",
                 static_cast<unsigned long long>(stats.stripsRun),
                 static_cast<unsigned long long>(stats.predicatedOps),
                 static_cast<unsigned long long>(stats.fallbackNodes));
    std::fprintf(stderr, "run: strategy %s (%s)\n",
                 runtime::sweepStrategyName(stats.strategy),
                 runtime::strategyReasonName(stats.selection));
    if (tier != service::ExecTier::Bytecode) {
        native_tier.drain();
        native_tier.exportCounters(telemetry);
        service::NativeTierStats native_stats = native_tier.stats();
        service::NativeCache::Stats native_cache =
            native_tier.cache().stats();
        std::fprintf(
            stderr,
            "native: tier %s | executed %s | %llu compile(s) "
            "(%.2fms) | %llu failure(s) | cache %llu hit(s) "
            "(%llu from disk)\n",
            service::tierName(tier),
            telemetry.counter("native.exec") > 0 ? "native" : "bytecode",
            static_cast<unsigned long long>(native_stats.compiles),
            native_stats.compileSeconds * 1e3,
            static_cast<unsigned long long>(native_stats.compileFailures),
            static_cast<unsigned long long>(native_cache.hits),
            static_cast<unsigned long long>(native_cache.diskHits));
    }

    // 5. Optional edit storm: repeated random edit bursts, each healed
    // by an incremental re-execution instead of a full recompute. The
    // per-round speedup estimate divides the measured full-execute time
    // by the average incremental round; --check afterwards validates
    // the final (post-storm) cells against the reference evaluator.
    if (edit_storm > 0) {
        constexpr uint32_t kEditsPerRound = 4;
        incr::IncrOptions incr_options;
        incr_options.pool = request.exec.pool;
        incr_options.grain = request.exec.grain;
        uint64_t total_edits = 0;
        uint64_t rules_checked = 0;
        uint64_t rules_evaluated = 0;
        uint64_t wave_rounds = 0;
        double incr_secs = 0.0;
        for (long long round = 0; round < edit_storm; ++round) {
            std::vector<incr::Edit> edits = incr::applyRandomEdits(
                single->arena, kEditsPerRound,
                static_cast<uint32_t>(edit_size),
                static_cast<uint64_t>(edit_seed) + 0x9e3779b9ull * round);
            total_edits += edits.size();
            Timer timer;
            incr::IncrStats round_stats =
                pipe.reexecute(single->arena, incr_options);
            incr_secs += timer.seconds();
            rules_checked += round_stats.rulesChecked;
            rules_evaluated += round_stats.rulesEvaluated;
            wave_rounds += round_stats.usedWave ? 1 : 0;
        }
        const double avg_ms =
            incr_secs / static_cast<double>(edit_storm) * 1e3;
        std::fprintf(stderr,
                     "edit-storm: %lld round(s), %llu edit(s), "
                     "%.2fms total | %.3fms/round | %llu wave run(s)\n",
                     edit_storm,
                     static_cast<unsigned long long>(total_edits),
                     incr_secs * 1e3, avg_ms,
                     static_cast<unsigned long long>(wave_rounds));
        std::fprintf(
            stderr,
            "edit-storm: %llu rules checked | %llu re-evaluated | "
            "%.1fx vs full recompute\n",
            static_cast<unsigned long long>(rules_checked),
            static_cast<unsigned long long>(rules_evaluated),
            incr_secs > 0
                ? secs * static_cast<double>(edit_storm) / incr_secs
                : 0.0);
    }

    // 6. Optional differential check against the reference evaluator.
    int exit_code = 0;
    if (check) {
        const sem::Grammar& grammar = pipe.grammar();
        uint64_t mismatches = 0;
        if (batched) {
            const runtime::ForestArena& forest = batched->forest;
            for (uint32_t t = 0; t < forest.treeCount(); ++t) {
                tree::Tree reference = forest.toTree(t);
                exec::computeReference(reference);
                mismatches += countMismatches(
                    grammar, forest.flat(), forest.treeBegin(t),
                    forest.treeBegin(t) + forest.treeSize(t), reference);
            }
        } else if (edit_storm > 0) {
            // Structural edits orphan rows in place; node ids only line
            // up with toTree()'s output after compaction.
            runtime::TreeArena compacted = single->arena.compact();
            tree::Tree reference = compacted.toTree();
            exec::computeReference(reference);
            mismatches = countMismatches(grammar, compacted, 0,
                                         compacted.size(), reference);
        } else {
            tree::Tree reference = single->arena.toTree();
            exec::computeReference(reference);
            mismatches = countMismatches(grammar, single->arena, 0,
                                         single->arena.size(), reference);
        }
        if (mismatches != 0) {
            std::fprintf(stderr,
                         "check: FAILED, %llu mismatching cells\n",
                         static_cast<unsigned long long>(mismatches));
            exit_code = 1;
        } else {
            std::fprintf(stderr,
                         "check: ok (all cells match the reference)\n");
        }
    }
    exportTelemetry(telemetry, common);
    return exit_code;
}

/**
 * The serving daemon's drain hook. requestDrain is async-signal-safe
 * (an atomic store plus a self-pipe write), so the handler may call it
 * directly; everything else happens on the server's own threads.
 */
net::Server* g_server = nullptr;

extern "C" void
handleDrainSignal(int)
{
    if (g_server != nullptr)
        g_server->requestDrain();
}

int
runServe(int argc, char** argv)
{
    CommonOptions common;
    net::ServeOptions serve;
    long long port = 7411;
    long long threads = 0;
    long long exec_threads = 0;
    long long queue_cap = 512;
    long long max_conns = 4096;
    long long max_frame = 4 << 20;
    long long max_outbuf = 8 << 20;
    double quota_rps = 0.0;
    double quota_burst = 0.0;
    bool allow_remote_drain = false;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (parseCommonOption(common, argc, argv, i)) {
            continue;
        } else if (arg == "--port" && i + 1 < argc) {
            port = std::atoll(argv[++i]);
        } else if (arg == "--host" && i + 1 < argc) {
            serve.host = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::atoll(argv[++i]);
        } else if (arg == "--exec-threads" && i + 1 < argc) {
            exec_threads = std::atoll(argv[++i]);
        } else if (arg == "--queue-cap" && i + 1 < argc) {
            queue_cap = std::atoll(argv[++i]);
        } else if (arg == "--max-conns" && i + 1 < argc) {
            max_conns = std::atoll(argv[++i]);
        } else if (arg == "--max-frame" && i + 1 < argc) {
            max_frame = std::atoll(argv[++i]);
        } else if (arg == "--max-outbuf" && i + 1 < argc) {
            max_outbuf = std::atoll(argv[++i]);
        } else if (arg == "--allow-remote-drain") {
            allow_remote_drain = true;
        } else if (arg == "--quota-rps" && i + 1 < argc) {
            quota_rps = std::atof(argv[++i]);
        } else if (arg == "--quota-burst" && i + 1 < argc) {
            quota_burst = std::atof(argv[++i]);
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            serve.cacheDir = argv[++i];
        } else if (arg == "--tier" && i + 1 < argc) {
            serve.service.tier = parseTierArg(argv[++i]);
        } else if (arg == "--native-cache-dir" && i + 1 < argc) {
            serve.service.native.cacheDir = argv[++i];
        } else {
            return usage();
        }
    }
    if (port < 0 || port > 65535)
        userError("--port must be between 0 and 65535 (0 = ephemeral)");
    if (threads < 0 || threads > 4096)
        userError("--threads must be between 0 and 4096 "
                  "(0 = hardware concurrency)");
    if (exec_threads < 0 || exec_threads > 4096)
        userError("--exec-threads must be between 0 and 4096 "
                  "(0 = auto: hardware threads / request workers)");
    if (queue_cap < 1 || queue_cap > (1ll << 20))
        userError("--queue-cap must be between 1 and 2^20");
    if (max_conns < 1 || max_conns > (1ll << 20))
        userError("--max-conns must be between 1 and 2^20");
    if (max_frame < 64 ||
        max_frame > static_cast<long long>(net::kFrameHardLimit))
        userError("--max-frame must be between 64 and 2^26 bytes");
    if (max_outbuf < max_frame || max_outbuf > (1ll << 30))
        userError("--max-outbuf must be between --max-frame and 2^30 "
                  "bytes");
    if (quota_rps < 0.0 || quota_burst < 0.0)
        userError("--quota-rps and --quota-burst must be non-negative");

    serve.port = static_cast<uint16_t>(port);
    serve.workers = static_cast<size_t>(threads);
    serve.execThreads = static_cast<uint32_t>(exec_threads);
    serve.queueCapacity = static_cast<size_t>(queue_cap);
    serve.maxConnections = static_cast<size_t>(max_conns);
    serve.maxFrameBytes = static_cast<uint32_t>(max_frame);
    serve.maxOutbufBytes = static_cast<size_t>(max_outbuf);
    serve.allowRemoteDrain = allow_remote_drain;
    serve.quotaRps = quota_rps;
    serve.quotaBurst = quota_burst;
    serve.service.workers = static_cast<size_t>(threads);

    obs::Telemetry telemetry;
    serve.telemetry = &telemetry;
    const std::string host = serve.host;

    net::Server server(std::move(serve));
    // Install the drain handlers before start(): a signal landing
    // during the (possibly slow) cache warm-load must already mean
    // "graceful drain", not the default die-without-persisting. A
    // pre-start requestDrain just makes start() drain immediately.
    g_server = &server;
    struct sigaction action{};
    action.sa_handler = handleDrainSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
    server.start();

    std::fprintf(stderr,
                 "hecate: serving on %s:%u (%.0f cache entries warm, "
                 "drain with SIGTERM)\n",
                 host.c_str(), server.port(),
                 telemetry.counter("cache.warm.entries"));
    server.waitUntilStopped();
    g_server = nullptr;

    net::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "serve: %llu admitted | %llu rejected (queue %llu, "
                 "quota %llu, draining %llu) | %llu responses\n",
                 static_cast<unsigned long long>(stats.requestsAdmitted),
                 static_cast<unsigned long long>(stats.rejectedQueueFull +
                                                 stats.rejectedQuota +
                                                 stats.rejectedDraining),
                 static_cast<unsigned long long>(stats.rejectedQueueFull),
                 static_cast<unsigned long long>(stats.rejectedQuota),
                 static_cast<unsigned long long>(stats.rejectedDraining),
                 static_cast<unsigned long long>(stats.responsesSent));
    exportTelemetry(telemetry, common);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        if (argc >= 2 && std::strcmp(argv[1], "batch") == 0)
            return runBatch(argc, argv);
        if (argc >= 2 && std::strcmp(argv[1], "run") == 0)
            return runRun(argc, argv);
        if (argc >= 2 && std::strcmp(argv[1], "serve") == 0)
            return runServe(argc, argv);
        if (argc >= 2 && std::strcmp(argv[1], "synth") == 0)
            return runSingle(2, argc, argv);
        return runSingle(1, argc, argv);
    } catch (const UserError& error) {
        std::fprintf(stderr, "hecate: %s\n", error.what());
        return 1;
    } catch (const InternalError& error) {
        std::fprintf(stderr, "hecate: %s\n", error.what());
        return 3;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "hecate: unexpected error: %s\n",
                     error.what());
        return 4;
    }
}
