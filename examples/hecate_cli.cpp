/**
 * @file
 * `hecate` command-line driver: synthesize a traversal schedule for an
 * L_a grammar file and print or emit the result.
 *
 * Usage:
 *   hecate_cli GRAMMAR.hec [TRAVERSAL.hec] [--root IFACE] [--engine ilp|sat]
 *              [--emit-cpp] [--depth K]
 *
 * With no traversal file, the HecateA auto-tuner searches for a
 * skeleton. The synthesized concrete traversal is printed to stdout;
 * --emit-cpp additionally prints the generated C++.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/cpp_emitter.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "synth/autotuner.hpp"

using namespace hecate;

namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        userError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: hecate_cli GRAMMAR.hec [TRAVERSAL.hec]\n"
                 "       [--root IFACE] [--engine ilp|sat] [--emit-cpp]\n"
                 "       [--depth K]\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string grammar_path, traversal_path, root_name, engine = "ilp";
    bool emit_cpp = false;
    uint32_t depth = 3;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root_name = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--depth" && i + 1 < argc) {
            depth = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (arg == "--emit-cpp") {
            emit_cpp = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (grammar_path.empty()) {
            grammar_path = arg;
        } else if (traversal_path.empty()) {
            traversal_path = arg;
        } else {
            return usage();
        }
    }
    if (grammar_path.empty())
        return usage();

    try {
        sem::Grammar grammar =
            sem::Grammar::analyze(lang::parseGrammar(readFile(grammar_path)));
        sem::InterfaceId root =
            root_name.empty() ? grammar.cls(0).iface
                              : grammar.findInterface(root_name);
        if (root == sem::kInvalidId)
            userError("unknown root interface '" + root_name + "'");

        synth::SynthesisConfig config;
        config.verify.maxDepth = depth;
        config.engine = engine == "sat" ? synth::Engine::GeneralPurposeSat
                                        : synth::Engine::DomainSpecificIlp;

        std::optional<sched::Skeleton> skeleton;
        std::optional<sched::Schedule> schedule;
        if (traversal_path.empty()) {
            synth::AutotuneResult tuned =
                synth::autotune(grammar, root, config);
            if (!tuned.schedule.has_value())
                userError("auto-tuning failed: " +
                          tuned.lastSynthesis.failure);
            std::fprintf(stderr, "auto-tuner: %s skeleton (%u tried)\n",
                         synth::skeletonStyleName(tuned.style),
                         tuned.skeletonsTried);
            skeleton = std::move(tuned.skeleton);
            schedule = std::move(tuned.schedule);
        } else {
            skeleton.emplace(sched::Skeleton::resolve(
                grammar, lang::parseTraversal(readFile(traversal_path))));
            synth::SynthesisResult result =
                synth::synthesize(*skeleton, root, {}, config);
            if (!result.schedule.has_value())
                userError("synthesis failed: " + result.failure);
            std::fprintf(stderr, "synthesized in %u CEGIS round(s), "
                         "%zu trees verified\n",
                         result.cegisIterations, result.verifiedTrees);
            schedule = std::move(result.schedule);
        }

        std::printf("%s", lang::printTraversal(
                              schedule->toConcreteTraversal(*skeleton))
                              .c_str());
        if (emit_cpp) {
            std::printf("\n%s",
                        codegen::emitCpp(*skeleton, *schedule).c_str());
        }
        return 0;
    } catch (const UserError& error) {
        std::fprintf(stderr, "hecate: %s\n", error.what());
        return 1;
    }
}
