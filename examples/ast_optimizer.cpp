/**
 * @file
 * AST example (Appendix A): the 136-rule compiler-pass grammar. Shows
 * Hecate synthesizing a single fused traversal for all six passes,
 * and the Grafter baseline fusing the same passes deterministically.
 */

#include <cstdio>

#include "baselines/grafter.hpp"
#include "grammars/grammars.hpp"
#include "obs/telemetry.hpp"
#include "support/timer.hpp"
#include "synth/autotuner.hpp"

using namespace hecate;

int
main()
{
    const grammars::Benchmark& bench = grammars::astBench();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);

    std::printf("AST grammar: %zu rules, %zu classes\npasses:",
                grammar.ruleCount(), grammar.classes().size());
    for (const std::string& pass : grammar.passNames())
        std::printf(" %s", pass.c_str());
    std::printf("\n\n");

    // Hecate: one synthesized traversal covering all six passes.
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar,
        synth::makeSkeleton(grammar, synth::SkeletonStyle::Sandwich));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 64;
    obs::Telemetry telemetry;
    Timer hecate_timer;
    synth::SynthesisResult result =
        synth::synthesize(skeleton, root, {}, config, telemetry);
    if (!result.schedule.has_value()) {
        std::printf("synthesis failed: %s\n", result.failure.c_str());
        return 1;
    }
    std::printf("Hecate synthesized a fused traversal in %.3f s "
                "(%u CEGIS rounds, %.0f sigma variables)\n",
                hecate_timer.seconds(), result.cegisIterations,
                telemetry.counter("ilp.sigma_vars"));

    // Grafter: deterministic greedy fusion of the six passes.
    baselines::GrafterResult grafter =
        baselines::grafterSchedule(grammar, root, config.verify);
    if (grafter.ok) {
        std::printf("Grafter fused the %zu passes into %zu traversal(s) "
                    "in %.3f s (%llu dependence checks)\n",
                    grammar.passNames().size(), grafter.traversals.size(),
                    grafter.seconds,
                    (unsigned long long)grafter.dependenceChecks);
    } else {
        std::printf("Grafter failed: %s\n", grafter.error.c_str());
    }
    return 0;
}
