/**
 * @file
 * Quickstart: the paper's §2 walkthrough end-to-end.
 *
 *  1. Define the rendering-tree attribute grammar (Fig. 3).
 *  2. Give Hecate a symbolic post-order traversal with holes (Fig. 4a).
 *  3. Run CEGIS synthesis; print the concrete traversal (Fig. 4b).
 *  4. Execute the schedule on the Fig. 2 example tree and print values.
 *  5. Emit the fused C++ (Fig. 1b style) via the code generator.
 */

#include <cstdio>

#include "codegen/cpp_emitter.hpp"
#include "exec/interp.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "synth/cegis.hpp"

using namespace hecate;

static const char* kGrammar = R"(
interface Box {
    input w0, h0 : int;
    output w1, w, h1, h : int;
}
class Inner : Box {
    children { nx : Optional[Box]; fc : Optional[Box]; }
    rules {
        self.w  := max(self.w0, fc.w1);
        self.w1 := max(self.w, nx.w1);
        self.h  := max(self.h0, fc.h1);
        self.h1 := self.h + nx.h1;
    }
}
class Leaf : Box {
    children { nx : Optional[Box]; }
    rules {
        self.w  := self.w0;
        self.w1 := max(self.w, nx.w1);
        self.h  := self.h0;
        self.h1 := self.h + nx.h1;
    }
}
)";

static const char* kSymbolic = R"(
traversal layout {
    case Inner { recur fc; recur nx; ??; ??; ??; ??; }
    case Leaf { recur nx; ??; ??; ??; ??; }
}
)";

int
main()
{
    // 1-2. Parse and resolve the inputs.
    sem::Grammar grammar = sem::Grammar::analyze(lang::parseGrammar(kGrammar));
    sched::Skeleton skeleton =
        sched::Skeleton::resolve(grammar, lang::parseTraversal(kSymbolic));
    std::printf("== symbolic traversal (Fig. 4a) ==\n%s\n",
                lang::printTraversal(skeleton.decl()).c_str());

    // 3. CEGIS synthesis.
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::SynthesisResult result = synth::synthesize(skeleton, 0, {}, config);
    if (!result.schedule.has_value()) {
        std::printf("synthesis failed: %s\n", result.failure.c_str());
        return 1;
    }
    std::printf("== synthesized concrete traversal (Fig. 4b) ==\n%s",
                lang::printTraversal(
                    result.schedule->toConcreteTraversal(skeleton))
                    .c_str());
    std::printf("(CEGIS rounds: %u, trees verified: %zu)\n\n",
                result.cegisIterations, result.verifiedTrees);

    // 4. Execute on the Fig. 2 tree.
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");
    tree::Tree t(grammar);
    auto n0 = t.addNode(inner);
    auto n1 = t.addNode(inner);
    auto n2 = t.addNode(leaf);
    auto n3 = t.addNode(leaf);
    auto n4 = t.addNode(leaf);
    t.setScalar(n0, grammar.cls(inner).childByName.at("fc"), n1);
    t.setScalar(n1, grammar.cls(inner).childByName.at("nx"), n2);
    t.setScalar(n1, grammar.cls(inner).childByName.at("fc"), n3);
    t.setScalar(n3, grammar.cls(leaf).childByName.at("nx"), n4);
    t.setRoot(n0);
    t.validate();
    const sem::InterfaceInfo& box = grammar.iface(0);
    for (tree::NodeId n : {n0, n1, n2, n3, n4}) {
        t.setInput(n, box.attrByName.at("w0"), 10 + n);
        t.setInput(n, box.attrByName.at("h0"), 20 + n);
    }
    exec::execute(skeleton, *result.schedule, t);
    std::printf("== computed attributes on the Fig. 2 tree ==\n");
    std::printf("%-6s%-8s%-8s%-8s%-8s\n", "node", "w", "w1", "h", "h1");
    for (tree::NodeId n : {n0, n1, n2, n3, n4}) {
        std::printf("n%-5u%-8lld%-8lld%-8lld%-8lld\n", n,
                    (long long)t.value(n, box.attrByName.at("w")),
                    (long long)t.value(n, box.attrByName.at("w1")),
                    (long long)t.value(n, box.attrByName.at("h")),
                    (long long)t.value(n, box.attrByName.at("h1")));
    }

    // 5. Emit the fused C++.
    std::printf("\n== generated C++ (Fig. 1b style) ==\n%s",
                codegen::emitCpp(skeleton, *result.schedule).c_str());
    return 0;
}
