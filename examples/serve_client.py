#!/usr/bin/env python3
"""Minimal client for the hecate serve protocol.

The wire format is a 4-byte big-endian payload length followed by that
many bytes of UTF-8 JSON, one request object per frame (see README
"Serving"). This script sends each JSON request given on the command
line (or one per stdin line with `-`) over a single connection and
prints one response per line.

Examples:

    # one-off requests
    serve_client.py --port 7411 '{"op": "ping"}' \
        '{"op": "synth", "grammar": "builtin:binarytree"}'

    # a session from stdin
    printf '%s\n%s\n' '{"op": "metrics"}' '{"op": "drain"}' | \
        serve_client.py --port 7411 -

Exits 0 when every response has "ok": true, 1 otherwise.
"""

import argparse
import json
import socket
import struct
import sys


def send_frame(sock, payload: bytes) -> None:
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def recv_exact(sock, n: int) -> bytes:
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("server closed the connection")
        data += chunk
    return data


def recv_frame(sock) -> dict:
    (length,) = struct.unpack(">I", recv_exact(sock, 4))
    return json.loads(recv_exact(sock, length))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "requests",
        nargs="+",
        help="JSON request objects, or '-' to read one per stdin line",
    )
    args = parser.parse_args()

    requests = []
    for item in args.requests:
        if item == "-":
            for line in sys.stdin:
                line = line.strip()
                if line:
                    requests.append(json.loads(line))
        else:
            requests.append(json.loads(item))

    all_ok = True
    with socket.create_connection((args.host, args.port)) as sock:
        for request in requests:
            send_frame(sock, json.dumps(request).encode())
            response = recv_frame(sock)
            print(json.dumps(response, sort_keys=True))
            if response.get("ok") is not True:
                all_ok = False
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
