/**
 * @file
 * RenderTree example (§6.2): synthesize a schedule for the 50-rule
 * five-pass rendering grammar with the HecateA auto-tuner, lay out a
 * randomly generated document, and report the work/span cost model
 * for the synthesized schedule.
 */

#include <cstdio>

#include "exec/cost_model.hpp"
#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "lang/printer.hpp"
#include "synth/autotuner.hpp"

using namespace hecate;

int
main()
{
    const grammars::Benchmark& bench = grammars::renderTree();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    std::printf("RenderTree grammar: %zu rules across %zu classes, "
                "%zu passes\n",
                grammar.ruleCount(), grammar.classes().size(),
                grammar.passNames().size());

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 96;
    synth::AutotuneResult tuned = synth::autotune(grammar, root, config);
    if (!tuned.schedule.has_value()) {
        std::printf("auto-tuning failed: %s\n",
                    tuned.lastSynthesis.failure.c_str());
        return 1;
    }
    std::printf("auto-tuner picked a %s skeleton after trying %u "
                "(%.3f s total)\n\n",
                synth::skeletonStyleName(tuned.style), tuned.skeletonsTried,
                tuned.totalSeconds);

    // Lay out a random document.
    Rng rng(2024);
    tree::SampleConfig sample;
    sample.maxDepth = 8;
    sample.optionalPresent = 0.8;
    tree::Tree document = tree::sampleTree(grammar, root, sample, rng);
    while (document.size() < 60)
        document = tree::sampleTree(grammar, root, sample, rng);
    exec::ExecStats stats;
    exec::execute(*tuned.skeleton, *tuned.schedule, document, &stats);
    std::printf("laid out a %zu-box document: %llu node visits, %llu rule "
                "evaluations\n",
                document.size(), (unsigned long long)stats.nodeVisits,
                (unsigned long long)stats.rulesEvaluated);

    const sem::InterfaceInfo& doc_iface =
        grammar.iface(grammar.findInterface("Doc"));
    std::printf("document total extent attribute: %lld\n\n",
                (long long)document.value(
                    document.root(), doc_iface.attrByName.at("total")));

    // Cost-model report for the synthesized schedule.
    exec::CostReport cost =
        exec::analyzeCost(*tuned.skeleton, *tuned.schedule, document);
    std::printf("cost model: work=%.0f span=%.0f modeled 8-worker "
                "speedup=%.2fx\n",
                cost.work, cost.span, cost.speedup(8));

    std::printf("\nfirst case of the synthesized traversal:\n");
    std::string text = lang::printTraversal(
        tuned.schedule->toConcreteTraversal(*tuned.skeleton));
    std::printf("%s\n", text.substr(0, text.find("    case", 20)).c_str());
    return 0;
}
