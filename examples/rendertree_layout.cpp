/**
 * @file
 * RenderTree example (§6.2): synthesize a schedule for the 50-rule
 * five-pass rendering grammar with the HecateA auto-tuner, lay out a
 * generated document with the bytecode runtime, and report the
 * work/span cost model for the synthesized schedule.
 *
 *   rendertree_layout [--nodes N] [--depth D] [--seed S]
 *
 * --nodes sets the generated document's node budget (default 100000),
 * --depth caps its depth (0 = unbounded), --seed picks the instance.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exec/cost_model.hpp"
#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "runtime/executor.hpp"
#include "support/timer.hpp"
#include "synth/autotuner.hpp"

using namespace hecate;

int
main(int argc, char** argv)
{
    long long nodes = 100000;
    long long depth = 0;
    long long seed = 2024;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--nodes" && i + 1 < argc) {
            nodes = std::atoll(argv[++i]);
        } else if (arg == "--depth" && i + 1 < argc) {
            depth = std::atoll(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::atoll(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: rendertree_layout [--nodes N] "
                         "[--depth D] [--seed S]\n");
            return 2;
        }
    }
    if (nodes < 1 || nodes > (1ll << 31) || depth < 0 || seed < 0) {
        std::fprintf(stderr, "rendertree_layout: invalid option value\n");
        return 2;
    }

    const grammars::Benchmark& bench = grammars::renderTree();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    std::printf("RenderTree grammar: %zu rules across %zu classes, "
                "%zu passes\n",
                grammar.ruleCount(), grammar.classes().size(),
                grammar.passNames().size());

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 96;
    synth::AutotuneResult tuned = synth::autotune(grammar, root, config);
    if (!tuned.schedule.has_value()) {
        std::printf("auto-tuning failed: %s\n",
                    tuned.lastSynthesis.failure.c_str());
        return 1;
    }
    std::printf("auto-tuner picked a %s skeleton after trying %u "
                "(%.3f s total)\n\n",
                synth::skeletonStyleName(tuned.style), tuned.skeletonsTried,
                tuned.totalSeconds);

    // Compile the concrete traversal to bytecode and lay out a
    // generated document directly in arena form.
    sched::Skeleton concrete = sched::Skeleton::resolve(
        grammar, tuned.schedule->toConcreteTraversal(*tuned.skeleton));
    runtime::Program program =
        runtime::Program::compile(concrete, sched::Schedule{});

    runtime::GenConfig gen;
    gen.targetNodes = static_cast<uint32_t>(nodes);
    gen.maxDepth = static_cast<uint32_t>(depth);
    gen.seed = static_cast<uint64_t>(seed);
    runtime::TreeArena document =
        runtime::TreeArena::generate(grammar, root, gen);

    Timer layout_timer;
    runtime::RuntimeStats stats = runtime::execute(program, document);
    double secs = layout_timer.seconds();
    std::printf("laid out a %u-box document (depth %u) in %.2fms: "
                "%llu node visits, %llu rule evaluations (%.1fM rules/s)\n",
                document.size(), document.depth(), secs * 1e3,
                (unsigned long long)stats.nodeVisits,
                (unsigned long long)stats.rulesEvaluated,
                secs > 0 ? stats.rulesEvaluated / secs / 1e6 : 0.0);

    const sem::InterfaceInfo& doc_iface =
        grammar.iface(grammar.findInterface("Doc"));
    std::printf("document total extent attribute: %lld\n\n",
                (long long)document.value(
                    document.root(),
                    document.layout().column(
                        grammar.findInterface("Doc"),
                        doc_iface.attrByName.at("total"))));

    // Cost-model report for the synthesized schedule.
    tree::Tree cost_tree = document.toTree();
    exec::CostReport cost =
        exec::analyzeCost(*tuned.skeleton, *tuned.schedule, cost_tree);
    std::printf("cost model: work=%.0f span=%.0f modeled 8-worker "
                "speedup=%.2fx\n",
                cost.work, cost.span, cost.speedup(8));

    std::printf("\nfirst case of the synthesized traversal:\n");
    std::string text = lang::printTraversal(
        tuned.schedule->toConcreteTraversal(*tuned.skeleton));
    std::printf("%s\n", text.substr(0, text.find("    case", 20)).c_str());
    return 0;
}
