/**
 * @file
 * Tests for the serve subsystem: the strict JSON model, length-prefixed
 * frame decoding under truncation/oversize/garbage, and the daemon end
 * to end — synth/run/batch over real sockets, malformed-input
 * isolation, backpressure and quota rejections, graceful drain with
 * cache persistence, and concurrent clients hammering one server (the
 * TSan CI job runs every "Net*" suite).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/client.hpp"
#include "net/json.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "obs/histogram.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

namespace fs = std::filesystem;
using net::Json;
using net::JsonArray;
using net::JsonObject;

// ---------------------------------------------------------------------------
// JSON model
// ---------------------------------------------------------------------------

TEST(NetJson, ParseDumpRoundTripPreservesTypes)
{
    Json parsed = net::parseJson(
        R"({"a": 1, "b": -2.5, "c": "x\ny", "d": [true, false, null],)"
        R"( "e": {"nested": [1, 2, 3]}, "big": 9223372036854775807})");
    ASSERT_TRUE(parsed.isObject());
    EXPECT_EQ(parsed.at("a").asInt(), 1);
    EXPECT_TRUE(parsed.at("a").isInt());
    EXPECT_DOUBLE_EQ(parsed.at("b").asDouble(), -2.5);
    EXPECT_EQ(parsed.at("c").asString(), "x\ny");
    EXPECT_EQ(parsed.at("d").asArray().size(), 3u);
    EXPECT_TRUE(parsed.at("d").asArray()[2].isNull());
    // int64 values survive full width (no drift through a double).
    EXPECT_EQ(parsed.at("big").asInt(), INT64_MAX);

    Json reparsed = net::parseJson(parsed.dump());
    EXPECT_EQ(reparsed.at("big").asInt(), INT64_MAX);
    EXPECT_EQ(reparsed.at("e").at("nested").asArray()[1].asInt(), 2);
    EXPECT_EQ(reparsed.dump(), parsed.dump());
}

TEST(NetJson, StringEscapesRoundTrip)
{
    JsonObject object;
    object.emplace("s", Json(std::string("quote\" back\\ tab\t nul\0!", 23)));
    std::string dumped = Json(object).dump();
    Json reparsed = net::parseJson(dumped);
    EXPECT_EQ(reparsed.at("s").asString(),
              std::string("quote\" back\\ tab\t nul\0!", 23));
}

TEST(NetJson, RejectsMalformedDocuments)
{
    EXPECT_THROW(net::parseJson(""), UserError);
    EXPECT_THROW(net::parseJson("{"), UserError);
    EXPECT_THROW(net::parseJson("{} trailing"), UserError);
    EXPECT_THROW(net::parseJson("{\"a\": 01}"), UserError);
    EXPECT_THROW(net::parseJson("[1, 2,]"), UserError);
    EXPECT_THROW(net::parseJson("\"unterminated"), UserError);
    EXPECT_THROW(net::parseJson("nul"), UserError);

    // Nesting past the depth bound is rejected, not stack-overflowed
    // (depth 0 is the document root, so the bound allows
    // kMaxJsonDepth + 1 levels of brackets).
    std::string deep(net::kMaxJsonDepth + 2, '[');
    deep += std::string(net::kMaxJsonDepth + 2, ']');
    EXPECT_THROW(net::parseJson(deep), UserError);
    std::string atLimit(net::kMaxJsonDepth + 1, '[');
    atLimit += std::string(net::kMaxJsonDepth + 1, ']');
    EXPECT_NO_THROW(net::parseJson(atLimit));
}

TEST(NetJson, AccessorsThrowOnKindMismatch)
{
    Json value = net::parseJson(R"({"n": 1})");
    EXPECT_THROW(value.at("n").asString(), UserError);
    EXPECT_THROW(value.at("missing"), UserError);
    EXPECT_EQ(value.find("missing"), nullptr);
    EXPECT_EQ(value.intOr("n", 7), 1);
    EXPECT_EQ(value.intOr("missing", 7), 7);
    EXPECT_EQ(value.stringOr("missing", "d"), "d");
}

// ---------------------------------------------------------------------------
// Frame decoding
// ---------------------------------------------------------------------------

TEST(NetWire, DecoderReassemblesFramesSplitAtEveryByte)
{
    std::string stream;
    net::appendFrame(stream, "first");
    net::appendFrame(stream, "second frame");
    // appendFrame refuses zero-length payloads, so forge the header of
    // one by hand to exercise the decoder's rejection path.
    stream.append(4, '\0');

    // Zero-length frames are invalid, so the empty payload throws on
    // decode — but the two real frames before it must come out intact
    // even when the bytes arrive one at a time.
    net::FrameDecoder decoder(1024);
    std::vector<std::string> out;
    bool threw = false;
    for (char byte : stream) {
        decoder.feed(std::string_view(&byte, 1));
        try {
            while (auto payload = decoder.next())
                out.push_back(*payload);
        } catch (const UserError&) {
            threw = true;
            break;
        }
    }
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], "first");
    EXPECT_EQ(out[1], "second frame");
    EXPECT_TRUE(threw); // the zero-length frame is a protocol error
}

TEST(NetWire, DecoderHoldsPartialFrameWithoutEmitting)
{
    std::string stream;
    net::appendFrame(stream, "payload");
    net::FrameDecoder decoder(1024);
    decoder.feed(std::string_view(stream).substr(0, stream.size() - 1));
    EXPECT_FALSE(decoder.next().has_value()); // truncated: no frame yet
    decoder.feed(std::string_view(stream).substr(stream.size() - 1));
    auto payload = decoder.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, "payload");
}

TEST(NetWire, DecoderRejectsOversizedAndGarbageLengths)
{
    {
        net::FrameDecoder decoder(16);
        std::string frame;
        net::appendFrame(frame, std::string(17, 'x'));
        decoder.feed(frame);
        EXPECT_THROW(decoder.next(), UserError);
    }
    {
        // Garbage bytes interpreted as a length prefix: 0xffffffff is
        // both over the per-connection max and the hard limit.
        net::FrameDecoder decoder(1 << 20);
        decoder.feed(std::string(8, '\xff'));
        EXPECT_THROW(decoder.next(), UserError);
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

TEST(NetHistogram, QuantilesBoundRecordedValues)
{
    obs::LatencyHistogram histogram;
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.quantileMicros(0.5), 0u);

    for (uint64_t value = 1; value <= 1000; ++value)
        histogram.record(value);
    EXPECT_EQ(histogram.count(), 1000u);

    // Bucket upper bounds over-approximate by at most one sub-bucket
    // (1/16th of the octave).
    uint64_t p50 = histogram.quantileMicros(0.50);
    uint64_t p99 = histogram.quantileMicros(0.99);
    EXPECT_GE(p50, 500u);
    EXPECT_LE(p50, 532u);
    EXPECT_GE(p99, 990u);
    EXPECT_LE(p99, 1056u);
    EXPECT_GE(histogram.quantileMicros(1.0), 1000u);

    obs::LatencyHistogram other;
    other.record(1u << 20);
    other.merge(histogram);
    EXPECT_EQ(other.count(), 1001u);
    EXPECT_GE(other.quantileMicros(1.0), 1u << 20);
}

// ---------------------------------------------------------------------------
// Server end to end
// ---------------------------------------------------------------------------

/** Serve options against the render-grammar workload, ephemeral port. */
net::ServeOptions
testOptions()
{
    net::ServeOptions options;
    options.port = 0;
    options.workers = 2;
    options.service.workers = 2;
    return options;
}

/** A synth request for the paper's running example. */
Json
renderSynthRequest(int64_t id)
{
    JsonObject request;
    request.emplace("op", Json("synth"));
    request.emplace("id", Json(id));
    request.emplace("grammar", Json(testutil::kRenderGrammarSrc));
    request.emplace("traversal", Json(testutil::kSymbolicLayoutSrc));
    return Json(request);
}

TEST(NetServer, SynthCacheHitAndLiveMetrics)
{
    net::Server server(testOptions());
    server.start();
    net::Client client("127.0.0.1", server.port());

    Json first = client.call(renderSynthRequest(1));
    ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
    EXPECT_EQ(first.at("provenance").asString(), "fresh");
    EXPECT_EQ(first.at("id").asInt(), 1);
    EXPECT_GE(first.at("cegis_iterations").asInt(), 1);
    const std::string traversal = first.at("traversal").asString();
    EXPECT_EQ(traversal.find("??"), std::string::npos);

    Json second = client.call(renderSynthRequest(2));
    ASSERT_TRUE(second.at("ok").asBool()) << second.dump();
    EXPECT_EQ(second.at("provenance").asString(), "cache");
    EXPECT_EQ(second.at("traversal").asString(), traversal);

    Json metrics = client.call(net::parseJson(R"({"op": "metrics"})"));
    ASSERT_TRUE(metrics.at("ok").asBool());
    EXPECT_GE(metrics.at("cache").at("hits").asInt(), 1);
    EXPECT_EQ(metrics.at("requests").at("admitted").asInt(), 2);
    EXPECT_EQ(metrics.at("latency").at("synth").at("count").asInt(), 2);
    EXPECT_GT(metrics.at("latency").at("synth").at("p50_ms").asDouble(),
              0.0);

    server.requestDrain();
    server.waitUntilStopped();
    EXPECT_EQ(server.stats().responsesSent, 3u);
}

TEST(NetServer, RunExecutesClientSuppliedTree)
{
    net::Server server(testOptions());
    server.start();
    net::Client client("127.0.0.1", server.port());

    // Fig. 3's example: a Leaf chain under an Inner root. The width of
    // the root is max(w0, fc.w1) and heights accumulate down the
    // sibling chain.
    Json request = net::parseJson(R"({
        "op": "run", "id": 9,
        "grammar": "<placeholder>", "traversal": "<placeholder>",
        "check": true, "return_outputs": true,
        "tree": {
            "class": "Inner",
            "inputs": {"w0": 4, "h0": 2},
            "children": {
                "fc": {"class": "Leaf", "inputs": {"w0": 7, "h0": 3},
                       "children": {
                           "nx": {"class": "Leaf",
                                  "inputs": {"w0": 5, "h0": 6}}}}
            }
        }
    })");
    JsonObject patched = request.asObject();
    patched.insert_or_assign("grammar",
                             Json(testutil::kRenderGrammarSrc));
    patched.insert_or_assign("traversal",
                             Json(testutil::kSymbolicLayoutSrc));

    Json response = client.call(Json(patched));
    ASSERT_TRUE(response.at("ok").asBool()) << response.dump();
    EXPECT_EQ(response.at("nodes").asInt(), 3);
    EXPECT_EQ(response.at("check").asString(), "ok");
    EXPECT_EQ(response.at("mismatches").asInt(), 0);

    // Root outputs: w = max(4, fc.w1) where fc.w1 = max(7, max(5,0)).
    const JsonArray& nodes = response.at("nodes_out").asArray();
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes[0].at("class").asString(), "Inner");
    EXPECT_EQ(nodes[0].at("outputs").at("w").asInt(), 7);
    EXPECT_EQ(nodes[0].at("outputs").at("h").asInt(), 9); // 3 + 6

    // Unknown class names are a request failure, not a dead server.
    JsonObject bad = patched;
    bad.insert_or_assign(
        "tree", net::parseJson(R"({"class": "Nope", "inputs": {}})"));
    Json failed = client.call(Json(bad));
    EXPECT_FALSE(failed.at("ok").asBool());
    EXPECT_EQ(failed.at("error").asString(), "request_failed");

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, SessionPinnedEditAndReexec)
{
    net::Server server(testOptions());
    server.start();
    net::Client client("127.0.0.1", server.port());

    // Pin a generated arena server-side under (client, session).
    JsonObject run;
    run.emplace("op", Json("run"));
    run.emplace("id", Json(int64_t{1}));
    run.emplace("client", Json("alice"));
    run.emplace("session", Json("s1"));
    run.emplace("grammar", Json(testutil::kRenderGrammarSrc));
    run.emplace("traversal", Json(testutil::kSymbolicLayoutSrc));
    run.emplace("tree_size", Json(int64_t{2000}));
    Json ran = client.call(Json(run));
    ASSERT_TRUE(ran.at("ok").asBool()) << ran.dump();
    EXPECT_EQ(ran.at("session").asString(), "s1");
    const int64_t nodesBefore = ran.at("nodes").asInt();

    // Edit the pinned tree: one input mutation (w0 is attr id 0), one
    // subtree replacement.
    Json edited = client.call(net::parseJson(R"({
        "op": "edit", "client": "alice", "session": "s1",
        "edits": [
            {"kind": "mutate", "node": 3, "attr": 0, "value": 1234},
            {"kind": "replace", "node": 5, "subtree_nodes": 12,
             "seed": 9}
        ]
    })"));
    ASSERT_TRUE(edited.at("ok").asBool()) << edited.dump();
    EXPECT_EQ(edited.at("edits").asInt(), 2);
    EXPECT_GT(edited.at("nodes").asInt(), nodesBefore);

    // Heal incrementally; the differential check recomputes from
    // scratch and compares every cell.
    Json healed = client.call(net::parseJson(R"({
        "op": "reexec", "client": "alice", "session": "s1",
        "check": true
    })"));
    ASSERT_TRUE(healed.at("ok").asBool()) << healed.dump();
    EXPECT_EQ(healed.at("edits_applied").asInt(), 2);
    EXPECT_EQ(healed.at("check").asString(), "ok");
    EXPECT_EQ(healed.at("mismatches").asInt(), 0);
    EXPECT_GT(healed.at("rules_checked").asInt(), 0);

    // A second reexec has nothing to do.
    Json idle = client.call(net::parseJson(R"({
        "op": "reexec", "client": "alice", "session": "s1"
    })"));
    ASSERT_TRUE(idle.at("ok").asBool()) << idle.dump();
    EXPECT_EQ(idle.at("edits_applied").asInt(), 0);

    // Sessions are namespaced per client: bob cannot reach alice's.
    Json foreign = client.call(net::parseJson(R"({
        "op": "reexec", "client": "bob", "session": "s1"
    })"));
    EXPECT_FALSE(foreign.at("ok").asBool());
    EXPECT_EQ(foreign.at("error").asString(), "unknown_session");

    Json missing = client.call(net::parseJson(R"({
        "op": "edit", "client": "alice", "session": "nope",
        "edits": []
    })"));
    EXPECT_FALSE(missing.at("ok").asBool());
    EXPECT_EQ(missing.at("error").asString(), "unknown_session");

    Json metrics = client.call(net::parseJson(R"({"op": "metrics"})"));
    ASSERT_TRUE(metrics.at("ok").asBool());
    EXPECT_EQ(metrics.at("sessions").at("active").asInt(), 1);
    EXPECT_EQ(metrics.at("sessions").at("created").asInt(), 1);

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, GeneratedTreeRunAndBatchMatchService)
{
    net::Server server(testOptions());
    server.start();
    net::Client client("127.0.0.1", server.port());

    JsonObject run;
    run.emplace("op", Json("run"));
    run.emplace("grammar", Json(testutil::kRenderGrammarSrc));
    run.emplace("traversal", Json(testutil::kSymbolicLayoutSrc));
    run.emplace("tree_size", Json(2000));
    run.emplace("seed", Json(7));
    run.emplace("check", Json(true));
    Json first = client.call(Json(run));
    ASSERT_TRUE(first.at("ok").asBool()) << first.dump();
    EXPECT_GE(first.at("nodes").asInt(), 2000);
    EXPECT_EQ(first.at("check").asString(), "ok");

    // The generator is deterministic: same seed, same checksum.
    Json again = client.call(Json(run));
    ASSERT_TRUE(again.at("ok").asBool());
    EXPECT_EQ(again.at("checksum").asInt(),
              first.at("checksum").asInt());

    JsonObject batch = run;
    batch.insert_or_assign("op", Json("batch"));
    batch.insert_or_assign("batch_count", Json(4));
    batch.insert_or_assign("tree_size", Json(500));
    Json forest = client.call(Json(batch));
    ASSERT_TRUE(forest.at("ok").asBool()) << forest.dump();
    EXPECT_EQ(forest.at("trees").asInt(), 4);
    EXPECT_GE(forest.at("nodes").asInt(), 4 * 500);

    server.requestDrain();
    server.waitUntilStopped();
}

/** Raw-socket helper: connect without the Client's framing sanity. */
int
rawConnect(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

TEST(NetServer, MalformedJsonSurvivesBadFrameCloses)
{
    net::ServeOptions options = testOptions();
    options.maxFrameBytes = 1024;
    net::Server server(options);
    server.start();

    // Malformed JSON in a valid frame: error response, connection and
    // server both live on.
    int fd = rawConnect(server.port());
    net::writeFrame(fd, "this is not json {");
    auto response = net::readFrame(fd, 1 << 20);
    ASSERT_TRUE(response.has_value());
    Json error = net::parseJson(*response);
    EXPECT_FALSE(error.at("ok").asBool());
    EXPECT_EQ(error.at("error").asString(), "malformed_request");

    net::writeFrame(fd, R"({"op": "ping"})");
    response = net::readFrame(fd, 1 << 20);
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(net::parseJson(*response).at("ok").asBool());

    // A frame length over the server's limit is unrecoverable for this
    // connection: protocol_error response, then EOF.
    net::writeFrame(fd, std::string(2048, 'x'));
    response = net::readFrame(fd, 1 << 20);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(net::parseJson(*response).at("error").asString(),
              "protocol_error");
    EXPECT_FALSE(net::readFrame(fd, 1 << 20).has_value()); // closed
    ::close(fd);

    // ...but the server keeps serving new connections.
    net::Client client("127.0.0.1", server.port());
    EXPECT_TRUE(
        client.call(net::parseJson(R"({"op": "ping"})")).at("ok").asBool());
    EXPECT_GE(server.stats().protocolErrors, 1u);
    EXPECT_GE(server.stats().malformedRequests, 1u);

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, WronglyTypedFieldsAreMalformedNotFatal)
{
    net::Server server(testOptions());
    server.start();

    int fd = rawConnect(server.port());
    // A non-string "op" used to throw out of the poll thread's field
    // accessors and tear the connection down as a protocol error;
    // the frame boundary is intact, so it must answer
    // malformed_request and keep the connection alive.
    net::writeFrame(fd, R"({"op": 123, "id": 1})");
    auto response = net::readFrame(fd, 1 << 20);
    ASSERT_TRUE(response.has_value());
    Json error = net::parseJson(*response);
    EXPECT_FALSE(error.at("ok").asBool());
    EXPECT_EQ(error.at("error").asString(), "malformed_request");
    EXPECT_EQ(error.at("id").asInt(), 1); // echo survives

    // Same for a wrongly-typed "client" on a work op.
    net::writeFrame(fd, R"({"op": "synth", "client": 123})");
    response = net::readFrame(fd, 1 << 20);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(net::parseJson(*response).at("error").asString(),
              "malformed_request");

    // The connection still serves well-formed requests.
    net::writeFrame(fd, R"({"op": "ping"})");
    response = net::readFrame(fd, 1 << 20);
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(net::parseJson(*response).at("ok").asBool());
    ::close(fd);

    EXPECT_GE(server.stats().malformedRequests, 2u);
    EXPECT_EQ(server.stats().protocolErrors, 0u);

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, OversizedResponseDegradesToErrorNotTermination)
{
    net::ServeOptions options = testOptions();
    options.maxFrameBytes = 1024;
    net::Server server(options);
    server.start();
    net::Client client("127.0.0.1", server.port());

    // Craft a ping whose request exactly fills the frame cap: the
    // echoed response is necessarily bigger (it adds "ok":true), so
    // serializing it used to throw in appendFrame — out of a worker
    // for work ops — and std::terminate the daemon.
    JsonObject ping;
    ping.emplace("op", Json("ping"));
    ping.emplace("id", Json(std::string()));
    const size_t base = Json(ping).dump().size();
    ping.insert_or_assign("id", Json(std::string(1024 - base, 'x')));
    ASSERT_EQ(Json(ping).dump().size(), 1024u);

    Json response = client.call(Json(ping));
    EXPECT_FALSE(response.at("ok").asBool());
    EXPECT_EQ(response.at("error").asString(), "response_too_large");

    // The server is still alive and still serving.
    EXPECT_TRUE(
        client.call(net::parseJson(R"({"op": "ping"})")).at("ok").asBool());
    EXPECT_GE(server.stats().responsesOversized, 1u);

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, OutbufCapPausesReadsForNonReadingClient)
{
    net::ServeOptions options = testOptions();
    options.maxFrameBytes = 1u << 20;
    options.maxOutbufBytes = 64 * 1024;
    net::Server server(options);
    server.start();

    // Each ping echoes a 512 KiB id, so a single response overflows
    // the outbuf cap; with the client not reading, the server must
    // stop consuming frames instead of buffering every response.
    constexpr int kRequests = 16;
    JsonObject ping;
    ping.emplace("op", Json("ping"));
    ping.emplace("id", Json(std::string(512 * 1024, 'x')));
    std::string frame;
    net::appendFrame(frame, Json(ping).dump());

    // Clamp the receive window so kernel buffering cannot swallow the
    // whole response stream and mask the missing pause.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    // The writer may block once kernel buffers fill behind the paused
    // server; it unblocks when the main thread starts reading.
    std::thread writer([&] {
        for (int i = 0; i < kRequests; ++i) {
            size_t sent = 0;
            while (sent < frame.size()) {
                ssize_t n = ::send(fd, frame.data() + sent,
                                   frame.size() - sent, MSG_NOSIGNAL);
                if (n < 0 && errno == EINTR)
                    continue;
                if (n < 0)
                    return;
                sent += static_cast<size_t>(n);
            }
        }
    });

    // Wait until frame consumption stalls, then check it stalled well
    // short of the full pipeline: the cap paused reading.
    uint64_t last = 0;
    for (int i = 0; i < 200; ++i) {
        uint64_t now = server.stats().framesReceived;
        if (now > 0 && now == last)
            break;
        last = now;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_LT(server.stats().framesReceived,
              static_cast<uint64_t>(kRequests));

    // Another client is unaffected by the stalled one.
    net::Client probe("127.0.0.1", server.port());
    EXPECT_TRUE(
        probe.call(net::parseJson(R"({"op": "ping"})")).at("ok").asBool());

    // Draining the responses releases the backpressure end to end.
    for (int i = 0; i < kRequests; ++i) {
        auto response = net::readFrame(fd, net::kFrameHardLimit);
        ASSERT_TRUE(response.has_value()) << "response " << i;
        EXPECT_TRUE(net::parseJson(*response).at("ok").asBool());
    }
    writer.join();
    ::close(fd);
    // All 16 pings plus the probe's one (the counter is server-wide).
    EXPECT_EQ(server.stats().framesReceived,
              static_cast<uint64_t>(kRequests) + 1);

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, LoopbackClassifierMatchesSlash8)
{
    EXPECT_TRUE(net::isLoopbackIPv4(0x7F000001)); // 127.0.0.1
    EXPECT_TRUE(net::isLoopbackIPv4(0x7F000002)); // 127.0.0.2
    EXPECT_TRUE(net::isLoopbackIPv4(0x7FFFFFFF)); // 127.255.255.255
    EXPECT_FALSE(net::isLoopbackIPv4(0x0A000001)); // 10.0.0.1
    EXPECT_FALSE(net::isLoopbackIPv4(0x00000000)); // 0.0.0.0
    EXPECT_FALSE(net::isLoopbackIPv4(0xC0A80101)); // 192.168.1.1
}

TEST(NetServer, QueueBackpressureRejectsWithRetryAfter)
{
    std::atomic<bool> release{false};
    net::ServeOptions options = testOptions();
    options.workers = 1;
    options.queueCapacity = 1;
    options.retryAfterMs = 25;
    options.service.workers = 1;
    // Hold the one worker inside the first fresh synthesis so later
    // requests pile into (and overflow) the admission queue.
    options.service.onLeaderSynthesis = [&] {
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    net::Server server(options);
    server.start();
    net::Client client("127.0.0.1", server.port());

    // Stage the load so the admission decisions are deterministic:
    // one request occupying the worker, one sitting in the queue, and
    // only then the overflow burst.
    constexpr int kRequests = 8;
    auto waitFor = [&](auto&& predicate) {
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (!predicate() &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return predicate();
    };
    client.send(renderSynthRequest(0));
    ASSERT_TRUE(waitFor([&] { return server.stats().inFlight == 1; }));
    client.send(renderSynthRequest(1));
    ASSERT_TRUE(waitFor([&] { return server.stats().queueDepth == 1; }));
    for (int i = 2; i < kRequests; ++i)
        client.send(renderSynthRequest(i));

    // Wait until the overflow rejections show up, then let the leader
    // finish.
    ASSERT_TRUE(waitFor([&] {
        return server.stats().rejectedQueueFull >=
               uint64_t(kRequests) - 2;
    }));
    release.store(true);

    int ok = 0, rejected = 0;
    for (int i = 0; i < kRequests; ++i) {
        auto response = client.receive();
        ASSERT_TRUE(response.has_value());
        if (response->at("ok").asBool()) {
            ++ok;
        } else {
            EXPECT_EQ(response->at("error").asString(), "over_capacity");
            EXPECT_EQ(response->at("retry_after_ms").asInt(), 25);
            ++rejected;
        }
    }
    // Exactly one in flight + one queued complete; the rest bounce.
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(rejected, kRequests - 2);

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, PerClientQuotaRejectsBurstOverflow)
{
    net::ServeOptions options = testOptions();
    options.quotaRps = 0.001; // effectively no refill during the test
    options.quotaBurst = 2;
    net::Server server(options);
    server.start();
    net::Client client("127.0.0.1", server.port());

    int ok = 0, rejected = 0;
    for (int i = 0; i < 5; ++i) {
        JsonObject request = renderSynthRequest(i).asObject();
        request.emplace("client", Json("tenant-a"));
        Json response = client.call(Json(request));
        if (response.at("ok").asBool()) {
            ++ok;
        } else {
            EXPECT_EQ(response.at("error").asString(), "quota_exceeded");
            EXPECT_GE(response.at("retry_after_ms").asInt(), 1);
            ++rejected;
        }
    }
    EXPECT_EQ(ok, 2); // burst capacity
    EXPECT_EQ(rejected, 3);

    // A different client id has its own bucket.
    JsonObject other = renderSynthRequest(100).asObject();
    other.emplace("client", Json("tenant-b"));
    EXPECT_TRUE(client.call(Json(other)).at("ok").asBool());

    server.requestDrain();
    server.waitUntilStopped();
}

TEST(NetServer, DrainPersistsCacheAndWarmLoadRestoresIt)
{
    fs::path dir =
        fs::temp_directory_path() / "hecate_net_drain_cache_test";
    fs::remove_all(dir);

    net::ServeOptions options = testOptions();
    options.cacheDir = dir.string();
    {
        net::Server server(options);
        server.start();
        net::Client client("127.0.0.1", server.port());
        ASSERT_TRUE(
            client.call(renderSynthRequest(1)).at("ok").asBool());
        // The protocol-level drain op begins the same graceful drain
        // as SIGTERM.
        Json ack = client.call(net::parseJson(R"({"op": "drain"})"));
        EXPECT_TRUE(ack.at("ok").asBool());
        server.waitUntilStopped();
    }
    // One schedule persisted.
    size_t entries = 0;
    for (const auto& file : fs::directory_iterator(dir))
        entries += file.path().extension() == ".hsc" ? 1 : 0;
    EXPECT_EQ(entries, 1u);

    // A fresh server warm-loads it: the first request is a cache hit
    // and the metrics endpoint reports the warm-load counters.
    {
        net::Server server(options);
        server.start();
        net::Client client("127.0.0.1", server.port());
        Json hit = client.call(renderSynthRequest(2));
        ASSERT_TRUE(hit.at("ok").asBool()) << hit.dump();
        EXPECT_EQ(hit.at("provenance").asString(), "cache");
        Json metrics = client.call(net::parseJson(R"({"op": "metrics"})"));
        EXPECT_EQ(metrics.at("cache").at("warm_entries").asInt(), 1);
        EXPECT_GT(metrics.at("cache").at("warm_ms").asDouble(), 0.0);
        server.requestDrain();
        server.waitUntilStopped();
    }
    fs::remove_all(dir);
}

TEST(NetServer, RejectsNewWorkWhileDraining)
{
    net::Server server(testOptions());
    server.start();
    net::Client client("127.0.0.1", server.port());
    server.requestDrain();
    // The existing connection's work requests now bounce; the poll
    // loop still answers them until the drain completes, so poll
    // until the rejection (or the connection closes as drain ends).
    bool sawRejection = false;
    try {
        for (int i = 0; i < 50 && !sawRejection; ++i) {
            Json response = client.call(renderSynthRequest(i));
            sawRejection = !response.at("ok").asBool() &&
                           response.at("error").asString() == "draining";
        }
    } catch (const UserError&) {
        // Drain finished and closed the connection first — also fine
        // as long as the server refused to admit the work.
    }
    server.waitUntilStopped();
    EXPECT_EQ(server.stats().requestsAdmitted, 0u);
}

TEST(NetServer, ConcurrentClientsMixedOps)
{
    net::ServeOptions options = testOptions();
    options.workers = 4;
    options.service.workers = 2;
    net::Server server(options);
    server.start();

    constexpr int kThreads = 6;
    constexpr int kPerThread = 12;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            try {
                net::Client client("127.0.0.1", server.port());
                for (int i = 0; i < kPerThread; ++i) {
                    Json response;
                    switch ((t + i) % 3) {
                    case 0:
                        response = client.call(
                            renderSynthRequest(t * 100 + i));
                        break;
                    case 1:
                        response = client.call(
                            net::parseJson(R"({"op": "metrics"})"));
                        break;
                    default:
                        response = client.call(
                            net::parseJson(R"({"op": "ping"})"));
                        break;
                    }
                    if (!response.at("ok").asBool())
                        ++failures;
                }
            } catch (const std::exception&) {
                ++failures;
            }
        });
    }
    for (std::thread& thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);

    net::ServerStats stats = server.stats();
    EXPECT_EQ(stats.responsesSent,
              static_cast<uint64_t>(kThreads * kPerThread));
    // All synth requests hit one cache entry after the first.
    EXPECT_EQ(server.service().stats().freshRuns, 1u);

    server.requestDrain();
    server.waitUntilStopped();
}

} // namespace
} // namespace hecate
