/**
 * @file
 * Tests for tile-based parallel execution: TileGraph construction
 * invariants, tiled-strategy differentials against the demand-driven
 * reference on every bundled grammar (kernel and sweep in-tile modes,
 * sequential and stolen), a steal-heavy deep-tree case for the race
 * detector, tiled execution composed with incremental re-execution,
 * and the arena-side cache/invalidation contract.
 *
 * Every fixture is named Tiling* so the TSan CI job's
 * `ctest -R '...|Tiling'` filter covers the work-stealing paths.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "incr/edit.hpp"
#include "incr/plan.hpp"
#include "incr/reexecute.hpp"
#include "runtime/edit_state.hpp"
#include "runtime/executor.hpp"
#include "runtime/segments.hpp"
#include "runtime/tiles.hpp"
#include "synth/autotuner.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

/** All eight bundled benchmark grammars. */
std::vector<const grammars::Benchmark*>
allBenchmarks()
{
    std::vector<const grammars::Benchmark*> all =
        grammars::grafterBenchmarks();
    for (const grammars::Benchmark* bench : grammars::cssBenchmarks())
        all.push_back(bench);
    return all;
}

synth::SynthesisConfig
cheapConfig()
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 128;
    return config;
}

/** Autotune @p bench and compile the winning schedule. */
runtime::Program
compileBenchmark(const sem::Grammar& grammar, sem::InterfaceId root,
                 const std::string& name)
{
    synth::AutotuneResult tuned =
        synth::autotune(grammar, root, cheapConfig());
    if (!tuned.schedule.has_value())
        throw std::runtime_error(name + ": " + tuned.lastSynthesis.failure);
    return runtime::Program::compile(*tuned.skeleton, *tuned.schedule);
}

/** Every output cell of @p arena, in node-major order (exact compare). */
std::vector<int64_t>
outputCells(const runtime::TreeArena& arena)
{
    const sem::Grammar& grammar = arena.grammar();
    std::vector<int64_t> cells;
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            uint32_t col = arena.layout().column(cls.iface, attr);
            cells.push_back(arena.value(node, col));
        }
    }
    return cells;
}

/** parent[n] for every node reachable from the arena root(s). */
std::vector<runtime::NodeIdx>
parentMap(runtime::TreeArena& arena)
{
    std::vector<runtime::NodeIdx> parent(arena.size(), runtime::kNone);
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const runtime::ClassLayout& layout =
            arena.layout().cls(arena.classOf(node));
        for (uint32_t s = 0; s < layout.scalarCount; ++s) {
            runtime::NodeIdx child = arena.scalarChild(node, s);
            if (child != runtime::kNone)
                parent[child] = node;
        }
        for (uint32_t c = 0; c < layout.collCount; ++c) {
            auto [begin, end] = arena.collection(node, c);
            for (const runtime::NodeIdx* it = begin; it != end; ++it)
                parent[*it] = node;
        }
    }
    return parent;
}

// ---------------------------------------------------------------------------
// TileGraph construction invariants
// ---------------------------------------------------------------------------

TEST(TilingGraph, InvariantsHoldOnAllGrammarsWithSmallTiles)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::GenConfig gen;
        gen.targetNodes = 4000;
        gen.seed = 31;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        // A tiny budget forces a deep multi-tile graph even on 4k
        // nodes, exercising spill, numbering and per-tile segments.
        const runtime::TileGraph& tiles = arena.tileGraph(4096);
        const std::vector<runtime::NodeIdx> parent = parentMap(arena);

        // Every node lands in exactly one tile (a fresh arena has no
        // orphans, so coverage is total), and tile spans are sorted.
        ASSERT_GT(tiles.tileCount(), 1u) << bench->name;
        EXPECT_EQ(tiles.rootTileCount(), 1u) << bench->name;
        EXPECT_EQ(tiles.stats().nodes, arena.size()) << bench->name;
        std::vector<uint32_t> tileOf(arena.size(), runtime::kNoTile);
        for (uint32_t t = 0; t < tiles.tileCount(); ++t) {
            const runtime::TileGraph::Tile& tile = tiles.tile(t);
            ASSERT_LT(tile.nodeBegin, tile.nodeEnd) << bench->name;
            for (uint32_t i = tile.nodeBegin; i < tile.nodeEnd; ++i) {
                runtime::NodeIdx node = tiles.nodes()[i];
                ASSERT_LT(node, arena.size());
                ASSERT_EQ(tileOf[node], runtime::kNoTile)
                    << bench->name << ": node " << node << " in two tiles";
                tileOf[node] = t;
                if (i > tile.nodeBegin) {
                    EXPECT_LT(tiles.nodes()[i - 1], node)
                        << bench->name << ": tile span not id-sorted";
                }
            }
        }
        for (runtime::NodeIdx node = 0; node < arena.size(); ++node)
            EXPECT_NE(tileOf[node], runtime::kNoTile) << bench->name;

        // Tile-tree edges mirror tree edges: every node's parent is in
        // the same tile, except the tile's rootCount roots, whose
        // parents all live in the tile's parent tile. Child tile id
        // ranges are contiguous and tile the non-root ids exactly once
        // (BFS numbering).
        std::vector<uint32_t> childSeen(tiles.tileCount(), 0);
        for (uint32_t t = 0; t < tiles.tileCount(); ++t) {
            const runtime::TileGraph::Tile& tile = tiles.tile(t);
            uint32_t rootsSeen = 0;
            for (uint32_t i = tile.nodeBegin; i < tile.nodeEnd; ++i) {
                runtime::NodeIdx node = tiles.nodes()[i];
                if (parent[node] != runtime::kNone &&
                    tileOf[parent[node]] == t)
                    continue; // interior node
                ++rootsSeen;
                if (tile.parent == runtime::kNoTile) {
                    EXPECT_EQ(parent[node], runtime::kNone)
                        << bench->name << ": root tile's root has parent";
                } else {
                    ASSERT_NE(parent[node], runtime::kNone) << bench->name;
                    EXPECT_EQ(tileOf[parent[node]], tile.parent)
                        << bench->name << ": root's parent escaped the "
                        << "parent tile";
                }
            }
            EXPECT_EQ(rootsSeen, tile.rootCount) << bench->name;
            EXPECT_EQ(tileOf[tile.root], t) << bench->name;
            if (tile.parent == runtime::kNoTile) {
                EXPECT_LT(t, tiles.rootTileCount()) << bench->name;
            }
            for (uint32_t c = tile.childBegin; c < tile.childEnd; ++c) {
                ASSERT_LT(c, tiles.tileCount());
                EXPECT_EQ(tiles.tile(c).parent, t) << bench->name;
                ++childSeen[c];
            }
        }
        for (uint32_t t = tiles.rootTileCount(); t < tiles.tileCount(); ++t)
            EXPECT_EQ(childSeen[t], 1u) << bench->name;

        // Per-tile levels slice the node span; segments over order()
        // are class-homogeneous, and contiguous ones are unbroken
        // ascending runs. Each tile's order() positions are a
        // permutation of its node span.
        for (uint32_t t = 0; t < tiles.tileCount(); ++t) {
            const runtime::TileGraph::Tile& tile = tiles.tile(t);
            ASSERT_LE(tile.levelBegin, tile.levelEnd);
            uint32_t covered = 0;
            for (uint32_t l = tile.levelBegin; l < tile.levelEnd; ++l) {
                const runtime::TileGraph::Level& level = tiles.level(l);
                for (uint32_t s = level.segBegin; s < level.segEnd; ++s) {
                    const runtime::TileGraph::Segment& seg =
                        tiles.segments()[s];
                    for (uint32_t i = 0; i < seg.count; ++i) {
                        runtime::NodeIdx node =
                            tiles.order()[seg.posBegin + i];
                        EXPECT_EQ(arena.classOf(node), seg.cls);
                        EXPECT_EQ(tileOf[node], t)
                            << bench->name << ": segment crosses tiles";
                        if (seg.contiguous) {
                            EXPECT_EQ(node, seg.first + i);
                        }
                        ++covered;
                    }
                }
            }
            EXPECT_EQ(covered, tile.nodeCount()) << bench->name;
        }
    }
}

TEST(TilingGraph, SingleTileWhenBudgetSwallowsTheArena)
{
    const grammars::Benchmark& bench = *allBenchmarks().front();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::GenConfig gen;
    gen.targetNodes = 500;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    const runtime::TileGraph& tiles = arena.tileGraph(1ull << 30);
    EXPECT_EQ(tiles.tileCount(), 1u);
    EXPECT_EQ(tiles.tile(0).nodeCount(), arena.size());
    EXPECT_EQ(tiles.stats().tileTreeDepth, 1u);
    EXPECT_EQ(tiles.tile(0).childCount(), 0u);
}

// ---------------------------------------------------------------------------
// Differential: tiled execution matches the reference everywhere
// ---------------------------------------------------------------------------

TEST(TilingStrategy, TiledMatchesReferenceOnAllGrammars)
{
    size_t sweepableCount = 0;
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench->name);
        if (!program.sweepable())
            continue;
        ++sweepableCount;

        runtime::GenConfig gen;
        gen.targetNodes = 4000;
        gen.seed = 77;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        tree::Tree reference = arena.toTree();
        exec::computeReference(reference);

        runtime::ExecOptions stack;
        stack.strategy = runtime::SweepStrategy::Stack;
        runtime::execute(program, arena, stack);
        ASSERT_TRUE(runtime::treesEquivalent(arena.toTree(), reference))
            << bench->name << ": stack diverges from computeReference";
        const std::vector<int64_t> expected = outputCells(arena);

        ThreadPool pool(4);
        struct Variant {
            const char* name;
            runtime::TileExec mode;
            bool simd;
            bool pooled;
        };
        const Variant variants[] = {
            {"kernels-seq", runtime::TileExec::Kernels, true, false},
            {"kernels-scalar", runtime::TileExec::Kernels, false, false},
            {"kernels-par", runtime::TileExec::Kernels, true, true},
            {"sweep-seq", runtime::TileExec::Sweep, true, false},
            {"sweep-par", runtime::TileExec::Sweep, true, true},
        };
        for (const Variant& v : variants) {
            arena.clearOutputs();
            runtime::ExecOptions options;
            options.strategy = runtime::SweepStrategy::Tiled;
            options.tileExec = v.mode;
            options.simd = v.simd;
            options.tileBytes = 8192; // many tiles even at 4k nodes
            if (v.pooled)
                options.pool = &pool;
            runtime::RuntimeStats stats =
                runtime::execute(program, arena, options);
            EXPECT_EQ(outputCells(arena), expected)
                << bench->name << ": tiled " << v.name
                << " diverges from the stack strategy";
            EXPECT_GT(stats.tilesExecuted, 1u)
                << bench->name << ": " << v.name;
            EXPECT_EQ(stats.strategy, runtime::SweepStrategy::Tiled);
            EXPECT_EQ(stats.selection, runtime::StrategyReason::Explicit);
        }
        EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
    }
    EXPECT_GT(sweepableCount, 0u);
}

// Deep, narrow trees make the tile tree a long chain of small tiles:
// the worst case for the scheduler (every push is immediately
// stealable, post-countdowns bubble through long parent chains). Run
// under 8 workers; TSan (the CI Tiling filter) checks the orderings.
TEST(TilingStrategy, StealHeavyDeepTreeWithEightWorkers)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench->name);
        if (!program.sweepable())
            continue;

        runtime::GenConfig gen;
        gen.targetNodes = 20000;
        gen.maxCollection = 2; // skewed: deep spine, light fanout
        gen.seed = 5151;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);

        runtime::ExecOptions stack;
        stack.strategy = runtime::SweepStrategy::Stack;
        runtime::execute(program, arena, stack);
        const std::vector<int64_t> expected = outputCells(arena);

        ThreadPool pool(8);
        for (runtime::TileExec mode :
             {runtime::TileExec::Kernels, runtime::TileExec::Sweep}) {
            arena.clearOutputs();
            runtime::ExecOptions options;
            options.strategy = runtime::SweepStrategy::Tiled;
            options.tileExec = mode;
            options.tileBytes = 2048;
            options.pool = &pool;
            runtime::RuntimeStats stats =
                runtime::execute(program, arena, options);
            EXPECT_EQ(outputCells(arena), expected) << bench->name;
            EXPECT_GT(stats.tilesExecuted, 8u) << bench->name;
        }
        EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
        break; // one grammar is enough for the race-hunting config
    }
}

// ---------------------------------------------------------------------------
// Tiled execution composed with incremental re-execution
// ---------------------------------------------------------------------------

TEST(TilingIncr, TiledRunsThenDirtyWavesMatchFullRecompute)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench->name);
        if (!program.sweepable())
            continue;
        incr::IncrPlan plan = incr::IncrPlan::build(program);

        runtime::GenConfig gen;
        gen.targetNodes = 1500;
        gen.seed = 0xbeef;
        runtime::TreeArena a =
            runtime::TreeArena::generate(grammar, root, gen);

        ThreadPool pool(4);
        runtime::ExecOptions exec;
        exec.strategy = runtime::SweepStrategy::Tiled;
        exec.tileBytes = 8192;
        exec.pool = &pool;
        runtime::execute(program, a, exec);

        incr::IncrOptions incrOptions;
        incrOptions.strategy = incr::IncrStrategy::Wave;
        incrOptions.pool = &pool;
        incrOptions.grain = 16;

        for (uint32_t round = 0; round < 3; ++round) {
            runtime::TreeArena b = a; // deep copy, edit state included
            std::vector<incr::Edit> edits = incr::applyRandomEdits(
                a, /*count=*/6, /*subtreeNodes=*/8,
                /*seed=*/0x7700 + round * 131);
            for (const incr::Edit& edit : edits)
                incr::applyEdit(b, edit);

            incr::reexecute(program, plan, a, incrOptions);
            EXPECT_FALSE(a.edits()->hasPendingDirt()) << bench->name;

            runtime::TreeArena full = b.compact();
            runtime::execute(program, full, exec);
            EXPECT_EQ(outputCells(a.compact()), outputCells(full))
                << bench->name << " round " << round;
        }
        EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
    }
}

// ---------------------------------------------------------------------------
// Arena-side cache and invalidation
// ---------------------------------------------------------------------------

TEST(TilingCache, CachedSharedAndInvalidatedWithTheArena)
{
    const grammars::Benchmark& bench = *allBenchmarks().front();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::Program program = compileBenchmark(grammar, root, bench.name);
    runtime::GenConfig gen;
    gen.targetNodes = 1200;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    runtime::execute(program, arena, {});

    // Same budget: cached object. Different budget: rebuilt.
    const runtime::TileGraph* first = &arena.tileGraph(4096);
    EXPECT_EQ(first, &arena.tileGraph(4096));
    const runtime::TileGraph* resized = &arena.tileGraph(16384);
    EXPECT_NE(first, resized);
    EXPECT_EQ(resized->stats().tileBytes, 16384u);

    // Copies share the cache (structure-identical arenas).
    runtime::TreeArena copy = arena;
    EXPECT_EQ(&copy.tileGraph(16384), resized);

    // Value edits keep the structure: no invalidation.
    incr::Edit mutate;
    mutate.kind = incr::Edit::Kind::MutateInput;
    mutate.node = 1;
    mutate.attr = 0;
    mutate.value = 999;
    incr::applyEdit(arena, mutate);
    EXPECT_EQ(&arena.tileGraph(16384), resized);

    // Structural edits orphan rows in place: the graph must be
    // rebuilt, and the rebuild covers only root-reachable nodes.
    incr::Edit replace;
    replace.kind = incr::Edit::Kind::ReplaceSubtree;
    replace.node = 1;
    replace.subtreeNodes = 16;
    replace.seed = 3;
    incr::applyEdit(arena, replace);
    const runtime::TileGraph& rebuilt = arena.tileGraph(16384);
    EXPECT_NE(&rebuilt, resized);
    EXPECT_LT(rebuilt.stats().nodes, arena.size())
        << "orphaned rows must not appear in the rebuilt tile graph";

    // A compacted arena starts fresh and covers everything again.
    runtime::TreeArena packed = arena.compact();
    EXPECT_EQ(packed.tileGraph(16384).stats().nodes, packed.size());
}

} // namespace
} // namespace hecate
