/**
 * @file
 * Tests for the benchmark grammars: the paper's exact rule counts
 * (Table 2 / Fig. 15), well-formedness under semantic analysis, and
 * end-to-end synthesizability of the smaller benchmarks.
 */

#include <gtest/gtest.h>

#include "baselines/grafter.hpp"
#include "lang/parser.hpp"
#include "grammars/grammars.hpp"
#include "synth/autotuner.hpp"

namespace hecate {
namespace {

using grammars::Benchmark;

class GrammarRuleCounts
    : public ::testing::TestWithParam<const Benchmark*> {};

TEST_P(GrammarRuleCounts, MatchesPaperRuleCount)
{
    const Benchmark& bench = *GetParam();
    sem::Grammar grammar = grammars::load(bench);
    EXPECT_EQ(grammar.ruleCount(), bench.expectedRules)
        << bench.name << " rule count drifted from the paper's table";
    EXPECT_NE(grammars::rootInterface(grammar, bench), sem::kInvalidId);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GrammarRuleCounts,
    ::testing::Values(&grammars::binaryTree(), &grammars::fmm(),
                      &grammars::piecewise(), &grammars::astBench(),
                      &grammars::renderTree(), &grammars::cssFloat(),
                      &grammars::cssMargin(), &grammars::cssFull()),
    [](const ::testing::TestParamInfo<const Benchmark*>& info) {
        std::string name = info.param->name;
        for (char& c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Grammars, BinaryTreeHasTwoPasses)
{
    sem::Grammar grammar = grammars::load(grammars::binaryTree());
    auto passes = grammar.passNames();
    ASSERT_EQ(passes.size(), 2u);
    EXPECT_EQ(passes[0], "aggregate");
    EXPECT_EQ(passes[1], "analyze");
}

TEST(Grammars, RenderTreeHasFivePassesInOrder)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    auto passes = grammar.passNames();
    ASSERT_EQ(passes.size(), 5u);
    EXPECT_EQ(passes[0], "flexWidths");
    EXPECT_EQ(passes[1], "relWidths");
    EXPECT_EQ(passes[2], "fonts");
    EXPECT_EQ(passes[3], "heights");
    EXPECT_EQ(passes[4], "positions");
}

TEST(Grammars, RenderTreeHasInheritedAttributes)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    sem::InterfaceId box = grammar.findInterface("Box");
    ASSERT_NE(box, sem::kInvalidId);
    const sem::InterfaceInfo& iface = grammar.iface(box);
    EXPECT_TRUE(iface.isInherited(iface.attrByName.at("fs")));
    EXPECT_TRUE(iface.isInherited(iface.attrByName.at("ax")));
    EXPECT_FALSE(iface.isInherited(iface.attrByName.at("w")));
}

TEST(Grammars, AstHasSixPasses)
{
    sem::Grammar grammar = grammars::load(grammars::astBench());
    EXPECT_EQ(grammar.passNames().size(), 6u);
    EXPECT_EQ(grammar.classes().size(), 13u); // 12 node classes + Program
}

/** The small Grafter benchmarks synthesize end-to-end via HecateA. */
class SmallBenchmarkSynthesis
    : public ::testing::TestWithParam<const Benchmark*> {};

TEST_P(SmallBenchmarkSynthesis, AutotunerFindsSchedule)
{
    const Benchmark& bench = *GetParam();
    sem::Grammar grammar = grammars::load(bench);
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 128;
    synth::AutotuneResult result =
        synth::autotune(grammar, grammars::rootInterface(grammar, bench),
                        config);
    ASSERT_TRUE(result.schedule.has_value())
        << bench.name << ": " << result.lastSynthesis.failure;
    EXPECT_TRUE(result.schedule->coversAllRules(*result.skeleton));
}

INSTANTIATE_TEST_SUITE_P(
    GrafterSmall, SmallBenchmarkSynthesis,
    ::testing::Values(&grammars::binaryTree(), &grammars::fmm(),
                      &grammars::piecewise()),
    [](const ::testing::TestParamInfo<const Benchmark*>& info) {
        return info.param->name;
    });

TEST(Grammars, GrafterFusesBinaryTreeFully)
{
    sem::Grammar grammar = grammars::load(grammars::binaryTree());
    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = 64;
    baselines::GrafterResult result = baselines::grafterSchedule(
        grammar, grammar.findInterface("BT"), config);
    ASSERT_TRUE(result.ok) << result.error;
    // Both passes fuse into a single traversal.
    EXPECT_EQ(result.traversals.size(), 1u);
    ASSERT_EQ(result.fusedPasses.size(), 1u);
    EXPECT_EQ(result.fusedPasses[0].size(), 2u);
}

TEST(Grammars, GrafterFusesRenderTreeFully)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = 64;
    baselines::GrafterResult result = baselines::grafterSchedule(
        grammar, grammar.findInterface("Doc"), config);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.traversals.size(), 1u);
    EXPECT_EQ(result.fusedPasses[0].size(), 5u);
}

TEST(Grammars, GrafterRejectsVectorGrammars)
{
    const char* src = R"(
interface I { input a : int; output b : int; }
class C : I { children { cs : [I]; } rules { self.b := fold(add, self.a, cs.b); } }
)";
    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(src));
    baselines::GrafterResult result =
        baselines::grafterSchedule(grammar, 0, {});
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("vector"), std::string::npos);
}

} // namespace
} // namespace hecate
