/**
 * @file
 * Cross-module property suites (parameterized):
 *
 *  - encoder agreement: on randomly generated grammars, the
 *    domain-specific ILP encoding and the general-purpose SAT encoding
 *    agree on feasibility, and any schedule either returns passes the
 *    independent simulator;
 *  - end-to-end soundness: for every benchmark grammar, the auto-tuned
 *    schedule verifies and executes to exactly the demand-driven
 *    reference values on random trees;
 *  - happens-before is a strict partial order on sampled plans.
 */

#include <gtest/gtest.h>

#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "symbolic/general_encoder.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "symbolic/sigma.hpp"
#include "sched/visit_plan.hpp"
#include "synth/autotuner.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

/**
 * Generate a small random grammar: one interface with `outs` output
 * attributes (some inherited), two classes with optional children, and
 * random acyclic intra-node dependencies.
 */
std::string
randomGrammarSource(uint64_t seed)
{
    Rng rng(seed);
    int outs = 3 + static_cast<int>(rng.below(3));
    bool inherited = rng.chance(0.5);

    std::string src = "interface I {\n    input x0, y0 : int;\n    output ";
    for (int i = 0; i < outs; ++i)
        src += (i ? ", s" : "s") + std::to_string(i);
    if (inherited)
        src += ", inh";
    src += " : int;\n}\ninterface R { input r0 : int; output total : int; }\n";

    auto rules_for = [&](bool has_child) {
        std::string out;
        for (int i = 0; i < outs; ++i) {
            out += "        self.s" + std::to_string(i) + " := self.x0";
            if (has_child && rng.chance(0.7))
                out += " + c.s" + std::to_string(rng.below(outs));
            if (i > 0 && rng.chance(0.5))
                out += " + self.s" + std::to_string(rng.below(i));
            if (inherited && rng.chance(0.4))
                out += " + self.inh";
            out += ";\n";
        }
        if (inherited && has_child)
            out += "        c.inh := self.inh + self.y0;\n";
        return out;
    };

    src += "class A : I {\n    children { c : Optional[I]; }\n    rules {\n";
    src += rules_for(true);
    src += "    }\n}\n";
    src += "class B : I {\n    rules {\n";
    src += rules_for(false);
    src += "    }\n}\n";
    src += "class Root : R {\n    children { c : Optional[I]; }\n"
           "    rules {\n        self.total := c.s0 + self.r0;\n";
    if (inherited)
        src += "        c.inh := self.r0;\n";
    src += "    }\n}\n";
    return src;
}

class RandomGrammarProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGrammarProperty, EncodersAgreeAndSchedulesAreSound)
{
    sem::Grammar grammar = sem::Grammar::analyze(
        lang::parseGrammar(randomGrammarSource(GetParam())));
    sem::InterfaceId root = grammar.findInterface("R");
    ASSERT_NE(root, sem::kInvalidId);

    // Same sandwich skeleton for both engines.
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar,
        synth::makeSkeleton(grammar, synth::SkeletonStyle::Sandwich));

    // Shared example trees.
    tree::EnumConfig seed_config;
    seed_config.maxDepth = 3;
    seed_config.limit = 4;
    std::vector<tree::Tree> examples;
    for (const tree::ShapePtr& shape :
         tree::enumerateShapes(grammar, root, seed_config)) {
        examples.push_back(tree::instantiate(grammar, *shape));
    }
    std::vector<const tree::Tree*> views;
    for (const tree::Tree& example : examples)
        views.push_back(&example);

    auto ilp = symbolic::synthesizeIlp(skeleton, views);
    auto gp = symbolic::synthesizeGeneral(skeleton, views);
    EXPECT_EQ(ilp.has_value(), gp.has_value())
        << "encoders disagree on feasibility";

    for (const auto& schedule : {ilp, gp}) {
        if (!schedule.has_value())
            continue;
        // Any model must satisfy the independent simulator on the
        // very trees it was synthesized from.
        for (const tree::Tree& example : examples) {
            auto failure =
                synth::checkScheduleOn(skeleton, *schedule, example);
            EXPECT_FALSE(failure.has_value()) << *failure;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGrammarProperty,
                         ::testing::Range<uint64_t>(1, 21));

class BenchmarkSoundness
    : public ::testing::TestWithParam<const grammars::Benchmark*> {};

TEST_P(BenchmarkSoundness, AutotunedScheduleMatchesReference)
{
    const grammars::Benchmark& bench = *GetParam();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 48;
    synth::AutotuneResult tuned = synth::autotune(grammar, root, config);
    ASSERT_TRUE(tuned.schedule.has_value())
        << bench.name << ": " << tuned.lastSynthesis.failure;

    Rng rng(bench.expectedRules);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    for (int round = 0; round < 4; ++round) {
        tree::Tree executed = tree::sampleTree(grammar, root, sample, rng);
        tree::Tree reference = executed;
        exec::execute(*tuned.skeleton, *tuned.schedule, executed);
        exec::computeReference(reference);
        for (const tree::Node& node : executed.nodes()) {
            EXPECT_EQ(node.values, reference.node(node.id).values)
                << bench.name << " node " << node.id << " on "
                << executed.shapeString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSoundness,
    ::testing::Values(&grammars::binaryTree(), &grammars::fmm(),
                      &grammars::piecewise(), &grammars::renderTree(),
                      &grammars::astBench(), &grammars::cssFloat(),
                      &grammars::cssMargin(), &grammars::cssFull()),
    [](const ::testing::TestParamInfo<const grammars::Benchmark*>& info) {
        std::string name = info.param->name;
        for (char& c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(HappensBefore, IsAStrictPartialOrder)
{
    sem::Grammar grammar = testutil::vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));

    Rng rng(17);
    tree::SampleConfig sample;
    sample.maxDepth = 4;
    sample.maxCollection = 3;
    for (int round = 0; round < 5; ++round) {
        tree::Tree t = tree::sampleTree(grammar, 0, sample, rng);
        sched::VisitPlan plan(skeleton, t);
        size_t n = plan.instances().size();
        if (n == 0)
            continue;
        for (sched::InstId a = 0; a < n; ++a) {
            EXPECT_FALSE(plan.happensBefore(a, a)) << "irreflexivity";
            for (sched::InstId b = 0; b < n; ++b) {
                if (plan.happensBefore(a, b)) {
                    EXPECT_FALSE(plan.happensBefore(b, a))
                        << "antisymmetry";
                }
            }
        }
        // Transitivity on random triples.
        for (int probe = 0; probe < 200; ++probe) {
            sched::InstId a = static_cast<sched::InstId>(rng.below(n));
            sched::InstId b = static_cast<sched::InstId>(rng.below(n));
            sched::InstId c = static_cast<sched::InstId>(rng.below(n));
            if (plan.happensBefore(a, b) && plan.happensBefore(b, c)) {
                EXPECT_TRUE(plan.happensBefore(a, c)) << "transitivity";
            }
        }
    }
}

TEST(Sigma, DecodeRoundTripsScheduleAssignments)
{
    sem::Grammar grammar = testutil::renderGrammar();
    sched::Skeleton skeleton = testutil::renderSkeleton(grammar);
    symbolic::SigmaSpace sigma = symbolic::SigmaSpace::build(skeleton);
    EXPECT_EQ(sigma.size(), 8u * 4u);

    // Pick a valid-looking assignment and round-trip it.
    std::vector<bool> values(sigma.size(), false);
    Rng rng(3);
    std::vector<uint32_t> chosen;
    for (sched::SlotId s = 0; s < skeleton.slotCount(); ++s) {
        auto [begin, end] = sigma.slotRange[s];
        uint32_t pick = begin + static_cast<uint32_t>(
                                    rng.below(end - begin));
        values[pick] = true;
        chosen.push_back(pick);
    }
    sched::Schedule schedule = sigma.decode(values, skeleton);
    for (uint32_t entry : chosen) {
        EXPECT_EQ(schedule.bySlot[sigma.entries[entry].slot],
                  std::optional<sem::RuleId>(sigma.entries[entry].rule));
    }
}

} // namespace
} // namespace hecate
