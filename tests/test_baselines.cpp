/**
 * @file
 * Tests for the Grafter and FTL baselines: both must produce schedules
 * that the independent verifier accepts and that execute to reference
 * values, on the benchmarks the paper runs them on.
 */

#include <gtest/gtest.h>

#include "baselines/ftl.hpp"
#include "baselines/grafter.hpp"
#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "lang/parser.hpp"
#include "synth/cegis.hpp"

namespace hecate {
namespace {

/** Execute a sequence of concrete traversals over @p tree in order. */
void
executeSequence(const std::vector<sched::Skeleton>& traversals,
                tree::Tree& tree)
{
    for (const sched::Skeleton& traversal : traversals) {
        sched::Schedule empty;
        empty.bySlot.assign(traversal.slotCount(), std::nullopt);
        exec::execute(traversal, empty, tree);
    }
}

TEST(GrafterBaseline, FusedScheduleExecutesToReference)
{
    const grammars::Benchmark& bench = grammars::renderTree();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);

    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = 32;
    baselines::GrafterResult result =
        baselines::grafterSchedule(grammar, root, config);
    ASSERT_TRUE(result.ok) << result.error;

    std::vector<sched::Skeleton> traversals;
    for (const ast::TraversalDecl& decl : result.traversals)
        traversals.push_back(sched::Skeleton::resolve(grammar, decl.clone()));

    Rng rng(5);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    for (int round = 0; round < 5; ++round) {
        tree::Tree executed = tree::sampleTree(grammar, root, sample, rng);
        tree::Tree reference = executed;
        executeSequence(traversals, executed);
        exec::computeReference(reference);
        for (const tree::Node& node : executed.nodes()) {
            ASSERT_EQ(node.values, reference.node(node.id).values)
                << "node " << node.id;
        }
    }
}

TEST(GrafterBaseline, ProducesFusionBarrierWhenNeeded)
{
    // Two passes where the second cannot fuse with the first: pass two
    // reads a *parent* attribute of pass one through an inherited
    // dependency that needs the whole first pass completed (b depends
    // on the subtree's a-sum through the root).
    const char* src = R"(
interface I { input x0 : int; output a, b : int; }
interface R { input r0 : int; output total, seed : int; }
class N : I {
    children { c : Optional[I]; }
    rules(first)  { self.a := self.x0 + c.a; }
    rules(second) { self.b := self.a + c.b; }
}
class Root : R {
    children { c : Optional[I]; }
    rules(first)  { self.total := c.a; }
    rules(second) { self.seed := c.b + self.total; }
}
)";
    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(src));
    tree::EnumConfig config;
    config.maxDepth = 3;
    baselines::GrafterResult result = baselines::grafterSchedule(
        grammar, grammar.findInterface("R"), config);
    ASSERT_TRUE(result.ok) << result.error;
    // Both passes are bottom-up and independent per node: fusable.
    EXPECT_EQ(result.traversals.size(), 1u);
}

TEST(GrafterBaseline, CountsDependenceChecks)
{
    sem::Grammar grammar = grammars::load(grammars::binaryTree());
    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = 16;
    baselines::GrafterResult result = baselines::grafterSchedule(
        grammar, grammar.findInterface("BT"), config);
    ASSERT_TRUE(result.ok);
    EXPECT_GE(result.dependenceChecks, 2u);
    EXPECT_GT(result.checkedTrees, 0u);
}

class FtlBenchmarks
    : public ::testing::TestWithParam<const grammars::Benchmark*> {};

TEST_P(FtlBenchmarks, FindsVerifiedTraversal)
{
    const grammars::Benchmark& bench = *GetParam();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);

    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = 24;
    baselines::FtlResult result =
        baselines::ftlSynthesize(grammar, root, config);
    ASSERT_TRUE(result.traversal.has_value())
        << bench.name << " (budget exhausted: " << result.budgetExhausted
        << ")";

    // The produced traversal is concrete and verifies independently.
    sched::Skeleton concrete = sched::Skeleton::resolve(
        grammar, result.traversal->clone());
    EXPECT_EQ(concrete.slotCount(), 0u);
    sched::Schedule empty;
    synth::VerifyResult verdict =
        synth::verifySchedule(concrete, empty, root, config);
    EXPECT_TRUE(verdict.ok) << verdict.reason;

    // And executes to reference values.
    Rng rng(9);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    tree::Tree executed = tree::sampleTree(grammar, root, sample, rng);
    tree::Tree reference = executed;
    exec::execute(concrete, empty, executed);
    exec::computeReference(reference);
    for (const tree::Node& node : executed.nodes())
        ASSERT_EQ(node.values, reference.node(node.id).values);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutGrammars, FtlBenchmarks,
    ::testing::Values(&grammars::renderTree(), &grammars::cssMargin()),
    [](const ::testing::TestParamInfo<const grammars::Benchmark*>& info) {
        std::string name = info.param->name;
        for (char& c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(FtlBaseline, RejectsVectorGrammars)
{
    const char* src = R"(
interface I { input a : int; output b : int; }
class C : I { children { cs : [I]; } rules { self.b := fold(add, self.a, cs.b); } }
)";
    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(src));
    baselines::FtlResult result = baselines::ftlSynthesize(grammar, 0, {});
    EXPECT_FALSE(result.traversal.has_value());
}

TEST(FtlBaseline, SchedulesVerifyOnEmptySlotSchedule)
{
    // checkScheduleOn on a concrete traversal with no holes must agree
    // with checkSequenceOn for a single-traversal sequence.
    sem::Grammar grammar = grammars::load(grammars::fmm());
    sem::InterfaceId root = grammar.findInterface("Space");
    tree::EnumConfig config;
    config.maxDepth = 3;
    baselines::FtlResult result =
        baselines::ftlSynthesize(grammar, root, config);
    ASSERT_TRUE(result.traversal.has_value());

    sched::Skeleton concrete = sched::Skeleton::resolve(
        grammar, result.traversal->clone());
    Rng rng(2);
    tree::SampleConfig sample;
    sample.maxDepth = 4;
    tree::Tree t = tree::sampleTree(grammar, root, sample, rng);
    sched::Schedule empty;
    auto direct = synth::checkScheduleOn(concrete, empty, t);
    auto as_sequence =
        baselines::checkSequenceOn(grammar, {&concrete}, t);
    EXPECT_EQ(direct.has_value(), as_sequence.has_value());
}

} // namespace
} // namespace hecate
