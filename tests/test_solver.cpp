/**
 * @file
 * Unit and property tests for the solver substrate: the boolean
 * formula layer (hash-consing, Tseitin), the CDCL SAT solver, and the
 * 0-1 ILP solver.
 */

#include <gtest/gtest.h>

#include "solver/formula.hpp"
#include "solver/ilp.hpp"
#include "solver/sat.hpp"
#include "support/rng.hpp"

namespace hecate::solver {
namespace {

// ---------------------------------------------------------------------------
// FormulaBuilder
// ---------------------------------------------------------------------------

TEST(Formula, ConstantFolding)
{
    FormulaBuilder fb;
    uint32_t v = fb.newVar();
    BoolId x = fb.mkVar(v);
    EXPECT_EQ(fb.mkAnd(x, FormulaBuilder::falseId()),
              FormulaBuilder::falseId());
    EXPECT_EQ(fb.mkAnd(x, FormulaBuilder::trueId()), x);
    EXPECT_EQ(fb.mkOr(x, FormulaBuilder::trueId()), FormulaBuilder::trueId());
    EXPECT_EQ(fb.mkOr(x, FormulaBuilder::falseId()), x);
    EXPECT_EQ(fb.mkNot(fb.mkNot(x)), x);
}

TEST(Formula, HashConsingSharesNodes)
{
    FormulaBuilder fb;
    BoolId x = fb.mkVar(fb.newVar());
    BoolId y = fb.mkVar(fb.newVar());
    size_t before = fb.nodeCount();
    BoolId a = fb.mkAnd(x, y);
    BoolId b = fb.mkAnd(y, x); // commutative canonicalization
    EXPECT_EQ(a, b);
    EXPECT_EQ(fb.nodeCount(), before + 1);
}

TEST(Formula, EvaluateMatchesSemantics)
{
    FormulaBuilder fb;
    BoolId x = fb.mkVar(fb.newVar());
    BoolId y = fb.mkVar(fb.newVar());
    BoolId f = fb.mkOr(fb.mkAnd(x, fb.mkNot(y)), fb.mkAnd(fb.mkNot(x), y));
    // XOR truth table
    EXPECT_FALSE(fb.evaluate(f, {false, false}));
    EXPECT_TRUE(fb.evaluate(f, {true, false}));
    EXPECT_TRUE(fb.evaluate(f, {false, true}));
    EXPECT_FALSE(fb.evaluate(f, {true, true}));
}

TEST(Formula, ExactlyOneSemantics)
{
    FormulaBuilder fb;
    std::vector<BoolId> vars;
    for (int i = 0; i < 3; ++i)
        vars.push_back(fb.mkVar(fb.newVar()));
    BoolId f = fb.mkExactlyOne(vars);
    EXPECT_FALSE(fb.evaluate(f, {false, false, false}));
    EXPECT_TRUE(fb.evaluate(f, {true, false, false}));
    EXPECT_TRUE(fb.evaluate(f, {false, true, false}));
    EXPECT_FALSE(fb.evaluate(f, {true, true, false}));
    EXPECT_FALSE(fb.evaluate(f, {true, true, true}));
}

/** Tseitin CNF is satisfiable iff the original formula is. */
TEST(Formula, TseitinPreservesSatisfiabilityOnRandomFormulas)
{
    Rng rng(7);
    for (int round = 0; round < 50; ++round) {
        FormulaBuilder fb;
        constexpr int kVars = 6;
        std::vector<BoolId> pool;
        for (int i = 0; i < kVars; ++i)
            pool.push_back(fb.mkVar(fb.newVar()));
        // random formula construction
        for (int step = 0; step < 24; ++step) {
            BoolId a = pool[rng.below(pool.size())];
            BoolId b = pool[rng.below(pool.size())];
            switch (rng.below(3)) {
              case 0: pool.push_back(fb.mkAnd(a, b)); break;
              case 1: pool.push_back(fb.mkOr(a, b)); break;
              default: pool.push_back(fb.mkNot(a)); break;
            }
        }
        BoolId root = pool.back();

        // brute-force ground truth
        bool truth_sat = false;
        for (uint32_t mask = 0; mask < (1u << kVars); ++mask) {
            std::vector<bool> assignment(kVars);
            for (int i = 0; i < kVars; ++i)
                assignment[i] = (mask >> i) & 1;
            if (fb.evaluate(root, assignment)) {
                truth_sat = true;
                break;
            }
        }

        Cnf cnf = fb.toCnf(root);
        SatSolver sat(cnf.numVars);
        bool ok = true;
        for (const auto& clause : cnf.clauses)
            ok = ok && sat.addClause(clause);
        bool solver_sat = ok && sat.solve() == SatResult::Sat;
        ASSERT_EQ(solver_sat, truth_sat) << "round " << round;

        if (solver_sat) {
            // the model restricted to problem vars satisfies the formula
            std::vector<bool> model(kVars);
            for (int i = 0; i < kVars; ++i)
                model[i] = sat.modelValue(static_cast<uint32_t>(i + 1));
            EXPECT_TRUE(fb.evaluate(root, model));
        }
    }
}

// ---------------------------------------------------------------------------
// SAT solver
// ---------------------------------------------------------------------------

TEST(Sat, TrivialSatAndUnsat)
{
    {
        SatSolver s(2);
        s.addClause({1, 2});
        s.addClause({-1});
        EXPECT_EQ(s.solve(), SatResult::Sat);
        EXPECT_FALSE(s.modelValue(1));
        EXPECT_TRUE(s.modelValue(2));
    }
    {
        SatSolver s(1);
        s.addClause({1});
        EXPECT_FALSE(s.addClause({-1}));
        EXPECT_EQ(s.solve(), SatResult::Unsat);
    }
}

TEST(Sat, EmptyClauseIsUnsat)
{
    SatSolver s(1);
    EXPECT_FALSE(s.addClause(std::vector<int32_t>{}));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, PigeonholeIsUnsat)
{
    // 4 pigeons into 3 holes.
    constexpr int kPigeons = 4;
    constexpr int kHoles = 3;
    auto var = [](int p, int h) { return p * kHoles + h + 1; };
    SatSolver s(kPigeons * kHoles);
    for (int p = 0; p < kPigeons; ++p) {
        std::vector<int32_t> clause;
        for (int h = 0; h < kHoles; ++h)
            clause.push_back(var(p, h));
        s.addClause(clause);
    }
    for (int h = 0; h < kHoles; ++h) {
        for (int p1 = 0; p1 < kPigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < kPigeons; ++p2)
                s.addClause({-var(p1, h), -var(p2, h)});
        }
    }
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

/** Cross-check against brute force on random 3-CNF. */
TEST(Sat, RandomCnfMatchesBruteForce)
{
    Rng rng(42);
    for (int round = 0; round < 80; ++round) {
        constexpr int kVars = 8;
        int clause_count = 10 + static_cast<int>(rng.below(30));
        std::vector<std::vector<int32_t>> clauses;
        for (int c = 0; c < clause_count; ++c) {
            std::vector<int32_t> clause;
            for (int k = 0; k < 3; ++k) {
                int v = 1 + static_cast<int>(rng.below(kVars));
                clause.push_back(rng.chance(0.5) ? v : -v);
            }
            clauses.push_back(std::move(clause));
        }

        bool truth_sat = false;
        for (uint32_t mask = 0; mask < (1u << kVars) && !truth_sat; ++mask) {
            bool all = true;
            for (const auto& clause : clauses) {
                bool any = false;
                for (int32_t lit : clause) {
                    int v = std::abs(lit) - 1;
                    bool val = (mask >> v) & 1;
                    if ((lit > 0) == val) {
                        any = true;
                        break;
                    }
                }
                if (!any) {
                    all = false;
                    break;
                }
            }
            truth_sat = all;
        }

        SatSolver s(kVars);
        bool ok = true;
        for (const auto& clause : clauses)
            ok = ok && s.addClause(clause);
        bool solver_sat = ok && s.solve() == SatResult::Sat;
        ASSERT_EQ(solver_sat, truth_sat) << "round " << round;

        if (solver_sat) {
            for (const auto& clause : clauses) {
                bool any = false;
                for (int32_t lit : clause) {
                    bool val = s.modelValue(
                        static_cast<uint32_t>(std::abs(lit)));
                    if ((lit > 0) == val)
                        any = true;
                }
                EXPECT_TRUE(any) << "model violates a clause";
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ILP solver
// ---------------------------------------------------------------------------

TEST(Ilp, SimpleFeasibility)
{
    IlpSolver ilp;
    uint32_t x = ilp.addVar();
    uint32_t y = ilp.addVar();
    ilp.addEq({{1, x}, {1, y}}, 1);  // x + y == 1
    ilp.addLe({{1, x}}, 0);          // x == 0
    ASSERT_EQ(ilp.solve(), IlpResult::Feasible);
    EXPECT_EQ(ilp.value(x), 0);
    EXPECT_EQ(ilp.value(y), 1);
}

TEST(Ilp, DetectsInfeasibility)
{
    IlpSolver ilp;
    uint32_t x = ilp.addVar();
    uint32_t y = ilp.addVar();
    ilp.addGe({{1, x}, {1, y}}, 2); // both one
    ilp.addLe({{1, x}, {1, y}}, 1); // at most one
    EXPECT_EQ(ilp.solve(), IlpResult::Infeasible);
}

TEST(Ilp, EmptyGeOneIsInfeasible)
{
    IlpSolver ilp;
    ilp.addGe({}, 1);
    EXPECT_EQ(ilp.solve(), IlpResult::Infeasible);
}

TEST(Ilp, NegativeCoefficients)
{
    // x - y >= 0, y == 1  =>  x == 1.
    IlpSolver ilp;
    uint32_t x = ilp.addVar();
    uint32_t y = ilp.addVar();
    ilp.addGe({{1, x}, {-1, y}}, 0);
    ilp.addEq({{1, y}}, 1);
    ASSERT_EQ(ilp.solve(), IlpResult::Feasible);
    EXPECT_EQ(ilp.value(x), 1);
}

TEST(Ilp, MinimizesObjective)
{
    // Cover {1,2,3} by sets A={1,2}, B={2,3}, C={1,2,3}; min #sets is 1 (C).
    IlpSolver ilp;
    uint32_t a = ilp.addVar();
    uint32_t b = ilp.addVar();
    uint32_t c = ilp.addVar();
    ilp.addGe({{1, a}, {1, c}}, 1);          // element 1
    ilp.addGe({{1, a}, {1, b}, {1, c}}, 1);  // element 2
    ilp.addGe({{1, b}, {1, c}}, 1);          // element 3
    ilp.setObjective({{1, a}, {1, b}, {1, c}});
    ASSERT_EQ(ilp.solve(), IlpResult::Feasible);
    EXPECT_EQ(ilp.objectiveValue(), 1);
    EXPECT_EQ(ilp.value(c), 1);
}

TEST(Ilp, MergesDuplicateTerms)
{
    IlpSolver ilp;
    uint32_t x = ilp.addVar();
    ilp.addEq({{1, x}, {1, x}}, 2); // 2x == 2 -> x == 1
    ASSERT_EQ(ilp.solve(), IlpResult::Feasible);
    EXPECT_EQ(ilp.value(x), 1);
}

/** Random 0-1 feasibility problems cross-checked against brute force. */
TEST(Ilp, RandomProblemsMatchBruteForce)
{
    Rng rng(99);
    for (int round = 0; round < 60; ++round) {
        constexpr int kVars = 7;
        IlpSolver ilp;
        for (int i = 0; i < kVars; ++i)
            ilp.addVar();

        int con_count = 3 + static_cast<int>(rng.below(8));
        std::vector<std::vector<LinTerm>> cons;
        std::vector<int64_t> lows, highs;
        for (int c = 0; c < con_count; ++c) {
            std::vector<LinTerm> terms;
            for (int v = 0; v < kVars; ++v) {
                if (rng.chance(0.5)) {
                    terms.push_back(
                        {static_cast<int64_t>(rng.range(-3, 3)),
                         static_cast<uint32_t>(v)});
                }
            }
            int64_t lo = rng.range(-4, 2);
            int64_t hi = lo + rng.range(0, 6);
            cons.push_back(terms);
            lows.push_back(lo);
            highs.push_back(hi);
            ilp.addRange(terms, lo, hi);
        }

        bool truth_feasible = false;
        for (uint32_t mask = 0; mask < (1u << kVars) && !truth_feasible;
             ++mask) {
            bool ok = true;
            for (int c = 0; c < con_count && ok; ++c) {
                int64_t sum = 0;
                for (const LinTerm& t : cons[c]) {
                    if ((mask >> t.var) & 1)
                        sum += t.coeff;
                }
                ok = sum >= lows[c] && sum <= highs[c];
            }
            truth_feasible = ok;
        }

        IlpResult got = ilp.solve();
        ASSERT_EQ(got == IlpResult::Feasible, truth_feasible)
            << "round " << round;
        if (got == IlpResult::Feasible) {
            for (int c = 0; c < con_count; ++c) {
                int64_t sum = 0;
                for (const LinTerm& t : cons[c])
                    sum += t.coeff * ilp.value(t.var);
                EXPECT_GE(sum, lows[c]);
                EXPECT_LE(sum, highs[c]);
            }
        }
    }
}

} // namespace
} // namespace hecate::solver
