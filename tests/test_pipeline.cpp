/**
 * @file
 * Pipeline driver tests. The load-bearing one is differential: for
 * every bundled grammar, the schedule produced by the staged driver
 * must be byte-identical (serialized) to the one produced by calling
 * the synthesis layer directly, i.e. the refactor onto Pipeline
 * changed the wiring and nothing else. The rest cover the stage
 * contracts: cache provenance, payload adoption, per-stage telemetry
 * spans, and argument resolution.
 */

#include <gtest/gtest.h>

#include "grammars/grammars.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "pipeline/pipeline.hpp"
#include "service/schedule_cache.hpp"
#include "support/diagnostics.hpp"
#include "synth/autotuner.hpp"

namespace hecate {
namespace {

std::vector<const grammars::Benchmark*>
allBenchmarks()
{
    return {&grammars::binaryTree(), &grammars::fmm(),
            &grammars::piecewise(),  &grammars::astBench(),
            &grammars::renderTree(), &grammars::cssFloat(),
            &grammars::cssMargin(),  &grammars::cssFull()};
}

synth::SynthesisConfig
testConfig()
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 64;
    return config;
}

TEST(Pipeline, SchedulesMatchDirectSynthesisOnAllBuiltins)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        // The pre-refactor path, stitched by hand: load, resolve the
        // root, build the skeleton, run CEGIS.
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        ast::TraversalDecl skeletonAst =
            synth::makeSkeleton(grammar, synth::SkeletonStyle::Sandwich);
        std::string skeletonSrc = lang::printTraversal(skeletonAst);
        sched::Skeleton skeleton =
            sched::Skeleton::resolve(grammar, std::move(skeletonAst));
        synth::SynthesisResult direct =
            synth::synthesize(skeleton, root, {}, testConfig());
        ASSERT_TRUE(direct.schedule.has_value())
            << bench->name << ": " << direct.failure;

        // The driver, fed the printed form of the same skeleton.
        pipeline::PipelineOptions options;
        options.config = testConfig();
        pipeline::Pipeline pipe(*bench, skeletonSrc, std::move(options));
        const pipeline::SynthArtifact& staged = pipe.synthesize();
        ASSERT_TRUE(staged.ok) << bench->name << ": " << staged.failure;
        ASSERT_TRUE(staged.schedule.has_value());

        EXPECT_EQ(staged.schedule->serialize(), direct.schedule->serialize())
            << bench->name << ": driver schedule diverged from the "
            << "direct synthesis path";
        EXPECT_EQ(staged.provenance, pipeline::Provenance::FreshRun);
    }
}

TEST(Pipeline, AutoModeMatchesDirectAutotune)
{
    const grammars::Benchmark& bench = grammars::renderTree();

    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    synth::AutotuneResult direct =
        synth::autotune(grammar, root, testConfig());
    ASSERT_TRUE(direct.schedule.has_value());

    pipeline::PipelineOptions options;
    options.config = testConfig();
    pipeline::Pipeline pipe(bench, "", std::move(options));
    const pipeline::SynthArtifact& staged = pipe.synthesize();
    ASSERT_TRUE(staged.ok) << staged.failure;
    EXPECT_TRUE(staged.autoTuned);
    EXPECT_EQ(staged.style, direct.style);
    EXPECT_EQ(staged.schedule->serialize(), direct.schedule->serialize());
}

TEST(Pipeline, CacheHitReproducesFreshRunExactly)
{
    service::ScheduleCache cache;
    const grammars::Benchmark& bench = grammars::renderTree();

    pipeline::PipelineOptions fresh_options;
    fresh_options.config = testConfig();
    fresh_options.cache = &cache;
    pipeline::Pipeline fresh(bench, "", std::move(fresh_options));
    const pipeline::SynthArtifact& first = fresh.synthesize();
    ASSERT_TRUE(first.ok) << first.failure;
    EXPECT_EQ(first.provenance, pipeline::Provenance::FreshRun);

    pipeline::PipelineOptions hit_options;
    hit_options.config = testConfig();
    hit_options.cache = &cache;
    pipeline::Pipeline hit(bench, "", std::move(hit_options));
    const pipeline::SynthArtifact& second = hit.synthesize();
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_EQ(second.provenance, pipeline::Provenance::CacheHit);
    EXPECT_EQ(second.schedule->serialize(), first.schedule->serialize());
    EXPECT_EQ(second.concreteTraversal, first.concreteTraversal);
}

TEST(Pipeline, AdoptPayloadEntersMidPipeline)
{
    const grammars::Benchmark& bench = grammars::renderTree();

    pipeline::PipelineOptions leader_options;
    leader_options.config = testConfig();
    pipeline::Pipeline leader(bench, "", std::move(leader_options));
    const pipeline::SynthArtifact& led = leader.synthesize();
    ASSERT_TRUE(led.ok);
    ASSERT_FALSE(led.payload.empty());

    pipeline::PipelineOptions follower_options;
    follower_options.config = testConfig();
    pipeline::Pipeline follower(bench, "", std::move(follower_options));
    const pipeline::SynthArtifact& adopted =
        follower.adoptPayload(led.payload);
    ASSERT_TRUE(adopted.ok) << adopted.failure;
    EXPECT_EQ(adopted.provenance, pipeline::Provenance::JoinedInFlight);
    EXPECT_EQ(adopted.schedule->serialize(), led.schedule->serialize());

    // The adopted schedule feeds the later stages like a fresh one.
    (void)follower.plan();
    (void)follower.compileProgram();
}

TEST(Pipeline, StagesEmitStageSpans)
{
    obs::Telemetry telemetry;
    pipeline::PipelineOptions options;
    options.config = testConfig();
    options.telemetry = &telemetry;
    pipeline::Pipeline pipe(grammars::renderTree(), "", std::move(options));
    ASSERT_TRUE(pipe.synthesize().ok);
    (void)pipe.plan();
    (void)pipe.compileProgram();

    for (const char* stage :
         {"parse", "analyze", "synthesize", "plan", "compile"}) {
        EXPECT_EQ(telemetry.spanCount(stage), 1u) << stage;
    }
    bool allStageCategory = true;
    for (const obs::SpanRecord& span : telemetry.spans()) {
        if (span.name == "parse" && span.category != "stage")
            allStageCategory = false;
    }
    EXPECT_TRUE(allStageCategory);
    // The CEGIS rounds land inside the synthesize stage.
    EXPECT_GE(telemetry.spanCount("cegis.round"), 1u);
}

TEST(Pipeline, StagesAreMemoized)
{
    pipeline::PipelineOptions options;
    options.config = testConfig();
    pipeline::Pipeline pipe(grammars::renderTree(), "", std::move(options));
    const pipeline::SynthArtifact& first = pipe.synthesize();
    const pipeline::SynthArtifact& again = pipe.synthesize();
    EXPECT_EQ(&first, &again);
    const runtime::Program& program = pipe.compileProgram();
    EXPECT_EQ(&program, &pipe.compileProgram());
}

TEST(Pipeline, ResolveGrammarArgFindsBuiltins)
{
    pipeline::GrammarSource source =
        pipeline::resolveGrammarArg("builtin:rendertree");
    EXPECT_FALSE(source.source.empty());
    EXPECT_FALSE(source.rootInterface.empty());
    EXPECT_THROW(pipeline::resolveGrammarArg("builtin:nope"), UserError);
    EXPECT_THROW(pipeline::readTextFile("/nonexistent/grammar.la"),
                 UserError);
}

TEST(Pipeline, ParseEngineNameRejectsUnknown)
{
    EXPECT_EQ(pipeline::parseEngineName("ilp"),
              synth::Engine::DomainSpecificIlp);
    EXPECT_EQ(pipeline::parseEngineName("sat"),
              synth::Engine::GeneralPurposeSat);
    EXPECT_THROW(pipeline::parseEngineName("z3"), UserError);
}

TEST(Pipeline, ExecuteForestBatchesAndExportsCounters)
{
    obs::Telemetry telemetry;
    pipeline::PipelineOptions options;
    options.config = testConfig();
    options.telemetry = &telemetry;
    pipeline::Pipeline pipe(grammars::renderTree(), "", std::move(options));
    ASSERT_TRUE(pipe.synthesize().ok);

    pipeline::ExecuteRequest request;
    request.gen.targetNodes = 400;
    request.gen.seed = 3;
    request.batchCount = 6;
    pipeline::ForestExecuteArtifact batched = pipe.executeForest(request);
    EXPECT_EQ(batched.forest.treeCount(), 6u);
    EXPECT_EQ(batched.stats.nodeVisits, batched.forest.size());

    EXPECT_EQ(telemetry.counter("exec.batch_trees"), 6.0);
    EXPECT_EQ(telemetry.counter("exec.node_visits"),
              static_cast<double>(batched.stats.nodeVisits));
    EXPECT_GT(telemetry.counter("exec.level_waves"), 0.0);
    EXPECT_GT(telemetry.counter("exec.nodes_per_sec"), 0.0);
    EXPECT_EQ(telemetry.spanCount("forest.generate"), 1u);
    EXPECT_EQ(telemetry.spanCount("forest.execute"), 1u);

    // execute() refuses batches; executeForest refuses empty ones.
    pipeline::ExecuteRequest bad = request;
    EXPECT_THROW(pipe.execute(bad), UserError);
    bad.batchCount = 0;
    EXPECT_THROW(pipe.executeForest(bad), UserError);
}

TEST(Pipeline, PlanThrowsAfterFailedSynthesis)
{
    // An unsatisfiable round budget forces a failed synthesize();
    // plan() must then refuse rather than hand out a stale artifact.
    pipeline::PipelineOptions options;
    options.config = testConfig();
    options.config.maxIterations = 0;
    pipeline::Pipeline pipe(grammars::renderTree(), "", std::move(options));
    const pipeline::SynthArtifact& artifact = pipe.synthesize();
    EXPECT_FALSE(artifact.ok);
    EXPECT_THROW(pipe.plan(), Error);
}

} // namespace
} // namespace hecate
