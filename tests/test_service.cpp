/**
 * @file
 * Tests for the synthesis service layer: canonical problem keys
 * (isomorphic renames collide, different problems don't), the sharded
 * LRU schedule cache with disk persistence and corruption tolerance,
 * portable + raw schedule serialization, and the single-flight
 * concurrent driver (N identical racing requests -> one CEGIS run).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "service/problem_key.hpp"
#include "service/schedule_cache.hpp"
#include "service/synth_service.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

namespace fs = std::filesystem;

/**
 * testutil::kRenderGrammarSrc with every interface/class/attribute/
 * child name replaced and the rules of each class reordered — the
 * same synthesis problem in a different spelling.
 */
const char* kRenamedRenderGrammarSrc = R"(
interface Rect {
    input iw, ih : int;
    output pw, fw, ph, fh : int;
}
class Branch : Rect {
    children {
        sib : Optional[Rect];
        kid : Optional[Rect];
    }
    rules(calcWidth) {
        self.pw := max(self.fw, sib.pw);
        self.fw := max(self.iw, kid.pw);
    }
    rules(calcHeight) {
        self.ph := self.fh + sib.ph;
        self.fh := max(self.ih, kid.ph);
    }
}
class Tip : Rect {
    children {
        sib : Optional[Rect];
    }
    rules(calcHeight) {
        self.fh := self.ih;
        self.ph := self.fh + sib.ph;
    }
    rules(calcWidth) {
        self.fw := self.iw;
        self.pw := max(self.fw, sib.pw);
    }
}
)";

/** The renamed spelling of testutil::kSymbolicLayoutSrc. */
const char* kRenamedLayoutSrc = R"(
traversal render {
    case Tip {
        recur sib;
        ??; ??; ??; ??;
    }
    case Branch {
        recur kid;
        recur sib;
        ??; ??; ??; ??;
    }
}
)";

service::ProblemKey
renderKey(const char* grammarSrc, const char* traversalSrc,
          const synth::SynthesisConfig& config = {})
{
    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(grammarSrc));
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(traversalSrc));
    return service::makeProblemKey(skeleton, 0, config);
}

TEST(ProblemKey, IsomorphicRenameAndRuleReorderCollide)
{
    service::ProblemKey original =
        renderKey(testutil::kRenderGrammarSrc, testutil::kSymbolicLayoutSrc);
    service::ProblemKey renamed =
        renderKey(kRenamedRenderGrammarSrc, kRenamedLayoutSrc);
    EXPECT_EQ(original.canonical, renamed.canonical);
    EXPECT_EQ(original.digest(), renamed.digest());
}

TEST(ProblemKey, SemanticallyDifferentGrammarsDiffer)
{
    // Same shape, but one rule's operator differs (max -> min).
    std::string tweaked = testutil::kRenderGrammarSrc;
    size_t at = tweaked.find("max(self.w0, fc.w1)");
    ASSERT_NE(at, std::string::npos);
    tweaked.replace(at, 3, "min");

    service::ProblemKey a =
        renderKey(testutil::kRenderGrammarSrc, testutil::kSymbolicLayoutSrc);
    service::ProblemKey b =
        renderKey(tweaked.c_str(), testutil::kSymbolicLayoutSrc);
    EXPECT_NE(a.canonical, b.canonical);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ProblemKey, ConfigAndSkeletonChangesDiffer)
{
    synth::SynthesisConfig deeper;
    deeper.verify.maxDepth = 4;
    service::ProblemKey base =
        renderKey(testutil::kRenderGrammarSrc, testutil::kSymbolicLayoutSrc);
    service::ProblemKey deep = renderKey(
        testutil::kRenderGrammarSrc, testutil::kSymbolicLayoutSrc, deeper);
    EXPECT_NE(base.canonical, deep.canonical);

    // Pre-order skeleton is a different problem than post-order.
    service::ProblemKey pre =
        renderKey(testutil::kRenderGrammarSrc, R"(
traversal layout {
    case Inner { ??; ??; ??; ??; recur fc; recur nx; }
    case Leaf { ??; ??; ??; ??; recur nx; }
}
)");
    EXPECT_NE(base.canonical, pre.canonical);
}

TEST(ScheduleSerialization, RawRoundTrip)
{
    sched::Schedule schedule;
    schedule.bySlot = {sem::RuleId{3}, std::nullopt, sem::RuleId{0},
                       sem::RuleId{7}};
    std::string bytes = schedule.serialize();
    auto back = sched::Schedule::deserialize(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, schedule);

    EXPECT_FALSE(sched::Schedule::deserialize("").has_value());
    EXPECT_FALSE(sched::Schedule::deserialize("schedv9 1 0").has_value());
    EXPECT_FALSE(sched::Schedule::deserialize("schedv1 3 0 1").has_value());
    EXPECT_FALSE(
        sched::Schedule::deserialize("schedv1 1 0 trailing").has_value());
    EXPECT_FALSE(sched::Schedule::deserialize("schedv1 1 xyz").has_value());
}

TEST(ScheduleSerialization, PortableRoundTripAcrossRename)
{
    // Synthesize on the original grammar...
    sem::Grammar grammar = testutil::renderGrammar();
    sched::Skeleton skeleton = testutil::renderSkeleton(grammar);
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::SynthesisResult result =
        synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());

    std::string blob =
        service::encodePortableSchedule(skeleton, *result.schedule);

    // ...decode against the same skeleton: exact round trip.
    auto same = service::decodePortableSchedule(skeleton, blob);
    ASSERT_TRUE(same.has_value());
    EXPECT_EQ(*same, *result.schedule);

    // ...decode against the renamed grammar: remapped, still correct.
    sem::Grammar renamed =
        sem::Grammar::analyze(lang::parseGrammar(kRenamedRenderGrammarSrc));
    sched::Skeleton renamedSkeleton = sched::Skeleton::resolve(
        renamed, lang::parseTraversal(kRenamedLayoutSrc));
    auto remapped = service::decodePortableSchedule(renamedSkeleton, blob);
    ASSERT_TRUE(remapped.has_value());
    EXPECT_TRUE(remapped->coversAllRules(renamedSkeleton));
    synth::VerifyResult verdict = synth::verifySchedule(
        renamedSkeleton, *remapped, 0, config.verify);
    EXPECT_TRUE(verdict.ok) << verdict.reason;

    // Garbage is rejected, not crashed on.
    EXPECT_FALSE(
        service::decodePortableSchedule(skeleton, "junk").has_value());
    EXPECT_FALSE(service::decodePortableSchedule(
                     skeleton, "hecsched v1\n2\n-\n-\n")
                     .has_value()); // wrong slot count
}

service::ProblemKey
numberedKey(int n)
{
    return service::makeKeyFromCanonical("problem-" + std::to_string(n));
}

TEST(ScheduleCache, LruEvictsOldestWithinCapacity)
{
    service::ScheduleCache cache(/*capacity=*/4, /*shards=*/1);
    for (int i = 0; i < 4; ++i)
        cache.put(numberedKey(i), "blob-" + std::to_string(i));
    EXPECT_EQ(cache.size(), 4u);

    // Touch 0 so 1 becomes LRU, then overflow twice.
    EXPECT_TRUE(cache.get(numberedKey(0)).has_value());
    cache.put(numberedKey(4), "blob-4");
    cache.put(numberedKey(5), "blob-5");

    EXPECT_EQ(cache.size(), 4u);
    EXPECT_TRUE(cache.get(numberedKey(0)).has_value());
    EXPECT_FALSE(cache.get(numberedKey(1)).has_value());
    EXPECT_FALSE(cache.get(numberedKey(2)).has_value());
    EXPECT_TRUE(cache.get(numberedKey(4)).has_value());
    EXPECT_TRUE(cache.get(numberedKey(5)).has_value());

    service::ScheduleCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.insertions, 6u);
    EXPECT_EQ(stats.hits, 4u);
    EXPECT_EQ(stats.misses, 2u);
}

TEST(ScheduleCache, RefreshingAKeyDoesNotGrowTheCache)
{
    service::ScheduleCache cache(4, 1);
    cache.put(numberedKey(0), "v1");
    cache.put(numberedKey(0), "v2");
    EXPECT_EQ(cache.size(), 1u);
    auto got = cache.get(numberedKey(0));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "v2");
}

TEST(ScheduleCache, PersistenceRoundTripAndCorruptEntryTolerance)
{
    fs::path dir =
        fs::temp_directory_path() / "hecate_cache_test";
    fs::remove_all(dir);

    service::ScheduleCache cache(16, 2);
    for (int i = 0; i < 5; ++i)
        cache.put(numberedKey(i), "payload-" + std::to_string(i));
    EXPECT_EQ(cache.save(dir.string()), 5u);

    // Corrupt one entry (flip payload bytes) and truncate another.
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir))
        files.push_back(entry.path());
    ASSERT_EQ(files.size(), 5u);
    std::sort(files.begin(), files.end());
    {
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(-3, std::ios::end);
        f.write("###", 3);
    }
    fs::resize_file(files[1], 10);

    service::ScheduleCache restored(16, 2);
    service::ScheduleCache::LoadReport report =
        restored.load(dir.string());
    EXPECT_EQ(report.loaded, 3u);
    EXPECT_EQ(report.skipped, 2u);
    ASSERT_EQ(report.diagnostics.size(), 2u);
    EXPECT_NE(report.diagnostics[0].find("skipped"), std::string::npos);
    EXPECT_EQ(restored.size(), 3u);

    // Surviving entries round-trip exactly.
    size_t found = 0;
    for (int i = 0; i < 5; ++i) {
        auto blob = restored.get(numberedKey(i));
        if (blob.has_value()) {
            EXPECT_EQ(*blob, "payload-" + std::to_string(i));
            ++found;
        }
    }
    EXPECT_EQ(found, 3u);

    // A missing directory loads as empty, not as an error.
    service::ScheduleCache empty(16, 2);
    service::ScheduleCache::LoadReport none =
        empty.load((dir / "does_not_exist").string());
    EXPECT_EQ(none.loaded, 0u);
    EXPECT_EQ(none.skipped, 0u);

    fs::remove_all(dir);
}

service::SynthRequest
renderRequest(const char* grammarSrc = testutil::kRenderGrammarSrc,
              const char* traversalSrc = testutil::kSymbolicLayoutSrc)
{
    service::SynthRequest request;
    request.grammarSrc = grammarSrc;
    request.traversalSrc = traversalSrc;
    request.config.verify.maxDepth = 3;
    return request;
}

TEST(SynthService, SecondIdenticalRequestHitsCache)
{
    service::ServiceConfig config;
    config.workers = 2;
    service::SynthService svc(config);

    service::SynthOutcome first = svc.runNow(renderRequest());
    ASSERT_TRUE(first.ok) << first.failure;
    EXPECT_EQ(first.provenance, service::Provenance::FreshRun);
    EXPECT_GE(first.cegisIterations, 1u);
    EXPECT_FALSE(first.concreteTraversal.empty());
    EXPECT_EQ(first.concreteTraversal.find("??"), std::string::npos);

    service::SynthOutcome second = svc.runNow(renderRequest());
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_EQ(second.provenance, service::Provenance::CacheHit);
    EXPECT_EQ(second.keyDigest, first.keyDigest);
    EXPECT_EQ(second.concreteTraversal, first.concreteTraversal);

    service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.freshRuns, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
}

TEST(SynthService, IsomorphicRenameHitsSameCacheEntry)
{
    service::ServiceConfig config;
    config.workers = 2;
    service::SynthService svc(config);

    service::SynthOutcome original = svc.runNow(renderRequest());
    ASSERT_TRUE(original.ok) << original.failure;

    // Same problem, every name changed, rules reordered.
    service::SynthOutcome renamed = svc.runNow(
        renderRequest(kRenamedRenderGrammarSrc, kRenamedLayoutSrc));
    ASSERT_TRUE(renamed.ok) << renamed.failure;
    EXPECT_EQ(renamed.provenance, service::Provenance::CacheHit);
    EXPECT_EQ(renamed.keyDigest, original.keyDigest);
    // The decoded schedule is phrased in the *renamed* grammar's names.
    EXPECT_NE(renamed.concreteTraversal.find("recur kid;"),
              std::string::npos);
    EXPECT_EQ(svc.stats().freshRuns, 1u);
}

TEST(SynthService, ConcurrentIdenticalRequestsRunCegisOnce)
{
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool release = false;

    service::ServiceConfig config;
    config.workers = 4;
    config.onLeaderSynthesis = [&] {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return release; });
    };
    service::SynthService svc(config);

    constexpr int kRequests = 6;
    std::vector<std::future<service::SynthOutcome>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(svc.submit(renderRequest()));

    // Hold the leader until at least 3 duplicates joined its flight
    // (workers = 4: one leader + three followers).
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (svc.stats().joinedInFlight < 3 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(svc.stats().joinedInFlight, 3u);
    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        release = true;
    }
    gate_cv.notify_all();

    std::string digest;
    for (auto& future : futures) {
        service::SynthOutcome outcome = future.get();
        ASSERT_TRUE(outcome.ok) << outcome.failure;
        if (digest.empty())
            digest = outcome.keyDigest;
        EXPECT_EQ(outcome.keyDigest, digest);
    }

    service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.freshRuns, 1u); // exactly one CEGIS run
    EXPECT_EQ(stats.cacheHits + stats.joinedInFlight,
              static_cast<uint64_t>(kRequests) - 1u);
    EXPECT_EQ(stats.failures, 0u);
}

TEST(SynthService, AutoModeCachesTheWinningSkeleton)
{
    service::ServiceConfig config;
    config.workers = 2;
    service::SynthService svc(config);

    service::SynthRequest request = renderRequest();
    request.traversalSrc.clear(); // auto-tune

    service::SynthOutcome first = svc.runNow(request);
    ASSERT_TRUE(first.ok) << first.failure;
    EXPECT_EQ(first.provenance, service::Provenance::FreshRun);

    service::SynthOutcome second = svc.runNow(request);
    ASSERT_TRUE(second.ok) << second.failure;
    EXPECT_EQ(second.provenance, service::Provenance::CacheHit);
    EXPECT_EQ(second.concreteTraversal, first.concreteTraversal);

    // Auto and explicit-skeleton requests must never share a key.
    service::SynthOutcome explicit_skel = svc.runNow(renderRequest());
    ASSERT_TRUE(explicit_skel.ok);
    EXPECT_NE(explicit_skel.keyDigest, first.keyDigest);
}

TEST(SynthService, InfeasibleProblemFailsWithoutPoisoningTheCache)
{
    service::ServiceConfig config;
    config.workers = 2;
    service::SynthService svc(config);

    // Pre-order skeleton cannot satisfy bottom-up dependencies.
    const char* preorder = R"(
traversal layout {
    case Inner { ??; ??; ??; ??; recur fc; recur nx; }
    case Leaf { ??; ??; ??; ??; recur nx; }
}
)";
    service::SynthOutcome failed =
        svc.runNow(renderRequest(testutil::kRenderGrammarSrc, preorder));
    EXPECT_FALSE(failed.ok);
    EXPECT_FALSE(failed.failure.empty());
    EXPECT_EQ(failed.provenance, service::Provenance::FreshRun);

    // Failures are not cached: a retry runs fresh, not from cache.
    service::SynthOutcome retry =
        svc.runNow(renderRequest(testutil::kRenderGrammarSrc, preorder));
    EXPECT_FALSE(retry.ok);
    EXPECT_EQ(retry.provenance, service::Provenance::FreshRun);
    EXPECT_EQ(svc.stats().cacheHits, 0u);
    EXPECT_EQ(svc.stats().failures, 2u);
    EXPECT_EQ(svc.cache().size(), 0u);
}

TEST(SynthService, RunBatchSynthesizesAndExecutesAForest)
{
    service::ServiceConfig config;
    config.workers = 2;
    service::SynthService svc(config);

    service::BatchRequest batch;
    batch.synth = renderRequest();
    batch.gen.targetNodes = 300;
    batch.gen.seed = 11;
    batch.batchCount = 5;

    service::BatchOutcome first = svc.runBatch(batch);
    ASSERT_TRUE(first.ok) << first.failure;
    EXPECT_TRUE(first.synth.ok);
    EXPECT_EQ(first.synth.provenance, service::Provenance::FreshRun);
    EXPECT_GE(first.nodes, 5u * 300u);
    EXPECT_EQ(first.stats.nodeVisits, first.nodes);
    EXPECT_GT(first.executeSeconds, 0.0);

    // Same request again: synthesis is served from the cache, and the
    // deterministic generator reproduces the same forest bit for bit.
    service::BatchOutcome again = svc.submitBatch(batch).get();
    ASSERT_TRUE(again.ok) << again.failure;
    EXPECT_EQ(again.synth.provenance, service::Provenance::CacheHit);
    EXPECT_EQ(again.nodes, first.nodes);
    EXPECT_EQ(again.checksum, first.checksum);

    service::BatchRequest bad = batch;
    bad.synth.grammarSrc = "interface Broken {";
    service::BatchOutcome failed = svc.runBatch(bad);
    EXPECT_FALSE(failed.ok);
    EXPECT_FALSE(failed.failure.empty());
}

TEST(SynthService, MalformedRequestFailsGracefully)
{
    service::ServiceConfig config;
    config.workers = 1;
    service::SynthService svc(config);

    service::SynthRequest bad;
    bad.grammarSrc = "interface Broken {";
    service::SynthOutcome outcome = svc.submit(bad).get();
    EXPECT_FALSE(outcome.ok);
    EXPECT_FALSE(outcome.failure.empty());
    EXPECT_EQ(svc.stats().failures, 1u);
}

TEST(SynthService, LeaderCrashResolvesEveryFutureAndDrainReturns)
{
    // A leader dying on a non-Error exception (here: injected from the
    // onLeaderSynthesis hook) must not strand its followers on the
    // flight or leave broken promises behind — drain() has to return
    // with every future resolved to a failure outcome.
    std::atomic<service::SynthService*> svcPtr{nullptr};
    std::atomic<bool> thrown{false};

    service::ServiceConfig config;
    config.workers = 4;
    config.onLeaderSynthesis = [&] {
        if (thrown.exchange(true))
            return;
        // Hold the flight open until at least two duplicates joined,
        // then die: the RAII publisher must fail them over.
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        service::SynthService* svc = svcPtr.load();
        while (svc->stats().joinedInFlight < 2 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        throw std::runtime_error("injected leader crash");
    };
    service::SynthService svc(config);
    svcPtr.store(&svc);

    std::vector<std::future<service::SynthOutcome>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(svc.submit(renderRequest()));

    svc.drain(); // must return: no dropped futures, no stuck followers

    size_t crashed = 0, abandoned = 0, recovered = 0;
    for (auto& future : futures) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        service::SynthOutcome outcome = future.get();
        if (!outcome.ok) {
            if (outcome.failure.find("injected leader crash") !=
                std::string::npos)
                ++crashed;
            else if (outcome.failure.find("leader abandoned") !=
                     std::string::npos)
                ++abandoned;
        } else {
            ++recovered; // raced in after the flight died: fresh run
        }
    }
    EXPECT_EQ(crashed, 1u);
    EXPECT_GE(abandoned, 2u);
    EXPECT_EQ(crashed + abandoned + recovered, 4u);

    // The service stays usable: the failed flight was unregistered, so
    // a retry leads a fresh (now non-throwing) run.
    service::SynthOutcome retry = svc.runNow(renderRequest());
    EXPECT_TRUE(retry.ok) << retry.failure;
}

TEST(SynthService, DrainResolvesQueuedBatchFutures)
{
    // drain() with batch jobs still queued behind a slow leader must
    // resolve every submitBatch future (this used to drop them when a
    // task escaped with an exception).
    std::atomic<bool> release{false};
    service::ServiceConfig config;
    config.workers = 1;
    config.onLeaderSynthesis = [&] {
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    service::SynthService svc(config);

    service::BatchRequest batch;
    batch.synth = renderRequest();
    batch.gen.targetNodes = 200;
    batch.batchCount = 2;

    std::vector<std::future<service::BatchOutcome>> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(svc.submitBatch(batch));

    // One job is in flight (holding the single worker), two are queued.
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        release.store(true);
    });
    svc.drain();
    releaser.join();

    for (auto& future : futures) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        service::BatchOutcome outcome = future.get();
        EXPECT_TRUE(outcome.ok) << outcome.failure;
        EXPECT_GE(outcome.nodes, 2u * 200u);
    }
    EXPECT_EQ(svc.stats().freshRuns, 1u);
}

TEST(ScheduleCache, WarmLoadRecordsTelemetryCounters)
{
    fs::path dir = fs::temp_directory_path() / "hecate_warmload_test";
    fs::remove_all(dir);

    // Persist one real entry, then warm-load it into a fresh cache
    // under a telemetry sink.
    {
        service::ServiceConfig config;
        config.workers = 1;
        service::SynthService svc(config);
        ASSERT_TRUE(svc.runNow(renderRequest()).ok);
        ASSERT_EQ(svc.cache().save(dir.string()), 1u);
    }

    service::ScheduleCache cache;
    obs::Telemetry telemetry;
    service::ScheduleCache::LoadReport report =
        service::warmLoad(cache, dir.string(), telemetry);
    EXPECT_EQ(report.loaded, 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(telemetry.counter("cache.warm.entries"), 1.0);
    EXPECT_EQ(telemetry.counter("cache.warm.skipped"), 0.0);
    EXPECT_GT(telemetry.counter("cache.warm.ms"), 0.0);
    EXPECT_EQ(telemetry.spanCount("cache.warm"), 1u);

    // Missing directories warm-load to an empty report, not an error.
    service::ScheduleCache empty;
    obs::Telemetry telemetry2;
    report = service::warmLoad(empty, (dir / "missing").string(),
                               telemetry2);
    EXPECT_EQ(report.loaded, 0u);
    EXPECT_EQ(telemetry2.counter("cache.warm.entries"), 0.0);
    fs::remove_all(dir);
}

} // namespace
} // namespace hecate
