/**
 * @file
 * Tests for semantic analysis (sem/) and runtime trees (tree/):
 * resolution, validation errors, sampling, and bounded enumeration.
 */

#include <gtest/gtest.h>

#include "testutil.hpp"
#include "tree/enumerate.hpp"
#include "tree/tree.hpp"

namespace hecate {
namespace {

using testutil::renderGrammar;
using testutil::vectorRenderGrammar;

TEST(Sem, ResolvesRenderGrammar)
{
    sem::Grammar grammar = renderGrammar();
    ASSERT_EQ(grammar.classes().size(), 2u);
    ASSERT_EQ(grammar.interfaces().size(), 1u);
    EXPECT_EQ(grammar.ruleCount(), 8u);

    sem::ClassId inner = grammar.findClass("Inner");
    ASSERT_NE(inner, sem::kInvalidId);
    EXPECT_EQ(grammar.cls(inner).children.size(), 2u);

    sem::RuleId w_rule = grammar.findRule(inner, "w");
    ASSERT_NE(w_rule, sem::kInvalidId);
    const sem::RuleInfo& info = grammar.rule(w_rule);
    // self.w := max(self.w0, fc.w1): reads self.w0 and fc.w1
    ASSERT_EQ(info.reads.size(), 2u);
    EXPECT_EQ(info.reads[0].kind, sem::ReadDep::Kind::SelfAttr);
    EXPECT_EQ(info.reads[1].kind, sem::ReadDep::Kind::ChildAttr);
    EXPECT_EQ(info.pass, "calcWidth");
}

TEST(Sem, ResolvesFoldRules)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sem::ClassId inner = grammar.findClass("Inner");
    sem::RuleId w_rule = grammar.findRule(inner, "w");
    const sem::RuleInfo& info = grammar.rule(w_rule);
    EXPECT_TRUE(info.isFold);
    EXPECT_EQ(info.foldChild, grammar.cls(inner).childByName.at("cs"));
    bool has_elem = false;
    for (const auto& dep : info.reads)
        has_elem |= dep.kind == sem::ReadDep::Kind::CollElem;
    EXPECT_TRUE(has_elem);
}

TEST(Sem, RuleNamesAndPasses)
{
    sem::Grammar grammar = renderGrammar();
    sem::ClassId inner = grammar.findClass("Inner");
    EXPECT_EQ(grammar.ruleName(grammar.findRule(inner, "h1")), "Inner.h1");
    auto passes = grammar.passNames();
    ASSERT_EQ(passes.size(), 2u);
    EXPECT_EQ(passes[0], "calcWidth");
    EXPECT_EQ(passes[1], "calcHeight");
}

TEST(Sem, RejectsDuplicateRuleForAttribute)
{
    const char* src = R"(
interface I { input a : int; output b : int; }
class C : I { rules { self.b := self.a; self.b := self.a; } }
)";
    EXPECT_THROW(sem::Grammar::analyze(lang::parseGrammar(src)), UserError);
}

TEST(Sem, RejectsMissingRule)
{
    const char* src = R"(
interface I { input a : int; output b, c : int; }
class C : I { rules { self.b := self.a; } }
)";
    EXPECT_THROW(sem::Grammar::analyze(lang::parseGrammar(src)), UserError);
}

TEST(Sem, RejectsSelfDependentRule)
{
    const char* src = R"(
interface I { input a : int; output b : int; }
class C : I { rules { self.b := self.b + self.a; } }
)";
    EXPECT_THROW(sem::Grammar::analyze(lang::parseGrammar(src)), UserError);
}

TEST(Sem, RejectsCollectionReadOutsideFold)
{
    const char* src = R"(
interface I { input a : int; output b : int; }
class C : I {
    children { cs : [I]; }
    rules { self.b := cs.b; }
}
)";
    EXPECT_THROW(sem::Grammar::analyze(lang::parseGrammar(src)), UserError);
}

TEST(Sem, RejectsWritesToInputs)
{
    const char* src = R"(
interface I { input a : int; output b : int; }
class C : I { rules { self.a := 1; self.b := 2; } }
)";
    EXPECT_THROW(sem::Grammar::analyze(lang::parseGrammar(src)), UserError);
}

TEST(Sem, RejectsUnknownChildType)
{
    const char* src = R"(
interface I { input a : int; output b : int; }
class C : I { children { k : Bogus; } rules { self.b := self.a; } }
)";
    EXPECT_THROW(sem::Grammar::analyze(lang::parseGrammar(src)), UserError);
}

TEST(Tree, BuildAndValidateManually)
{
    sem::Grammar grammar = renderGrammar();
    tree::Tree t(grammar);
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");

    tree::NodeId root = t.addNode(inner);
    tree::NodeId child = t.addNode(leaf);
    sem::ChildId fc = grammar.cls(inner).childByName.at("fc");
    t.setScalar(root, fc, child);
    t.setRoot(root);
    EXPECT_NO_THROW(t.validate());
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.shapeString(), "Inner(nx=_,fc=Leaf(nx=_))");
}

TEST(Tree, ValidateCatchesSharing)
{
    sem::Grammar grammar = renderGrammar();
    tree::Tree t(grammar);
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");
    tree::NodeId root = t.addNode(inner);
    tree::NodeId shared = t.addNode(leaf);
    t.setScalar(root, grammar.cls(inner).childByName.at("fc"), shared);
    t.setScalar(root, grammar.cls(inner).childByName.at("nx"), shared);
    t.setRoot(root);
    EXPECT_THROW(t.validate(), UserError);
}

TEST(Tree, SamplingProducesValidTrees)
{
    sem::Grammar grammar = renderGrammar();
    Rng rng(5);
    tree::SampleConfig config;
    config.maxDepth = 5;
    for (int i = 0; i < 20; ++i) {
        tree::Tree t = tree::sampleTree(grammar, 0, config, rng);
        EXPECT_NO_THROW(t.validate());
        EXPECT_GE(t.size(), 1u);
    }
}

TEST(Tree, SamplingCollectionsRespectsArity)
{
    sem::Grammar grammar = vectorRenderGrammar();
    Rng rng(6);
    tree::SampleConfig config;
    config.maxDepth = 3;
    config.maxCollection = 2;
    for (int i = 0; i < 20; ++i) {
        tree::Tree t = tree::sampleTree(grammar, 0, config, rng);
        t.validate();
        for (const tree::Node& node : t.nodes()) {
            for (const auto& slot : node.children)
                EXPECT_LE(slot.elems.size(), 2u);
        }
    }
}

TEST(Enumerate, CoversDepthOneAndTwo)
{
    sem::Grammar grammar = renderGrammar();
    tree::EnumConfig config;
    config.maxDepth = 2;
    auto shapes = tree::enumerateShapes(grammar, 0, config);
    ASSERT_FALSE(shapes.empty());
    // Smallest shapes first.
    EXPECT_EQ(shapes.front()->nodeCount, 1u);
    for (size_t i = 1; i < shapes.size(); ++i)
        EXPECT_GE(shapes[i]->nodeCount, shapes[i - 1]->nodeCount);
    // depth 2 of this grammar: max 3 nodes (Inner with two leaf children)
    uint32_t max_nodes = 0;
    for (const auto& shape : shapes)
        max_nodes = std::max(max_nodes, shape->nodeCount);
    EXPECT_EQ(max_nodes, 3u);
}

TEST(Enumerate, InstantiationValidates)
{
    sem::Grammar grammar = vectorRenderGrammar();
    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = 64;
    auto shapes = tree::enumerateShapes(grammar, 0, config);
    ASSERT_FALSE(shapes.empty());
    for (const auto& shape : shapes) {
        tree::Tree t = tree::instantiate(grammar, *shape, 3);
        EXPECT_NO_THROW(t.validate());
        EXPECT_EQ(t.size(), shape->nodeCount);
    }
}

TEST(Enumerate, RespectsLimit)
{
    sem::Grammar grammar = renderGrammar();
    tree::EnumConfig config;
    config.maxDepth = 4;
    config.limit = 10;
    auto shapes = tree::enumerateShapes(grammar, 0, config);
    EXPECT_LE(shapes.size(), 10u);
}

} // namespace
} // namespace hecate
