/**
 * @file
 * Telemetry tests: RAII span nesting (same-thread and across threads,
 * including the parallel verifier's worker spans), counter merge
 * determinism under absorb(), and golden-schema checks for the Chrome
 * trace-event and flat stats JSON exporters.
 */

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

using testutil::renderGrammar;
using testutil::renderSkeleton;

const obs::SpanRecord*
findSpan(const std::vector<obs::SpanRecord>& spans, const std::string& name)
{
    for (const obs::SpanRecord& span : spans) {
        if (span.name == name)
            return &span;
    }
    return nullptr;
}

TEST(Telemetry, SpanNestingSameThread)
{
    obs::Telemetry telemetry;
    {
        obs::Span outer = telemetry.span("outer", "stage");
        {
            obs::Span inner = telemetry.span("inner", "solver", 7);
        }
    }
    std::vector<obs::SpanRecord> spans = telemetry.spans();
    ASSERT_EQ(spans.size(), 2u);

    const obs::SpanRecord* outer = findSpan(spans, "outer");
    const obs::SpanRecord* inner = findSpan(spans, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->parent, 0u);
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(inner->index, 7);
    EXPECT_EQ(outer->category, "stage");
    EXPECT_EQ(inner->category, "solver");
    EXPECT_EQ(outer->tid, inner->tid);
}

TEST(Telemetry, SiblingSpansShareAParent)
{
    obs::Telemetry telemetry;
    {
        obs::Span round = telemetry.span("round", "phase", 0);
        { obs::Span a = telemetry.span("encode", "solver"); }
        { obs::Span b = telemetry.span("solve", "solver"); }
    }
    std::vector<obs::SpanRecord> spans = telemetry.spans();
    const obs::SpanRecord* round = findSpan(spans, "round");
    const obs::SpanRecord* encode = findSpan(spans, "encode");
    const obs::SpanRecord* solve = findSpan(spans, "solve");
    ASSERT_NE(round, nullptr);
    ASSERT_NE(encode, nullptr);
    ASSERT_NE(solve, nullptr);
    EXPECT_EQ(encode->parent, round->id);
    EXPECT_EQ(solve->parent, round->id);
}

TEST(Telemetry, SpanNestingAcrossThreads)
{
    constexpr size_t kThreads = 4;
    obs::Telemetry telemetry;
    {
        obs::Span root = telemetry.span("root", "stage");
        std::vector<std::thread> workers;
        for (size_t i = 0; i < kThreads; ++i) {
            workers.emplace_back([&telemetry, i] {
                obs::Span outer = telemetry.span(
                    "worker", "verify", static_cast<int64_t>(i));
                obs::Span inner = telemetry.span("task", "phase");
            });
        }
        for (std::thread& worker : workers)
            worker.join();
    }

    std::vector<obs::SpanRecord> spans = telemetry.spans();
    ASSERT_EQ(spans.size(), 1 + 2 * kThreads);
    const obs::SpanRecord* root = findSpan(spans, "root");
    ASSERT_NE(root, nullptr);

    // Each thread nests privately: its "task" hangs off its own
    // "worker". Parenting never leaks across threads, so the workers
    // are roots (the main thread's frame is not theirs to adopt).
    std::set<uint32_t> workerTids;
    for (const obs::SpanRecord& span : spans) {
        if (span.name != "worker")
            continue;
        workerTids.insert(span.tid);
        EXPECT_NE(span.tid, root->tid);
        EXPECT_EQ(span.parent, 0u);
        bool found = false;
        for (const obs::SpanRecord& task : spans) {
            if (task.name == "task" && task.tid == span.tid &&
                task.parent == span.id)
                found = true;
        }
        EXPECT_TRUE(found) << "worker " << span.index
                           << " has no nested task span";
    }
    EXPECT_EQ(workerTids.size(), kThreads);
}

TEST(Telemetry, ParallelVerifyWorkersSpanPerThread)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::SynthesisResult result = synth::synthesize(skeleton, 0, {},
                                                      config);
    ASSERT_TRUE(result.schedule.has_value()) << result.failure;

    obs::Telemetry telemetry;
    synth::Verifier verifier(skeleton, 0, config.verify, config.seed,
                             /*threads=*/2);
    ASSERT_TRUE(verifier.run(*result.schedule, telemetry).ok);

    // One span per worker share. The shares land on however many
    // threads the pool actually dispatches to (a small host may run
    // both on one), so assert the spans and their categories, not a
    // distinct-tid count.
    EXPECT_EQ(telemetry.spanCount("verify.worker"), 2u);
    for (const obs::SpanRecord& span : telemetry.spans()) {
        if (span.name != "verify.worker")
            continue;
        EXPECT_EQ(span.category, "verify");
        EXPECT_GT(span.tid, 0u);
    }
}

TEST(Telemetry, CounterMergeIsDeterministic)
{
    obs::Telemetry a, b;
    a.add("x", 1.0);
    a.add("y", 2.0);
    b.add("x", 10.0);
    b.add("z", 5.0);

    obs::Telemetry ab, ba;
    ab.absorb(a);
    ab.absorb(b);
    ba.absorb(b);
    ba.absorb(a);

    EXPECT_EQ(ab.counters(), ba.counters());
    EXPECT_EQ(ab.counter("x"), 11.0);
    EXPECT_EQ(ab.counter("y"), 2.0);
    EXPECT_EQ(ab.counter("z"), 5.0);
    EXPECT_EQ(ab.statsJson(), ba.statsJson());
}

TEST(Telemetry, AbsorbCarriesSpansAndDurations)
{
    obs::Telemetry parent;
    obs::Telemetry child;
    { obs::Span span = child.span("encode", "solver"); }
    { obs::Span span = child.span("encode", "solver"); }

    parent.absorb(child);
    EXPECT_EQ(parent.spanCount("encode"), 2u);
    // Durations are copied verbatim; only start times are rebased.
    EXPECT_EQ(parent.spanSeconds("encode"), child.spanSeconds("encode"));
}

TEST(Telemetry, NilSinkRecordsNothing)
{
    obs::Telemetry& nil = obs::Telemetry::nil();
    EXPECT_FALSE(nil.enabled());
    {
        obs::Span span = nil.span("ignored", "stage");
    }
    nil.add("ignored", 5.0);
    EXPECT_EQ(nil.counter("ignored"), 0.0);
    EXPECT_TRUE(nil.spans().empty());
    EXPECT_TRUE(nil.counters().empty());
}

TEST(Telemetry, StatsJsonGoldenCountersOnly)
{
    // With no spans, the stats export is fully deterministic.
    obs::Telemetry telemetry;
    telemetry.add("ilp.constraints", 42.0);
    telemetry.add("plan_cache.hits", 7.0);
    telemetry.set("exec.ratio", 2.5);

    EXPECT_EQ(telemetry.statsJson(),
              "{\n"
              "  \"counters\": {\n"
              "    \"exec.ratio\": 2.5,\n"
              "    \"ilp.constraints\": 42,\n"
              "    \"plan_cache.hits\": 7\n"
              "  },\n"
              "  \"stages\": {\n"
              "  },\n"
              "  \"spans\": {\n"
              "  }\n"
              "}\n");
}

TEST(Telemetry, StatsJsonAggregatesSpansAndStages)
{
    obs::Telemetry telemetry;
    { obs::Span span = telemetry.span("parse", "stage"); }
    { obs::Span span = telemetry.span("encode", "solver"); }
    { obs::Span span = telemetry.span("encode", "solver"); }

    std::string json = telemetry.statsJson();
    // "parse" is a stage (and a span); "encode" aggregates only under
    // spans, with its two runs counted.
    EXPECT_NE(json.find("\"stages\": {\n    \"parse\": {\"seconds\": "),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"encode\": {\"seconds\": "), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2}"), std::string::npos);
    EXPECT_EQ(json.find("\"stages\": {\n    \"encode\""),
              std::string::npos);
}

TEST(Telemetry, ChromeTraceGoldenSchema)
{
    obs::Telemetry telemetry;
    {
        obs::Span outer = telemetry.span("synthesize", "stage");
        obs::Span round = telemetry.span("cegis.round", "phase", 0);
    }
    std::string json = telemetry.chromeTraceJson();

    // Envelope.
    EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u) << json;
    EXPECT_NE(json.find("], \"displayTimeUnit\": \"ms\"}"),
              std::string::npos);

    // One complete ("X") event per span, with tid/ts/dur/cat/args.
    EXPECT_NE(json.find("\"ph\": \"X\", \"pid\": 1, \"tid\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"synthesize\", \"cat\": \"stage\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"cegis.round\", \"cat\": \"phase\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ts\": "), std::string::npos);
    EXPECT_NE(json.find("\"dur\": "), std::string::npos);

    // The args block carries the span tree: the round's parent is the
    // stage's id, and its index survives the export.
    std::vector<obs::SpanRecord> spans = telemetry.spans();
    const obs::SpanRecord* outer = findSpan(spans, "synthesize");
    const obs::SpanRecord* round = findSpan(spans, "cegis.round");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(round, nullptr);
    char args[96];
    std::snprintf(args, sizeof(args),
                  "\"args\": {\"id\": %llu, \"parent\": %llu, "
                  "\"index\": 0}",
                  static_cast<unsigned long long>(round->id),
                  static_cast<unsigned long long>(outer->id));
    EXPECT_NE(json.find(args), std::string::npos) << json;
}

TEST(Telemetry, MovedFromSpanDoesNotDoubleRecord)
{
    obs::Telemetry telemetry;
    {
        obs::Span span = telemetry.span("once", "phase");
        obs::Span moved = std::move(span);
        moved.end();
        moved.end(); // idempotent
    }
    EXPECT_EQ(telemetry.spanCount("once"), 1u);
}

} // namespace
} // namespace hecate
