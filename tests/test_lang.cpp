/**
 * @file
 * Unit tests for the L_a / L_t front end: lexer, parsers, printers,
 * and the running example of the paper (Figs. 3 and 4).
 */

#include <gtest/gtest.h>

#include "lang/lexer.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"

namespace hecate {
namespace {

using lang::lex;
using lang::parseGrammar;
using lang::parseTraversal;

/** The paper's Fig. 3 grammar, verbatim modulo surface syntax. */
const char* kRenderGrammar = R"(
interface Box {
    input w0, h0 : int;
    output w1, w, h1, h : int;
}
class Inner : Box {
    children {
        nx : Optional[Box];
        fc : Optional[Box];
    }
    rules {
        self.w  := max(self.w0, fc.w1);
        self.w1 := max(self.w, nx.w1);
        self.h  := max(self.h0, fc.h1);
        self.h1 := self.h + nx.h1;
    }
}
class Leaf : Box {
    children {
        nx : Optional[Box];
    }
    rules {
        self.w  := self.w0;
        self.w1 := max(self.w, nx.w1);
        self.h  := self.h0;
        self.h1 := self.h + nx.h1;
    }
}
)";

/** The paper's Fig. 4(a) symbolic traversal. */
const char* kSymbolicLayout = R"(
traversal layout {
    case Inner {
        recur fc;
        recur nx;
        ??; ??; ??; ??;
    }
    case Leaf {
        recur nx;
        ??; ??; ??; ??;
    }
}
)";

TEST(Lexer, TokenizesPunctuationAndIdents)
{
    auto toks = lex("self.w := max(self.w0, fc.w1);");
    ASSERT_EQ(toks.back().kind, lang::TokenKind::End);
    EXPECT_EQ(toks[0].kind, lang::TokenKind::Ident);
    EXPECT_EQ(toks[0].text, "self");
    EXPECT_EQ(toks[1].kind, lang::TokenKind::Dot);
    EXPECT_EQ(toks[3].kind, lang::TokenKind::Assign);
}

TEST(Lexer, TracksLineNumbers)
{
    auto toks = lex("a\nb\n  c");
    EXPECT_EQ(toks[0].loc.line, 1u);
    EXPECT_EQ(toks[1].loc.line, 2u);
    EXPECT_EQ(toks[2].loc.line, 3u);
    EXPECT_EQ(toks[2].loc.column, 3u);
}

TEST(Lexer, SkipsLineAndBlockComments)
{
    auto toks = lex("a // comment\n/* block\nspanning */ b");
    ASSERT_EQ(toks.size(), 3u); // a, b, End
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, RejectsStrayCharacters)
{
    EXPECT_THROW(lex("a @ b"), UserError);
    EXPECT_THROW(lex("a = b"), UserError);
    EXPECT_THROW(lex("/* unterminated"), UserError);
}

TEST(Lexer, LexesIntegers)
{
    auto toks = lex("42 007");
    EXPECT_EQ(toks[0].intValue, 42);
    EXPECT_EQ(toks[1].intValue, 7);
}

TEST(GrammarParser, ParsesRenderTreeExample)
{
    ast::GrammarAst unit = parseGrammar(kRenderGrammar);
    ASSERT_EQ(unit.interfaces.size(), 1u);
    EXPECT_EQ(unit.interfaces[0].name, "Box");
    ASSERT_EQ(unit.interfaces[0].attrs.size(), 6u);
    EXPECT_TRUE(unit.interfaces[0].attrs[0].isInput);
    EXPECT_FALSE(unit.interfaces[0].attrs[2].isInput);

    ASSERT_EQ(unit.classes.size(), 2u);
    const auto& inner = unit.classes[0];
    EXPECT_EQ(inner.name, "Inner");
    EXPECT_EQ(inner.interface, "Box");
    ASSERT_EQ(inner.children.size(), 2u);
    EXPECT_TRUE(inner.children[0].optional);
    EXPECT_FALSE(inner.children[0].collection);
    ASSERT_EQ(inner.rules.size(), 4u);
    EXPECT_EQ(inner.rules[0].lhs.str(), "self.w");
}

TEST(GrammarParser, ParsesCollectionsAndFolds)
{
    const char* src = R"(
interface Box { input w0 : int; output w : int; }
class Inner : Box {
    children { cs : [Box]; }
    rules { self.w := fold(max, self.w0, cs.w); }
}
)";
    ast::GrammarAst unit = parseGrammar(src);
    ASSERT_EQ(unit.classes.size(), 1u);
    EXPECT_TRUE(unit.classes[0].children[0].collection);
    const auto& rule = unit.classes[0].rules[0];
    EXPECT_EQ(rule.rhs->kind, ast::ExprKind::Fold);
    EXPECT_EQ(rule.rhs->op, "max");
    EXPECT_EQ(rule.rhs->select.str(), "cs.w");
}

TEST(GrammarParser, ParsesPassTags)
{
    const char* src = R"(
interface I { input a : int; output b, c : int; }
class C : I {
    rules(first)  { self.b := self.a; }
    rules(second) { self.c := self.b; }
}
)";
    ast::GrammarAst unit = parseGrammar(src);
    ASSERT_EQ(unit.classes[0].rules.size(), 2u);
    EXPECT_EQ(unit.classes[0].rules[0].pass, "first");
    EXPECT_EQ(unit.classes[0].rules[1].pass, "second");
}

TEST(GrammarParser, ParsesOperatorPrecedence)
{
    const char* src = R"(
interface I { input a, b, c : int; output d : int; }
class C : I { rules { self.d := self.a + self.b * self.c; } }
)";
    ast::GrammarAst unit = parseGrammar(src);
    const auto& rhs = *unit.classes[0].rules[0].rhs;
    ASSERT_EQ(rhs.kind, ast::ExprKind::Binary);
    EXPECT_EQ(rhs.op, "+");
    EXPECT_EQ(rhs.args[1]->op, "*");
}

TEST(GrammarParser, ParsesIfThenElseAndComparisons)
{
    const char* src = R"(
interface I { input a, b : int; output d : int; }
class C : I { rules { self.d := if self.a < self.b then self.a else self.b; } }
)";
    ast::GrammarAst unit = parseGrammar(src);
    const auto& rhs = *unit.classes[0].rules[0].rhs;
    ASSERT_EQ(rhs.kind, ast::ExprKind::If);
    EXPECT_EQ(rhs.args[0]->op, "<");
}

TEST(GrammarParser, RejectsSyntaxErrors)
{
    EXPECT_THROW(parseGrammar("interface I {"), UserError);
    EXPECT_THROW(parseGrammar("class C : I { junk }"), UserError);
    EXPECT_THROW(parseGrammar(R"(
interface I { input a : int; output b : int; }
class C : I { rules { self.b := a; } }
)"),
                 UserError); // bare identifier read
}

TEST(TraversalParser, ParsesSymbolicLayout)
{
    ast::TraversalDecl trav = parseTraversal(kSymbolicLayout);
    EXPECT_EQ(trav.name, "layout");
    ASSERT_EQ(trav.cases.size(), 2u);
    EXPECT_EQ(trav.cases[0].className, "Inner");
    ASSERT_EQ(trav.cases[0].stmts.size(), 6u);
    EXPECT_EQ(trav.cases[0].stmts[0]->kind, ast::TStmtKind::Recur);
    EXPECT_EQ(trav.cases[0].stmts[0]->child, "fc");
    EXPECT_EQ(trav.cases[0].stmts[2]->kind, ast::TStmtKind::Hole);
}

TEST(TraversalParser, ParsesConcreteEvalForm)
{
    const char* src = R"(
traversal layout {
    case Leaf { recur nx; eval self.w; eval w1; }
}
)";
    ast::TraversalDecl trav = parseTraversal(src);
    EXPECT_EQ(trav.cases[0].stmts[1]->kind, ast::TStmtKind::Eval);
    EXPECT_EQ(trav.cases[0].stmts[1]->evalAttr, "w");
    EXPECT_EQ(trav.cases[0].stmts[2]->evalAttr, "w1");
}

TEST(TraversalParser, ParsesIterateAndParallel)
{
    const char* src = R"(
traversal layout {
    case Inner {
        parallel cs { recur cs; }
        iterate cs { ??; ??; }
        ??;
    }
}
)";
    ast::TraversalDecl trav = parseTraversal(src);
    const auto& stmts = trav.cases[0].stmts;
    ASSERT_EQ(stmts.size(), 3u);
    EXPECT_EQ(stmts[0]->kind, ast::TStmtKind::Parallel);
    EXPECT_EQ(stmts[0]->child, "cs");
    EXPECT_EQ(stmts[1]->kind, ast::TStmtKind::Iterate);
    ASSERT_EQ(stmts[1]->body.size(), 2u);
    EXPECT_EQ(stmts[1]->body[0]->kind, ast::TStmtKind::Hole);
}

TEST(TraversalParser, ParsesStatementFormParallel)
{
    const char* src = R"(
traversal t { case C { parallel { recur fc; recur nx; } } }
)";
    ast::TraversalDecl trav = parseTraversal(src);
    const auto& par = *trav.cases[0].stmts[0];
    EXPECT_EQ(par.kind, ast::TStmtKind::Parallel);
    EXPECT_TRUE(par.child.empty());
    ASSERT_EQ(par.body.size(), 2u);
}

TEST(Printer, GrammarRoundTrips)
{
    ast::GrammarAst unit = parseGrammar(kRenderGrammar);
    std::string printed = lang::printGrammar(unit);
    ast::GrammarAst reparsed = parseGrammar(printed);
    EXPECT_EQ(lang::printGrammar(reparsed), printed);
}

TEST(Printer, TraversalRoundTrips)
{
    ast::TraversalDecl trav = parseTraversal(kSymbolicLayout);
    std::string printed = lang::printTraversal(trav);
    ast::TraversalDecl reparsed = parseTraversal(printed);
    EXPECT_EQ(lang::printTraversal(reparsed), printed);
}

TEST(Printer, ExprPrintsWithExplicitParens)
{
    const char* src = R"(
interface I { input a, b, c : int; output d : int; }
class C : I { rules { self.d := self.a + self.b * self.c; } }
)";
    ast::GrammarAst unit = parseGrammar(src);
    EXPECT_EQ(lang::printExpr(*unit.classes[0].rules[0].rhs),
              "(self.a + (self.b * self.c))");
}

TEST(Ast, CloneIsDeep)
{
    ast::TraversalDecl trav = parseTraversal(kSymbolicLayout);
    ast::TraversalDecl copy = trav.clone();
    copy.cases[0].stmts.clear();
    EXPECT_EQ(trav.cases[0].stmts.size(), 6u);
}

} // namespace
} // namespace hecate
