/**
 * @file
 * Tests for the C++ code generator: structural checks on the emitted
 * source, plus an end-to-end check that the generated code compiles
 * with the host toolchain and computes the same values as the
 * interpreter on the paper's Fig. 2 tree.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/cpp_emitter.hpp"
#include "exec/interp.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

using testutil::renderGrammar;
using testutil::renderSkeleton;
using testutil::vectorRenderGrammar;

sched::Schedule
synthesizeRenderSchedule(const sched::Skeleton& skeleton)
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    EXPECT_TRUE(result.schedule.has_value());
    return *result.schedule;
}

TEST(Codegen, EmitsExpectedStructure)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sched::Schedule schedule = synthesizeRenderSchedule(skeleton);

    std::string code = codegen::emitCpp(skeleton, schedule);
    EXPECT_NE(code.find("struct Box"), std::string::npos);
    EXPECT_NE(code.find("struct Inner : Box"), std::string::npos);
    EXPECT_NE(code.find("struct Leaf : Box"), std::string::npos);
    EXPECT_NE(code.find("virtual void fusedCalc() = 0;"),
              std::string::npos);
    EXPECT_NE(code.find("fc->fusedCalc();"), std::string::npos);
    // Null-guarded optional child reads.
    EXPECT_NE(code.find("fc != nullptr ? fc->"), std::string::npos);
}

TEST(Codegen, RejectsIncompleteSchedules)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sched::Schedule empty;
    empty.bySlot.assign(skeleton.slotCount(), std::nullopt);
    EXPECT_THROW(codegen::emitCpp(skeleton, empty), UserError);
}

TEST(Codegen, VectorGrammarEmitsFusedLoop)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorSymbolicSrc));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());

    std::string code = codegen::emitCpp(skeleton, *result.schedule);
    EXPECT_NE(code.find("std::vector<Box*> cs;"), std::string::npos);
    // Fused accumulation loop (Fig. 14(b) shape).
    EXPECT_NE(code.find("for (auto* hc_it : cs) {"), std::string::npos);
    EXPECT_NE(code.find("int64_t acc_"), std::string::npos);
}

TEST(Codegen, ParallelSkeletonEmitsAnnotatedLoop)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());

    std::string code = codegen::emitCpp(skeleton, *result.schedule);
    // The paper's Fig. 14(c) "de-fused" shape: a `// parallel` loop of
    // child visits followed by a sequential accumulation loop.
    EXPECT_NE(code.find("// parallel"), std::string::npos);
}

/**
 * Compile the generated code with the host compiler and run it on the
 * Fig. 2 tree; its outputs must equal the interpreter's.
 */
TEST(Codegen, GeneratedCodeCompilesAndMatchesInterpreter)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sched::Schedule schedule = synthesizeRenderSchedule(skeleton);
    std::string generated = codegen::emitCpp(skeleton, schedule);

    // Interpreter ground truth on the Fig. 2 tree with fixed inputs.
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");
    tree::Tree t(grammar);
    tree::NodeId n0 = t.addNode(inner);
    tree::NodeId n1 = t.addNode(inner);
    tree::NodeId n2 = t.addNode(leaf);
    tree::NodeId n3 = t.addNode(leaf);
    tree::NodeId n4 = t.addNode(leaf);
    t.setScalar(n0, grammar.cls(inner).childByName.at("fc"), n1);
    t.setScalar(n1, grammar.cls(inner).childByName.at("nx"), n2);
    t.setScalar(n1, grammar.cls(inner).childByName.at("fc"), n3);
    t.setScalar(n3, grammar.cls(leaf).childByName.at("nx"), n4);
    t.setRoot(n0);
    const sem::InterfaceInfo& box = grammar.iface(0);
    sem::AttrId w0 = box.attrByName.at("w0");
    sem::AttrId h0 = box.attrByName.at("h0");
    for (tree::NodeId n : {n0, n1, n2, n3, n4}) {
        t.setInput(n, w0, 10 + static_cast<int64_t>(n));
        t.setInput(n, h0, 20 + static_cast<int64_t>(n));
    }
    exec::ExecStats stats;
    exec::execute(skeleton, schedule, t, &stats);
    int64_t expected_w = t.value(n0, box.attrByName.at("w"));
    int64_t expected_h1 = t.value(n0, box.attrByName.at("h1"));

    // Driver translation unit around the generated header.
    std::string dir = ::testing::TempDir();
    std::string header_path = dir + "/hecate_gen.hpp";
    std::string main_path = dir + "/hecate_gen_main.cpp";
    std::string bin_path = dir + "/hecate_gen_bin";
    {
        std::ofstream header(header_path);
        header << generated;
    }
    {
        std::ofstream main_cc(main_path);
        main_cc << R"(#include <cstdio>
#include ")" << header_path << R"("
using namespace hecate_gen;
int main() {
    Inner n0, n1;
    Leaf n2, n3, n4;
    n0.fc = &n1;
    n1.nx = &n2; n1.fc = &n3;
    n3.nx = &n4;
    Box* nodes[] = {&n0, &n1, &n2, &n3, &n4};
    for (int i = 0; i < 5; ++i) {
        nodes[i]->w0 = 10 + i;
        nodes[i]->h0 = 20 + i;
    }
    n0.fusedCalc();
    std::printf("%lld %lld\n", (long long)n0.w, (long long)n0.h1);
    return 0;
}
)";
    }

    std::string compile = "g++ -std=c++20 -O1 -o " + bin_path + " " +
                          main_path + " 2>" + dir + "/compile_err.txt";
    if (std::system(compile.c_str()) != 0) {
        std::ifstream err(dir + "/compile_err.txt");
        std::string text((std::istreambuf_iterator<char>(err)),
                         std::istreambuf_iterator<char>());
        FAIL() << "generated code failed to compile:\n" << text
               << "\n--- generated ---\n" << generated;
    }

    FILE* pipe = popen(bin_path.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    long long got_w = 0, got_h1 = 0;
    ASSERT_EQ(fscanf(pipe, "%lld %lld", &got_w, &got_h1), 2);
    pclose(pipe);

    EXPECT_EQ(got_w, expected_w);
    EXPECT_EQ(got_h1, expected_h1);
}

} // namespace
} // namespace hecate
