/**
 * @file
 * Tests for the incremental re-evaluation engine: the TreeArena edit
 * API (mutate-input, replace-subtree, compaction), dirty-state
 * bookkeeping, and incr::reexecute's two walk strategies — validated
 * differentially against full recompute on every bundled grammar.
 *
 * The differential harness is the core: apply a random edit sequence
 * to arena A and replay the identical sequence on a copy B (Edit
 * replacements are seed-deterministic, so A and B evolve
 * cell-identically), then reexecute A incrementally, recompute B from
 * scratch, and require byte-identical output cells after compaction
 * (compaction renumbers deterministically, so dead rows drop out of
 * the comparison).
 *
 * Fixtures are named Incr* so the TSan CI job's filter covers the
 * parallel dirty-wave cases.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "grammars/grammars.hpp"
#include "incr/edit.hpp"
#include "incr/reexecute.hpp"
#include "runtime/edit_state.hpp"
#include "runtime/executor.hpp"
#include "runtime/forest.hpp"
#include "support/diagnostics.hpp"
#include "support/thread_pool.hpp"
#include "synth/autotuner.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

/** All eight bundled benchmark grammars. */
std::vector<const grammars::Benchmark*>
allBenchmarks()
{
    std::vector<const grammars::Benchmark*> all =
        grammars::grafterBenchmarks();
    for (const grammars::Benchmark* bench : grammars::cssBenchmarks())
        all.push_back(bench);
    return all;
}

synth::SynthesisConfig
cheapConfig()
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 128;
    return config;
}

/** Autotune @p bench and compile the winning schedule. */
runtime::Program
compileBenchmark(const sem::Grammar& grammar, sem::InterfaceId root,
                 const std::string& name)
{
    synth::AutotuneResult tuned =
        synth::autotune(grammar, root, cheapConfig());
    if (!tuned.schedule.has_value())
        throw std::runtime_error(name + ": " + tuned.lastSynthesis.failure);
    return runtime::Program::compile(*tuned.skeleton, *tuned.schedule);
}

/** Every attribute cell of @p arena, node-major (exact compare). */
std::vector<int64_t>
allCells(const runtime::TreeArena& arena)
{
    const sem::Grammar& grammar = arena.grammar();
    std::vector<int64_t> cells;
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            uint32_t col = arena.layout().column(cls.iface, attr);
            cells.push_back(arena.value(node, col));
        }
    }
    return cells;
}

/**
 * Run @p rounds rounds of {random edits on A + identical replay on a
 * copy B, incremental reexecute of A, full recompute of B, compare}.
 * A accumulates structural edits across rounds (appended blocks,
 * orphans), which is exactly the long-session shape the engine must
 * survive.
 */
void
runDifferential(const grammars::Benchmark& bench, incr::IncrStrategy strategy,
                ThreadPool* pool, uint32_t editsPerRound = 6,
                uint32_t rounds = 4)
{
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::Program program = compileBenchmark(grammar, root, bench.name);
    if (strategy == incr::IncrStrategy::Wave && !program.sweepable())
        return; // wave applies to sandwich-shaped programs only
    incr::IncrPlan plan = incr::IncrPlan::build(program);

    runtime::GenConfig config;
    config.targetNodes = 1500;
    config.seed = 0xfeed;
    runtime::TreeArena a = runtime::TreeArena::generate(grammar, root, config);
    runtime::execute(program, a, {});

    incr::IncrOptions options;
    options.strategy = strategy;
    options.pool = pool;
    if (pool != nullptr) {
        options.grain = 16;
        options.spawnPrefix = 1u << 20;
    }

    for (uint32_t round = 0; round < rounds; ++round) {
        runtime::TreeArena b = a; // deep copy, edit state included
        std::vector<incr::Edit> edits = incr::applyRandomEdits(
            a, editsPerRound, /*subtreeNodes=*/8,
            /*seed=*/0xabc0 + round * 977);
        for (const incr::Edit& edit : edits)
            incr::applyEdit(b, edit);

        incr::IncrStats stats = incr::reexecute(program, plan, a, options);
        if (!edits.empty()) {
            EXPECT_GT(stats.rulesChecked, 0u) << bench.name;
            EXPECT_FALSE(a.edits()->hasPendingDirt()) << bench.name;
        }

        runtime::TreeArena full = b.compact();
        runtime::execute(program, full, {});
        // Deterministic compaction: identical edit histories renumber
        // identically, so the cell vectors align index for index.
        EXPECT_EQ(allCells(a.compact()), allCells(full))
            << bench.name << " round " << round;
    }
}

// ---------------------------------------------------------------------------
// TreeArena edit API
// ---------------------------------------------------------------------------

const grammars::Benchmark&
firstBenchmark()
{
    return *grammars::grafterBenchmarks().front();
}

TEST(IncrEditApi, MutateInputMarksDirtAndChangesCell)
{
    const grammars::Benchmark& bench = firstBenchmark();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::GenConfig config;
    config.targetNodes = 200;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, config);
    ASSERT_EQ(arena.edits(), nullptr);

    // Find a node with an input attribute.
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            if (!iface.isInput(attr))
                continue;
            uint32_t col = arena.layout().column(cls.iface, attr);
            int64_t before = arena.value(node, col);
            arena.mutateInput(node, attr, before + 41);
            ASSERT_NE(arena.edits(), nullptr);
            EXPECT_EQ(arena.value(node, col), before + 41);
            EXPECT_TRUE(arena.edits()->cellDirty(col, node));
            EXPECT_TRUE(arena.edits()->hasPendingDirt());
            EXPECT_FALSE(arena.edited()); // no structural change
            // Same-value writes are no-ops: clear, rewrite, still clean.
            arena.clearDirt();
            EXPECT_FALSE(arena.edits()->hasPendingDirt());
            arena.mutateInput(node, attr, before + 41);
            EXPECT_FALSE(arena.edits()->hasPendingDirt());
            return;
        }
    }
    GTEST_SKIP() << "grammar has no input attributes";
}

TEST(IncrEditApi, ReplaceSubtreeOrphansOldRegionAndAppendsVirgin)
{
    const grammars::Benchmark& bench = firstBenchmark();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::GenConfig config;
    config.targetNodes = 300;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, config);
    const uint32_t sizeBefore = arena.size();

    incr::Edit edit;
    edit.kind = incr::Edit::Kind::ReplaceSubtree;
    edit.node = sizeBefore / 2;
    edit.subtreeNodes = 12;
    edit.seed = 7;
    runtime::NodeIdx added = incr::applyEdit(arena, edit);

    EXPECT_GE(added, sizeBefore); // appended block
    EXPECT_GT(arena.size(), sizeBefore);
    EXPECT_TRUE(arena.edited());
    EXPECT_FALSE(arena.isLive(edit.node));
    EXPECT_TRUE(arena.isLive(added));
    EXPECT_LT(arena.liveCount(), arena.size());
    EXPECT_GT(arena.edits()->virginCount(), 0u);

    // Compaction drops the orphans and yields a valid tree again.
    runtime::TreeArena packed = arena.compact();
    EXPECT_EQ(packed.size(), arena.liveCount());
    EXPECT_FALSE(packed.edited());
    tree::Tree round = packed.toTree(); // validates structure
    EXPECT_EQ(round.size(), packed.size());
}

TEST(IncrEditApi, InvalidEditsAreRejected)
{
    const grammars::Benchmark& bench = firstBenchmark();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::GenConfig config;
    config.targetNodes = 100;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, config);

    // The root cannot be replaced.
    runtime::TreeArena repl =
        runtime::TreeArena::generate(grammar, root, config);
    EXPECT_THROW(arena.replaceSubtree(0, repl), UserError);
    // Out-of-range node.
    EXPECT_THROW(arena.mutateInput(arena.size() + 7, 0, 1), UserError);
}

// ---------------------------------------------------------------------------
// Differential validation, all grammars, both strategies
// ---------------------------------------------------------------------------

TEST(IncrDifferential, StackMatchesFullRecomputeOnAllGrammars)
{
    for (const grammars::Benchmark* bench : allBenchmarks())
        runDifferential(*bench, incr::IncrStrategy::Stack, nullptr);
}

TEST(IncrDifferential, WaveMatchesFullRecomputeOnAllGrammars)
{
    for (const grammars::Benchmark* bench : allBenchmarks())
        runDifferential(*bench, incr::IncrStrategy::Wave, nullptr);
}

TEST(IncrDifferential, AutoMatchesFullRecomputeOnAllGrammars)
{
    for (const grammars::Benchmark* bench : allBenchmarks())
        runDifferential(*bench, incr::IncrStrategy::Auto, nullptr);
}

TEST(IncrDifferential, WaveOnUnsweepableProgramIsRejected)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench->name);
        if (program.sweepable())
            continue;
        incr::IncrPlan plan = incr::IncrPlan::build(program);
        runtime::GenConfig config;
        config.targetNodes = 100;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, config);
        runtime::execute(program, arena, {});
        incr::applyRandomEdits(arena, 2, 8, 5);
        incr::IncrOptions options;
        options.strategy = incr::IncrStrategy::Wave;
        EXPECT_THROW(incr::reexecute(program, plan, arena, options),
                     UserError);
        return; // one unsweepable program suffices
    }
}

// ---------------------------------------------------------------------------
// Parallel walks (covered by the TSan CI filter via the Incr* name)
// ---------------------------------------------------------------------------

TEST(IncrParallel, StackAndWaveUnderThreadPool)
{
    ThreadPool pool(4);
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        runDifferential(*bench, incr::IncrStrategy::Stack, &pool,
                        /*editsPerRound=*/10, /*rounds=*/2);
        runDifferential(*bench, incr::IncrStrategy::Wave, &pool,
                        /*editsPerRound=*/10, /*rounds=*/2);
    }
}

// ---------------------------------------------------------------------------
// Forest overload
// ---------------------------------------------------------------------------

TEST(IncrForest, PerTreeIsolationAndDifferentialEquality)
{
    const grammars::Benchmark& bench = firstBenchmark();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::Program program = compileBenchmark(grammar, root, bench.name);
    incr::IncrPlan plan = incr::IncrPlan::build(program);

    runtime::GenConfig config;
    config.targetNodes = 300;
    config.seed = 11;
    runtime::ForestArena forest = runtime::ForestArena::generate(
        grammar, root, config, /*treeCount=*/4);
    runtime::execute(program, forest, {});

    // Mutate inputs confined to tree 1.
    runtime::TreeArena& flat = forest.flat();
    const runtime::NodeIdx begin = forest.treeBegin(1);
    const runtime::NodeIdx end = begin + forest.treeSize(1);
    std::vector<int64_t> before = allCells(flat);
    uint32_t mutated = 0;
    for (runtime::NodeIdx node = begin; node < end && mutated < 5; ++node) {
        const sem::ClassInfo& cls = grammar.cls(flat.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            if (!iface.isInput(attr))
                continue;
            uint32_t col = flat.layout().column(cls.iface, attr);
            flat.mutateInput(node, attr, flat.value(node, col) + 13);
            ++mutated;
            break;
        }
    }
    ASSERT_GT(mutated, 0u);

    incr::IncrStats stats = incr::reexecute(program, plan, forest, {});
    EXPECT_GT(stats.rulesEvaluated, 0u);

    // Differential: full recompute of the whole batch must agree.
    runtime::ForestArena shadow = forest; // post-edit cells, pre-stats
    runtime::execute(program, shadow, {});
    std::vector<int64_t> incremental = allCells(forest.flat());
    EXPECT_EQ(incremental, allCells(shadow.flat()));

    // Isolation: cells outside tree 1 are untouched byte for byte.
    const sem::ClassInfo* grammarCls = nullptr;
    (void)grammarCls;
    std::vector<int64_t> after = incremental;
    size_t idx = 0;
    for (runtime::NodeIdx node = 0; node < flat.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(flat.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size();
             ++attr, ++idx) {
            if (node < begin || node >= end) {
                EXPECT_EQ(after[idx], before[idx]) << "node " << node;
            }
        }
    }
}

TEST(IncrForest, StructuralEditsAreRejected)
{
    const grammars::Benchmark& bench = firstBenchmark();
    sem::Grammar grammar = grammars::load(bench);
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);
    runtime::Program program = compileBenchmark(grammar, root, bench.name);
    incr::IncrPlan plan = incr::IncrPlan::build(program);

    runtime::GenConfig config;
    config.targetNodes = 120;
    runtime::ForestArena forest =
        runtime::ForestArena::generate(grammar, root, config, 2);
    runtime::execute(program, forest, {});

    incr::Edit edit;
    edit.kind = incr::Edit::Kind::ReplaceSubtree;
    edit.node = forest.treeBegin(1) + 1; // interior node of tree 1
    edit.subtreeNodes = 6;
    incr::applyEdit(forest.flat(), edit);
    EXPECT_THROW(incr::reexecute(program, plan, forest, {}), UserError);
}

} // namespace
} // namespace hecate
