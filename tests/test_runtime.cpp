/**
 * @file
 * Tests for the traversal runtime: arena round-trips, the bulk
 * generator, bytecode compilation, and the sequential/parallel
 * executors.
 *
 * The central property mirrors test_exec's: executing a compiled
 * program over an arena produces exactly the values of demand-driven
 * reference evaluation — on every bundled grammar, sequential and
 * parallel, at every grain size.
 */

#include <gtest/gtest.h>

#include <limits>

#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "lang/printer.hpp"
#include "runtime/executor.hpp"
#include "synth/autotuner.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

using testutil::renderGrammar;
using testutil::renderSkeleton;
using testutil::vectorRenderGrammar;

/** All eight bundled benchmark grammars. */
std::vector<const grammars::Benchmark*>
allBenchmarks()
{
    std::vector<const grammars::Benchmark*> all =
        grammars::grafterBenchmarks();
    for (const grammars::Benchmark* bench : grammars::cssBenchmarks())
        all.push_back(bench);
    return all;
}

synth::SynthesisConfig
cheapConfig()
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 128;
    return config;
}

// ---------------------------------------------------------------------------
// Arena structure
// ---------------------------------------------------------------------------

TEST(RuntimeArena, RoundTripAllBundledGrammars)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        Rng rng(7);
        tree::SampleConfig sample;
        sample.maxDepth = 5;
        for (int round = 0; round < 3; ++round) {
            tree::Tree original =
                tree::sampleTree(grammar, root, sample, rng);
            runtime::TreeArena arena = runtime::TreeArena::fromTree(original);
            EXPECT_EQ(arena.size(), original.size()) << bench->name;
            tree::Tree rebuilt = arena.toTree();
            rebuilt.validate();
            EXPECT_TRUE(runtime::treesEquivalent(original, rebuilt))
                << bench->name << ": round-trip changed the tree";
        }
    }
}

TEST(RuntimeArena, LayoutIsBreadthFirst)
{
    sem::Grammar grammar = vectorRenderGrammar();
    runtime::GenConfig gen;
    gen.targetNodes = 2000;
    gen.maxCollection = 5;
    runtime::TreeArena arena = runtime::TreeArena::generate(grammar, 0, gen);

    // Parents precede children and collection elements are contiguous
    // ascending runs — the properties chunked execution relies on.
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const runtime::ClassLayout& layout =
            arena.layout().cls(arena.classOf(node));
        for (uint32_t s = 0; s < layout.scalarCount; ++s) {
            runtime::NodeIdx child = arena.scalarChild(node, s);
            if (child != runtime::kNone)
                EXPECT_GT(child, node);
        }
        for (uint32_t c = 0; c < layout.collCount; ++c) {
            auto [begin, end] = arena.collection(node, c);
            for (const runtime::NodeIdx* it = begin; it != end; ++it) {
                EXPECT_GT(*it, node);
                if (it != begin)
                    EXPECT_EQ(*it, *(it - 1) + 1);
            }
        }
    }
}

TEST(RuntimeArena, GenerateHitsBudgetAndValidates)
{
    struct Case {
        const grammars::Benchmark* bench;
        uint32_t target;
    };
    const Case cases[] = {
        {&grammars::binaryTree(), 5000},
        {&grammars::renderTree(), 5000},
        {&grammars::astBench(), 3000},
    };
    for (const Case& c : cases) {
        sem::Grammar grammar = grammars::load(*c.bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *c.bench);
        runtime::GenConfig gen;
        gen.targetNodes = c.target;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        EXPECT_GE(arena.size(), c.target) << c.bench->name;
        EXPECT_LE(arena.size(), c.target * 4 + 1024) << c.bench->name;
        arena.toTree().validate();
    }
}

TEST(RuntimeArena, GenerateRespectsDepthCap)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::renderTree());
    runtime::GenConfig gen;
    gen.targetNodes = 100000;
    gen.maxDepth = 6;
    runtime::TreeArena arena = runtime::TreeArena::generate(grammar, root, gen);
    EXPECT_LE(arena.depth(), 6u);
    arena.toTree().validate();
}

TEST(RuntimeArena, GenerateIsDeterministic)
{
    sem::Grammar grammar = grammars::load(grammars::fmm());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::fmm());
    runtime::GenConfig gen;
    gen.targetNodes = 3000;
    gen.seed = 42;
    runtime::TreeArena a = runtime::TreeArena::generate(grammar, root, gen);
    runtime::TreeArena b = runtime::TreeArena::generate(grammar, root, gen);
    EXPECT_TRUE(runtime::treesEquivalent(a.toTree(), b.toTree()));
}

TEST(RuntimeArena, GeneratesMillionNodeInstance)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::renderTree());
    runtime::GenConfig gen;
    gen.targetNodes = 1000000;
    runtime::TreeArena arena = runtime::TreeArena::generate(grammar, root, gen);
    EXPECT_GE(arena.size(), 1000000u);
}

TEST(RuntimeArena, GenerateRejectsUnboundedRequiredExpansion)
{
    // Every implementer of N forces a required child of N: the grammar
    // admits no finite tree. Required-child expansion is not stopped by
    // the budget, so the generator must refuse at the hard cap instead
    // of growing forever.
    const char* src = R"(
interface N {
    input v : int;
    output o : int;
}
class Cons : N {
    children {
        next : N;
    }
    rules {
        self.o := self.v;
    }
}
)";
    sem::Grammar grammar = sem::Grammar::analyze(lang::parseGrammar(src));
    runtime::GenConfig gen;
    gen.targetNodes = 50;
    EXPECT_THROW(runtime::TreeArena::generate(grammar, 0, gen), UserError);
}

TEST(RuntimeArena, GenerateFullWidthInputRange)
{
    // [INT64_MIN, INT64_MAX] wraps the naive int64 span computation to
    // zero (and the subtraction itself is UB); the generator must
    // sample the full-width range instead of dividing by zero.
    sem::Grammar grammar = grammars::load(grammars::binaryTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::binaryTree());
    runtime::GenConfig gen;
    gen.targetNodes = 200;
    gen.inputLo = std::numeric_limits<int64_t>::min();
    gen.inputHi = std::numeric_limits<int64_t>::max();
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    EXPECT_GE(arena.size(), 200u);
    arena.toTree().validate();
}

// ---------------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------------

/** Reference-evaluate a copy and compare against the executed arena. */
void
expectArenaMatchesReference(const tree::Tree& executedView,
                            tree::Tree reference, const std::string& label)
{
    exec::computeReference(reference);
    EXPECT_TRUE(runtime::treesEquivalent(executedView, reference))
        << label << ": runtime diverges from computeReference";
}

TEST(RuntimeProgram, DifferentialAllBundledGrammars)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        synth::AutotuneResult tuned =
            synth::autotune(grammar, root, cheapConfig());
        ASSERT_TRUE(tuned.schedule.has_value())
            << bench->name << ": " << tuned.lastSynthesis.failure;
        runtime::Program program =
            runtime::Program::compile(*tuned.skeleton, *tuned.schedule);

        Rng rng(11);
        tree::SampleConfig sample;
        sample.maxDepth = 5;
        for (int round = 0; round < 3; ++round) {
            tree::Tree original =
                tree::sampleTree(grammar, root, sample, rng);
            runtime::TreeArena arena =
                runtime::TreeArena::fromTree(original);
            runtime::execute(program, arena);
            expectArenaMatchesReference(arena.toTree(), original,
                                        bench->name);
        }
    }
}

TEST(RuntimeProgram, DifferentialOnGeneratedArenas)
{
    // Larger generated instances than sampleTree produces, exercising
    // the generator + executor pair end to end.
    for (const grammars::Benchmark* bench :
         {&grammars::binaryTree(), &grammars::renderTree()}) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        synth::AutotuneResult tuned =
            synth::autotune(grammar, root, cheapConfig());
        ASSERT_TRUE(tuned.schedule.has_value());
        runtime::Program program =
            runtime::Program::compile(*tuned.skeleton, *tuned.schedule);

        runtime::GenConfig gen;
        gen.targetNodes = 4000;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        tree::Tree pristine = arena.toTree();
        runtime::execute(program, arena);
        expectArenaMatchesReference(arena.toTree(), std::move(pristine),
                                    bench->name);
    }
}

TEST(RuntimeProgram, ConcreteTraversalCompiles)
{
    // The `hecate_cli run` path: print the synthesized Fig. 4(b)
    // traversal, re-parse it as a hole-free skeleton, compile with an
    // empty schedule.
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    auto result = synth::synthesize(skeleton, 0, {}, cheapConfig());
    ASSERT_TRUE(result.schedule.has_value());

    std::string printed = lang::printTraversal(
        result.schedule->toConcreteTraversal(skeleton));
    sched::Skeleton concrete =
        sched::Skeleton::resolve(grammar, lang::parseTraversal(printed));
    runtime::Program program =
        runtime::Program::compile(concrete, sched::Schedule{});
    EXPECT_FALSE(program.disassemble().empty());

    Rng rng(3);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    tree::Tree original = tree::sampleTree(grammar, 0, sample, rng);
    runtime::TreeArena arena = runtime::TreeArena::fromTree(original);
    runtime::execute(program, arena);
    expectArenaMatchesReference(arena.toTree(), std::move(original),
                                "concrete render traversal");
}

TEST(RuntimeExecutor, StatsMatchInterp)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    auto result = synth::synthesize(skeleton, 0, {}, cheapConfig());
    ASSERT_TRUE(result.schedule.has_value());
    runtime::Program program =
        runtime::Program::compile(skeleton, *result.schedule);

    Rng rng(5);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    tree::Tree t = tree::sampleTree(grammar, 0, sample, rng);
    exec::ExecStats interp_stats;
    exec::execute(skeleton, *result.schedule, t, &interp_stats);

    runtime::TreeArena arena = runtime::TreeArena::fromTree(t);
    arena.clearOutputs();
    runtime::RuntimeStats stats = runtime::execute(program, arena);
    EXPECT_EQ(stats.nodeVisits, interp_stats.nodeVisits);
    EXPECT_EQ(stats.rulesEvaluated, interp_stats.rulesEvaluated);
}

// ---------------------------------------------------------------------------
// Parallel execution
// ---------------------------------------------------------------------------

TEST(RuntimeExecutor, ParallelMatchesSequentialAcrossGrains)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar,
        lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));
    synth::SynthesisConfig config = cheapConfig();
    config.verify.maxCollection = 2;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());
    runtime::Program program =
        runtime::Program::compile(skeleton, *result.schedule);

    runtime::GenConfig gen;
    gen.targetNodes = 20000;
    gen.maxCollection = 8;
    runtime::TreeArena arena = runtime::TreeArena::generate(grammar, 0, gen);

    runtime::RuntimeStats seq_stats = runtime::execute(program, arena);
    const uint64_t expected = arena.checksum();
    EXPECT_EQ(seq_stats.parallelRegions, 0u);

    for (size_t workers : {1u, 2u, 4u}) {
        for (uint32_t grain : {1u, 2u, 64u, 4096u}) {
            arena.clearOutputs();
            ThreadPool pool(workers);
            runtime::ExecOptions options;
            options.pool = &pool;
            options.grain = grain;
            runtime::RuntimeStats stats =
                runtime::execute(program, arena, options);
            EXPECT_EQ(arena.checksum(), expected)
                << workers << " workers, grain " << grain;
            EXPECT_EQ(stats.nodeVisits, seq_stats.nodeVisits);
            EXPECT_EQ(stats.rulesEvaluated, seq_stats.rulesEvaluated);
            if (grain == 1)
                EXPECT_GT(stats.parallelRegions, 0u);
            EXPECT_EQ(pool.failedTaskCount(), 0u)
                << pool.lastTaskError();
        }
    }
}

TEST(RuntimeExecutor, ParallelStatementRegions)
{
    // Statement-form `parallel { recur fc; recur nx; }` on the
    // linked-list grammar: inherited-free sandwich skeleton.
    const char* src = R"(
traversal layout {
    case Inner {
        parallel {
            recur fc;
            recur nx;
        }
        ??; ??; ??; ??;
    }
    case Leaf {
        recur nx;
        ??; ??; ??; ??;
    }
}
)";
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton =
        sched::Skeleton::resolve(grammar, lang::parseTraversal(src));
    auto result = synth::synthesize(skeleton, 0, {}, cheapConfig());
    ASSERT_TRUE(result.schedule.has_value());
    runtime::Program program =
        runtime::Program::compile(skeleton, *result.schedule);

    runtime::GenConfig gen;
    gen.targetNodes = 20000;
    runtime::TreeArena arena = runtime::TreeArena::generate(grammar, 0, gen);
    tree::Tree pristine = arena.toTree();

    ThreadPool pool(4);
    runtime::ExecOptions options;
    options.pool = &pool;
    options.grain = 1;
    runtime::RuntimeStats stats = runtime::execute(program, arena, options);
    EXPECT_GT(stats.parallelRegions, 0u);
    EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
    expectArenaMatchesReference(arena.toTree(), std::move(pristine),
                                "parallel statement region");
}

TEST(RuntimeExecutor, ParallelInheritedRulesWithAbsentChildren)
{
    // FMM's downward rules target optional children (`l.d := ...`). A
    // vacuous inherited eval — the target child is absent — must
    // perform no write at all: two workers evaluating the same rule
    // concurrently on different nodes would race on any shared discard
    // cell (the TSan CI job gates this).
    const char* src = R"(
traversal fmm {
    case Box {
        ??; ??; ??; ??; ??; ??;
        parallel {
            recur l;
            recur r;
        }
        ??; ??; ??; ??; ??; ??;
    }
    case Body {
        ??; ??; ??; ??;
    }
    case Sim {
        ??; ??; ??; ??;
        recur b;
        ??; ??; ??; ??;
    }
}
)";
    sem::Grammar grammar = grammars::load(grammars::fmm());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::fmm());
    sched::Skeleton skeleton =
        sched::Skeleton::resolve(grammar, lang::parseTraversal(src));
    auto result = synth::synthesize(skeleton, root, {}, cheapConfig());
    ASSERT_TRUE(result.schedule.has_value()) << result.failure;
    runtime::Program program =
        runtime::Program::compile(skeleton, *result.schedule);

    runtime::GenConfig gen;
    gen.targetNodes = 20000;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    tree::Tree pristine = arena.toTree();

    ThreadPool pool(4);
    runtime::ExecOptions options;
    options.pool = &pool;
    options.grain = 1;
    runtime::RuntimeStats stats = runtime::execute(program, arena, options);
    EXPECT_GT(stats.parallelRegions, 0u);
    EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
    expectArenaMatchesReference(arena.toTree(), std::move(pristine),
                                "parallel inherited rules");
}

// ---------------------------------------------------------------------------
// Depth limits (interp regression) and executor stack safety
// ---------------------------------------------------------------------------

/** A first-child-less chain of @p length Leaf nodes linked via nx. */
tree::Tree
leafChain(const sem::Grammar& grammar, uint32_t length)
{
    sem::ClassId leaf = grammar.findClass("Leaf");
    sem::ChildId nx = grammar.cls(leaf).childByName.at("nx");
    const sem::InterfaceInfo& iface =
        grammar.iface(grammar.cls(leaf).iface);
    sem::AttrId w0 = iface.attrByName.at("w0");
    sem::AttrId h0 = iface.attrByName.at("h0");

    tree::Tree t(grammar);
    for (uint32_t i = 0; i < length; ++i) {
        tree::NodeId id = t.addNode(leaf);
        t.node(id).values[w0] = 1;
        t.node(id).values[h0] = 1;
    }
    for (uint32_t i = 0; i + 1 < length; ++i)
        t.setScalar(i, nx, i + 1);
    t.setRoot(0);
    t.validate();
    return t;
}

TEST(RuntimeDepthGuard, InterpThrowsOnDeepTreesRuntimeDoesNot)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    auto result = synth::synthesize(skeleton, 0, {}, cheapConfig());
    ASSERT_TRUE(result.schedule.has_value());

    const uint32_t length = exec::kMaxEvalDepth * 5;
    tree::Tree deep = leafChain(grammar, length);

    // The recursive interpreter refuses cleanly instead of smashing
    // the native stack...
    tree::Tree interp_copy = deep;
    EXPECT_THROW(
        exec::execute(skeleton, *result.schedule, interp_copy),
        UserError);
    tree::Tree reference_copy = deep;
    EXPECT_THROW(exec::computeReference(reference_copy), UserError);

    // ...while the explicit-stack runtime executes the same tree and
    // produces the closed-form values (h1 sums h0=1 down the chain).
    runtime::Program program =
        runtime::Program::compile(skeleton, *result.schedule);
    runtime::TreeArena arena = runtime::TreeArena::fromTree(deep);
    runtime::execute(program, arena);
    const sem::InterfaceInfo& iface = grammar.iface(0);
    uint32_t h1_col =
        arena.layout().column(0, iface.attrByName.at("h1"));
    EXPECT_EQ(arena.value(arena.root(), h1_col),
              static_cast<int64_t>(length));
}

TEST(RuntimeDepthGuard, InterpStillRunsShallowTrees)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    auto result = synth::synthesize(skeleton, 0, {}, cheapConfig());
    ASSERT_TRUE(result.schedule.has_value());
    tree::Tree shallow = leafChain(grammar, exec::kMaxEvalDepth - 2);
    EXPECT_NO_THROW(
        exec::execute(skeleton, *result.schedule, shallow));
}

} // namespace
} // namespace hecate
