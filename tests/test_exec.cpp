/**
 * @file
 * Tests for the value interpreter and the work/span cost model.
 *
 * The central property: executing any verified schedule over any tree
 * produces exactly the values of demand-driven reference evaluation —
 * for sequential, vector/iterate, parallel, and inherited-attribute
 * grammars alike.
 */

#include <gtest/gtest.h>

#include "exec/cost_model.hpp"
#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "synth/autotuner.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

using testutil::renderGrammar;
using testutil::renderSkeleton;
using testutil::vectorRenderGrammar;

/** Collect all output values of a tree into a flat vector. */
std::vector<int64_t>
outputsOf(const tree::Tree& t)
{
    std::vector<int64_t> out;
    const sem::Grammar& grammar = t.grammar();
    for (const tree::Node& node : t.nodes()) {
        const sem::InterfaceInfo& iface =
            grammar.iface(grammar.cls(node.cls).iface);
        for (sem::AttrId a = 0; a < node.values.size(); ++a) {
            if (!iface.isInput(a))
                out.push_back(node.values[a]);
        }
    }
    return out;
}

/** Synthesize, then check execute == reference on sampled trees. */
void
expectExecutionMatchesReference(const sem::Grammar& grammar,
                                const sched::Skeleton& skeleton,
                                const sched::Schedule& schedule,
                                sem::InterfaceId rootIface, uint64_t seed)
{
    Rng rng(seed);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    for (int round = 0; round < 10; ++round) {
        tree::Tree executed = tree::sampleTree(grammar, rootIface, sample,
                                               rng);
        // Reference needs identical inputs: copy before evaluation.
        tree::Tree reference = executed;

        exec::execute(skeleton, schedule, executed);
        exec::computeReference(reference);
        EXPECT_EQ(outputsOf(executed), outputsOf(reference))
            << "divergence on " << executed.shapeString();
    }
}

class ExecSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecSeeds, RenderExampleMatchesReference)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());
    expectExecutionMatchesReference(grammar, skeleton, *result.schedule, 0,
                                    GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecSeeds,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(Exec, VectorIterateMatchesReference)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorSymbolicSrc));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());
    expectExecutionMatchesReference(grammar, skeleton, *result.schedule, 0,
                                    7);
}

TEST(Exec, ParallelExecutionMatchesSequential)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());

    Rng rng(11);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    sample.maxCollection = 4;
    ThreadPool pool(4);
    for (int round = 0; round < 5; ++round) {
        tree::Tree seq_tree = tree::sampleTree(grammar, 0, sample, rng);
        tree::Tree par_tree = seq_tree;
        exec::ExecStats seq_stats, par_stats;
        exec::execute(skeleton, *result.schedule, seq_tree, &seq_stats);
        exec::executeParallel(skeleton, *result.schedule, par_tree, pool,
                              &par_stats);
        EXPECT_EQ(outputsOf(seq_tree), outputsOf(par_tree));
        EXPECT_EQ(seq_stats.nodeVisits, par_stats.nodeVisits);
        EXPECT_EQ(seq_stats.rulesEvaluated, par_stats.rulesEvaluated);
    }
}

TEST(Exec, InheritedAttributesMatchReference)
{
    // RenderTree benchmark: inherited fonts/positions + synthesized
    // widths/heights, synthesized by the auto-tuner.
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 96;
    synth::AutotuneResult result = synth::autotune(
        grammar, grammars::rootInterface(grammar, grammars::renderTree()),
        config);
    ASSERT_TRUE(result.schedule.has_value())
        << result.lastSynthesis.failure;

    expectExecutionMatchesReference(
        grammar, *result.skeleton, *result.schedule,
        grammar.findInterface("Doc"), 23);
}

TEST(Exec, ReferenceDetectsCycles)
{
    const char* src = R"(
interface I { input a : int; output b, c : int; }
class C : I { rules { self.b := self.c; self.c := self.b + self.a; } }
)";
    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(src));
    tree::Tree t(grammar);
    t.setRoot(t.addNode(0));
    t.validate();
    EXPECT_THROW(exec::computeReference(t), UserError);
}

TEST(Exec, StatsCountVisitsAndRules)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());

    Rng rng(5);
    tree::SampleConfig sample;
    sample.maxDepth = 4;
    tree::Tree t = tree::sampleTree(grammar, 0, sample, rng);
    exec::ExecStats stats;
    exec::execute(skeleton, *result.schedule, t, &stats);
    EXPECT_EQ(stats.nodeVisits, t.size());
    EXPECT_EQ(stats.rulesEvaluated, t.size() * 4); // 4 rules per class
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModel, SequentialSpanEqualsWork)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorSymbolicSrc));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());

    Rng rng(3);
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    sample.maxCollection = 3;
    tree::Tree t = tree::sampleTree(grammar, 0, sample, rng);
    exec::CostReport report =
        exec::analyzeCost(skeleton, *result.schedule, t);
    EXPECT_DOUBLE_EQ(report.work, report.span);
    EXPECT_DOUBLE_EQ(report.speedup(8), 1.0);
}

TEST(CostModel, ParallelVariantHasShorterSpan)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton seq_skel = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorSymbolicSrc));
    sched::Skeleton par_skel = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    auto seq = synth::synthesize(seq_skel, 0, {}, config);
    auto par = synth::synthesize(par_skel, 0, {}, config);
    ASSERT_TRUE(seq.schedule.has_value());
    ASSERT_TRUE(par.schedule.has_value());

    // Wide bushy tree: parallelism must shorten the critical path.
    Rng rng(9);
    tree::SampleConfig sample;
    sample.maxDepth = 6;
    sample.maxCollection = 4;
    tree::Tree t = tree::sampleTree(grammar, 0, sample, rng);
    if (t.size() < 20)
        t = tree::sampleTree(grammar, 0, sample, rng);

    exec::CostReport seq_report =
        exec::analyzeCost(seq_skel, *seq.schedule, t);
    exec::CostReport par_report =
        exec::analyzeCost(par_skel, *par.schedule, t);

    EXPECT_LT(par_report.span, par_report.work);
    EXPECT_GT(par_report.speedup(8), 1.0);
    // Parallel variant pays fork overhead: more work, less span.
    EXPECT_GE(par_report.work, seq_report.work);
}

} // namespace
} // namespace hecate
