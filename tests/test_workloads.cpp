/**
 * @file
 * Tests for the Fig. 11 / Fig. 16 runtime workloads: every variant
 * (unfused, fused linked-list, fused vector, parallel vector) must
 * compute identical values on the same logical tree.
 */

#include <gtest/gtest.h>

#include "workloads/ast_workload.hpp"
#include "workloads/rendertree.hpp"

namespace hecate {
namespace {

class WorkloadSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkloadSeeds, RenderVariantsAgree)
{
    uint64_t seed = GetParam();
    auto doc_l = workloads::render::buildDocumentL(600, seed);
    auto doc_v = workloads::render::buildDocumentV(600, seed);
    ASSERT_EQ(doc_l.size(), doc_v.size());

    workloads::render::runUnfused(doc_l);
    uint64_t unfused_sum = workloads::render::checksum(doc_l);

    workloads::render::clearOutputs(doc_l);
    workloads::render::runFusedL(doc_l);
    EXPECT_EQ(workloads::render::checksum(doc_l), unfused_sum);

    workloads::render::runFusedV(doc_v);
    EXPECT_EQ(workloads::render::checksum(doc_v), unfused_sum);

    workloads::render::clearOutputs(doc_v);
    ThreadPool pool(3);
    workloads::render::runParallelV(doc_v, pool, 2);
    EXPECT_EQ(workloads::render::checksum(doc_v), unfused_sum);
}

TEST_P(WorkloadSeeds, AstVariantsAgree)
{
    uint64_t seed = GetParam() + 1000;
    auto prog_l = workloads::astw::buildProgramL(600, seed);
    auto prog_v = workloads::astw::buildProgramV(600, seed);
    ASSERT_EQ(prog_l.size(), prog_v.size());

    workloads::astw::runUnfused(prog_l);
    uint64_t unfused_sum = workloads::astw::checksum(prog_l);

    workloads::astw::clearOutputs(prog_l);
    workloads::astw::runFusedL(prog_l);
    EXPECT_EQ(workloads::astw::checksum(prog_l), unfused_sum);

    workloads::astw::runFusedV(prog_v);
    EXPECT_EQ(workloads::astw::checksum(prog_v), unfused_sum);

    workloads::astw::clearOutputs(prog_v);
    ThreadPool pool(3);
    workloads::astw::runParallelV(prog_v, pool, 3);
    EXPECT_EQ(workloads::astw::checksum(prog_v), unfused_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeeds,
                         ::testing::Values(1, 7, 42, 123, 2024));

TEST(Workloads, BuildersHitTargetSize)
{
    auto doc = workloads::render::buildDocumentV(5000, 9);
    EXPECT_GE(doc.size(), 2500u);
    EXPECT_LE(doc.size(), 5200u);
    auto prog = workloads::astw::buildProgramV(5000, 9);
    EXPECT_GE(prog.size(), 2500u);
    EXPECT_LE(prog.size(), 5200u);
}

TEST(Workloads, ParallelSpawnDepthVariantsAgree)
{
    auto doc = workloads::render::buildDocumentV(2000, 5);
    workloads::render::runFusedV(doc);
    uint64_t expected = workloads::render::checksum(doc);
    ThreadPool pool(4);
    for (int spawn = 1; spawn <= 4; ++spawn) {
        workloads::render::clearOutputs(doc);
        workloads::render::runParallelV(doc, pool, spawn);
        EXPECT_EQ(workloads::render::checksum(doc), expected)
            << "spawn depth " << spawn;
    }
}

} // namespace
} // namespace hecate
