/**
 * @file
 * End-to-end tests of the scheduling core: skeleton resolution, visit
 * plans with fork-join happens-before, both symbolic encoders, the
 * trace language, and the CEGIS loop — all on the paper's running
 * example (Figs. 2-4) and its vector/parallel variants (Figs. 12-14).
 */

#include <gtest/gtest.h>

#include "lang/printer.hpp"
#include "sched/visit_plan.hpp"
#include "symbolic/general_encoder.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "symbolic/sigma.hpp"
#include "symbolic/trace.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

using testutil::renderGrammar;
using testutil::renderSkeleton;
using testutil::vectorRenderGrammar;

/** Build the Fig. 2 example tree (n0..n4) in linked-list encoding. */
tree::Tree
fig2Tree(const sem::Grammar& grammar)
{
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");
    sem::ChildId inner_nx = grammar.cls(inner).childByName.at("nx");
    sem::ChildId inner_fc = grammar.cls(inner).childByName.at("fc");
    sem::ChildId leaf_nx = grammar.cls(leaf).childByName.at("nx");

    tree::Tree t(grammar);
    tree::NodeId n0 = t.addNode(inner);
    tree::NodeId n1 = t.addNode(inner);
    tree::NodeId n2 = t.addNode(leaf);
    tree::NodeId n3 = t.addNode(leaf);
    tree::NodeId n4 = t.addNode(leaf);
    t.setScalar(n0, inner_fc, n1);
    t.setScalar(n1, inner_nx, n2);
    t.setScalar(n1, inner_fc, n3);
    t.setScalar(n3, leaf_nx, n4);
    t.setRoot(n0);
    t.validate();
    return t;
}

TEST(Skeleton, ResolvesRenderExample)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    ASSERT_EQ(skeleton.slotCount(), 8u);
    for (const sched::SlotInfo& slot : skeleton.slots()) {
        EXPECT_EQ(slot.context, sched::SlotContext::TopLevel);
        EXPECT_EQ(slot.candidates.size(), 4u); // all rules of the class
    }
}

TEST(Skeleton, RejectsIllFormedTraversals)
{
    sem::Grammar grammar = renderGrammar();
    // missing Leaf case
    EXPECT_THROW(sched::Skeleton::resolve(
                     grammar, lang::parseTraversal(
                                  "traversal t { case Inner { ??; } }")),
                 UserError);
    // recur on unknown child
    EXPECT_THROW(
        sched::Skeleton::resolve(
            grammar,
            lang::parseTraversal("traversal t { case Inner { recur zz; } "
                                 "case Leaf { recur nx; } }")),
        UserError);
    // duplicate eval
    EXPECT_THROW(
        sched::Skeleton::resolve(
            grammar,
            lang::parseTraversal(
                "traversal t { case Inner { eval self.w; eval self.w; } "
                "case Leaf { ??; } }")),
        UserError);
}

TEST(Skeleton, IterateCandidatesAreFoldsOnly)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorSymbolicSrc));
    ASSERT_EQ(skeleton.slotCount(), 6u);
    const auto& slots = skeleton.slots();
    // Inner: two in-loop slots then one top-level slot.
    EXPECT_EQ(slots[0].context, sched::SlotContext::Iterate);
    EXPECT_EQ(slots[0].candidates.size(), 2u); // w and h1 folds
    EXPECT_EQ(slots[2].context, sched::SlotContext::TopLevel);
    EXPECT_EQ(slots[2].candidates.size(), 3u);
}

TEST(Skeleton, ParallelSlotsHaveNoCandidates)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar,
        lang::parseTraversal(R"(
traversal t {
    case Inner { parallel cs { recur cs; ??; } ??; ??; ??; }
    case Leaf { ??; ??; ??; }
}
)"));
    EXPECT_TRUE(skeleton.slots()[0].candidates.empty());
}

TEST(VisitPlan, InstancesAndWritersOnFig2)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    tree::Tree t = fig2Tree(grammar);
    sched::VisitPlan plan(skeleton, t);

    // 5 nodes x 4 slots = 20 slot instances.
    EXPECT_EQ(plan.instances().size(), 20u);

    // Post-order: every instance at n3 precedes every instance at n1.
    std::vector<sched::InstId> at_n1, at_n3;
    for (const auto& inst : plan.instances()) {
        if (inst.node == 1)
            at_n1.push_back(inst.id);
        if (inst.node == 3)
            at_n3.push_back(inst.id);
    }
    ASSERT_EQ(at_n1.size(), 4u);
    ASSERT_EQ(at_n3.size(), 4u);
    for (sched::InstId a : at_n3) {
        for (sched::InstId b : at_n1) {
            EXPECT_TRUE(plan.happensBefore(a, b));
            EXPECT_FALSE(plan.happensBefore(b, a));
        }
    }

    // Each location has exactly 4 potential writers (the 4 class slots).
    sched::Location loc{1, grammar.iface(0).attrByName.at("w")};
    EXPECT_EQ(plan.writersOf(loc).size(), 4u);
}

TEST(VisitPlan, ParallelBranchesAreIncomparable)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));

    tree::Tree t(grammar);
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");
    tree::NodeId root = t.addNode(inner);
    tree::NodeId c1 = t.addNode(leaf);
    tree::NodeId c2 = t.addNode(leaf);
    sem::ChildId cs = grammar.cls(inner).childByName.at("cs");
    t.addElement(root, cs, c1);
    t.addElement(root, cs, c2);
    t.setRoot(root);
    t.validate();

    sched::VisitPlan plan(skeleton, t);
    std::vector<sched::InstId> at_c1, at_c2;
    for (const auto& inst : plan.instances()) {
        if (inst.node == c1)
            at_c1.push_back(inst.id);
        if (inst.node == c2)
            at_c2.push_back(inst.id);
    }
    ASSERT_FALSE(at_c1.empty());
    ASSERT_FALSE(at_c2.empty());
    for (sched::InstId a : at_c1) {
        for (sched::InstId b : at_c2) {
            EXPECT_FALSE(plan.happensBefore(a, b));
            EXPECT_FALSE(plan.happensBefore(b, a));
        }
    }
}

TEST(Trace, BuildAndPrint)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    tree::Tree t = fig2Tree(grammar);
    sched::VisitPlan plan(skeleton, t);
    symbolic::SigmaSpace sigma = symbolic::SigmaSpace::build(skeleton);
    symbolic::TraceProgram program = symbolic::buildTrace(plan, sigma);
    // 20 slot instances x 4 candidates = 80 guarded statements.
    EXPECT_EQ(program.stmts.size(), 80u);
    EXPECT_GT(program.actionCount(), 80u);

    std::string text = symbolic::printTraceStmt(program.stmts[0], plan);
    EXPECT_NE(text.find("assume s("), std::string::npos);
    EXPECT_NE(text.find("(write "), std::string::npos);
}

TEST(Synthesis, IlpSolvesRenderExample)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    tree::Tree t = fig2Tree(grammar);

    obs::Telemetry telemetry;
    auto schedule = symbolic::synthesizeIlp(skeleton, {&t}, telemetry);
    ASSERT_TRUE(schedule.has_value());
    EXPECT_TRUE(schedule->coversAllRules(skeleton));
    EXPECT_FALSE(synth::checkScheduleOn(skeleton, *schedule, t).has_value());
    EXPECT_GT(telemetry.counter("ilp.sigma_vars"), 0.0);
    EXPECT_GT(telemetry.counter("ilp.constraints"), 0.0);
}

TEST(Synthesis, GeneralSolvesRenderExample)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    tree::Tree t = fig2Tree(grammar);

    obs::Telemetry telemetry;
    auto schedule = symbolic::synthesizeGeneral(skeleton, {&t}, telemetry);
    ASSERT_TRUE(schedule.has_value());
    EXPECT_TRUE(schedule->coversAllRules(skeleton));
    EXPECT_FALSE(synth::checkScheduleOn(skeleton, *schedule, t).has_value());
    EXPECT_GT(telemetry.counter("sat.formula_nodes"), 0.0);
}

TEST(Synthesis, EncodersAgreeWithSimulatorOnAllAssignments)
{
    // Tiny grammar with 2 rules and 2 slots: enumerate all 3^2 partial
    // assignments (none/r1/r2 per slot) and check that the simulator
    // accepts exactly the assignments the encodings admit.
    const char* src = R"(
interface I { input a : int; output b, c : int; }
class C : I {
    children { k : Optional[I]; }
    rules { self.b := self.a; self.c := self.b; }
}
class L : I {
    rules { self.b := self.a; self.c := self.b; }
}
)";
    sem::Grammar grammar = sem::Grammar::analyze(lang::parseGrammar(src));
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(R"(
traversal t {
    case C { recur k; ??; ??; }
    case L { ??; ??; }
}
)"));
    tree::Tree t(grammar);
    tree::NodeId root = t.addNode(grammar.findClass("C"));
    tree::NodeId kid = t.addNode(grammar.findClass("L"));
    t.setScalar(root, 0, kid);
    t.setRoot(root);
    t.validate();

    // Brute-force all complete, covering assignments.
    const auto& slots = skeleton.slots();
    ASSERT_EQ(slots.size(), 4u);
    size_t valid_count = 0;
    for (size_t mask = 0; mask < 3 * 3 * 3 * 3; ++mask) {
        size_t rest = mask;
        sched::Schedule candidate;
        candidate.bySlot.assign(4, std::nullopt);
        for (size_t s = 0; s < 4; ++s) {
            size_t choice = rest % 3;
            rest /= 3;
            if (choice > 0)
                candidate.bySlot[s] = slots[s].candidates[choice - 1];
        }
        if (!candidate.coversAllRules(skeleton))
            continue;
        if (!synth::checkScheduleOn(skeleton, candidate, t).has_value())
            ++valid_count;
    }
    // b-before-c within each class: exactly one ordering per class.
    EXPECT_EQ(valid_count, 1u);

    // Both engines must find that unique schedule.
    auto ilp = symbolic::synthesizeIlp(skeleton, {&t});
    auto gen = symbolic::synthesizeGeneral(skeleton, {&t});
    ASSERT_TRUE(ilp.has_value());
    ASSERT_TRUE(gen.has_value());
    EXPECT_EQ(ilp->bySlot, gen->bySlot);
}

TEST(Synthesis, VectorGrammarPlacesFoldsInLoop)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorSymbolicSrc));

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    synth::SynthesisResult result = synth::synthesize(skeleton, 0, {},
                                                      config);
    ASSERT_TRUE(result.schedule.has_value()) << result.failure;

    // The two fold rules must land in the in-loop slots; h after the loop.
    sem::ClassId inner = grammar.findClass("Inner");
    sem::RuleId h_rule = grammar.findRule(inner, "h");
    const auto& by_slot = result.schedule->bySlot;
    EXPECT_EQ(by_slot[2], std::optional<sem::RuleId>(h_rule));
    EXPECT_TRUE(by_slot[0].has_value());
    EXPECT_TRUE(by_slot[1].has_value());
    EXPECT_TRUE(grammar.rule(*by_slot[0]).isFold);
    EXPECT_TRUE(grammar.rule(*by_slot[1]).isFold);
}

TEST(Synthesis, ParallelSkeletonSynthesizes)
{
    sem::Grammar grammar = vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.maxCollection = 2;
    synth::SynthesisResult result = synth::synthesize(skeleton, 0, {},
                                                      config);
    ASSERT_TRUE(result.schedule.has_value()) << result.failure;
    EXPECT_TRUE(result.schedule->coversAllRules(skeleton));
}

TEST(Synthesis, CegisConvergesOnRenderExample)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::SynthesisResult result = synth::synthesize(skeleton, 0, {},
                                                      config);
    ASSERT_TRUE(result.schedule.has_value()) << result.failure;
    EXPECT_GE(result.cegisIterations, 1u);
    EXPECT_GT(result.verifiedTrees, 0u);

    // Final schedule verifies on the Fig. 2 tree as well.
    tree::Tree t = fig2Tree(grammar);
    EXPECT_FALSE(
        synth::checkScheduleOn(skeleton, *result.schedule, t).has_value());
}

TEST(Synthesis, CegisUsesGeneralEngineToo)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);

    synth::SynthesisConfig config;
    config.engine = synth::Engine::GeneralPurposeSat;
    config.verify.maxDepth = 3;
    obs::Telemetry telemetry;
    synth::SynthesisResult result =
        synth::synthesize(skeleton, 0, {}, config, telemetry);
    ASSERT_TRUE(result.schedule.has_value()) << result.failure;
    EXPECT_GT(telemetry.counter("sat.formula_nodes"), 0.0);
}

TEST(Synthesis, PreOrderSkeletonIsInfeasible)
{
    // Holes before the recursive visits cannot satisfy bottom-up deps.
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(R"(
traversal t {
    case Inner { ??; ??; ??; ??; recur fc; recur nx; }
    case Leaf { ??; ??; ??; ??; recur nx; }
}
)"));
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::SynthesisResult result = synth::synthesize(skeleton, 0, {},
                                                      config);
    EXPECT_FALSE(result.schedule.has_value());
    EXPECT_FALSE(result.failure.empty());
}

TEST(Synthesis, ConcreteTraversalPrintsLikeFig4b)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::SynthesisResult result = synth::synthesize(skeleton, 0, {},
                                                      config);
    ASSERT_TRUE(result.schedule.has_value());

    ast::TraversalDecl concrete =
        result.schedule->toConcreteTraversal(skeleton);
    std::string text = lang::printTraversal(concrete);
    EXPECT_NE(text.find("recur fc;"), std::string::npos);
    EXPECT_NE(text.find("eval self."), std::string::npos);
    EXPECT_EQ(text.find("??"), std::string::npos);
    // Still parses and re-resolves as a concrete traversal.
    sched::Skeleton concrete_skeleton =
        sched::Skeleton::resolve(grammar, lang::parseTraversal(text));
    EXPECT_EQ(concrete_skeleton.slotCount(), 0u);
}

TEST(Verify, DetectsBrokenSchedule)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    // Assign everything to slot 0..3 in a deliberately wrong order:
    // w1 (reads self.w) before w.
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");
    sched::Schedule bad;
    bad.bySlot = {
        grammar.findRule(inner, "w1"), grammar.findRule(inner, "w"),
        grammar.findRule(inner, "h1"), grammar.findRule(inner, "h"),
        grammar.findRule(leaf, "w1"),  grammar.findRule(leaf, "w"),
        grammar.findRule(leaf, "h1"),  grammar.findRule(leaf, "h"),
    };
    tree::Tree t = fig2Tree(grammar);
    auto failure = synth::checkScheduleOn(skeleton, bad, t);
    ASSERT_TRUE(failure.has_value());
    EXPECT_NE(failure->find("happens before its write"), std::string::npos);

    synth::VerifyResult verdict =
        synth::verifySchedule(skeleton, bad, 0, {});
    EXPECT_FALSE(verdict.ok);
    EXPECT_TRUE(verdict.counterexample.has_value());
}

} // namespace
} // namespace hecate
