#pragma once

/**
 * @file
 * Shared fixtures for the Hecate test suite: the paper's running
 * example (Figs. 3/4) in both linked-list and vector form.
 */

#include <string>

#include "lang/parser.hpp"
#include "sched/schedule.hpp"
#include "sem/grammar.hpp"

namespace hecate::testutil {

/** Fig. 3: linked-list (first-child / next-sibling) rendering grammar. */
inline const char* kRenderGrammarSrc = R"(
interface Box {
    input w0, h0 : int;
    output w1, w, h1, h : int;
}
class Inner : Box {
    children {
        nx : Optional[Box];
        fc : Optional[Box];
    }
    rules(calcWidth) {
        self.w  := max(self.w0, fc.w1);
        self.w1 := max(self.w, nx.w1);
    }
    rules(calcHeight) {
        self.h  := max(self.h0, fc.h1);
        self.h1 := self.h + nx.h1;
    }
}
class Leaf : Box {
    children {
        nx : Optional[Box];
    }
    rules(calcWidth) {
        self.w  := self.w0;
        self.w1 := max(self.w, nx.w1);
    }
    rules(calcHeight) {
        self.h  := self.h0;
        self.h1 := self.h + nx.h1;
    }
}
)";

/** Fig. 4(a): the symbolic post-order layout traversal. */
inline const char* kSymbolicLayoutSrc = R"(
traversal layout {
    case Inner {
        recur fc;
        recur nx;
        ??; ??; ??; ??;
    }
    case Leaf {
        recur nx;
        ??; ??; ??; ??;
    }
}
)";

/** Fig. 12/13: the vector-based rendering grammar with folds. */
inline const char* kVectorRenderGrammarSrc = R"(
interface Box {
    input w0, h0 : int;
    output w, h1, h : int;
}
class Inner : Box {
    children {
        cs : [Box];
    }
    rules {
        self.w  := fold(max, self.w0, cs.w);
        self.h1 := fold(add, 0, cs.h);
        self.h  := max(self.h0, self.h1);
    }
}
class Leaf : Box {
    rules {
        self.w  := self.w0;
        self.h1 := 0;
        self.h  := self.h0;
    }
}
)";

/** Fig. 13(a): symbolic vector traversal with in-loop and post-loop slots. */
inline const char* kVectorSymbolicSrc = R"(
traversal layout {
    case Inner {
        iterate cs {
            recur cs;
            ??; ??;
        }
        ??;
    }
    case Leaf {
        ??; ??; ??;
    }
}
)";

/** Fig. 14(c)-shaped skeleton: parallel recursion, sequential folds. */
inline const char* kVectorParallelSymbolicSrc = R"(
traversal layout {
    case Inner {
        parallel cs {
            recur cs;
        }
        iterate cs {
            ??; ??;
        }
        ??;
    }
    case Leaf {
        ??; ??; ??;
    }
}
)";

inline sem::Grammar
renderGrammar()
{
    return sem::Grammar::analyze(lang::parseGrammar(kRenderGrammarSrc));
}

inline sem::Grammar
vectorRenderGrammar()
{
    return sem::Grammar::analyze(lang::parseGrammar(kVectorRenderGrammarSrc));
}

inline sched::Skeleton
renderSkeleton(const sem::Grammar& grammar)
{
    return sched::Skeleton::resolve(grammar,
                                    lang::parseTraversal(kSymbolicLayoutSrc));
}

} // namespace hecate::testutil
