/**
 * @file
 * Tests for the strip-mined register-form expression engine: stack →
 * register lowering (including the overflow fallback), the r-form
 * disassembly listing, the Quad/CmpSel superinstructions, predicated
 * `if` execution, strip-vs-interpreter differentials over every
 * bundled grammar on full-width inputs, and the Auto selector's
 * strip-convertible provenance.
 *
 * Every fixture is named Runtime* so the TSan CI job's
 * `ctest -R 'Runtime'` filter covers the pooled tiled×strip test.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "grammars/grammars.hpp"
#include "lang/parser.hpp"
#include "runtime/executor.hpp"
#include "sem/grammar.hpp"
#include "support/thread_pool.hpp"
#include "synth/autotuner.hpp"

namespace hecate {
namespace {

/** All eight bundled benchmark grammars. */
std::vector<const grammars::Benchmark*>
allBenchmarks()
{
    std::vector<const grammars::Benchmark*> all =
        grammars::grafterBenchmarks();
    for (const grammars::Benchmark* bench : grammars::cssBenchmarks())
        all.push_back(bench);
    return all;
}

synth::SynthesisConfig
cheapConfig()
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 128;
    return config;
}

/** Autotune @p grammar from @p root and compile the winning schedule. */
runtime::Program
compileGrammar(const sem::Grammar& grammar, sem::InterfaceId root,
               const std::string& name)
{
    synth::AutotuneResult tuned =
        synth::autotune(grammar, root, cheapConfig());
    if (!tuned.schedule.has_value())
        throw std::runtime_error(name + ": " + tuned.lastSynthesis.failure);
    return runtime::Program::compile(*tuned.skeleton, *tuned.schedule);
}

/** Every output cell of @p arena, in node-major order (exact compare). */
std::vector<int64_t>
outputCells(const runtime::TreeArena& arena)
{
    const sem::Grammar& grammar = arena.grammar();
    std::vector<int64_t> cells;
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            uint32_t col = arena.layout().column(cls.iface, attr);
            cells.push_back(arena.value(node, col));
        }
    }
    return cells;
}

/**
 * A binary-shaped grammar whose single Bytecode rule is a predicated
 * `if` with non-leaf arms: too deep for the CmpSel superinstruction,
 * so it lowers to register form with one SELECT blend. Both arms
 * divide/mod by an input, so strip execution evaluates the not-taken
 * arm on every lane — the predication-soundness case (wrapDiv/wrapMod
 * make x/0 == x%0 == 0 instead of trapping).
 */
const char* kPredicatedGrammarSrc = R"(
interface V {
    input a, b, c : int;
    output o : int;
}
class Node : V {
    children {
        l : Optional[V];
        r : Optional[V];
    }
    rules {
        self.o := if self.a < self.b then self.a / self.c
                                     else self.a % self.c;
    }
}
)";

/**
 * A shallow, side-effect-free `if` over leaf operands: the CmpSel
 * superinstruction shape (cmp + select, no strip engine involved).
 */
const char* kCmpSelGrammarSrc = R"(
interface V {
    input a, b, c, d : int;
    output o, p : int;
}
class Node : V {
    children {
        l : Optional[V];
        r : Optional[V];
    }
    rules {
        self.o := if self.a < self.b then self.c else self.d;
        self.p := self.a + self.b;
    }
}
)";

/**
 * Five-leaf chains stay Bytecode (the Quad superinstructions stop at
 * four leaves) but convert to register form with two registers, so
 * bytecodeShare() > 0.30 while stripResidualShare() == 0 — the
 * strip-rescue shape the Auto selector's StripConvertible arm exists
 * for.
 */
const char* kChainGrammarSrc = R"(
interface N {
    input a, b, c, d, e : int;
    output o, p : int;
}
class Fork : N {
    children {
        l : Optional[N];
        r : Optional[N];
    }
    rules {
        self.o := self.a + self.b + self.c + self.d + self.e;
        self.p := l.o + r.o;
    }
}
class Tip : N {
    rules {
        self.o := self.a + self.b + self.c + self.d + self.e;
        self.p := self.a;
    }
}
)";

sem::Grammar
parseCustom(const char* src)
{
    return sem::Grammar::analyze(lang::parseGrammar(src));
}

// ---------------------------------------------------------------------------
// Register lowering
// ---------------------------------------------------------------------------

TEST(RuntimeStrip, LoweringIsConsistentOnBundledGrammars)
{
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileGrammar(grammar, root, bench->name);

        // Kind counters partition the spec list.
        uint64_t kinds = 0;
        for (uint32_t k = 0; k < runtime::kEvalKindCount; ++k)
            kinds += program.kindCount(static_cast<runtime::EvalKind>(k));
        EXPECT_EQ(kinds, program.evals().size()) << bench->name;

        // Converted Bytecode specs can only shrink the share Auto
        // consults, never grow it.
        EXPECT_LE(program.stripResidualShare(), program.bytecodeShare())
            << bench->name;

        for (const runtime::EvalSpec& spec : program.evals()) {
            if (spec.kind != runtime::EvalKind::Bytecode) {
                // Superinstructions never carry a register window.
                EXPECT_EQ(spec.rcount, 0u) << bench->name;
                continue;
            }
            if (spec.rcount == 0)
                continue; // stays on the interpreter
            EXPECT_GE(spec.regCount, 1u) << bench->name;
            EXPECT_LE(spec.regCount, runtime::kMaxStripRegs)
                << bench->name;
            EXPECT_LE(spec.regCount, program.maxRegCount()) << bench->name;
            ASSERT_LE(spec.rbegin + spec.rcount,
                      program.regPool().size())
                << bench->name;
            // The window's result is always register 0, written last.
            const runtime::RInst& last =
                program.regPool()[spec.rbegin + spec.rcount - 1];
            EXPECT_EQ(last.d, 0) << bench->name;
        }
    }
}

TEST(RuntimeStrip, PredicatedIfLowersToSelect)
{
    sem::Grammar grammar = parseCustom(kPredicatedGrammarSrc);
    runtime::Program program =
        compileGrammar(grammar, grammar.findInterface("V"), "predicated");

    ASSERT_EQ(program.kindCount(runtime::EvalKind::Bytecode), 1u);
    const runtime::EvalSpec* spec = nullptr;
    for (const runtime::EvalSpec& s : program.evals())
        if (s.kind == runtime::EvalKind::Bytecode)
            spec = &s;
    ASSERT_NE(spec, nullptr);

    // cond in r0/r1, then-arm in r1/r2, else-arm in r2/r3, one blend:
    // 6 loads + lt + div + mod + select.
    EXPECT_EQ(spec->rcount, 10u);
    EXPECT_EQ(spec->regCount, 4u);
    EXPECT_EQ(spec->predOps, 1u);
    EXPECT_EQ(program.maxRegCount(), 4u);
    EXPECT_EQ(program.stripResidualShare(), 0.0);
}

TEST(RuntimeStrip, DisassemblyListsRegisterForm)
{
    sem::Grammar grammar = parseCustom(kPredicatedGrammarSrc);
    runtime::Program program =
        compileGrammar(grammar, grammar.findInterface("V"), "predicated");

    const std::string listing = program.disassemble();
    EXPECT_NE(listing.find("; r-form: regs=4 masks=1 strip=64"),
              std::string::npos)
        << listing;
    EXPECT_NE(listing.find("r0 = lt r0, r1"), std::string::npos)
        << listing;
    EXPECT_NE(listing.find("r1 = div r1, r2"), std::string::npos)
        << listing;
    EXPECT_NE(listing.find("r2 = mod r2, r3"), std::string::npos)
        << listing;
    EXPECT_NE(listing.find("r0 = select r0 ? r1 : r2"), std::string::npos)
        << listing;
}

TEST(RuntimeStrip, DeepExpressionFallsBackToInterpreter)
{
    // Right-nested chains grow one register per level (the left
    // operand of every pending add stays live), so 17 levels overflow
    // the 16-register file and the expression must stay on the
    // node-major interpreter.
    std::string nest = "self.a";
    for (int i = 0; i < 17; ++i)
        nest = "self.a + (" + nest + ")";
    std::string src = R"(
interface D {
    input a : int;
    output o : int;
}
class Node : D {
    children {
        l : Optional[D];
        r : Optional[D];
    }
    rules {
        self.o := )" + nest + R"(;
    }
}
)";
    sem::Grammar grammar = parseCustom(src.c_str());
    runtime::Program program =
        compileGrammar(grammar, grammar.findInterface("D"), "deep");

    ASSERT_EQ(program.kindCount(runtime::EvalKind::Bytecode), 1u);
    for (const runtime::EvalSpec& spec : program.evals())
        EXPECT_EQ(spec.rcount, 0u);
    EXPECT_GT(program.stripResidualShare(), 0.0);
    EXPECT_EQ(program.stripResidualShare(), program.bytecodeShare());
    EXPECT_NE(program.disassemble().find("; r-form: none (interpreter)"),
              std::string::npos);

    // Strip mode must notice per node, fall back, and still agree.
    ASSERT_TRUE(program.sweepable());
    runtime::GenConfig gen;
    gen.targetNodes = 3000;
    gen.seed = 0x5eed;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, grammar.findInterface("D"),
                                     gen);
    runtime::ExecOptions interp;
    interp.strategy = runtime::SweepStrategy::Segmented;
    interp.exprEngine = runtime::ExprEngine::Interp;
    runtime::execute(program, arena, interp);
    const std::vector<int64_t> expected = outputCells(arena);

    arena.clearOutputs();
    runtime::ExecOptions strip;
    strip.strategy = runtime::SweepStrategy::Segmented;
    strip.exprEngine = runtime::ExprEngine::Strip;
    runtime::RuntimeStats stats = runtime::execute(program, arena, strip);
    EXPECT_EQ(outputCells(arena), expected);
    EXPECT_EQ(stats.stripsRun, 0u);
    EXPECT_GT(stats.fallbackNodes, 0u);
}

// ---------------------------------------------------------------------------
// Superinstructions
// ---------------------------------------------------------------------------

TEST(RuntimeStrip, CmpSelSuperinstructionMatchesAndCounts)
{
    sem::Grammar grammar = parseCustom(kCmpSelGrammarSrc);
    runtime::Program program =
        compileGrammar(grammar, grammar.findInterface("V"), "cmpsel");

    // The shallow `if` specializes away from Bytecode entirely.
    EXPECT_EQ(program.kindCount(runtime::EvalKind::CmpSel), 1u);
    EXPECT_EQ(program.kindCount(runtime::EvalKind::Bin), 1u);
    EXPECT_EQ(program.bytecodeShare(), 0.0);

    runtime::GenConfig gen;
    gen.targetNodes = 3000;
    gen.seed = 0xc0de;
    gen.inputLo = std::numeric_limits<int64_t>::min();
    gen.inputHi = std::numeric_limits<int64_t>::max();
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, grammar.findInterface("V"),
                                     gen);

    runtime::ExecOptions stack;
    stack.strategy = runtime::SweepStrategy::Stack;
    runtime::RuntimeStats stats = runtime::execute(program, arena, stack);
    const uint32_t kind =
        static_cast<uint32_t>(runtime::EvalKind::CmpSel);
    EXPECT_EQ(stats.evalsByKind[kind], arena.size());
    const std::vector<int64_t> expected = outputCells(arena);

    // The branch-free kernel form agrees with the stack walk.
    ASSERT_TRUE(program.sweepable());
    arena.clearOutputs();
    runtime::ExecOptions seg;
    seg.strategy = runtime::SweepStrategy::Segmented;
    runtime::execute(program, arena, seg);
    EXPECT_EQ(outputCells(arena), expected);
}

TEST(RuntimeStrip, QuadKindsCountPerEvaluation)
{
    // The AST grammar's 4-leaf chains lower to QuadL; the stack walk
    // tallies one per (node, rule) evaluation.
    sem::Grammar grammar = grammars::load(grammars::astBench());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::astBench());
    runtime::Program program = compileGrammar(grammar, root, "ast");
    ASSERT_GT(program.kindCount(runtime::EvalKind::QuadL), 0u);

    runtime::GenConfig gen;
    gen.targetNodes = 2000;
    gen.seed = 0xa57;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    runtime::ExecOptions stack;
    stack.strategy = runtime::SweepStrategy::Stack;
    runtime::RuntimeStats stats = runtime::execute(program, arena, stack);
    const uint32_t quad = static_cast<uint32_t>(runtime::EvalKind::QuadL);
    EXPECT_GT(stats.evalsByKind[quad], 0u);

    uint64_t byKind = 0;
    for (uint32_t k = 0; k < runtime::kEvalKindCount; ++k)
        byKind += stats.evalsByKind[k];
    EXPECT_EQ(byKind, stats.rulesEvaluated);
}

// ---------------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------------

TEST(RuntimeStrip, DifferentialAllBundledGrammarsFullWidth)
{
    // Strip-mined register execution vs. the node-major interpreter on
    // every bundled grammar, with inputs spanning all of int64 so the
    // wrapping arithmetic edge cases (INT64_MIN / -1, shifts through
    // zero) are actually exercised, and generated trees whose absent
    // optional children read the arena's zero row.
    uint64_t totalStrips = 0;
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileGrammar(grammar, root, bench->name);
        ASSERT_TRUE(program.sweepable()) << bench->name;

        runtime::GenConfig gen;
        gen.targetNodes = 5000;
        gen.seed = 0xd1ff;
        gen.inputLo = std::numeric_limits<int64_t>::min();
        gen.inputHi = std::numeric_limits<int64_t>::max();
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);

        runtime::ExecOptions interp;
        interp.strategy = runtime::SweepStrategy::Segmented;
        interp.exprEngine = runtime::ExprEngine::Interp;
        runtime::RuntimeStats interpStats =
            runtime::execute(program, arena, interp);
        EXPECT_EQ(interpStats.stripsRun, 0u) << bench->name;
        const std::vector<int64_t> expected = outputCells(arena);

        arena.clearOutputs();
        runtime::ExecOptions strip;
        strip.strategy = runtime::SweepStrategy::Segmented;
        strip.exprEngine = runtime::ExprEngine::Strip;
        runtime::RuntimeStats stripStats =
            runtime::execute(program, arena, strip);
        EXPECT_EQ(outputCells(arena), expected)
            << bench->name << ": strip diverges from interpreter";
        EXPECT_LE(stripStats.fallbackNodes, interpStats.fallbackNodes)
            << bench->name;
        totalStrips += stripStats.stripsRun;

        arena.clearOutputs();
        runtime::ExecOptions tiled;
        tiled.strategy = runtime::SweepStrategy::Tiled;
        tiled.tileExec = runtime::TileExec::Kernels;
        tiled.tileBytes = 4096;
        runtime::execute(program, arena, tiled);
        EXPECT_EQ(outputCells(arena), expected)
            << bench->name << ": tiled strip diverges from interpreter";
    }
    // At least one bundled grammar must actually have run strips, or
    // this differential tests nothing.
    EXPECT_GT(totalStrips, 0u);
}

TEST(RuntimeStrip, PredicationEvaluatesBothArmsSoundly)
{
    // Inputs confined to {0, 1} force real mask mixes per strip and
    // guarantee divisions by zero in whichever arm is not taken — the
    // strip engine evaluates it anyway and must discard it, matching
    // the interpreter that never evaluates it at all.
    sem::Grammar grammar = parseCustom(kPredicatedGrammarSrc);
    runtime::Program program =
        compileGrammar(grammar, grammar.findInterface("V"), "predicated");
    ASSERT_TRUE(program.sweepable());

    runtime::GenConfig gen;
    gen.targetNodes = 4000;
    gen.seed = 0x01;
    gen.inputLo = 0;
    gen.inputHi = 1;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, grammar.findInterface("V"),
                                     gen);

    runtime::ExecOptions interp;
    interp.strategy = runtime::SweepStrategy::Segmented;
    interp.exprEngine = runtime::ExprEngine::Interp;
    runtime::RuntimeStats interpStats =
        runtime::execute(program, arena, interp);
    EXPECT_EQ(interpStats.predicatedOps, 0u);
    const std::vector<int64_t> expected = outputCells(arena);

    arena.clearOutputs();
    runtime::ExecOptions strip;
    strip.strategy = runtime::SweepStrategy::Segmented;
    runtime::RuntimeStats stats = runtime::execute(program, arena, strip);
    EXPECT_EQ(outputCells(arena), expected);
    EXPECT_GT(stats.stripsRun, 0u);
    EXPECT_EQ(stats.fallbackNodes, 0u);
    // One SELECT per node evaluation.
    EXPECT_EQ(stats.predicatedOps, arena.size());
}

TEST(RuntimeStrip, TiledStripPooledMatchesSequential)
{
    // Work-stealing tiles running strip kernels in parallel: the
    // scratchpads are per-worker-slot, so a data race here is a bug in
    // the slot plumbing. Runs under the TSan CI job via the Runtime
    // fixture filter.
    sem::Grammar grammar = parseCustom(kPredicatedGrammarSrc);
    runtime::Program program =
        compileGrammar(grammar, grammar.findInterface("V"), "predicated");
    ASSERT_TRUE(program.sweepable());

    runtime::GenConfig gen;
    gen.targetNodes = 30000;
    gen.seed = 0x7164;
    gen.inputLo = std::numeric_limits<int64_t>::min();
    gen.inputHi = std::numeric_limits<int64_t>::max();
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, grammar.findInterface("V"),
                                     gen);

    runtime::ExecOptions interp;
    interp.strategy = runtime::SweepStrategy::Segmented;
    interp.exprEngine = runtime::ExprEngine::Interp;
    runtime::execute(program, arena, interp);
    const std::vector<int64_t> expected = outputCells(arena);

    ThreadPool pool(4);
    arena.clearOutputs();
    runtime::ExecOptions tiled;
    tiled.strategy = runtime::SweepStrategy::Tiled;
    tiled.tileExec = runtime::TileExec::Kernels;
    tiled.tileBytes = 8192;
    tiled.pool = &pool;
    runtime::RuntimeStats stats = runtime::execute(program, arena, tiled);
    EXPECT_EQ(outputCells(arena), expected);
    EXPECT_GT(stats.stripsRun, 0u);
    EXPECT_GT(stats.tilesExecuted, 1u);
    EXPECT_EQ(stats.fallbackNodes, 0u);
}

// ---------------------------------------------------------------------------
// Auto selection provenance
// ---------------------------------------------------------------------------

TEST(RuntimeStrip, AutoRescuesConvertibleBytecodeHeavyPrograms)
{
    sem::Grammar grammar = parseCustom(kChainGrammarSrc);
    runtime::Program program =
        compileGrammar(grammar, grammar.findInterface("N"), "chains");

    // Half the specs are Bytecode (the 5-leaf chains), all convert.
    EXPECT_EQ(program.kindCount(runtime::EvalKind::Bytecode), 2u);
    EXPECT_GT(program.bytecodeShare(), 0.30);
    EXPECT_EQ(program.stripResidualShare(), 0.0);
    ASSERT_TRUE(program.sweepable());

    runtime::GenConfig gen;
    gen.targetNodes = 20000;
    gen.seed = 0xce9a;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, grammar.findInterface("N"),
                                     gen);

    // With the strip engine assumed off, the share heuristic sends the
    // program to the stack walk.
    runtime::ExecOptions interp;
    interp.exprEngine = runtime::ExprEngine::Interp;
    runtime::RuntimeStats interpStats =
        runtime::execute(program, arena, interp);
    EXPECT_EQ(interpStats.strategy, runtime::SweepStrategy::Stack);
    EXPECT_EQ(interpStats.selection,
              runtime::StrategyReason::BytecodeHeavy);
    EXPECT_EQ(interpStats.stripsRun, 0u);
    const std::vector<int64_t> expected = outputCells(arena);

    // Default (strip on): the residual share is zero, so Auto picks a
    // kernel strategy and records the strip-convertible provenance.
    arena.clearOutputs();
    runtime::RuntimeStats stats = runtime::execute(program, arena);
    EXPECT_NE(stats.strategy, runtime::SweepStrategy::Stack);
    EXPECT_EQ(stats.selection, runtime::StrategyReason::StripConvertible);
    EXPECT_GT(stats.stripsRun, 0u);
    EXPECT_EQ(stats.fallbackNodes, 0u);
    EXPECT_EQ(outputCells(arena), expected);
}

} // namespace
} // namespace hecate
