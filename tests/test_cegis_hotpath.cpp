/**
 * @file
 * Tests of the CEGIS hot-path machinery: the incremental IlpSession
 * against the from-scratch encoder (differential), deterministic
 * parallel verification, the memoized plan cache, solver phase hints,
 * and the verification-space knobs.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "grammars/grammars.hpp"
#include "sched/plan_cache.hpp"
#include "solver/ilp.hpp"
#include "support/rng.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "symbolic/ilp_session.hpp"
#include "synth/autotuner.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"
#include "tree/enumerate.hpp"

namespace hecate {
namespace {

using testutil::renderGrammar;
using testutil::renderSkeleton;

/** The two smallest enumerated trees for @p grammar / @p root. */
std::vector<tree::Tree>
smallestTrees(const sem::Grammar& grammar, sem::InterfaceId root,
              size_t count = 2)
{
    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = static_cast<uint32_t>(count);
    std::vector<tree::Tree> trees;
    for (const tree::ShapePtr& shape :
         tree::enumerateShapes(grammar, root, config))
        trees.push_back(tree::instantiate(grammar, *shape, 1));
    return trees;
}

/**
 * Differential: over the same examples, a fresh IlpSession and the
 * one-shot synthesizeIlp assert the identical constraint system and
 * (with no warm-start hints yet) search in the identical order — so
 * they must return the identical schedule, or both report infeasible.
 * Exercised on every builtin grammar.
 */
TEST(IlpSessionDifferential, SingleSolveMatchesFromScratchEverywhere)
{
    std::vector<const grammars::Benchmark*> benchmarks =
        grammars::grafterBenchmarks();
    for (const grammars::Benchmark* bench : grammars::cssBenchmarks())
        benchmarks.push_back(bench);
    for (const grammars::Benchmark* bench : benchmarks) {
        SCOPED_TRACE(bench->name);
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        sched::Skeleton skeleton = sched::Skeleton::resolve(
            grammar,
            synth::makeSkeleton(grammar, synth::SkeletonStyle::PostOrder));

        std::vector<tree::Tree> trees = smallestTrees(grammar, root);
        std::vector<const tree::Tree*> views;
        for (const tree::Tree& tree : trees)
            views.push_back(&tree);
        std::optional<sched::Schedule> scratch =
            symbolic::synthesizeIlp(skeleton, views);

        symbolic::IlpSession session(skeleton);
        for (const tree::Tree& tree : trees)
            session.addExample(sched::VisitPlan(skeleton, tree));
        std::optional<sched::Schedule> incremental = session.solve();

        ASSERT_EQ(scratch.has_value(), incremental.has_value());
        EXPECT_EQ(session.feasible(), incremental.has_value());
        if (scratch.has_value()) {
            EXPECT_EQ(scratch->bySlot, incremental->bySlot);
        }
    }
}

/**
 * Differential, full loop: for every builtin grammar the incremental
 * and from-scratch CEGIS pipelines agree on feasibility, and when
 * feasible both schedules pass the one-shot reference verifier. (The
 * schedules themselves may differ: warm starts legitimately steer the
 * loop to a different — equally verified — fixed point.)
 */
TEST(IlpSessionDifferential, FullCegisAgreesOnFeasibilityEverywhere)
{
    std::vector<const grammars::Benchmark*> benchmarks =
        grammars::grafterBenchmarks();
    for (const grammars::Benchmark* bench : grammars::cssBenchmarks())
        benchmarks.push_back(bench);
    for (const grammars::Benchmark* bench : benchmarks) {
        SCOPED_TRACE(bench->name);
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);

        synth::SynthesisConfig fast;
        fast.verify.maxDepth = 2;
        fast.verify.randomRounds = 8;
        synth::SynthesisConfig slow = fast;
        slow.incrementalEncoding = false;
        slow.reuseVerifierState = false;
        slow.verifyThreads = 1;

        synth::AutotuneResult incremental =
            synth::autotune(grammar, root, fast);
        synth::AutotuneResult scratch = synth::autotune(grammar, root, slow);
        ASSERT_EQ(incremental.schedule.has_value(),
                  scratch.schedule.has_value());
        if (!incremental.schedule.has_value())
            continue;
        EXPECT_TRUE(synth::verifySchedule(*incremental.skeleton,
                                          *incremental.schedule, root,
                                          fast.verify)
                        .ok);
        EXPECT_TRUE(synth::verifySchedule(*scratch.skeleton,
                                          *scratch.schedule, root,
                                          slow.verify)
                        .ok);
    }
}

TEST(IlpSession, InfeasibilityIsPermanent)
{
    sem::Grammar grammar = renderGrammar();
    // Two holes for four rules per class: pigeonhole-infeasible under
    // the rule-exactly-once validity constraints, before any example.
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal("traversal t {"
                                      " case Inner { recur fc; recur nx;"
                                      "  ??; ??; }"
                                      " case Leaf { recur nx; ??; ??; } }"));
    symbolic::IlpSession session(skeleton);
    EXPECT_FALSE(session.solve().has_value());
    EXPECT_FALSE(session.feasible());
    EXPECT_FALSE(session.solve().has_value());
}

/**
 * The parallel verifier must return the lowest-index counterexample —
 * the exact tree and reason the serial scan finds — regardless of
 * thread count.
 */
TEST(ParallelVerify, DeterministicFirstCounterexample)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sem::InterfaceId root = grammar.cls(0).iface;

    tree::EnumConfig config;
    config.maxDepth = 3;

    // Start from a verified schedule and swap two slot assignments
    // until the happens-before check breaks (e.g. w1 reads self.w, so
    // computing them in swapped order fails): a real broken schedule
    // with a real counterexample.
    synth::SynthesisConfig synth_config;
    synth_config.verify = config;
    synth::SynthesisResult good =
        synth::synthesize(skeleton, root, {}, synth_config);
    ASSERT_TRUE(good.schedule.has_value());

    std::optional<sched::Schedule> broken;
    synth::VerifyResult serial;
    for (size_t i = 0; i < good.schedule->bySlot.size() && !broken; ++i) {
        for (size_t j = i + 1; j < good.schedule->bySlot.size(); ++j) {
            sched::Schedule mutated = *good.schedule;
            std::swap(mutated.bySlot[i], mutated.bySlot[j]);
            synth::VerifyResult check =
                synth::verifySchedule(skeleton, mutated, root, config);
            if (!check.ok) {
                broken = std::move(mutated);
                serial = std::move(check);
                break;
            }
        }
    }
    ASSERT_TRUE(broken.has_value());
    ASSERT_FALSE(serial.ok);
    ASSERT_TRUE(serial.counterexample.has_value());

    for (uint32_t threads : {2u, 4u}) {
        SCOPED_TRACE(threads);
        synth::Verifier verifier(skeleton, root, config, /*seed=*/1,
                                 threads);
        synth::VerifyResult parallel = verifier.run(*broken);
        ASSERT_FALSE(parallel.ok);
        ASSERT_TRUE(parallel.counterexample.has_value());
        EXPECT_EQ(parallel.reason, serial.reason);
        EXPECT_EQ(parallel.checkedTrees, serial.checkedTrees);
        EXPECT_EQ(parallel.counterexample->shapeString(),
                  serial.counterexample->shapeString());
    }
}

TEST(ParallelVerify, AgreesWithSerialOnSuccess)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sem::InterfaceId root = grammar.cls(0).iface;

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::SynthesisResult result =
        synth::synthesize(skeleton, root, {}, config);
    ASSERT_TRUE(result.schedule.has_value());

    synth::VerifyResult serial =
        synth::verifySchedule(skeleton, *result.schedule, root, config.verify);
    synth::Verifier verifier(skeleton, root, config.verify, config.seed, 4);
    synth::VerifyResult parallel = verifier.run(*result.schedule);
    EXPECT_TRUE(serial.ok);
    EXPECT_TRUE(parallel.ok);
    EXPECT_EQ(parallel.checkedTrees, serial.checkedTrees);
}

TEST(PlanCache, MemoizesByShape)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sem::InterfaceId root = grammar.cls(0).iface;
    sched::PlanCache cache(skeleton);

    std::vector<tree::Tree> trees = smallestTrees(grammar, root, 2);
    auto first = cache.lookup(trees[0]);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    // Same shape, different attribute values: the plan is structural,
    // so the cache must return the very same entry.
    tree::Tree relabeled = trees[0];
    auto again = cache.lookup(std::move(relabeled));
    EXPECT_EQ(again.get(), first.get());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);

    auto other = cache.lookup(trees[1]);
    EXPECT_NE(other.get(), first.get());
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(IlpSolverHints, PhaseHintsSteerFeasibleSolution)
{
    // x0 + x1 == 1 has two solutions; the default value order finds
    // x0=1 first, hints flip it to x0=0/x1=1.
    solver::IlpSolver plain;
    uint32_t x0 = plain.addVar();
    uint32_t x1 = plain.addVar();
    plain.addEq({{1, x0}, {1, x1}}, 1);
    ASSERT_EQ(plain.solve(), solver::IlpResult::Feasible);
    EXPECT_EQ(plain.value(x0), 1);
    EXPECT_EQ(plain.stats().hintedBranches, 0u);

    solver::IlpSolver hinted;
    x0 = hinted.addVar();
    x1 = hinted.addVar();
    hinted.addEq({{1, x0}, {1, x1}}, 1);
    hinted.setPhaseHints({0, 1});
    ASSERT_EQ(hinted.solve(), solver::IlpResult::Feasible);
    EXPECT_EQ(hinted.value(x0), 0);
    EXPECT_EQ(hinted.value(x1), 1);
    EXPECT_GT(hinted.stats().hintedBranches, 0u);
}

TEST(IlpSolverHints, BudgetExhaustionIsNotInfeasibility)
{
    solver::IlpSolver ilp;
    uint32_t x0 = ilp.addVar();
    uint32_t x1 = ilp.addVar();
    ilp.addEq({{1, x0}, {1, x1}}, 1);
    // A zero-node budget cannot finish the (feasible) search: the
    // solver must say so instead of claiming an infeasibility proof.
    EXPECT_EQ(ilp.solve(/*maxNodes=*/0), solver::IlpResult::Exhausted);
    EXPECT_EQ(ilp.solve(), solver::IlpResult::Feasible);
}

TEST(VerifySpace, RandomRoundsAndDepthBumpAreKnobs)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sem::InterfaceId root = grammar.cls(0).iface;

    tree::EnumConfig config;
    config.maxDepth = 2;
    config.randomRounds = 0;
    synth::Verifier bare(skeleton, root, config, 1, 1);
    size_t shapes = tree::enumerateShapes(grammar, root, config).size();
    EXPECT_EQ(bare.treeCount(), shapes);

    config.randomRounds = 5;
    config.sampleDepthBump = 0;
    synth::Verifier sampled(skeleton, root, config, 1, 1);
    EXPECT_EQ(sampled.treeCount(), shapes + 5);
}

TEST(VerifySpace, ResolveVerifyThreadsPrecedence)
{
    EXPECT_EQ(synth::resolveVerifyThreads(2), 2u);
    ASSERT_EQ(setenv("HECATE_VERIFY_THREADS", "3", 1), 0);
    EXPECT_EQ(synth::resolveVerifyThreads(0), 3u);
    EXPECT_EQ(synth::resolveVerifyThreads(5), 5u);
    unsetenv("HECATE_VERIFY_THREADS");
    EXPECT_GE(synth::resolveVerifyThreads(0), 1u);
}

TEST(Splitmix, MatchesReferenceVector)
{
    // First two outputs of the reference splitmix64 stream seeded with
    // 0 (the generator's state after one step is the golden gamma).
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(0x9e3779b97f4a7c15ULL), 0x6e789e6aa1b965f4ULL);
}

TEST(Synthesize, ReportsHotPathCounters)
{
    sem::Grammar grammar = renderGrammar();
    sched::Skeleton skeleton = renderSkeleton(grammar);
    sem::InterfaceId root = grammar.cls(0).iface;

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verifyThreads = 1;
    obs::Telemetry telemetry;
    synth::SynthesisResult result =
        synth::synthesize(skeleton, root, {}, config, telemetry);
    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_EQ(result.verifyThreadsUsed, 1u);
    EXPECT_GT(telemetry.counter("plan_cache.misses"), 0.0);
    // Every round checks the same memoized verification space, so any
    // multi-round run must hit the cache.
    if (result.cegisIterations > 1) {
        EXPECT_GT(telemetry.counter("plan_cache.hits"), 0.0);
    }
    EXPECT_GT(telemetry.spanSeconds("encode") + telemetry.spanSeconds("solve"),
              0.0);
    EXPECT_GE(telemetry.spanSeconds("verify"), 0.0);
    // One "cegis.round" span per reported iteration, each enclosing its
    // solver spans.
    EXPECT_EQ(telemetry.spanCount("cegis.round"), result.cegisIterations);
}

} // namespace
} // namespace hecate
