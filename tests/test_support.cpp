/**
 * @file
 * Tests for the support substrate: thread pool, deterministic RNG,
 * diagnostics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "support/diagnostics.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace hecate {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&counter] { ++counter; });
    pool.waitAll();
    EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitAllIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        pool.waitAll();
        EXPECT_EQ(counter.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, TasksMaySubmitNestedTasks)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &counter] {
            ++counter;
            for (int j = 0; j < 4; ++j)
                pool.submit([&counter] { ++counter; });
        });
    }
    pool.waitAll();
    EXPECT_EQ(counter.load(), 8 * 5);
}

TEST(ThreadPool, SurvivesThrowingTasks)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    for (int i = 0; i < 60; ++i) {
        if (i % 3 == 0) {
            pool.submit([] { throw std::runtime_error("task blew up"); });
        } else if (i % 7 == 0) {
            pool.submit([] { throw 42; }); // not even a std::exception
        } else {
            pool.submit([&completed] { ++completed; });
        }
    }
    // One bad task must not std::terminate the pool or wedge waitAll.
    pool.waitAll();
    EXPECT_EQ(completed.load(), 34); // 20 + 6 submissions threw
    EXPECT_EQ(pool.failedTaskCount(), 26u);
    EXPECT_FALSE(pool.lastTaskError().empty());

    // The pool remains fully usable afterwards.
    pool.submit([&completed] { ++completed; });
    pool.waitAll();
    EXPECT_EQ(completed.load(), 35);
}

TEST(ThreadPool, RecordsLastErrorMessage)
{
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("first"); });
    pool.waitAll();
    pool.submit([] { throw std::runtime_error("second"); });
    pool.waitAll();
    EXPECT_EQ(pool.failedTaskCount(), 2u);
    EXPECT_EQ(pool.lastTaskError(), "second");
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker)
{
    ThreadPool pool;
    EXPECT_GE(pool.workerCount(), 1u);
}

TEST(Rng, IsDeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_from_c = false;
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next();
        all_equal &= va == b.next();
        any_diff_from_c |= va != c.next();
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_from_c);
}

TEST(Rng, RangeIsInclusiveAndCovers)
{
    Rng rng(7);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceIsCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Diagnostics, UserErrorCarriesLocation)
{
    try {
        userError("bad thing", {4, 7});
        FAIL() << "did not throw";
    } catch (const UserError& error) {
        EXPECT_EQ(error.loc().line, 4u);
        EXPECT_NE(std::string(error.what()).find("4:7"),
                  std::string::npos);
    }
}

TEST(Diagnostics, CheckInvariantThrowsInternalError)
{
    EXPECT_NO_THROW(checkInvariant(true, "fine"));
    EXPECT_THROW(checkInvariant(false, "broken"), InternalError);
}

} // namespace
} // namespace hecate
