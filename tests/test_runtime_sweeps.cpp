/**
 * @file
 * Tests for the level-synchronous sweep engine and forest batching:
 * segment derivation, strategy equivalence (stack / linear / segmented,
 * vectorized and scalar, sequential and level-parallel), full-width
 * input ranges, and ForestArena packing and batched execution.
 *
 * Every fixture is named Runtime* so the TSan CI job's
 * `ctest -R 'Runtime'` filter covers the parallel wave tests.
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "runtime/executor.hpp"
#include "runtime/forest.hpp"
#include "runtime/segments.hpp"
#include "runtime/tiles.hpp"
#include "synth/autotuner.hpp"
#include "synth/cegis.hpp"
#include "testutil.hpp"

namespace hecate {
namespace {

/** All eight bundled benchmark grammars. */
std::vector<const grammars::Benchmark*>
allBenchmarks()
{
    std::vector<const grammars::Benchmark*> all =
        grammars::grafterBenchmarks();
    for (const grammars::Benchmark* bench : grammars::cssBenchmarks())
        all.push_back(bench);
    return all;
}

synth::SynthesisConfig
cheapConfig()
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 128;
    return config;
}

/** Autotune @p bench and compile the winning schedule. */
runtime::Program
compileBenchmark(const sem::Grammar& grammar, sem::InterfaceId root,
                 const std::string& name)
{
    synth::AutotuneResult tuned =
        synth::autotune(grammar, root, cheapConfig());
    if (!tuned.schedule.has_value())
        throw std::runtime_error(name + ": " + tuned.lastSynthesis.failure);
    return runtime::Program::compile(*tuned.skeleton, *tuned.schedule);
}

/** Every output cell of @p arena, in node-major order (exact compare). */
std::vector<int64_t>
outputCells(const runtime::TreeArena& arena)
{
    const sem::Grammar& grammar = arena.grammar();
    std::vector<int64_t> cells;
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            uint32_t col = arena.layout().column(cls.iface, attr);
            cells.push_back(arena.value(node, col));
        }
    }
    return cells;
}

// ---------------------------------------------------------------------------
// Segment derivation
// ---------------------------------------------------------------------------

TEST(RuntimeSegments, LevelsPartitionNodesByDepthAndClass)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::renderTree());
    runtime::GenConfig gen;
    gen.targetNodes = 20000;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    const runtime::LevelSegments& segs = arena.levelSegments();

    // One level per depth, root alone at level 0.
    ASSERT_EQ(segs.levelCount(), arena.depth());
    EXPECT_EQ(segs.level(0).posBegin, 0u);
    EXPECT_EQ(segs.level(0).posEnd, 1u);
    EXPECT_EQ(segs.order()[0], 0u);

    // order() is a permutation of all node ids, levels tile it, and
    // every segment is class-homogeneous; contiguous segments really
    // are unbroken ascending id runs.
    std::vector<bool> seen(arena.size(), false);
    uint32_t pos = 0;
    for (uint32_t l = 0; l < segs.levelCount(); ++l) {
        const runtime::LevelSegments::Level& lv = segs.level(l);
        ASSERT_EQ(lv.posBegin, pos);
        ASSERT_GT(lv.posEnd, lv.posBegin) << "empty level " << l;
        pos = lv.posEnd;
        for (uint32_t s = lv.segBegin; s < lv.segEnd; ++s) {
            const runtime::LevelSegments::Segment& seg =
                segs.segments()[s];
            for (uint32_t i = 0; i < seg.count; ++i) {
                runtime::NodeIdx node = segs.order()[seg.posBegin + i];
                ASSERT_LT(node, arena.size());
                ASSERT_FALSE(seen[node]);
                seen[node] = true;
                ASSERT_EQ(arena.classOf(node), seg.cls);
                if (seg.contiguous) {
                    ASSERT_EQ(node, seg.first + i);
                }
            }
        }
    }
    ASSERT_EQ(pos, arena.size());

    // Parents always sit in an earlier level than their children.
    std::vector<uint32_t> levelOf(arena.size());
    for (uint32_t l = 0; l < segs.levelCount(); ++l) {
        const runtime::LevelSegments::Level& lv = segs.level(l);
        for (uint32_t p = lv.posBegin; p < lv.posEnd; ++p)
            levelOf[segs.order()[p]] = l;
    }
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const runtime::ClassLayout& layout =
            arena.layout().cls(arena.classOf(node));
        for (uint32_t s = 0; s < layout.scalarCount; ++s) {
            runtime::NodeIdx child = arena.scalarChild(node, s);
            if (child != runtime::kNone) {
                EXPECT_EQ(levelOf[child], levelOf[node] + 1);
            }
        }
        for (uint32_t c = 0; c < layout.collCount; ++c) {
            auto [begin, end] = arena.collection(node, c);
            for (const runtime::NodeIdx* it = begin; it != end; ++it)
                EXPECT_EQ(levelOf[*it], levelOf[node] + 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy equivalence: every sweep engine computes the same cells
// ---------------------------------------------------------------------------

TEST(RuntimeSweeps, AllStrategiesAgreeOnAllBundledGrammars)
{
    size_t sweepableCount = 0;
    for (const grammars::Benchmark* bench : allBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench->name);

        runtime::GenConfig gen;
        gen.targetNodes = 4000;
        gen.seed = 9;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        tree::Tree pristine = arena.toTree();

        // Ground truth: demand-driven reference evaluation.
        tree::Tree reference = pristine;
        exec::computeReference(reference);

        runtime::ExecOptions stack;
        stack.strategy = runtime::SweepStrategy::Stack;
        runtime::execute(program, arena, stack);
        EXPECT_TRUE(runtime::treesEquivalent(arena.toTree(), reference))
            << bench->name << ": stack diverges from computeReference";
        const std::vector<int64_t> expected = outputCells(arena);

        if (!program.sweepable())
            continue;
        ++sweepableCount;

        ThreadPool pool(4);
        struct Variant {
            const char* name;
            runtime::SweepStrategy strategy;
            bool simd;
            bool pooled;
        };
        const Variant variants[] = {
            {"linear", runtime::SweepStrategy::Linear, true, false},
            {"segmented-simd", runtime::SweepStrategy::Segmented, true,
             false},
            {"segmented-scalar", runtime::SweepStrategy::Segmented, false,
             false},
            {"segmented-parallel", runtime::SweepStrategy::Segmented, true,
             true},
        };
        for (const Variant& v : variants) {
            arena.clearOutputs();
            runtime::ExecOptions options;
            options.strategy = v.strategy;
            options.simd = v.simd;
            if (v.pooled) {
                options.pool = &pool;
                options.grain = 64;
            }
            runtime::RuntimeStats stats =
                runtime::execute(program, arena, options);
            EXPECT_EQ(outputCells(arena), expected)
                << bench->name << ": " << v.name
                << " diverges from the stack strategy";
            if (v.strategy == runtime::SweepStrategy::Segmented) {
                EXPECT_GT(stats.levelWaves, 0u) << bench->name;
            }
        }
        EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
    }
    // The bundled grammars overwhelmingly synthesize sandwich-shaped
    // traversals; the segmented engine must actually be exercised.
    EXPECT_GE(sweepableCount, 6u);
}

TEST(RuntimeSweeps, FullWidthInputRanges)
{
    // [INT64_MIN, INT64_MAX] inputs drive every overflow edge through
    // the wrapping kernels: all strategies must still agree cell for
    // cell (and with the reference interpreter, which wraps the same
    // way).
    for (const grammars::Benchmark* bench :
         {&grammars::binaryTree(), &grammars::fmm()}) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench->name);
        if (!program.sweepable())
            continue;

        runtime::GenConfig gen;
        gen.targetNodes = 3000;
        gen.seed = 13;
        gen.inputLo = std::numeric_limits<int64_t>::min();
        gen.inputHi = std::numeric_limits<int64_t>::max();
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        tree::Tree reference = arena.toTree();
        exec::computeReference(reference);

        runtime::ExecOptions stack;
        stack.strategy = runtime::SweepStrategy::Stack;
        runtime::execute(program, arena, stack);
        EXPECT_TRUE(runtime::treesEquivalent(arena.toTree(), reference))
            << bench->name << ": stack diverges on full-width inputs";
        const std::vector<int64_t> expected = outputCells(arena);

        for (bool simd : {true, false}) {
            arena.clearOutputs();
            runtime::ExecOptions options;
            options.strategy = runtime::SweepStrategy::Segmented;
            options.simd = simd;
            runtime::execute(program, arena, options);
            EXPECT_EQ(outputCells(arena), expected)
                << bench->name << ": segmented (simd=" << simd
                << ") diverges on full-width inputs";
        }
    }
}

TEST(RuntimeSweeps, AbsentChildRulesInSegmentedKernels)
{
    // FMM's downward rules target optional children. In a segmented
    // kernel the child-target loop must skip absent slots (which alias
    // the shared zero row) without writing — a sandwich skeleton makes
    // the program sweepable so those rules run through the kernels.
    const char* src = R"(
traversal fmm {
    case Box {
        ??; ??; ??; ??; ??; ??;
        recur l;
        recur r;
        ??; ??; ??; ??; ??; ??;
    }
    case Body {
        ??; ??; ??; ??;
    }
    case Sim {
        ??; ??; ??; ??;
        recur b;
        ??; ??; ??; ??;
    }
}
)";
    sem::Grammar grammar = grammars::load(grammars::fmm());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::fmm());
    sched::Skeleton skeleton =
        sched::Skeleton::resolve(grammar, lang::parseTraversal(src));
    auto result = synth::synthesize(skeleton, root, {}, cheapConfig());
    ASSERT_TRUE(result.schedule.has_value()) << result.failure;
    runtime::Program program =
        runtime::Program::compile(skeleton, *result.schedule);
    ASSERT_TRUE(program.sweepable());

    runtime::GenConfig gen;
    gen.targetNodes = 20000;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    tree::Tree reference = arena.toTree();
    exec::computeReference(reference);

    for (bool simd : {true, false}) {
        arena.clearOutputs();
        runtime::ExecOptions options;
        options.strategy = runtime::SweepStrategy::Segmented;
        options.simd = simd;
        runtime::execute(program, arena, options);
        EXPECT_TRUE(runtime::treesEquivalent(arena.toTree(), reference))
            << "segmented (simd=" << simd
            << ") diverges on absent-child rules";
    }
}

TEST(RuntimeSweeps, ExplicitSweepOnNonSweepableProgramIsUserError)
{
    // A parallel region disqualifies the sandwich shape.
    sem::Grammar grammar = testutil::vectorRenderGrammar();
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar,
        lang::parseTraversal(testutil::kVectorParallelSymbolicSrc));
    synth::SynthesisConfig config = cheapConfig();
    config.verify.maxCollection = 2;
    auto result = synth::synthesize(skeleton, 0, {}, config);
    ASSERT_TRUE(result.schedule.has_value());
    runtime::Program program =
        runtime::Program::compile(skeleton, *result.schedule);
    ASSERT_FALSE(program.sweepable());

    runtime::GenConfig gen;
    gen.targetNodes = 500;
    runtime::TreeArena arena = runtime::TreeArena::generate(grammar, 0, gen);
    runtime::ExecOptions options;
    options.strategy = runtime::SweepStrategy::Segmented;
    EXPECT_THROW(runtime::execute(program, arena, options), UserError);
    options.strategy = runtime::SweepStrategy::Linear;
    EXPECT_THROW(runtime::execute(program, arena, options), UserError);
    // Auto falls back to the stack strategy silently.
    options.strategy = runtime::SweepStrategy::Auto;
    EXPECT_NO_THROW(runtime::execute(program, arena, options));
}

TEST(RuntimeSweeps, AutoConsultsBytecodeShareAndWaveWidth)
{
    // Sweepable is necessary but not sufficient for the kernel
    // strategies: Auto must keep bytecode-heavy programs (the AST and
    // CSS grammars, whose conditional rules defeat kernel
    // vectorization) on the stack walk, and send superinstruction
    // programs (RenderTree) to a kernel engine — Segmented while the
    // whole arena is cache-scale, Tiled beyond it. Every resolution
    // must record its provenance in stats.selection.
    {
        const grammars::Benchmark& bench = grammars::renderTree();
        sem::Grammar grammar = grammars::load(bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench.name);
        ASSERT_TRUE(program.sweepable());
        runtime::GenConfig gen;
        gen.targetNodes = 20000;
        gen.seed = 5;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        const uint64_t footprint =
            static_cast<uint64_t>(arena.size()) *
            runtime::tileBytesPerNode(arena.view());
        runtime::RuntimeStats stats = runtime::execute(program, arena, {});
        if (footprint <= runtime::kAutoSegmentedFootprintBytes) {
            EXPECT_EQ(stats.strategy, runtime::SweepStrategy::Segmented);
            EXPECT_EQ(stats.selection,
                      runtime::StrategyReason::CacheResident);
            EXPECT_GT(stats.levelWaves, 0u);
        } else {
            EXPECT_EQ(stats.strategy, runtime::SweepStrategy::Tiled);
            EXPECT_EQ(stats.selection, runtime::StrategyReason::LargeTree);
            EXPECT_GT(stats.tilesExecuted, 0u);
        }
    }
    {
        // AST's long add chains used to force the stack walk via the
        // bytecode-share rule. The Quad superinstructions absorb its
        // 4-leaf chains and the strip engine converts the residual to
        // register form, so Auto now keeps it on a kernel strategy —
        // with zero interpreter-fallback nodes.
        const grammars::Benchmark& bench = grammars::astBench();
        sem::Grammar grammar = grammars::load(bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench.name);
        ASSERT_TRUE(program.sweepable());
        EXPECT_GT(program.kindCount(runtime::EvalKind::QuadL), 0u);
        EXPECT_EQ(program.stripResidualShare(), 0.0);
        runtime::GenConfig gen;
        gen.targetNodes = 20000;
        gen.seed = 5;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        runtime::RuntimeStats stats = runtime::execute(program, arena, {});
        EXPECT_NE(stats.strategy, runtime::SweepStrategy::Stack);
        EXPECT_NE(stats.selection, runtime::StrategyReason::BytecodeHeavy);
        EXPECT_GT(stats.stripsRun, 0u);
        EXPECT_EQ(stats.fallbackNodes, 0u);
        // Forcing the node-major interpreter turns every strip back
        // into per-node fallback evaluation.
        runtime::ExecOptions interp;
        interp.exprEngine = runtime::ExprEngine::Interp;
        runtime::RuntimeStats istats =
            runtime::execute(program, arena, interp);
        EXPECT_EQ(istats.stripsRun, 0u);
        EXPECT_GT(istats.fallbackNodes, 0u);
    }
    // A chain-shaped arena (every wave one node wide) must fall back
    // to the stack walk even for a superinstruction-only program.
    {
        const grammars::Benchmark& bench = grammars::renderTree();
        sem::Grammar grammar = grammars::load(bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench.name);
        runtime::GenConfig gen;
        gen.targetNodes = 3000;
        gen.maxCollection = 1; // degenerate, list-like fanout
        gen.seed = 5;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        const runtime::LevelSegments::Stats& shape =
            arena.levelSegments().stats();
        runtime::RuntimeStats stats = runtime::execute(program, arena, {});
        if (shape.avgLevelWidth < 64.0) {
            EXPECT_EQ(stats.strategy, runtime::SweepStrategy::Stack);
            EXPECT_EQ(stats.selection,
                      runtime::StrategyReason::NarrowLevels);
        } else {
            EXPECT_NE(stats.strategy, runtime::SweepStrategy::Stack);
        }
    }
    // An explicitly named strategy records Explicit provenance.
    {
        sem::Grammar grammar = grammars::load(grammars::binaryTree());
        sem::InterfaceId root =
            grammars::rootInterface(grammar, grammars::binaryTree());
        runtime::Program program = compileBenchmark(grammar, root, "expl");
        runtime::GenConfig gen;
        gen.targetNodes = 2000;
        runtime::TreeArena arena =
            runtime::TreeArena::generate(grammar, root, gen);
        runtime::ExecOptions options;
        options.strategy = runtime::SweepStrategy::Stack;
        runtime::RuntimeStats stats =
            runtime::execute(program, arena, options);
        EXPECT_EQ(stats.strategy, runtime::SweepStrategy::Stack);
        EXPECT_EQ(stats.selection, runtime::StrategyReason::Explicit);
    }
}

TEST(RuntimeSweeps, ExecOptionsClampedToArena)
{
    // grain/spawnPrefix far beyond the node count (and grain 0) must
    // clamp instead of degenerating or dividing by zero.
    sem::Grammar grammar = grammars::load(grammars::binaryTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::binaryTree());
    runtime::Program program = compileBenchmark(grammar, root, "clamp");

    runtime::GenConfig gen;
    gen.targetNodes = 300;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);
    tree::Tree reference = arena.toTree();
    exec::computeReference(reference);

    ThreadPool pool(2);
    for (uint32_t grain :
         {0u, 1u, std::numeric_limits<uint32_t>::max()}) {
        arena.clearOutputs();
        runtime::ExecOptions options;
        options.pool = &pool;
        options.grain = grain;
        options.spawnPrefix = std::numeric_limits<uint32_t>::max();
        runtime::execute(program, arena, options);
        EXPECT_TRUE(runtime::treesEquivalent(arena.toTree(), reference))
            << "grain " << grain;
    }
    EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
}

// ---------------------------------------------------------------------------
// Level-parallel waves (the TSan CI job runs these under -R 'Runtime')
// ---------------------------------------------------------------------------

TEST(RuntimeSweeps, ParallelLevelWavesMatchSequential)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::renderTree());
    runtime::Program program =
        compileBenchmark(grammar, root, "RenderTree");
    ASSERT_TRUE(program.sweepable());

    runtime::GenConfig gen;
    gen.targetNodes = 60000;
    runtime::TreeArena arena =
        runtime::TreeArena::generate(grammar, root, gen);

    runtime::ExecOptions seq;
    seq.strategy = runtime::SweepStrategy::Segmented;
    runtime::RuntimeStats seqStats =
        runtime::execute(program, arena, seq);
    const std::vector<int64_t> expected = outputCells(arena);

    for (size_t workers : {2u, 4u}) {
        for (uint32_t grain : {64u, 1024u}) {
            arena.clearOutputs();
            ThreadPool pool(workers);
            runtime::ExecOptions options;
            options.strategy = runtime::SweepStrategy::Segmented;
            options.pool = &pool;
            options.grain = grain;
            runtime::RuntimeStats stats =
                runtime::execute(program, arena, options);
            EXPECT_EQ(outputCells(arena), expected)
                << workers << " workers, grain " << grain;
            EXPECT_EQ(stats.nodeVisits, seqStats.nodeVisits);
            EXPECT_EQ(stats.rulesEvaluated, seqStats.rulesEvaluated);
            EXPECT_EQ(stats.levelWaves, seqStats.levelWaves);
            EXPECT_GT(stats.tasksSpawned, 0u);
            EXPECT_EQ(pool.failedTaskCount(), 0u)
                << pool.lastTaskError();
        }
    }
}

// ---------------------------------------------------------------------------
// ForestArena: packing and batched execution
// ---------------------------------------------------------------------------

TEST(RuntimeForest, PackRoundTripsEveryTree)
{
    sem::Grammar grammar = grammars::load(grammars::astBench());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::astBench());
    std::vector<runtime::TreeArena> trees;
    for (uint32_t t = 0; t < 5; ++t) {
        runtime::GenConfig gen;
        gen.targetNodes = 400 + 100 * t;
        gen.seed = 100 + t;
        trees.push_back(runtime::TreeArena::generate(grammar, root, gen));
    }
    runtime::ForestArena forest = runtime::ForestArena::pack(trees);

    ASSERT_EQ(forest.treeCount(), trees.size());
    uint32_t total = 0;
    for (uint32_t t = 0; t < forest.treeCount(); ++t) {
        EXPECT_EQ(forest.treeBegin(t), total);
        EXPECT_EQ(forest.treeSize(t), trees[t].size());
        total += trees[t].size();
        tree::Tree rebuilt = forest.toTree(t);
        rebuilt.validate();
        EXPECT_TRUE(
            runtime::treesEquivalent(trees[t].toTree(), rebuilt))
            << "tree " << t << " changed in packing";
    }
    EXPECT_EQ(forest.size(), total);
}

TEST(RuntimeForest, BatchedExecutionMatchesPerTreeExecution)
{
    for (const grammars::Benchmark* bench :
         {&grammars::binaryTree(), &grammars::renderTree(),
          &grammars::cssFull()}) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);
        runtime::Program program =
            compileBenchmark(grammar, root, bench->name);

        std::vector<runtime::TreeArena> trees;
        uint64_t totalNodes = 0;
        for (uint32_t t = 0; t < 8; ++t) {
            runtime::GenConfig gen;
            gen.targetNodes = 500;
            gen.seed = 40 + t;
            trees.push_back(
                runtime::TreeArena::generate(grammar, root, gen));
            totalNodes += trees.back().size();
        }
        runtime::ForestArena forest = runtime::ForestArena::pack(trees);

        runtime::RuntimeStats stats =
            runtime::execute(program, forest);
        EXPECT_EQ(stats.nodeVisits, totalNodes) << bench->name;

        for (uint32_t t = 0; t < forest.treeCount(); ++t) {
            runtime::execute(program, trees[t]);
            EXPECT_TRUE(runtime::treesEquivalent(trees[t].toTree(),
                                                 forest.toTree(t)))
                << bench->name << ": batched tree " << t
                << " diverges from its solo execution";
        }
    }
}

TEST(RuntimeForest, AllStrategiesAgreeOnForests)
{
    sem::Grammar grammar = grammars::load(grammars::renderTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::renderTree());
    runtime::Program program =
        compileBenchmark(grammar, root, "RenderTree");
    ASSERT_TRUE(program.sweepable());

    runtime::GenConfig gen;
    gen.targetNodes = 1500;
    gen.seed = 5;
    runtime::ForestArena forest =
        runtime::ForestArena::generate(grammar, root, gen, 12);

    runtime::ExecOptions stack;
    stack.strategy = runtime::SweepStrategy::Stack;
    runtime::execute(program, forest, stack);
    const std::vector<int64_t> expected = outputCells(forest.flat());

    ThreadPool pool(4);
    struct Variant {
        const char* name;
        runtime::SweepStrategy strategy;
        bool simd;
        bool pooled;
    };
    const Variant variants[] = {
        {"linear", runtime::SweepStrategy::Linear, true, false},
        {"segmented-simd", runtime::SweepStrategy::Segmented, true, false},
        {"segmented-scalar", runtime::SweepStrategy::Segmented, false,
         false},
        {"segmented-parallel", runtime::SweepStrategy::Segmented, true,
         true},
        {"stack-parallel", runtime::SweepStrategy::Stack, true, true},
    };
    for (const Variant& v : variants) {
        forest.flat().clearOutputs();
        runtime::ExecOptions options;
        options.strategy = v.strategy;
        options.simd = v.simd;
        if (v.pooled) {
            options.pool = &pool;
            options.grain = 256;
        }
        runtime::execute(program, forest, options);
        EXPECT_EQ(outputCells(forest.flat()), expected)
            << v.name << " diverges on the packed forest";
    }
    EXPECT_EQ(pool.failedTaskCount(), 0u) << pool.lastTaskError();
}

TEST(RuntimeForest, GenerateIsDeterministicAndSeedsDiffer)
{
    sem::Grammar grammar = grammars::load(grammars::binaryTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::binaryTree());
    runtime::GenConfig gen;
    gen.targetNodes = 300;
    gen.seed = 77;
    runtime::ForestArena a =
        runtime::ForestArena::generate(grammar, root, gen, 4);
    runtime::ForestArena b =
        runtime::ForestArena::generate(grammar, root, gen, 4);
    ASSERT_EQ(a.treeCount(), 4u);
    for (uint32_t t = 0; t < 4; ++t) {
        EXPECT_TRUE(
            runtime::treesEquivalent(a.toTree(t), b.toTree(t)));
    }
    // Distinct per-tree streams: consecutive trees differ.
    EXPECT_FALSE(runtime::treesEquivalent(a.toTree(0), a.toTree(1)));
}

TEST(RuntimeForest, PackRejectsEmptyAndMismatchedBatches)
{
    EXPECT_THROW(runtime::ForestArena::pack({}), UserError);
    sem::Grammar grammar = grammars::load(grammars::binaryTree());
    sem::InterfaceId root =
        grammars::rootInterface(grammar, grammars::binaryTree());
    runtime::GenConfig gen;
    gen.targetNodes = 50;
    EXPECT_THROW(
        runtime::ForestArena::generate(grammar, root, gen, 0), UserError);
}

} // namespace
} // namespace hecate
