/**
 * @file
 * Native-tier tests. The load-bearing suite is differential: for every
 * bundled grammar the emitted-and-compiled `.so` must produce exactly
 * the values of the bytecode interpreter and of computeReference —
 * single arenas, packed forests, and full-width int64 inputs alike.
 * The rest covers the artifact-cache contract (every key component
 * invalidates; corrupted disk entries are evicted, never dlopen'ed)
 * and the failure containment (a broken compiler degrades to bytecode,
 * it never throws).
 *
 * Every test that needs a real compiler skips when discovery fails, so
 * the suite stays green on toolchain-less runners; the CI native-tier
 * job runs it with one guaranteed present.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "codegen/hecate_native_abi.h"
#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "pipeline/pipeline.hpp"
#include "service/native_cache.hpp"
#include "service/native_tier.hpp"
#include "service/prewarm_index.hpp"
#include "support/diagnostics.hpp"

namespace fs = std::filesystem;

namespace hecate {
namespace {

std::vector<const grammars::Benchmark*>
allBenchmarks()
{
    return {&grammars::binaryTree(), &grammars::fmm(),
            &grammars::piecewise(),  &grammars::astBench(),
            &grammars::renderTree(), &grammars::cssFloat(),
            &grammars::cssMargin(),  &grammars::cssFull()};
}

synth::SynthesisConfig
testConfig()
{
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    config.verify.limit = 64;
    return config;
}

/** Skip the enclosing test unless a real compiler is discoverable. */
#define REQUIRE_COMPILER(tier)                                            \
    do {                                                                  \
        if (!(tier).compilerAvailable())                                  \
            GTEST_SKIP() << "no usable C++ compiler: "                    \
                         << (tier).compilerError();                       \
    } while (0)

/** A fresh directory under the test tmpdir, removed on destruction. */
struct TempDir {
    fs::path path;

    explicit TempDir(const std::string& tag)
    {
        path = fs::temp_directory_path() /
               ("hecate-test-" + tag + "-" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

/**
 * One executed run. The artifact's arena points into the pipeline's
 * heap-pinned grammar, so the pipeline rides along (artifacts must not
 * outlive their Pipeline).
 */
struct PipelineRun {
    std::unique_ptr<pipeline::Pipeline> pipe;
    std::optional<pipeline::ExecuteArtifact> artifact;

    runtime::TreeArena& arena() { return artifact->arena; }
};

/** Execute @p bench through a pipeline on @p tier / @p execTier. */
PipelineRun
runOne(const grammars::Benchmark& bench, service::NativeTier* tier,
       service::ExecTier execTier, obs::Telemetry& telemetry,
       const runtime::GenConfig& gen)
{
    pipeline::PipelineOptions options;
    options.config = testConfig();
    options.telemetry = &telemetry;
    options.nativeTier = tier;
    options.tier = execTier;
    PipelineRun run;
    run.pipe = std::make_unique<pipeline::Pipeline>(bench, "",
                                                    std::move(options));

    pipeline::ExecuteRequest request;
    request.gen = gen;
    run.artifact.emplace(run.pipe->execute(request));
    return run;
}

TEST(NativeDifferential, AllBuiltinsMatchReferenceAndBytecode)
{
    service::NativeTier tier;
    REQUIRE_COMPILER(tier);

    runtime::GenConfig gen;
    gen.targetNodes = 2000;
    gen.seed = 7;

    for (const grammars::Benchmark* bench : allBenchmarks()) {
        obs::Telemetry native_t, bytecode_t;
        PipelineRun native = runOne(*bench, &tier, service::ExecTier::Native,
                            native_t, gen);
        ASSERT_GE(native_t.counter("native.exec"), 1.0)
            << bench->name << ": native tier did not serve the run";

        // Ground truth 1: the demand-driven reference evaluator over
        // the same instance (toTree preserves the generated inputs).
        tree::Tree reference = native.arena().toTree();
        exec::computeReference(reference);
        EXPECT_TRUE(
            runtime::treesEquivalent(native.arena().toTree(), reference))
            << bench->name << ": native diverges from computeReference";

        // Ground truth 2: the bytecode interpreter over the identical
        // generated instance (same grammar, schedule and seed).
        PipelineRun bytecode = runOne(*bench, nullptr,
                              service::ExecTier::Bytecode, bytecode_t,
                              gen);
        EXPECT_EQ(native.arena().checksum(), bytecode.arena().checksum())
            << bench->name << ": native diverges from bytecode";
    }
}

TEST(NativeDifferential, ForestBatchMatchesBytecode)
{
    service::NativeTier tier;
    REQUIRE_COMPILER(tier);

    for (const grammars::Benchmark* bench : allBenchmarks()) {
        pipeline::ExecuteRequest request;
        request.gen.targetNodes = 500;
        request.gen.seed = 3;
        request.batchCount = 4;

        obs::Telemetry native_t;
        pipeline::PipelineOptions native_options;
        native_options.config = testConfig();
        native_options.telemetry = &native_t;
        native_options.nativeTier = &tier;
        native_options.tier = service::ExecTier::Native;
        pipeline::Pipeline native_pipe(*bench, "",
                                       std::move(native_options));
        pipeline::ForestExecuteArtifact native =
            native_pipe.executeForest(request);
        ASSERT_GE(native_t.counter("native.exec"), 1.0) << bench->name;

        pipeline::PipelineOptions bytecode_options;
        bytecode_options.config = testConfig();
        pipeline::Pipeline bytecode_pipe(*bench, "",
                                         std::move(bytecode_options));
        pipeline::ForestExecuteArtifact bytecode =
            bytecode_pipe.executeForest(request);

        EXPECT_EQ(native.forest.flat().checksum(),
                  bytecode.forest.flat().checksum())
            << bench->name << ": batched native diverges from bytecode";
    }
}

TEST(NativeDifferential, FullWidthArithmeticMatchesReference)
{
    service::NativeTier tier;
    REQUIRE_COMPILER(tier);

    // Full-width inputs drive the wrap helpers through overflow,
    // INT64_MIN division/negation and the div/mod zero cases.
    runtime::GenConfig gen;
    gen.targetNodes = 1000;
    gen.inputLo = INT64_MIN;
    gen.inputHi = INT64_MAX;
    gen.seed = 13;

    for (const grammars::Benchmark* bench : allBenchmarks()) {
        obs::Telemetry native_t, bytecode_t;
        PipelineRun native = runOne(*bench, &tier, service::ExecTier::Native,
                            native_t, gen);
        ASSERT_GE(native_t.counter("native.exec"), 1.0) << bench->name;

        tree::Tree reference = native.arena().toTree();
        exec::computeReference(reference);
        EXPECT_TRUE(
            runtime::treesEquivalent(native.arena().toTree(), reference))
            << bench->name
            << ": full-width native diverges from computeReference";

        PipelineRun bytecode = runOne(*bench, nullptr,
                              service::ExecTier::Bytecode, bytecode_t,
                              gen);
        EXPECT_EQ(native.arena().checksum(), bytecode.arena().checksum())
            << bench->name
            << ": full-width native diverges from bytecode";
    }
}

TEST(NativeKey, EveryComponentInvalidates)
{
    pipeline::Pipeline pipe(grammars::binaryTree(), "", {});
    const service::ProblemKey& problem = pipe.problemKey();

    const std::string payload = "payload-a";
    service::ProblemKey base = service::makeNativeKey(
        problem, payload, "recursive", "g++ 13.2",
        codegen::kNativeEmitterVersion, HECATE_NATIVE_ABI_VERSION);

    // Flipping any one component must move the key: a stale artifact
    // built under the old component is unreachable, forcing recompile.
    service::ProblemKey schedule_flip = service::makeNativeKey(
        problem, "payload-b", "recursive", "g++ 13.2",
        codegen::kNativeEmitterVersion, HECATE_NATIVE_ABI_VERSION);
    service::ProblemKey form_flip = service::makeNativeKey(
        problem, payload, "linear", "g++ 13.2",
        codegen::kNativeEmitterVersion, HECATE_NATIVE_ABI_VERSION);
    service::ProblemKey compiler_flip = service::makeNativeKey(
        problem, payload, "recursive", "clang++ 17.0",
        codegen::kNativeEmitterVersion, HECATE_NATIVE_ABI_VERSION);
    service::ProblemKey emitter_flip = service::makeNativeKey(
        problem, payload, "recursive", "g++ 13.2",
        codegen::kNativeEmitterVersion + 1, HECATE_NATIVE_ABI_VERSION);
    service::ProblemKey abi_flip = service::makeNativeKey(
        problem, payload, "recursive", "g++ 13.2",
        codegen::kNativeEmitterVersion, HECATE_NATIVE_ABI_VERSION + 1);

    EXPECT_NE(base.digest(), schedule_flip.digest()) << "schedule hash";
    EXPECT_NE(base.digest(), form_flip.digest()) << "code shape";
    EXPECT_NE(base.digest(), compiler_flip.digest()) << "compiler id";
    EXPECT_NE(base.digest(), emitter_flip.digest()) << "emitter version";
    EXPECT_NE(base.digest(), abi_flip.digest()) << "ABI version";

    // And a different problem moves it too.
    pipeline::Pipeline other(grammars::fmm(), "", {});
    service::ProblemKey problem_flip = service::makeNativeKey(
        other.problemKey(), payload, "recursive", "g++ 13.2",
        codegen::kNativeEmitterVersion, HECATE_NATIVE_ABI_VERSION);
    EXPECT_NE(base.digest(), problem_flip.digest()) << "problem key";
}

/** The single .so artifact persisted under @p dir. */
fs::path
soleArtifact(const fs::path& dir)
{
    fs::path found;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".so") {
            EXPECT_TRUE(found.empty()) << "more than one .so in " << dir;
            found = entry.path();
        }
    }
    EXPECT_FALSE(found.empty()) << "no persisted .so in " << dir;
    return found;
}

/** One cold run against @p dir; returns the tier's stats afterwards. */
void
runWithCacheDir(const std::string& dir, service::NativeTierStats* stats,
                service::NativeCache::Stats* cacheStats)
{
    service::NativeTierConfig config;
    config.cacheDir = dir;
    service::NativeTier tier(config);
    REQUIRE_COMPILER(tier);

    obs::Telemetry telemetry;
    runtime::GenConfig gen;
    gen.targetNodes = 500;
    PipelineRun run = runOne(grammars::binaryTree(), &tier,
                     service::ExecTier::Native, telemetry, gen);
    ASSERT_GE(telemetry.counter("native.exec"), 1.0);

    tree::Tree reference = run.arena().toTree();
    exec::computeReference(reference);
    EXPECT_TRUE(
        runtime::treesEquivalent(run.arena().toTree(), reference));

    if (stats != nullptr)
        *stats = tier.stats();
    if (cacheStats != nullptr)
        *cacheStats = tier.cache().stats();
}

TEST(NativeCacheDisk, WarmStartSkipsCompile)
{
    TempDir dir("warm");
    service::NativeTierStats cold, warm;
    service::NativeCache::Stats coldCache, warmCache;

    runWithCacheDir(dir.path.string(), &cold, &coldCache);
    if (::testing::Test::IsSkipped())
        return;
    EXPECT_EQ(cold.compiles, 1u);
    EXPECT_EQ(coldCache.diskHits, 0u);

    // A brand-new tier (fresh process in spirit) must revive the
    // artifact from disk without touching the compiler.
    runWithCacheDir(dir.path.string(), &warm, &warmCache);
    EXPECT_EQ(warm.compiles, 0u);
    EXPECT_EQ(warmCache.diskHits, 1u);
    EXPECT_EQ(warmCache.corruptEvicted, 0u);
}

TEST(NativeCacheDisk, PrewarmLoadsPersistedArtifactsUpFront)
{
    TempDir dir("prewarm");
    runWithCacheDir(dir.path.string(), nullptr, nullptr);
    if (::testing::Test::IsSkipped())
        return;

    // A fresh cache over the same dir (new daemon in spirit): the
    // prewarm scan revives the artifact before any request needs it.
    service::NativeCache cache(dir.path.string());
    obs::Telemetry telemetry;
    service::PrewarmReport report =
        service::prewarmNativeCache(cache, &telemetry);
    EXPECT_EQ(report.scanned, 1u);
    EXPECT_EQ(report.loaded, 1u);
    EXPECT_EQ(report.skipped, 0u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().diskHits, 1u);
    EXPECT_EQ(telemetry.counter("native.prewarm.entries"), 1.0);
    EXPECT_GE(telemetry.counter("native.prewarm.ms"), 0.0);

    // Memory-only caches have nothing to prewarm.
    service::NativeCache memoryOnly;
    service::PrewarmReport empty =
        service::prewarmNativeCache(memoryOnly, nullptr);
    EXPECT_EQ(empty.scanned, 0u);
    EXPECT_EQ(empty.loaded, 0u);
}

TEST(NativeCacheDisk, TruncatedArtifactEvictedAndRebuilt)
{
    TempDir dir("trunc");
    runWithCacheDir(dir.path.string(), nullptr, nullptr);
    if (::testing::Test::IsSkipped())
        return;

    fs::path so = soleArtifact(dir.path);
    fs::resize_file(so, fs::file_size(so) / 2);

    // The checksum no longer matches: the entry must be deleted and
    // recompiled, never dlopen'ed.
    service::NativeTierStats stats;
    service::NativeCache::Stats cacheStats;
    runWithCacheDir(dir.path.string(), &stats, &cacheStats);
    EXPECT_EQ(cacheStats.corruptEvicted, 1u);
    EXPECT_EQ(cacheStats.diskHits, 0u);
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_TRUE(fs::exists(soleArtifact(dir.path)));
}

TEST(NativeCacheDisk, FlippedByteEvictedAndRebuilt)
{
    TempDir dir("corrupt");
    runWithCacheDir(dir.path.string(), nullptr, nullptr);
    if (::testing::Test::IsSkipped())
        return;

    // Same length, different bytes: only the checksum catches this.
    fs::path so = soleArtifact(dir.path);
    std::fstream f(so, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    std::streamoff size = f.tellg();
    ASSERT_GT(size, 16);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    f.seekp(size / 2);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
    f.close();

    service::NativeTierStats stats;
    service::NativeCache::Stats cacheStats;
    runWithCacheDir(dir.path.string(), &stats, &cacheStats);
    EXPECT_EQ(cacheStats.corruptEvicted, 1u);
    EXPECT_EQ(stats.compiles, 1u);
}

TEST(NativeTierFallback, BrokenCompilerDegradesToBytecode)
{
    service::NativeTierConfig config;
    config.compilerOverride = "/nonexistent/hecate-test-cxx";
    service::NativeTier tier(config);

    EXPECT_FALSE(tier.compilerAvailable());
    EXPECT_FALSE(tier.compilerError().empty());

    // Requesting the native tier anyway must serve bytecode correctly
    // — a broken toolchain is a degradation, never a failure.
    obs::Telemetry telemetry;
    runtime::GenConfig gen;
    gen.targetNodes = 500;
    PipelineRun run = runOne(grammars::binaryTree(), &tier,
                     service::ExecTier::Native, telemetry, gen);
    EXPECT_EQ(telemetry.counter("native.exec"), 0.0);
    EXPECT_GE(telemetry.counter("native.fallback"), 1.0);

    tree::Tree reference = run.arena().toTree();
    exec::computeReference(reference);
    EXPECT_TRUE(
        runtime::treesEquivalent(run.arena().toTree(), reference));
}

TEST(NativeTierSwap, AutoTierHotSwapsAfterBackgroundCompile)
{
    service::NativeTier tier;
    REQUIRE_COMPILER(tier);

    obs::Telemetry telemetry;
    pipeline::PipelineOptions options;
    options.config = testConfig();
    options.telemetry = &telemetry;
    options.nativeTier = &tier;
    options.tier = service::ExecTier::Auto;
    pipeline::Pipeline pipe(grammars::renderTree(), "",
                            std::move(options));

    pipeline::ExecuteRequest request;
    request.gen.targetNodes = 500;

    // First request: the module is not ready, so this serves bytecode
    // and kicks the background build.
    pipeline::ExecuteArtifact first = pipe.execute(request);
    EXPECT_GE(telemetry.counter("native.fallback"), 1.0);
    EXPECT_EQ(telemetry.counter("native.exec"), 0.0);

    // Once the build lands, the same pipeline hot-swaps: identical
    // request, same values, native execution.
    tier.drain();
    pipeline::ExecuteArtifact second = pipe.execute(request);
    EXPECT_GE(telemetry.counter("native.exec"), 1.0);
    EXPECT_EQ(first.arena.checksum(), second.arena.checksum());
    EXPECT_EQ(tier.stats().swaps, 1u);
}

} // namespace
} // namespace hecate
