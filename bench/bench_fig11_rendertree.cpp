/**
 * @file
 * Reproduces Fig. 11: normalized running time of the RenderTree
 * variants against the unfused baseline, across tree sizes.
 *
 * Series: Grafter (fused linked-list — identical schedule to HecateL,
 * reported separately as in the paper), HecateL, HecateV (fused
 * vector), HecateP (de-fused parallel vector). The host has a single
 * hardware thread, so HecateP is reported twice: measured wall clock
 * (1 worker, pays fork overhead) and the modeled 8-worker makespan
 * from LPT scheduling of the spawn-frontier subtrees (the work/span
 * substitution documented in DESIGN.md).
 *
 * Expected shape (paper): fused >= 50% reduction over unfused; vector
 * ~70% reduction (~40% over Grafter); parallel adds ~23% over vector
 * once trees are large enough to amortize fork overhead.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/rendertree.hpp"

namespace {

using namespace hecate;
using namespace hecate::workloads::render;

/** Subtree node counts of the spawn frontier (for the LPT model). */
void
frontierSizes(const BoxV* node, int depth, int spawn,
              std::vector<size_t>& out, size_t& topNodes)
{
    if (depth >= spawn) {
        return; // handled by subtreeSize below
    }
    ++topNodes;
    for (const BoxV* child : node->cs) {
        if (depth + 1 >= spawn) {
            size_t size = 0;
            // iterative subtree count
            std::vector<const BoxV*> stack{child};
            while (!stack.empty()) {
                const BoxV* current = stack.back();
                stack.pop_back();
                ++size;
                for (const BoxV* c : current->cs)
                    stack.push_back(c);
            }
            out.push_back(size);
        } else {
            frontierSizes(child, depth + 1, spawn, out, topNodes);
        }
    }
}

/** LPT makespan of @p tasks on @p workers machines. */
size_t
lptMakespan(std::vector<size_t> tasks, unsigned workers)
{
    std::sort(tasks.rbegin(), tasks.rend());
    std::vector<size_t> load(workers, 0);
    for (size_t task : tasks)
        *std::min_element(load.begin(), load.end()) += task;
    return *std::max_element(load.begin(), load.end());
}

} // namespace

int
main()
{
    using benchutil::measure;
    using benchutil::ratio;
    using benchutil::row;
    using benchutil::sink;

    constexpr unsigned kModelWorkers = 8;
    constexpr int kSpawnDepth = 2;
    const size_t sizes[] = {1'000, 10'000, 100'000, 1'000'000};

    std::printf("Fig. 11: RenderTree normalized running time vs the "
                "unfused baseline\n");
    std::printf("(HecateP-wall = measured on this 1-core host; "
                "HecateP-model = LPT makespan with %u workers)\n\n",
                kModelWorkers);
    row({"TreeSize", "Unfused", "Grafter", "HecateL", "HecateV",
         "HecateP-wall", "HecateP-model"});
    row({"--------", "-------", "-------", "-------", "-------",
         "------------", "-------------"});

    for (size_t size : sizes) {
        DocumentL doc_l = buildDocumentL(size, /*seed=*/42);
        DocumentV doc_v = buildDocumentV(size, /*seed=*/42);
        ThreadPool pool(kModelWorkers);

        double unfused = measure([&] {
            clearOutputs(doc_l);
            runUnfused(doc_l);
            sink(checksum(doc_l));
        });
        double fused_l = measure([&] {
            clearOutputs(doc_l);
            runFusedL(doc_l);
            sink(checksum(doc_l));
        });
        double fused_v = measure([&] {
            clearOutputs(doc_v);
            runFusedV(doc_v);
            sink(checksum(doc_v));
        });
        double parallel_wall = measure([&] {
            clearOutputs(doc_v);
            runParallelV(doc_v, pool, kSpawnDepth);
            sink(checksum(doc_v));
        });

        // Modeled 8-worker makespan: sequential top region + LPT over
        // frontier subtrees, in per-node cost units scaled by the
        // measured vector per-node time, plus a per-task fork overhead.
        std::vector<size_t> tasks;
        size_t top_nodes = 0;
        frontierSizes(doc_v.root, 0, kSpawnDepth, tasks, top_nodes);
        size_t total_nodes = doc_v.size();
        double per_node = fused_v / static_cast<double>(total_nodes);
        double fork_overhead = 2e-6 * static_cast<double>(tasks.size());
        double modeled =
            per_node * (static_cast<double>(top_nodes) +
                        static_cast<double>(
                            lptMakespan(tasks, kModelWorkers))) +
            fork_overhead;

        row({std::to_string(doc_l.size()), ratio(1.0),
             ratio(fused_l / unfused), ratio(fused_l / unfused),
             ratio(fused_v / unfused), ratio(parallel_wall / unfused),
             ratio(modeled / unfused)});
    }

    std::printf("\nSeries notes: Grafter and HecateL run the same fused "
                "linked-list schedule (the paper reports them as "
                "near-identical); values < 1.0 are reductions over the "
                "unfused baseline.\n");
    return 0;
}
