/**
 * @file
 * Microbenchmarks for the solver substrate: the CDCL SAT solver and
 * the 0-1 ILP solver that underlie the two symbolic compilation
 * strategies. Not a paper figure — these document the raw capacity of
 * the substrates the synthesis times build on.
 *
 * Timing uses benchutil::measureBest (fastest of adaptively many runs,
 * the noise-robust statistic for shared hosts). Results print as a
 * table and are written as machine-readable JSON to BENCH_solvers.json
 * (schema: {"quick", "cases": [{"name", "arg", "best_s"}]}).
 * --quick caps every case at one run for CI smoke.
 */

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "solver/formula.hpp"
#include "solver/ilp.hpp"
#include "solver/sat.hpp"
#include "support/rng.hpp"

namespace {

using namespace hecate;
using namespace hecate::solver;

/** Pigeonhole (n+1 pigeons, n holes): classic hard UNSAT family. */
void
satPigeonhole(int holes)
{
    int pigeons = holes + 1;
    SatSolver solver(static_cast<uint32_t>(pigeons * holes));
    auto var = [&](int p, int h) { return p * holes + h + 1; };
    for (int p = 0; p < pigeons; ++p) {
        std::vector<int32_t> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(var(p, h));
        solver.addClause(clause);
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                solver.addClause({-var(p1, h), -var(p2, h)});
        }
    }
    benchutil::sink(solver.solve() == SatResult::Sat);
}

/** Random satisfiable 3-CNF near the easy side of the phase boundary. */
void
satRandom3Cnf(int size)
{
    uint32_t vars = static_cast<uint32_t>(size);
    uint32_t clauses = vars * 3;
    Rng rng(99);
    SatSolver solver(vars);
    for (uint32_t c = 0; c < clauses; ++c) {
        std::vector<int32_t> clause;
        for (int k = 0; k < 3; ++k) {
            int v = 1 + static_cast<int>(rng.below(vars));
            clause.push_back(rng.chance(0.5) ? v : -v);
        }
        solver.addClause(clause);
    }
    benchutil::sink(solver.solve() == SatResult::Sat);
}

/** Tseitin transformation of a deep formula DAG. */
void
formulaTseitin(int depth)
{
    FormulaBuilder fb;
    std::vector<BoolId> layer;
    for (int i = 0; i < 16; ++i)
        layer.push_back(fb.mkVar(fb.newVar()));
    for (int d = 0; d < depth; ++d) {
        std::vector<BoolId> next;
        for (size_t i = 0; i < layer.size(); ++i) {
            next.push_back(fb.mkOr(
                fb.mkAnd(layer[i], layer[(i + 1) % layer.size()]),
                fb.mkNot(layer[(i + 2) % layer.size()])));
        }
        layer = std::move(next);
    }
    benchutil::sink(fb.toCnf(fb.mkAndN(layer)).clauses.size());
}

/** Scheduling-shaped ILP: exactly-one rows plus precedence rows — the
 *  structure the domain-specific encoding emits. */
void
ilpScheduling(int size)
{
    uint32_t jobs = static_cast<uint32_t>(size);
    uint32_t slots = jobs;
    IlpSolver ilp;
    // x[j][s]
    std::vector<std::vector<uint32_t>> x(jobs);
    for (uint32_t j = 0; j < jobs; ++j) {
        for (uint32_t s = 0; s < slots; ++s)
            x[j].push_back(ilp.addVar());
    }
    for (uint32_t j = 0; j < jobs; ++j) {
        std::vector<LinTerm> terms;
        for (uint32_t s = 0; s < slots; ++s)
            terms.push_back({1, x[j][s]});
        ilp.addEq(std::move(terms), 1); // each job in one slot
    }
    for (uint32_t s = 0; s < slots; ++s) {
        std::vector<LinTerm> terms;
        for (uint32_t j = 0; j < jobs; ++j)
            terms.push_back({1, x[j][s]});
        ilp.addLe(std::move(terms), 1); // at most one job per slot
    }
    // Chain precedences: job j before job j+1.
    for (uint32_t j = 0; j + 1 < jobs; ++j) {
        for (uint32_t s = 0; s < slots; ++s) {
            // x[j+1][s] <= sum_{t<s} x[j][t]
            std::vector<LinTerm> terms;
            terms.push_back({-1, x[j + 1][s]});
            for (uint32_t t = 0; t < s; ++t)
                terms.push_back({1, x[j][t]});
            ilp.addGe(std::move(terms), 0);
        }
    }
    benchutil::sink(ilp.solve() == IlpResult::Feasible);
}

/** Set-cover optimization exercising the objective machinery. */
void
ilpSetCover(int size)
{
    uint32_t elements = static_cast<uint32_t>(size);
    uint32_t sets = elements;
    Rng rng(5);
    IlpSolver ilp;
    std::vector<uint32_t> x;
    for (uint32_t s = 0; s < sets; ++s)
        x.push_back(ilp.addVar());
    for (uint32_t e = 0; e < elements; ++e) {
        std::vector<LinTerm> terms;
        for (uint32_t s = 0; s < sets; ++s) {
            if (rng.chance(0.3) || s == e)
                terms.push_back({1, x[s]});
        }
        ilp.addGe(std::move(terms), 1);
    }
    std::vector<LinTerm> objective;
    for (uint32_t s = 0; s < sets; ++s)
        objective.push_back({1, x[s]});
    ilp.setObjective(std::move(objective));
    benchutil::sink(ilp.solve(200'000) == IlpResult::Feasible);
}

struct Case {
    const char* name;
    void (*fn)(int);
    int arg;
};

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }
    const double min_seconds = quick ? 0.0 : 0.2;
    const int max_iters = quick ? 1 : 50;

    const std::vector<Case> cases = {
        {"sat_pigeonhole", satPigeonhole, 5},
        {"sat_pigeonhole", satPigeonhole, 6},
        {"sat_pigeonhole", satPigeonhole, 7},
        {"sat_random_3cnf", satRandom3Cnf, 100},
        {"sat_random_3cnf", satRandom3Cnf, 400},
        {"sat_random_3cnf", satRandom3Cnf, 1600},
        {"formula_tseitin", formulaTseitin, 8},
        {"formula_tseitin", formulaTseitin, 32},
        {"formula_tseitin", formulaTseitin, 128},
        {"ilp_scheduling", ilpScheduling, 8},
        {"ilp_scheduling", ilpScheduling, 16},
        {"ilp_scheduling", ilpScheduling, 32},
        {"ilp_set_cover", ilpSetCover, 12},
        {"ilp_set_cover", ilpSetCover, 20},
    };

    std::printf("== Solver substrate microbenchmarks (best of runs) ==\n");
    benchutil::row({"case", "arg", "best(s)"}, 18);
    std::string json_cases;
    for (const Case& c : cases) {
        double best = benchutil::measureBest([&] { c.fn(c.arg); },
                                             min_seconds, max_iters);
        benchutil::row({c.name, std::to_string(c.arg),
                        benchutil::secs(best)},
                       18);
        char entry[160];
        std::snprintf(entry, sizeof(entry),
                      "%s    {\"name\": \"%s\", \"arg\": %d, "
                      "\"best_s\": %.6f}",
                      json_cases.empty() ? "" : ",\n", c.name, c.arg, best);
        json_cases += entry;
    }

    std::ofstream json("BENCH_solvers.json");
    json << "{\n  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"environment\": " << benchutil::environmentJson()
         << ",\n  \"cases\": [\n" << json_cases << "\n  ]\n}\n";
    std::printf("\nwrote BENCH_solvers.json\n");
    return 0;
}
