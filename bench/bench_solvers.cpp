/**
 * @file
 * Google-benchmark microbenchmarks for the solver substrate: the CDCL
 * SAT solver and the 0-1 ILP solver that underlie the two symbolic
 * compilation strategies. Not a paper figure — these document the raw
 * capacity of the substrates the synthesis times build on.
 */

#include <benchmark/benchmark.h>

#include "solver/formula.hpp"
#include "solver/ilp.hpp"
#include "solver/sat.hpp"
#include "support/rng.hpp"

namespace {

using namespace hecate;
using namespace hecate::solver;

/** Pigeonhole (n+1 pigeons, n holes): classic hard UNSAT family. */
void
BM_SatPigeonhole(benchmark::State& state)
{
    int holes = static_cast<int>(state.range(0));
    int pigeons = holes + 1;
    for (auto _ : state) {
        SatSolver solver(static_cast<uint32_t>(pigeons * holes));
        auto var = [&](int p, int h) { return p * holes + h + 1; };
        for (int p = 0; p < pigeons; ++p) {
            std::vector<int32_t> clause;
            for (int h = 0; h < holes; ++h)
                clause.push_back(var(p, h));
            solver.addClause(clause);
        }
        for (int h = 0; h < holes; ++h) {
            for (int p1 = 0; p1 < pigeons; ++p1) {
                for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                    solver.addClause({-var(p1, h), -var(p2, h)});
            }
        }
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7);

/** Random satisfiable 3-CNF near the easy side of the phase boundary. */
void
BM_SatRandom3Cnf(benchmark::State& state)
{
    uint32_t vars = static_cast<uint32_t>(state.range(0));
    uint32_t clauses = vars * 3;
    for (auto _ : state) {
        Rng rng(99);
        SatSolver solver(vars);
        for (uint32_t c = 0; c < clauses; ++c) {
            std::vector<int32_t> clause;
            for (int k = 0; k < 3; ++k) {
                int v = 1 + static_cast<int>(rng.below(vars));
                clause.push_back(rng.chance(0.5) ? v : -v);
            }
            solver.addClause(clause);
        }
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatRandom3Cnf)->Arg(100)->Arg(400)->Arg(1600);

/** Tseitin transformation of a deep formula DAG. */
void
BM_FormulaTseitin(benchmark::State& state)
{
    size_t depth = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        FormulaBuilder fb;
        std::vector<BoolId> layer;
        for (int i = 0; i < 16; ++i)
            layer.push_back(fb.mkVar(fb.newVar()));
        for (size_t d = 0; d < depth; ++d) {
            std::vector<BoolId> next;
            for (size_t i = 0; i < layer.size(); ++i) {
                next.push_back(fb.mkOr(
                    fb.mkAnd(layer[i], layer[(i + 1) % layer.size()]),
                    fb.mkNot(layer[(i + 2) % layer.size()])));
            }
            layer = std::move(next);
        }
        benchmark::DoNotOptimize(fb.toCnf(fb.mkAndN(layer)));
    }
}
BENCHMARK(BM_FormulaTseitin)->Arg(8)->Arg(32)->Arg(128);

/** Scheduling-shaped ILP: exactly-one rows plus precedence rows — the
 *  structure the domain-specific encoding emits. */
void
BM_IlpScheduling(benchmark::State& state)
{
    uint32_t jobs = static_cast<uint32_t>(state.range(0));
    uint32_t slots = jobs;
    for (auto _ : state) {
        IlpSolver ilp;
        // x[j][s]
        std::vector<std::vector<uint32_t>> x(jobs);
        for (uint32_t j = 0; j < jobs; ++j) {
            for (uint32_t s = 0; s < slots; ++s)
                x[j].push_back(ilp.addVar());
        }
        for (uint32_t j = 0; j < jobs; ++j) {
            std::vector<LinTerm> terms;
            for (uint32_t s = 0; s < slots; ++s)
                terms.push_back({1, x[j][s]});
            ilp.addEq(std::move(terms), 1); // each job in one slot
        }
        for (uint32_t s = 0; s < slots; ++s) {
            std::vector<LinTerm> terms;
            for (uint32_t j = 0; j < jobs; ++j)
                terms.push_back({1, x[j][s]});
            ilp.addLe(std::move(terms), 1); // at most one job per slot
        }
        // Chain precedences: job j before job j+1.
        for (uint32_t j = 0; j + 1 < jobs; ++j) {
            for (uint32_t s = 0; s < slots; ++s) {
                // x[j+1][s] <= sum_{t<s} x[j][t]
                std::vector<LinTerm> terms;
                terms.push_back({-1, x[j + 1][s]});
                for (uint32_t t = 0; t < s; ++t)
                    terms.push_back({1, x[j][t]});
                ilp.addGe(std::move(terms), 0);
            }
        }
        benchmark::DoNotOptimize(ilp.solve());
    }
}
BENCHMARK(BM_IlpScheduling)->Arg(8)->Arg(16)->Arg(32);

/** Set-cover optimization exercising the objective machinery. */
void
BM_IlpSetCover(benchmark::State& state)
{
    uint32_t elements = static_cast<uint32_t>(state.range(0));
    uint32_t sets = elements;
    for (auto _ : state) {
        Rng rng(5);
        IlpSolver ilp;
        std::vector<uint32_t> x;
        for (uint32_t s = 0; s < sets; ++s)
            x.push_back(ilp.addVar());
        for (uint32_t e = 0; e < elements; ++e) {
            std::vector<LinTerm> terms;
            for (uint32_t s = 0; s < sets; ++s) {
                if (rng.chance(0.3) || s == e)
                    terms.push_back({1, x[s]});
            }
            ilp.addGe(std::move(terms), 1);
        }
        std::vector<LinTerm> objective;
        for (uint32_t s = 0; s < sets; ++s)
            objective.push_back({1, x[s]});
        ilp.setObjective(std::move(objective));
        benchmark::DoNotOptimize(ilp.solve(200'000));
    }
}
BENCHMARK(BM_IlpSetCover)->Arg(12)->Arg(20);

} // namespace

BENCHMARK_MAIN();
