/**
 * @file
 * Reproduces the §6.1 "Usability" experiment: HecateA, the auto-tuner
 * that searches for the symbolic traversal itself, on the five Grafter
 * benchmarks — compared against Hecate with the user-provided skeleton.
 *
 * Expected shape (paper): HecateA solves four of the five benchmarks
 * about as fast as Hecate; the AST benchmark with its complex symbolic
 * traversals costs substantially more.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "grammars/grammars.hpp"
#include "synth/autotuner.hpp"

int
main()
{
    using namespace hecate;
    using benchutil::row;
    using benchutil::secs;

    std::printf("HecateA auto-tuner vs Hecate with a user-provided "
                "skeleton (Grafter suite)\n\n");
    row({"Benchmark", "Hecate", "HecateA", "Skeletons", "WinningStyle"});
    row({"---------", "------", "-------", "---------", "------------"});

    for (const grammars::Benchmark* bench : grammars::grafterBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);

        synth::SynthesisConfig config;
        config.verify.maxDepth = 3;
        config.verify.limit = 64;

        sched::Skeleton skeleton = sched::Skeleton::resolve(
            grammar,
            synth::makeSkeleton(grammar, synth::SkeletonStyle::Sandwich));
        Timer hecate_timer;
        synth::SynthesisResult direct =
            synth::synthesize(skeleton, root, {}, config);
        double hecate_seconds = hecate_timer.seconds();

        synth::AutotuneResult tuned = synth::autotune(grammar, root,
                                                      config);

        row({bench->name,
             direct.schedule.has_value() ? secs(hecate_seconds) : "FAILED",
             tuned.schedule.has_value() ? secs(tuned.totalSeconds)
                                        : "FAILED",
             std::to_string(tuned.skeletonsTried),
             tuned.schedule.has_value()
                 ? synth::skeletonStyleName(tuned.style)
                 : "-"});
    }
    return 0;
}
