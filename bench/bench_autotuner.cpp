/**
 * @file
 * Reproduces the §6.1 "Usability" experiment: HecateA, the auto-tuner
 * that searches for the symbolic traversal itself, on the five Grafter
 * benchmarks — compared against Hecate with the user-provided skeleton.
 * Both legs run as pipelines: the Hecate leg is a given-skeleton run,
 * the HecateA leg a run with no traversal source (auto mode).
 *
 * Expected shape (paper): HecateA solves four of the five benchmarks
 * about as fast as Hecate; the AST benchmark with its complex symbolic
 * traversals costs substantially more.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "grammars/grammars.hpp"
#include "lang/printer.hpp"
#include "pipeline/pipeline.hpp"
#include "synth/autotuner.hpp"

int
main()
{
    using namespace hecate;
    using benchutil::row;
    using benchutil::secs;

    std::printf("HecateA auto-tuner vs Hecate with a user-provided "
                "skeleton (Grafter suite)\n\n");
    row({"Benchmark", "Hecate", "HecateA", "Skeletons", "WinningStyle"});
    row({"---------", "------", "-------", "---------", "------------"});

    for (const grammars::Benchmark* bench : grammars::grafterBenchmarks()) {
        synth::SynthesisConfig config;
        config.verify.maxDepth = 3;
        config.verify.limit = 64;

        pipeline::PipelineOptions direct_options;
        direct_options.config = config;
        sem::Grammar grammar = grammars::load(*bench);
        std::string skeleton_src = lang::printTraversal(
            synth::makeSkeleton(grammar,
                                synth::SkeletonStyle::Sandwich));
        pipeline::Pipeline direct_pipe(*bench, skeleton_src,
                                       std::move(direct_options));
        const pipeline::SynthArtifact& direct = direct_pipe.synthesize();

        pipeline::PipelineOptions auto_options;
        auto_options.config = config;
        pipeline::Pipeline auto_pipe(*bench, "", std::move(auto_options));
        const pipeline::SynthArtifact& tuned = auto_pipe.synthesize();

        row({bench->name, direct.ok ? secs(direct.seconds) : "FAILED",
             tuned.ok ? secs(tuned.seconds) : "FAILED",
             std::to_string(tuned.skeletonsTried),
             tuned.ok ? synth::skeletonStyleName(tuned.style) : "-"});
    }
    return 0;
}
