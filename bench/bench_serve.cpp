/**
 * @file
 * Load generator for the serve daemon: an in-process net::Server
 * driven over real TCP sockets by a fleet of pipelining client
 * threads, reproducing the "schedule-synthesis service under
 * concurrent mixed traffic" scenario the net subsystem exists for.
 *
 * Three phases:
 *
 *   warm     one fresh synth per distinct problem in the grammar zoo,
 *            so the load phase measures steady-state (cache-hit)
 *            serving rather than CEGIS.
 *   load     C connections, each keeping P requests outstanding
 *            (C*P concurrent server-side) over a mixed op stream:
 *            cache-hit synths (straight + isomorphic renames),
 *            generated-tree runs, pings, and live metrics reads.
 *   overload a second server with a deliberately tiny queue and few
 *            workers, hammered with fresh (uncached) synths to force
 *            admission-control rejections; asserts the backpressure
 *            contract (every request answered, over_capacity carries
 *            retry_after_ms, server survives).
 *
 * Ends with a drain (SIGTERM path) and reports requests completed
 * before/after. Results go to BENCH_serve.json: throughput, client-
 * observed p50/p99 per op, the server's own histogram quantiles, and
 * the overload accounting. --quick shrinks the fleet for CI.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/client.hpp"
#include "net/json.hpp"
#include "net/server.hpp"
#include "support/timer.hpp"

using namespace hecate;

namespace {

/** One JSON object as ordered key/value text fragments. */
std::string
jsonObject(const std::vector<std::pair<std::string, std::string>>& fields)
{
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "\"" + fields[i].first + "\": " + fields[i].second;
    }
    return out + "}";
}

std::string
jsonNum(double value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    return buffer;
}

/**
 * The Fig. 3 render grammar with a distinguishing constant @p salt (a
 * distinct synthesis problem per salt) and every name suffixed with
 * @p variant (an isomorphic rename per variant — same problem key).
 */
std::string
makeGrammarSource(int salt, int variant)
{
    const std::string v = "_v" + std::to_string(variant);
    const std::string s = std::to_string(salt);
    return "interface Box" + v + " {\n"
           "    input w0" + v + ", h0" + v + " : int;\n"
           "    output w1" + v + ", w" + v + ", h1" + v + ", h" + v +
           " : int;\n"
           "}\n"
           "class Inner" + v + " : Box" + v + " {\n"
           "    children {\n"
           "        nx" + v + " : Optional[Box" + v + "];\n"
           "        fc" + v + " : Optional[Box" + v + "];\n"
           "    }\n"
           "    rules {\n"
           "        self.w" + v + "  := max(self.w0" + v + " + " + s +
           ", fc" + v + ".w1" + v + ");\n"
           "        self.w1" + v + " := max(self.w" + v + ", nx" + v +
           ".w1" + v + ");\n"
           "        self.h" + v + "  := max(self.h0" + v + ", fc" + v +
           ".h1" + v + ");\n"
           "        self.h1" + v + " := self.h" + v + " + nx" + v +
           ".h1" + v + ";\n"
           "    }\n"
           "}\n"
           "class Leaf" + v + " : Box" + v + " {\n"
           "    children {}\n"
           "    rules {\n"
           "        self.w" + v + "  := self.w0" + v + ";\n"
           "        self.w1" + v + " := self.w" + v + ";\n"
           "        self.h" + v + "  := self.h0" + v + ";\n"
           "        self.h1" + v + " := self.h" + v + ";\n"
           "    }\n"
           "}\n";
}

net::Json
makeRequest(const std::string& op, const std::string& grammar)
{
    net::JsonObject request;
    request.emplace("op", net::Json(op));
    if (!grammar.empty())
        request.emplace("grammar", net::Json(grammar));
    return net::Json(request);
}

/** Client-observed latencies for one op class, microsecond samples. */
struct OpSamples {
    std::vector<double> ms;

    double quantile(double q)
    {
        if (ms.empty())
            return 0.0;
        std::sort(ms.begin(), ms.end());
        size_t index = std::min(ms.size() - 1,
                                size_t(q * double(ms.size())));
        return ms[index];
    }
};

struct LoadResult {
    uint64_t completed = 0;
    uint64_t failed = 0;
    double seconds = 0.0;
    OpSamples synth, run, ping, metrics;
};

/**
 * Drive @p totalPerConn mixed requests per connection against
 * @p port, keeping @p depth requests outstanding per connection.
 * Latency per request is wall time from its send to its receive —
 * under pipelining that includes queueing behind the connection's
 * earlier requests, which is what a real client experiences.
 */
LoadResult
runLoadPhase(uint16_t port, int connections, int depth, int totalPerConn,
             int zooSalts, int zooVariants)
{
    std::mutex mergeMutex;
    LoadResult result;
    std::atomic<uint64_t> failures{0};
    Timer phase;
    std::vector<std::thread> fleet;
    fleet.reserve(connections);
    for (int c = 0; c < connections; ++c) {
        fleet.emplace_back([&, c] {
            net::Client client("127.0.0.1", port);
            // Per-request op schedule + send timestamps, managed as a
            // window of `depth` outstanding requests.
            struct Pending {
                const char* op;
                Timer sent;
            };
            std::vector<Pending> window;
            OpSamples synth, run, ping, metrics;
            uint64_t done = 0;
            int sent = 0;
            auto sendNext = [&] {
                int i = sent++;
                // Mix: 40% synth (cache hits across salt+variant),
                // 30% run, 20% ping, 10% metrics.
                int slot = (i + c) % 10;
                if (slot < 4) {
                    int salt = (i + c) % zooSalts;
                    int variant = (i / zooSalts + c) % zooVariants;
                    client.send(makeRequest(
                        "synth", makeGrammarSource(salt, variant)));
                    window.push_back({"synth", Timer()});
                } else if (slot < 7) {
                    net::JsonObject request;
                    request.emplace("op", net::Json("run"));
                    request.emplace(
                        "grammar",
                        net::Json(makeGrammarSource((i + c) % zooSalts,
                                                    0)));
                    request.emplace("tree_size",
                                    net::Json(int64_t(2000)));
                    request.emplace("seed",
                                    net::Json(int64_t(i * 977 + c)));
                    client.send(net::Json(request));
                    window.push_back({"run", Timer()});
                } else if (slot < 9) {
                    client.send(makeRequest("ping", ""));
                    window.push_back({"ping", Timer()});
                } else {
                    client.send(makeRequest("metrics", ""));
                    window.push_back({"metrics", Timer()});
                }
            };
            auto receiveOne = [&] {
                auto response = client.receive();
                if (!response.has_value() ||
                    !response->boolOr("ok", false)) {
                    failures.fetch_add(1);
                } else {
                    ++done;
                }
                // Responses on one connection come back in request
                // order (admission + rejection happen in frame order
                // and each op's response is appended when it
                // finishes... per-connection ordering is preserved by
                // the single worker response path only for inline
                // ops, so attribute latency to the oldest
                // outstanding request as an approximation).
                Pending oldest = window.front();
                window.erase(window.begin());
                double ms = oldest.sent.seconds() * 1e3;
                if (std::strcmp(oldest.op, "synth") == 0)
                    synth.ms.push_back(ms);
                else if (std::strcmp(oldest.op, "run") == 0)
                    run.ms.push_back(ms);
                else if (std::strcmp(oldest.op, "ping") == 0)
                    ping.ms.push_back(ms);
                else
                    metrics.ms.push_back(ms);
            };
            while (sent < totalPerConn || !window.empty()) {
                while (sent < totalPerConn && int(window.size()) < depth)
                    sendNext();
                receiveOne();
            }
            std::lock_guard<std::mutex> lock(mergeMutex);
            result.completed += done;
            auto merge = [](OpSamples& into, OpSamples& from) {
                into.ms.insert(into.ms.end(), from.ms.begin(),
                               from.ms.end());
            };
            merge(result.synth, synth);
            merge(result.run, run);
            merge(result.ping, ping);
            merge(result.metrics, metrics);
        });
    }
    for (std::thread& thread : fleet)
        thread.join();
    result.seconds = phase.seconds();
    result.failed = failures.load();
    return result;
}

std::string
samplesJson(OpSamples& samples)
{
    return jsonObject({
        {"count", std::to_string(samples.ms.size())},
        {"p50_ms", jsonNum(samples.quantile(0.50))},
        {"p99_ms", jsonNum(samples.quantile(0.99))},
    });
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--quick")
            quick = true;

    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    const int kConnections = quick ? 16 : 128;
    const int kDepth = quick ? 4 : 8; // outstanding per connection
    const int kPerConn = quick ? 30 : 200;
    const int kZooSalts = quick ? 4 : 8;
    const int kZooVariants = 3;

    std::printf("bench_serve: %d connections x %d outstanding "
                "(%d concurrent), %d requests each, zoo %dx%d%s\n",
                kConnections, kDepth, kConnections * kDepth, kPerConn,
                kZooSalts, kZooVariants, quick ? " [quick]" : "");

    // ---- main server: sized for the load phase -----------------------
    net::ServeOptions options;
    options.port = 0;
    options.workers = hw;
    options.service.workers = hw;
    options.queueCapacity = size_t(kConnections) * size_t(kDepth) + 64;
    net::Server server(options);
    server.start();

    // ---- warm phase: populate the schedule cache ---------------------
    Timer warmTimer;
    {
        net::Client warm("127.0.0.1", server.port());
        for (int salt = 0; salt < kZooSalts; ++salt) {
            net::Json response =
                warm.call(makeRequest("synth", makeGrammarSource(salt, 0)));
            if (!response.boolOr("ok", false)) {
                std::fprintf(stderr, "warm synth failed: %s\n",
                             response.dump().c_str());
                return 3;
            }
        }
    }
    double warmSeconds = warmTimer.seconds();
    std::printf("warm: %d fresh synths in %.3fs\n", kZooSalts,
                warmSeconds);

    // ---- load phase --------------------------------------------------
    LoadResult load = runLoadPhase(server.port(), kConnections, kDepth,
                                   kPerConn, kZooSalts, kZooVariants);
    const double throughput = double(load.completed) / load.seconds;
    std::printf("load: %llu ok, %llu failed in %.3fs -> %.0f req/s\n",
                (unsigned long long)load.completed,
                (unsigned long long)load.failed, load.seconds,
                throughput);
    std::printf("  synth p50/p99 %.2f/%.2f ms  run %.2f/%.2f  "
                "ping %.2f/%.2f  metrics %.2f/%.2f\n",
                load.synth.quantile(0.5), load.synth.quantile(0.99),
                load.run.quantile(0.5), load.run.quantile(0.99),
                load.ping.quantile(0.5), load.ping.quantile(0.99),
                load.metrics.quantile(0.5),
                load.metrics.quantile(0.99));

    // Server-side view: histogram quantiles + cache accounting.
    net::Client probe("127.0.0.1", server.port());
    net::Json metrics = probe.call(makeRequest("metrics", ""));
    std::string serverLatency = metrics.at("latency").dump();
    double cacheHits = metrics.at("cache").at("hits").asDouble();
    std::printf("  server: cache hits %.0f, misses %.0f\n", cacheHits,
                metrics.at("cache").at("misses").asDouble());
    probe.close();

    // ---- drain: SIGTERM path -----------------------------------------
    Timer drainTimer;
    server.requestDrain();
    server.waitUntilStopped();
    double drainSeconds = drainTimer.seconds();
    net::ServerStats stats = server.stats();
    std::printf("drain: %.3fs, %llu admitted / %llu responses total\n",
                drainSeconds, (unsigned long long)stats.requestsAdmitted,
                (unsigned long long)stats.responsesSent);

    // ---- overload phase: tiny queue, fresh synth traffic -------------
    net::ServeOptions tight;
    tight.port = 0;
    tight.workers = 2;
    tight.service.workers = 2;
    tight.queueCapacity = 8;
    tight.retryAfterMs = 25;
    net::Server small(tight);
    small.start();

    const int kOverloadConns = quick ? 8 : 16;
    const int kOverloadPerConn = 16;
    std::atomic<uint64_t> overloadOk{0}, overloadRejected{0},
        overloadOther{0};
    {
        std::vector<std::thread> fleet;
        for (int c = 0; c < kOverloadConns; ++c) {
            fleet.emplace_back([&, c] {
                net::Client client("127.0.0.1", small.port());
                // Distinct salts per request: every synth is a fresh
                // CEGIS run, so the two workers saturate instantly.
                for (int i = 0; i < kOverloadPerConn; ++i)
                    client.send(makeRequest(
                        "synth",
                        makeGrammarSource(100 + c * kOverloadPerConn + i,
                                          0)));
                for (int i = 0; i < kOverloadPerConn; ++i) {
                    auto response = client.receive();
                    if (!response.has_value()) {
                        overloadOther.fetch_add(
                            uint64_t(kOverloadPerConn - i));
                        break;
                    }
                    if (response->boolOr("ok", false))
                        overloadOk.fetch_add(1);
                    else if (response->stringOr("error", "") ==
                             "over_capacity")
                        overloadRejected.fetch_add(1);
                    else
                        overloadOther.fetch_add(1);
                }
            });
        }
        for (std::thread& thread : fleet)
            thread.join();
    }
    const uint64_t overloadSent =
        uint64_t(kOverloadConns) * kOverloadPerConn;
    std::printf("overload: %llu sent -> %llu ok, %llu over_capacity, "
                "%llu other\n",
                (unsigned long long)overloadSent,
                (unsigned long long)overloadOk.load(),
                (unsigned long long)overloadRejected.load(),
                (unsigned long long)overloadOther.load());
    small.requestDrain();
    small.waitUntilStopped();

    bool contractHolds =
        load.failed == 0 && overloadRejected.load() > 0 &&
        overloadOk.load() + overloadRejected.load() +
                overloadOther.load() ==
            overloadSent;
    if (!contractHolds)
        std::fprintf(stderr,
                     "FAIL: load failures or broken overload "
                     "accounting\n");

    std::ofstream json("BENCH_serve.json");
    json << "{\n  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"hardware_threads\": " << hw
         << ",\n  \"environment\": " << benchutil::environmentJson()
         << ",\n  \"connections\": " << kConnections
         << ",\n  \"pipeline_depth\": " << kDepth
         << ",\n  \"concurrent_outstanding\": " << kConnections * kDepth
         << ",\n  \"warm\": "
         << jsonObject({{"fresh_synths", std::to_string(kZooSalts)},
                        {"seconds", jsonNum(warmSeconds)}})
         << ",\n  \"load\": "
         << jsonObject(
                {{"requests", std::to_string(load.completed)},
                 {"failed", std::to_string(load.failed)},
                 {"seconds", jsonNum(load.seconds)},
                 {"throughput_rps", jsonNum(throughput)},
                 {"synth", samplesJson(load.synth)},
                 {"run", samplesJson(load.run)},
                 {"ping", samplesJson(load.ping)},
                 {"metrics", samplesJson(load.metrics)}})
         << ",\n  \"server_latency\": " << serverLatency
         << ",\n  \"server_cache_hits\": " << jsonNum(cacheHits)
         << ",\n  \"drain_seconds\": " << jsonNum(drainSeconds)
         << ",\n  \"overload\": "
         << jsonObject(
                {{"sent", std::to_string(overloadSent)},
                 {"ok", std::to_string(overloadOk.load())},
                 {"over_capacity",
                  std::to_string(overloadRejected.load())},
                 {"other", std::to_string(overloadOther.load())},
                 {"queue_capacity", std::to_string(tight.queueCapacity)},
                 {"workers", std::to_string(tight.workers)}})
         << ",\n  \"contract_holds\": "
         << (contractHolds ? "true" : "false") << "\n}\n";
    std::printf("wrote BENCH_serve.json\n");
    return contractHolds ? 0 : 3;
}
