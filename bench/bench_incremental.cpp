/**
 * @file
 * Incremental re-evaluation benchmark: the edit-storm load generator.
 *
 * For each headline grammar (RenderTree and AST) the bench builds one
 * large arena, runs the full bytecode executor once as the baseline,
 * then drives repeated edit rounds, healing the arena after each round
 * with incr::reexecute instead of a full recompute:
 *
 *  - single_subtree: one ReplaceSubtree edit per round, replacement
 *    ~0.1% of the arena — the headline localized-edit case (DESIGN.md
 *    §13 targets >=5x over full recompute here);
 *  - input_burst: eight MutateInput edits per round at random live
 *    nodes — the dirty-wave / value-cutoff case;
 *  - mixed_storm: applyRandomEdits' 3:1 mutate:replace mix — the
 *    serve-daemon `edit` op's traffic shape.
 *
 * Every scenario carries a correctness tally: on sampled rounds the
 * healed arena is compacted and compared cell-for-cell (checksum over
 * the compacted SoA) against a from-scratch recompute of the same
 * shape. A mismatch is a hard failure of the bench, not a footnote.
 *
 * Results go to BENCH_incremental.json (schema: {"quick",
 * "hardware_threads", "environment", "grammars": [{"name", "nodes",
 * "full_ms", "scenarios": [{"name", "rounds", "edits_per_round",
 * "avg_incr_ms", "p_best_incr_ms", "speedup_vs_full",
 * "rules_checked", "rules_evaluated", "checked_rounds",
 * "check_failures"}]}]}). --quick shrinks instances for CI smoke.
 */

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "grammars/grammars.hpp"
#include "incr/edit.hpp"
#include "incr/plan.hpp"
#include "incr/reexecute.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "runtime/program.hpp"

using namespace hecate;

namespace {

std::string
jsonObject(const std::vector<std::pair<std::string, std::string>>& fields)
{
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "\"" + fields[i].first + "\": " + fields[i].second;
    }
    return out + "}";
}

std::string
jsonNum(double value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    return buffer;
}

/** xorshift64* — deterministic node picking without <random>. */
uint64_t
nextRand(uint64_t& state)
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
}

/** A live, non-root node of @p arena (bounded scan from a random
 *  start; edits never orphan more than a fraction of the arena). */
runtime::NodeIdx
pickLiveNode(const runtime::TreeArena& arena, uint64_t& rng)
{
    for (;;) {
        runtime::NodeIdx node = static_cast<runtime::NodeIdx>(
            1 + nextRand(rng) % (arena.size() - 1));
        if (arena.isLive(node))
            return node;
    }
}

struct ScenarioResult {
    std::string name;
    uint32_t rounds = 0;
    uint32_t editsPerRound = 0;
    double avgIncrSeconds = 0.0;
    double bestIncrSeconds = 0.0;
    uint64_t rulesChecked = 0;
    uint64_t rulesEvaluated = 0;
    uint32_t checkedRounds = 0;
    uint32_t checkFailures = 0;
};

/**
 * Compare the incrementally healed @p arena against a from-scratch
 * recompute of the identical (compacted) shape. Checksum over the
 * compacted SoA covers every cell of every live node.
 */
bool
differentialOk(const runtime::Program& program,
               const runtime::TreeArena& arena)
{
    runtime::TreeArena healed = arena.compact();
    runtime::TreeArena scratch = healed;
    runtime::execute(program, scratch);
    return healed.checksum() == scratch.checksum();
}

/**
 * Drive @p rounds edit rounds over @p arena (mutated in place), each
 * healed by incr::reexecute, checking the differential on sampled
 * rounds. @p makeEdits applies this round's edits and returns how many
 * it applied.
 */
template <typename MakeEdits>
ScenarioResult
runScenario(const std::string& name, const runtime::Program& program,
            const incr::IncrPlan& plan, runtime::TreeArena& arena,
            uint32_t rounds, uint32_t checkEvery, MakeEdits&& makeEdits)
{
    ScenarioResult result;
    result.name = name;
    result.rounds = rounds;
    double total = 0.0;
    for (uint32_t round = 0; round < rounds; ++round) {
        result.editsPerRound = makeEdits(round);
        Timer timer;
        incr::IncrStats stats = incr::reexecute(program, plan, arena);
        const double seconds = timer.seconds();
        total += seconds;
        if (round == 0 || seconds < result.bestIncrSeconds)
            result.bestIncrSeconds = seconds;
        result.rulesChecked += stats.rulesChecked;
        result.rulesEvaluated += stats.rulesEvaluated;
        if (checkEvery != 0 && round % checkEvery == 0) {
            ++result.checkedRounds;
            if (!differentialOk(program, arena))
                ++result.checkFailures;
        }
    }
    result.avgIncrSeconds = total / rounds;
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const uint32_t target_nodes = quick ? 50000 : 1000000;
    const uint32_t rounds = quick ? 6 : 40;
    const uint32_t check_every = quick ? 2 : 8;
    const uint32_t subtree_nodes = std::max(8u, target_nodes / 1000);
    const unsigned hw_threads = std::thread::hardware_concurrency();

    std::printf("incremental re-evaluation bench (%s): %u nodes, "
                "%u rounds per scenario\n",
                quick ? "quick" : "full", target_nodes, rounds);

    std::vector<std::string> grammar_json;
    bool all_checks_ok = true;

    const grammars::Benchmark* benches[] = {&grammars::renderTree(),
                                            &grammars::astBench()};
    for (const grammars::Benchmark* bench : benches) {
        pipeline::PipelineOptions options;
        options.config.verify.maxDepth = 3;
        auto pipe = std::make_unique<pipeline::Pipeline>(*bench, "",
                                                         options);
        const pipeline::SynthArtifact& tuned = pipe->synthesize();
        checkInvariant(tuned.ok, "bench_incremental: synthesis failed");
        const runtime::Program& program = pipe->compileProgram();
        const incr::IncrPlan& plan = pipe->incrPlan();

        runtime::GenConfig gen;
        gen.targetNodes = target_nodes;
        gen.seed = 2024;
        runtime::TreeArena pristine = runtime::TreeArena::generate(
            pipe->grammar(), pipe->rootInterface(), gen);
        runtime::execute(program, pristine);

        // Baseline: what every edit round would cost without the
        // incremental engine.
        const double full_seconds = benchutil::measureBest(
            [&] {
                runtime::TreeArena copy = pristine;
                runtime::execute(program, copy);
                benchutil::sink(copy.size());
            },
            quick ? 0.0 : 0.5, quick ? 1 : 8, 1);

        std::printf("\n%s: %u nodes, full recompute %.2fms\n",
                    bench->name.c_str(), pristine.size(),
                    full_seconds * 1e3);

        std::vector<ScenarioResult> scenarios;

        {
            runtime::TreeArena arena = pristine;
            uint64_t rng = 0x5eed0001;
            scenarios.push_back(runScenario(
                "single_subtree", program, plan, arena, rounds,
                check_every, [&](uint32_t round) -> uint32_t {
                    incr::Edit e;
                    e.kind = incr::Edit::Kind::ReplaceSubtree;
                    e.node = pickLiveNode(arena, rng);
                    e.subtreeNodes = subtree_nodes;
                    e.seed = 0xace0 + round;
                    incr::applyEdit(arena, e);
                    return 1;
                }));
        }

        {
            runtime::TreeArena arena = pristine;
            uint64_t rng = 0x5eed0002;
            scenarios.push_back(runScenario(
                "input_burst", program, plan, arena, rounds, check_every,
                [&](uint32_t) -> uint32_t {
                    const uint32_t kBurst = 8;
                    for (uint32_t i = 0; i < kBurst; ++i) {
                        incr::Edit e;
                        e.kind = incr::Edit::Kind::MutateInput;
                        e.node = pickLiveNode(arena, rng);
                        const sem::ClassInfo& cls =
                            pipe->grammar().cls(arena.classOf(e.node));
                        const sem::InterfaceInfo& iface =
                            pipe->grammar().iface(cls.iface);
                        // Inputs precede outputs in declaration order;
                        // scan for one (every bundled grammar has
                        // inputs on every interface).
                        for (sem::AttrId a = 0; a < iface.attrs.size();
                             ++a) {
                            if (iface.attrs[a].isInput) {
                                e.attr = a;
                                break;
                            }
                        }
                        e.value = static_cast<int64_t>(nextRand(rng) %
                                                       1024);
                        incr::applyEdit(arena, e);
                    }
                    return kBurst;
                }));
        }

        {
            runtime::TreeArena arena = pristine;
            scenarios.push_back(runScenario(
                "mixed_storm", program, plan, arena, rounds, check_every,
                [&](uint32_t round) -> uint32_t {
                    return static_cast<uint32_t>(
                        incr::applyRandomEdits(arena, 6, subtree_nodes,
                                               0xfade + round * 977)
                            .size());
                }));
        }

        std::vector<std::string> scenario_json;
        for (const ScenarioResult& s : scenarios) {
            const double speedup =
                s.avgIncrSeconds > 0 ? full_seconds / s.avgIncrSeconds
                                     : 0.0;
            std::printf("  %-14s %2u edit(s)/round | avg %8.3fms | "
                        "%8.1fx vs full | checks %u/%u ok\n",
                        s.name.c_str(), s.editsPerRound,
                        s.avgIncrSeconds * 1e3, speedup,
                        s.checkedRounds - s.checkFailures,
                        s.checkedRounds);
            if (s.checkFailures != 0)
                all_checks_ok = false;
            scenario_json.push_back(jsonObject(
                {{"name", "\"" + s.name + "\""},
                 {"rounds", std::to_string(s.rounds)},
                 {"edits_per_round", std::to_string(s.editsPerRound)},
                 {"avg_incr_ms", jsonNum(s.avgIncrSeconds * 1e3)},
                 {"best_incr_ms", jsonNum(s.bestIncrSeconds * 1e3)},
                 {"speedup_vs_full", jsonNum(speedup)},
                 {"rules_checked", std::to_string(s.rulesChecked)},
                 {"rules_evaluated", std::to_string(s.rulesEvaluated)},
                 {"checked_rounds", std::to_string(s.checkedRounds)},
                 {"check_failures", std::to_string(s.checkFailures)}}));
        }

        std::string joined;
        for (size_t i = 0; i < scenario_json.size(); ++i) {
            if (i > 0)
                joined += ", ";
            joined += scenario_json[i];
        }
        grammar_json.push_back(jsonObject(
            {{"name", "\"" + bench->name + "\""},
             {"nodes", std::to_string(pristine.size())},
             {"full_ms", jsonNum(full_seconds * 1e3)},
             {"scenarios", "[" + joined + "]"}}));
    }

    auto join = [](const std::vector<std::string>& items) {
        std::string out;
        for (size_t i = 0; i < items.size(); ++i) {
            if (i > 0)
                out += ",\n    ";
            out += items[i];
        }
        return out;
    };
    std::ofstream json("BENCH_incremental.json");
    json << "{\n  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"hardware_threads\": " << hw_threads
         << ",\n  \"environment\": " << benchutil::environmentJson()
         << ",\n  \"grammars\": [\n    " << join(grammar_json)
         << "\n  ]\n}\n";
    std::printf("\nwrote BENCH_incremental.json\n");

    if (!all_checks_ok) {
        std::printf("FAILED: incremental results diverged from full "
                    "recompute\n");
        return 1;
    }
    return 0;
}
