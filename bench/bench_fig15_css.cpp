/**
 * @file
 * Reproduces Fig. 15: synthesizing layout-engine schedules for the
 * three CSS attribute grammars (CSS-float 192 rules, CSS-margin 178,
 * CSS-full 244), comparing Hecate's domain-specific ILP synthesis
 * against the FTL baseline. Also runs HecateG with a CEGIS-round cap
 * to reproduce the paper's observation that the general-purpose
 * encoding does not scale to these grammars.
 *
 * Expected shape (paper): Hecate ~5x faster than FTL on every grammar
 * (189s vs 39s on CSS-float), both growing with rule count; HecateG
 * far behind both.
 */

#include <cstdio>

#include "baselines/ftl.hpp"
#include "bench_util.hpp"
#include "grammars/grammars.hpp"
#include "lang/printer.hpp"
#include "pipeline/pipeline.hpp"
#include "synth/autotuner.hpp"

namespace {

using namespace hecate;

} // namespace

int
main(int argc, char** argv)
{
    using benchutil::row;
    using benchutil::secs;

    bool run_general = argc > 1 && std::string(argv[1]) == "--with-general";

    std::printf("Fig. 15: CSS layout-grammar synthesis, Hecate vs FTL\n");
    std::printf("(paper reference: CSS-float FTL 189s / Hecate 39s; "
                "CSS-full ~5x gap; HecateG does not finish in 30 min)\n\n");
    row({"Name", "# of Rules", "Hecate", "FTL", "FTL/Hecate",
         run_general ? "HecateG" : ""},
        13);
    row({"----", "----------", "------", "---", "----------",
         run_general ? "-------" : ""},
        13);

    for (const grammars::Benchmark* bench : grammars::cssBenchmarks()) {
        sem::Grammar grammar = grammars::load(*bench);
        sem::InterfaceId root = grammars::rootInterface(grammar, *bench);

        tree::EnumConfig verify;
        verify.maxDepth = 3;
        verify.limit = 64;

        std::string skeleton_src = lang::printTraversal(
            synth::makeSkeleton(grammar, synth::SkeletonStyle::Sandwich));

        pipeline::PipelineOptions options;
        options.config.verify = verify;
        pipeline::Pipeline pipe(*bench, skeleton_src, std::move(options));
        const pipeline::SynthArtifact& hecate = pipe.synthesize();
        double hecate_seconds = hecate.seconds;

        baselines::FtlResult ftl =
            baselines::ftlSynthesize(grammar, root, verify);

        std::string general_cell;
        if (run_general) {
            pipeline::PipelineOptions gp;
            gp.config.verify = verify;
            gp.config.engine = synth::Engine::GeneralPurposeSat;
            gp.config.maxIterations = 4; // cap: the paper reports >30 min
            pipeline::Pipeline gp_pipe(*bench, skeleton_src,
                                       std::move(gp));
            const pipeline::SynthArtifact& r = gp_pipe.synthesize();
            general_cell =
                r.ok ? secs(r.seconds) : (">" + secs(r.seconds));
        }

        row({bench->name, std::to_string(grammar.ruleCount()),
             hecate.ok ? secs(hecate_seconds) : "FAILED",
             ftl.traversal.has_value() ? secs(ftl.seconds) : "FAILED",
             benchutil::ratio(ftl.seconds / hecate_seconds),
             general_cell},
            13);
    }

    if (!run_general) {
        std::printf("\n(run with --with-general to also time the "
                    "general-purpose encoding, capped at 4 CEGIS rounds "
                    "— it is far slower, as in the paper)\n");
    }
    return 0;
}
