/**
 * @file
 * Throughput of the synthesis service vs. the serial one-shot loop on
 * a repeated/perturbed grammar workload — the "schedule-synthesis
 * traffic" scenario the service layer exists for.
 *
 * The workload is U genuinely distinct synthesis problems (the render
 * grammar with a per-problem constant folded into one rule), each
 * appearing under V isomorphic renames, each repeated R times:
 * U*V*R requests but only U distinct problem keys. The serial
 * baseline re-runs CEGIS for every request (what the seed's CLI did);
 * the service answers duplicates from the content-addressed cache and
 * deduplicates racing identical requests in flight.
 *
 * Expected shape: >2x throughput for the service as soon as the
 * workload repeats itself at all; the gap widens with R and V since
 * cache hits cost microseconds while CEGIS costs milliseconds+.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "lang/parser.hpp"
#include "sem/grammar.hpp"
#include "service/synth_service.hpp"
#include "synth/cegis.hpp"

namespace {

using namespace hecate;

/**
 * The Fig. 3 render grammar with a distinguishing constant @p salt
 * (a distinct synthesis problem per salt) and every name suffixed
 * with @p variant (an isomorphic rename per variant).
 */
std::string
makeGrammarSource(int salt, int variant)
{
    const std::string v = "_v" + std::to_string(variant);
    return "interface Box" + v + " {\n"
           "    input w0" + v + ", h0" + v + " : int;\n"
           "    output w1" + v + ", w" + v + ", h1" + v + ", h" + v +
           " : int;\n"
           "}\n"
           "class Inner" + v + " : Box" + v + " {\n"
           "    children {\n"
           "        nx" + v + " : Optional[Box" + v + "];\n"
           "        fc" + v + " : Optional[Box" + v + "];\n"
           "    }\n"
           "    rules {\n"
           "        self.w" + v + "  := max(self.w0" + v + ", fc" + v +
           ".w1" + v + ");\n"
           "        self.w1" + v + " := max(self.w" + v + ", nx" + v +
           ".w1" + v + ");\n"
           "        self.h" + v + "  := max(self.h0" + v + ", fc" + v +
           ".h1" + v + ");\n"
           "        self.h1" + v + " := self.h" + v + " + nx" + v +
           ".h1" + v + " + " + std::to_string(salt) + ";\n"
           "    }\n"
           "}\n"
           "class Leaf" + v + " : Box" + v + " {\n"
           "    children {\n"
           "        nx" + v + " : Optional[Box" + v + "];\n"
           "    }\n"
           "    rules {\n"
           "        self.w" + v + "  := self.w0" + v + ";\n"
           "        self.w1" + v + " := max(self.w" + v + ", nx" + v +
           ".w1" + v + ");\n"
           "        self.h" + v + "  := self.h0" + v + ";\n"
           "        self.h1" + v + " := self.h" + v + " + nx" + v +
           ".h1" + v + " + " + std::to_string(salt) + ";\n"
           "    }\n"
           "}\n";
}

std::string
makeTraversalSource(int variant)
{
    const std::string v = "_v" + std::to_string(variant);
    return "traversal layout {\n"
           "    case Inner" + v + " { recur fc" + v + "; recur nx" + v +
           "; ??; ??; ??; ??; }\n"
           "    case Leaf" + v + " { recur nx" + v + "; ??; ??; ??; ??; }\n"
           "}\n";
}

} // namespace

int
main()
{
    constexpr int kUnique = 4;  ///< distinct synthesis problems
    constexpr int kVariants = 3; ///< isomorphic renames per problem
    constexpr int kRepeats = 4;  ///< repetitions of each spelling

    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;

    std::vector<service::SynthRequest> workload;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
        for (int salt = 1; salt <= kUnique; ++salt) {
            for (int variant = 0; variant < kVariants; ++variant) {
                service::SynthRequest request;
                request.grammarSrc = makeGrammarSource(salt, variant);
                request.traversalSrc = makeTraversalSource(variant);
                request.config = config;
                workload.push_back(std::move(request));
            }
        }
    }
    std::printf("service throughput: %zu requests "
                "(%d unique problems x %d renames x %d repeats)\n\n",
                workload.size(), kUnique, kVariants, kRepeats);

    // Serial baseline: cold one-shot synthesis per request. Best-of-runs
    // timing (measureBest) so a noisy host does not skew the comparison.
    size_t serial_ok = 0;
    const double serial_seconds = benchutil::measureBest(
        [&] {
            serial_ok = 0;
            for (const service::SynthRequest& request : workload) {
                sem::Grammar grammar = sem::Grammar::analyze(
                    lang::parseGrammar(request.grammarSrc));
                sched::Skeleton skeleton = sched::Skeleton::resolve(
                    grammar, lang::parseTraversal(request.traversalSrc));
                synth::SynthesisResult result =
                    synth::synthesize(skeleton, 0, {}, request.config);
                if (result.schedule.has_value())
                    ++serial_ok;
            }
        },
        0.2, 5);

    // Service: content-addressed cache + single-flight + thread pool.
    // A fresh service per run keeps every run cold (no warm cache
    // crossing runs); requests are copied since submit() consumes them.
    size_t service_ok = 0;
    service::ServiceStats stats;
    size_t worker_count = 0;
    const double service_seconds = benchutil::measureBest(
        [&] {
            service::SynthService svc;
            std::vector<std::future<service::SynthOutcome>> futures;
            futures.reserve(workload.size());
            for (const service::SynthRequest& request : workload)
                futures.push_back(svc.submit(request));
            service_ok = 0;
            for (auto& future : futures)
                service_ok += future.get().ok ? 1 : 0;
            stats = svc.stats();
            worker_count = svc.workerCount();
        },
        0.2, 5);

    const double n = static_cast<double>(workload.size());
    benchutil::row({"", "seconds", "req/s", "ok"});
    benchutil::row({"serial", benchutil::secs(serial_seconds),
                    benchutil::ratio(n / serial_seconds),
                    std::to_string(serial_ok)});
    benchutil::row({"service", benchutil::secs(service_seconds),
                    benchutil::ratio(n / service_seconds),
                    std::to_string(service_ok)});
    std::printf("\nservice: fresh %llu | cache-hit %llu | joined %llu "
                "(workers %zu)\n",
                static_cast<unsigned long long>(stats.freshRuns),
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.joinedInFlight),
                worker_count);
    std::printf("speedup: %.2fx\n", serial_seconds / service_seconds);
    return 0;
}
