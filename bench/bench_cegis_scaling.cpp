/**
 * @file
 * CEGIS hot-path scaling benchmark: quantifies each leg of the
 * incremental pipeline against its from-scratch reference on the two
 * multi-round grammars of the evaluation (RenderTree and AST).
 *
 *  - encode sweep: total synthesizer time over N CEGIS rounds when
 *    every round re-encodes all examples (one-shot synthesizeIlp) vs
 *    the persistent IlpSession that encodes one new example per round;
 *  - verify sweep: per-round verification via the one-shot
 *    verifySchedule (re-enumerates + re-expands every plan) vs a warm
 *    Verifier whose tree space and plans persist across rounds;
 *  - end to end: synthesize() with the legacy configuration
 *    (from-scratch encoding, no verifier reuse, serial checking)
 *    against the optimized default.
 *
 * Results are printed as a table and written as machine-readable JSON
 * to BENCH_cegis.json (schema: {"quick", "encode_sweep", "verify_sweep",
 * "end_to_end"}). --quick shrinks the sweeps and skips the adaptive
 * re-timing so CI can run it in seconds.
 */

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "grammars/grammars.hpp"
#include "sched/plan_cache.hpp"
#include "support/rng.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "symbolic/ilp_session.hpp"
#include "synth/autotuner.hpp"
#include "synth/cegis.hpp"
#include "tree/enumerate.hpp"

using namespace hecate;

namespace {

/** One JSON object as ordered key/value text fragments. */
std::string
jsonObject(const std::vector<std::pair<std::string, std::string>>& fields)
{
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "\"" + fields[i].first + "\": " + fields[i].second;
    }
    return out + "}";
}

std::string
jsonNum(double value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    return buffer;
}

/** N example trees: enumerated shapes first, then deeper samples. */
std::vector<tree::Tree>
makeExamples(const sem::Grammar& grammar, sem::InterfaceId root,
             size_t count)
{
    std::vector<tree::Tree> examples;
    tree::EnumConfig config;
    config.maxDepth = 3;
    config.limit = static_cast<uint32_t>(count);
    for (const tree::ShapePtr& shape :
         tree::enumerateShapes(grammar, root, config)) {
        if (examples.size() >= count)
            break;
        examples.push_back(tree::instantiate(grammar, *shape, 1));
    }
    tree::SampleConfig sample;
    sample.maxDepth = 5;
    Rng rng(7);
    while (examples.size() < count)
        examples.push_back(tree::sampleTree(grammar, root, sample, rng));
    return examples;
}

struct BenchGrammar {
    const grammars::Benchmark* bench;
    sem::Grammar grammar;
    sem::InterfaceId root = sem::kInvalidId;
    std::optional<sched::Skeleton> skeleton; ///< feasible, auto-tuned

    const sched::Skeleton& skel() const { return *skeleton; }
};

/**
 * Heap-pinned so the grammar never moves after the skeleton (which
 * keeps a pointer to it) is resolved.
 */
std::unique_ptr<BenchGrammar>
loadBench(const grammars::Benchmark& bench)
{
    auto bg = std::make_unique<BenchGrammar>(
        BenchGrammar{&bench, grammars::load(bench), sem::kInvalidId,
                     std::nullopt});
    bg->root = grammars::rootInterface(bg->grammar, bench);
    synth::SynthesisConfig config;
    config.verify.maxDepth = 3;
    synth::AutotuneResult tuned =
        synth::autotune(bg->grammar, bg->root, config);
    checkInvariant(tuned.skeleton.has_value(),
                   "bench_cegis_scaling: auto-tuning failed");
    bg->skeleton = std::move(tuned.skeleton);
    return bg;
}

/** One-shot synthesizer rounds: every round re-encodes all examples. */
void
scratchEncodeRounds(const BenchGrammar& bg,
                    const std::vector<tree::Tree>& examples)
{
    for (size_t round = 1; round <= examples.size(); ++round) {
        std::vector<const tree::Tree*> views;
        for (size_t i = 0; i < round; ++i)
            views.push_back(&examples[i]);
        auto schedule = symbolic::synthesizeIlp(bg.skel(), views);
        benchutil::sink(schedule.has_value());
    }
}

/** Same rounds through a persistent session (encode new, re-solve). */
void
incrementalEncodeRounds(const BenchGrammar& bg,
                        const std::vector<tree::Tree>& examples)
{
    symbolic::IlpSession session(bg.skel());
    for (const tree::Tree& example : examples) {
        session.addExample(sched::VisitPlan(bg.skel(), example));
        auto schedule = session.solve();
        benchutil::sink(schedule.has_value());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }
    const double min_seconds = quick ? 0.0 : 0.2;
    const int max_iters = quick ? 1 : 20;

    std::vector<std::string> encode_json, verify_json, e2e_json;

    std::unique_ptr<BenchGrammar> render = loadBench(grammars::renderTree());
    std::unique_ptr<BenchGrammar> ast = loadBench(grammars::astBench());

    // --- Encode sweep -------------------------------------------------
    std::printf("== CEGIS synthesizer rounds: from-scratch vs "
                "incremental session ==\n");
    benchutil::row({"grammar", "examples", "scratch(s)", "incr(s)",
                    "speedup"});
    std::vector<size_t> example_counts =
        quick ? std::vector<size_t>{4, 8} : std::vector<size_t>{4, 8, 16, 24};
    for (const BenchGrammar* bg : {render.get(), ast.get()}) {
        for (size_t count : example_counts) {
            std::vector<tree::Tree> examples =
                makeExamples(bg->grammar, bg->root, count);
            double scratch = benchutil::measureBest(
                [&] { scratchEncodeRounds(*bg, examples); }, min_seconds,
                max_iters);
            double incremental = benchutil::measureBest(
                [&] { incrementalEncodeRounds(*bg, examples); },
                min_seconds, max_iters);
            double speedup = incremental > 0 ? scratch / incremental : 0;
            benchutil::row({bg->bench->name, std::to_string(count),
                            benchutil::secs(scratch),
                            benchutil::secs(incremental),
                            benchutil::ratio(speedup)});
            encode_json.push_back(jsonObject(
                {{"grammar", "\"" + bg->bench->name + "\""},
                 {"examples", std::to_string(count)},
                 {"scratch_s", jsonNum(scratch)},
                 {"incremental_s", jsonNum(incremental)},
                 {"speedup", jsonNum(speedup)}}));
        }
    }

    // --- Verify sweep -------------------------------------------------
    std::printf("\n== Per-round verification: one-shot vs warm verifier "
                "==\n");
    benchutil::row({"grammar", "depth", "trees", "oneshot(s)", "warm(s)",
                    "speedup"});
    std::vector<uint32_t> depths =
        quick ? std::vector<uint32_t>{3, 4} : std::vector<uint32_t>{3, 4, 5};
    for (const BenchGrammar* bg : {render.get(), ast.get()}) {
        // A verified schedule so every round scans the full tree space.
        synth::SynthesisConfig config;
        config.verify.maxDepth = 3;
        synth::SynthesisResult result =
            synth::synthesize(bg->skel(), bg->root, {}, config);
        checkInvariant(result.schedule.has_value(),
                       "bench_cegis_scaling: synthesis failed");
        for (uint32_t depth : depths) {
            tree::EnumConfig verify_config;
            verify_config.maxDepth = depth;
            double oneshot = benchutil::measureBest(
                [&] {
                    benchutil::sink(
                        synth::verifySchedule(bg->skel(), *result.schedule,
                                              bg->root, verify_config)
                            .ok);
                },
                min_seconds, max_iters);
            synth::Verifier warm_verifier(bg->skel(), bg->root,
                                          verify_config, 1, 1);
            double warm = benchutil::measureBest(
                [&] {
                    benchutil::sink(warm_verifier.run(*result.schedule).ok);
                },
                min_seconds, max_iters);
            double speedup = warm > 0 ? oneshot / warm : 0;
            benchutil::row({bg->bench->name, std::to_string(depth),
                            std::to_string(warm_verifier.treeCount()),
                            benchutil::secs(oneshot), benchutil::secs(warm),
                            benchutil::ratio(speedup)});
            verify_json.push_back(jsonObject(
                {{"grammar", "\"" + bg->bench->name + "\""},
                 {"depth", std::to_string(depth)},
                 {"trees", std::to_string(warm_verifier.treeCount())},
                 {"oneshot_s", jsonNum(oneshot)},
                 {"warm_s", jsonNum(warm)},
                 {"speedup", jsonNum(speedup)}}));
        }
    }

    // --- End to end ---------------------------------------------------
    std::printf("\n== End-to-end synthesize(): legacy vs optimized ==\n");
    benchutil::row({"grammar", "depth", "legacy(s)", "optimized(s)",
                    "speedup", "iters"});
    struct E2eCase {
        const BenchGrammar* bg;
        uint32_t depth;
    };
    std::vector<E2eCase> cases = {{render.get(), 4}, {ast.get(), 4}};
    for (const E2eCase& c : cases) {
        synth::SynthesisConfig legacy_config;
        legacy_config.verify.maxDepth = c.depth;
        legacy_config.incrementalEncoding = false;
        legacy_config.reuseVerifierState = false;
        legacy_config.verifyThreads = 1;
        synth::SynthesisConfig optimized_config;
        optimized_config.verify.maxDepth = c.depth;

        uint32_t legacy_iters = 0, optimized_iters = 0;
        double legacy = benchutil::measureBest(
            [&] {
                synth::SynthesisResult r = synth::synthesize(
                    c.bg->skel(), c.bg->root, {}, legacy_config);
                legacy_iters = r.cegisIterations;
                benchutil::sink(r.schedule.has_value());
            },
            min_seconds, max_iters);
        double optimized = benchutil::measureBest(
            [&] {
                synth::SynthesisResult r = synth::synthesize(
                    c.bg->skel(), c.bg->root, {}, optimized_config);
                optimized_iters = r.cegisIterations;
                benchutil::sink(r.schedule.has_value());
            },
            min_seconds, max_iters);
        double speedup = optimized > 0 ? legacy / optimized : 0;
        benchutil::row({c.bg->bench->name, std::to_string(c.depth),
                        benchutil::secs(legacy), benchutil::secs(optimized),
                        benchutil::ratio(speedup),
                        std::to_string(legacy_iters) + "/" +
                            std::to_string(optimized_iters)});
        e2e_json.push_back(jsonObject(
            {{"grammar", "\"" + c.bg->bench->name + "\""},
             {"depth", std::to_string(c.depth)},
             {"legacy_s", jsonNum(legacy)},
             {"optimized_s", jsonNum(optimized)},
             {"speedup", jsonNum(speedup)},
             {"legacy_iters", std::to_string(legacy_iters)},
             {"optimized_iters", std::to_string(optimized_iters)}}));
    }

    auto join = [](const std::vector<std::string>& items) {
        std::string out;
        for (size_t i = 0; i < items.size(); ++i) {
            if (i > 0)
                out += ",\n    ";
            out += items[i];
        }
        return out;
    };
    std::ofstream json("BENCH_cegis.json");
    json << "{\n  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"environment\": " << benchutil::environmentJson()
         << ",\n  \"encode_sweep\": [\n    " << join(encode_json)
         << "\n  ],\n  \"verify_sweep\": [\n    " << join(verify_json)
         << "\n  ],\n  \"end_to_end\": [\n    " << join(e2e_json)
         << "\n  ]\n}\n";
    std::printf("\nwrote BENCH_cegis.json\n");
    return 0;
}
