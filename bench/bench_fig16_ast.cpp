/**
 * @file
 * Reproduces Fig. 16 (Appendix A): normalized running time of the AST
 * workload variants against the unfused six-pass baseline, across tree
 * sizes. Same reporting conventions as bench_fig11_rendertree.
 *
 * Expected shape (paper): HecateL ~50% reduction (like Grafter);
 * HecateV a further ~10%; HecateP over 75% reduction on large trees
 * after amortizing spawn overhead.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/ast_workload.hpp"

namespace {

using namespace hecate;
using namespace hecate::workloads::astw;

void
frontierSizes(const NodeV* node, int depth, int spawn,
              std::vector<size_t>& out, size_t& topNodes)
{
    ++topNodes;
    for (const NodeV* child : node->cs) {
        if (depth + 1 >= spawn) {
            size_t size = 0;
            std::vector<const NodeV*> stack{child};
            while (!stack.empty()) {
                const NodeV* current = stack.back();
                stack.pop_back();
                ++size;
                for (const NodeV* c : current->cs)
                    stack.push_back(c);
            }
            out.push_back(size);
        } else {
            frontierSizes(child, depth + 1, spawn, out, topNodes);
        }
    }
}

size_t
lptMakespan(std::vector<size_t> tasks, unsigned workers)
{
    std::sort(tasks.rbegin(), tasks.rend());
    std::vector<size_t> load(workers, 0);
    for (size_t task : tasks)
        *std::min_element(load.begin(), load.end()) += task;
    return *std::max_element(load.begin(), load.end());
}

} // namespace

int
main()
{
    using benchutil::measure;
    using benchutil::ratio;
    using benchutil::row;
    using benchutil::sink;

    constexpr unsigned kModelWorkers = 8;
    constexpr int kSpawnDepth = 3;
    const size_t sizes[] = {10'000, 100'000, 1'000'000, 4'000'000};

    std::printf("Fig. 16: AST workload normalized running time vs the "
                "unfused six-pass baseline\n");
    std::printf("(HecateP-wall = measured on this 1-core host; "
                "HecateP-model = LPT makespan with %u workers)\n\n",
                kModelWorkers);
    row({"TreeSize", "Unfused", "Grafter", "HecateL", "HecateV",
         "HecateP-wall", "HecateP-model"});
    row({"--------", "-------", "-------", "-------", "-------",
         "------------", "-------------"});

    for (size_t size : sizes) {
        ProgramL prog_l = buildProgramL(size, /*seed=*/11);
        ProgramV prog_v = buildProgramV(size, /*seed=*/11);
        ThreadPool pool(kModelWorkers);

        double unfused = measure([&] {
            clearOutputs(prog_l);
            runUnfused(prog_l);
            sink(checksum(prog_l));
        });
        double fused_l = measure([&] {
            clearOutputs(prog_l);
            runFusedL(prog_l);
            sink(checksum(prog_l));
        });
        double fused_v = measure([&] {
            clearOutputs(prog_v);
            runFusedV(prog_v);
            sink(checksum(prog_v));
        });
        double parallel_wall = measure([&] {
            clearOutputs(prog_v);
            runParallelV(prog_v, pool, kSpawnDepth);
            sink(checksum(prog_v));
        });

        std::vector<size_t> tasks;
        size_t top_nodes = 0;
        frontierSizes(prog_v.root, 0, kSpawnDepth, tasks, top_nodes);
        double per_node =
            fused_v / static_cast<double>(prog_v.size());
        double fork_overhead = 2e-6 * static_cast<double>(tasks.size());
        double modeled =
            per_node * (static_cast<double>(top_nodes) +
                        static_cast<double>(
                            lptMakespan(tasks, kModelWorkers))) +
            fork_overhead;

        row({std::to_string(prog_l.size()), ratio(1.0),
             ratio(fused_l / unfused), ratio(fused_l / unfused),
             ratio(fused_v / unfused), ratio(parallel_wall / unfused),
             ratio(modeled / unfused)});
    }

    std::printf("\nSeries notes: Grafter and HecateL run the same fused "
                "schedule; values < 1.0 are reductions over the unfused "
                "baseline.\n");
    return 0;
}
