/**
 * @file
 * Traversal runtime benchmark: quantifies the bytecode runtime of
 * src/runtime against both ends of the execution spectrum on the two
 * big evaluation grammars (RenderTree and AST):
 *
 *  - interp: exec::execute, the schedule-following value interpreter
 *    over tree::Tree (name lookups + AST dispatch per rule);
 *  - runtime: the same synthesized schedule compiled to bytecode with
 *    runtime::Program and run over a flattened TreeArena;
 *  - codegen: the REAL emitted TU — the native emitter's C++ for this
 *    exact (grammar, schedule), compiled out-of-process and executed
 *    through the dlopen'ed module over the same arena (the upper bound
 *    the runtime chases, no hand-written proxy);
 *  - native: the same module reached through the tiered execution
 *    path (NativeTier acquire + cache lookup per run), with the cold
 *    compile latency reported as native_compile_s and the warm
 *    tier-vs-emitted ratio as runtime_vs_native.
 *
 * A second sweep wraps each case's recursive visits in a `parallel`
 * region, re-synthesizes, and runs the parallel executor with growing
 * worker counts to show fork-join scaling (real speedups need real
 * cores; the host's count is printed alongside).
 *
 * A third sweep compares the sweep strategies on the same compiled
 * program: explicit stack, linear two-pass, the level-synchronous
 * segmented engine in scalar, vectorized, and level-parallel form,
 * the tile scheduler (cache-sized subtree blocks with work stealing,
 * sequential and with 2/4 workers), and Auto — each row carries a
 * `selection` column (strategy/reason) proving what actually ran, plus
 * strip-engine counters (strips / pred_ops / fallback_nodes). The
 * seg-interp and tiled-interp variants force the node-major expression
 * interpreter so the strip engine's win is measured, not assumed. A
 * fourth compares executing a batch of trees one by one against one
 * packed ForestArena execution (single-tree vs forest batching).
 *
 * A fifth sweep reports the native artifact cache: cold out-of-process
 * compile latency per grammar, then a fresh tier against the same
 * cache directory proving warm starts revive every artifact from disk
 * (warm_hit_rate) without invoking the compiler.
 *
 * Results are printed as tables and written as machine-readable JSON
 * to BENCH_runtime.json (schema: {"quick", "hardware_threads",
 * "environment", "single_thread", "parallel", "sweeps", "forest",
 * "native"}). --quick shrinks the instance sizes so CI can run it in
 * seconds.
 */

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/interp.hpp"
#include "grammars/grammars.hpp"
#include "lang/printer.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "runtime/program.hpp"
#include "runtime/segments.hpp"
#include "runtime/tiles.hpp"
#include "service/native_tier.hpp"
#include "support/thread_pool.hpp"
#include "synth/autotuner.hpp"

using namespace hecate;

namespace {

/** One JSON object as ordered key/value text fragments. */
std::string
jsonObject(const std::vector<std::pair<std::string, std::string>>& fields)
{
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "\"" + fields[i].first + "\": " + fields[i].second;
    }
    return out + "}";
}

std::string
jsonNum(double value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    return buffer;
}

/**
 * Rewrite @p decl so each case's recursive visits run in one
 * fork-join region: every case with at least two `recur` statements
 * gets them collected into a single statement-form `parallel` block
 * (placed where the last of them stood, which keeps pre-visit slots
 * before the region and post-visit slots after it). Returns whether
 * any case changed.
 */
bool
wrapRecursInParallel(ast::TraversalDecl& decl)
{
    bool wrapped = false;
    for (ast::CaseDecl& c : decl.cases) {
        size_t recurs = 0;
        for (const ast::TStmtPtr& stmt : c.stmts)
            recurs += stmt->kind == ast::TStmtKind::Recur;
        if (recurs < 2)
            continue;
        std::vector<ast::TStmtPtr> out, region;
        for (ast::TStmtPtr& stmt : c.stmts) {
            if (stmt->kind != ast::TStmtKind::Recur) {
                out.push_back(std::move(stmt));
                continue;
            }
            region.push_back(std::move(stmt));
            if (region.size() == recurs)
                out.push_back(
                    ast::TStmt::makeParallel("", std::move(region)));
        }
        c.stmts = std::move(out);
        wrapped = true;
    }
    return wrapped;
}

struct BenchGrammar {
    const grammars::Benchmark* bench = nullptr;

    // Sequential: an auto-mode pipeline run to its compile stage. The
    // interp runs the symbolic skeleton + schedule; the runtime series
    // runs the compiled bytecode. The pipeline pins the grammar every
    // artifact points into.
    std::unique_ptr<pipeline::Pipeline> seq;
    const sched::Skeleton* skeleton = nullptr;
    const sched::Schedule* schedule = nullptr;
    const runtime::Program* program = nullptr;

    // Parallel: a given-skeleton pipeline over the same grammar, with
    // the recurs wrapped in a fork-join region. Null when the wrapped
    // skeleton does not admit a schedule.
    std::unique_ptr<pipeline::Pipeline> par;
    const runtime::Program* parProgram = nullptr;

    // Native: the emitted-and-compiled module for the sequential
    // schedule (null when no compiler is available) and its cold
    // out-of-process compile latency.
    std::shared_ptr<codegen::NativeModule> module;
    double compileSeconds = 0.0;
};

std::unique_ptr<BenchGrammar>
loadBench(const grammars::Benchmark& bench, synth::SkeletonStyle parStyle,
          service::NativeTier* tier)
{
    auto bg = std::make_unique<BenchGrammar>();
    bg->bench = &bench;

    pipeline::PipelineOptions options;
    options.config.verify.maxDepth = 3;
    options.nativeTier = tier;
    options.tier = service::ExecTier::Native;
    bg->seq = std::make_unique<pipeline::Pipeline>(bench, "", options);
    const pipeline::SynthArtifact& tuned = bg->seq->synthesize();
    checkInvariant(tuned.ok, "bench_runtime: auto-tuning failed");
    bg->skeleton = &bg->seq->skeleton();
    bg->schedule = &*tuned.schedule;
    bg->program = &bg->seq->compileProgram();

    // The real emitted TU, compiled cold: this IS the codegen column.
    pipeline::NativeArtifact native = bg->seq->compileNative();
    if (native.ok) {
        bg->module = native.module;
        bg->compileSeconds = native.seconds;
    } else {
        std::printf("note: native module unavailable for %s (%s); "
                    "codegen/native columns report 0\n",
                    bench.name.c_str(), native.failure.c_str());
    }

    ast::TraversalDecl par =
        synth::makeSkeleton(bg->seq->grammar(), parStyle, "par");
    if (wrapRecursInParallel(par)) {
        bg->par = std::make_unique<pipeline::Pipeline>(
            bench, lang::printTraversal(par), options);
        const pipeline::SynthArtifact& result = bg->par->synthesize();
        if (result.ok) {
            bg->parProgram = &bg->par->compileProgram();
        } else {
            std::printf("note: %s parallel skeleton has no schedule "
                        "(%s); skipping its parallel sweep\n",
                        bench.name.c_str(), result.failure.c_str());
        }
    }
    return bg;
}

/** Arena pinned to @p pipe's grammar (programs only run over arenas of
 *  the grammar object they were compiled against). */
runtime::TreeArena
makeArena(pipeline::Pipeline& pipe, uint32_t nodes)
{
    runtime::GenConfig gen;
    gen.targetNodes = nodes;
    gen.seed = 2024;
    return runtime::TreeArena::generate(pipe.grammar(),
                                        pipe.rootInterface(), gen);
}

/**
 * The emitted-C++ reference: the dlopen'ed module run directly over
 * the arena view — no tier, no cache lookup, just the machine code the
 * native emitter + system compiler produced for this exact schedule.
 */
double
codegenSeconds(const BenchGrammar& bg, runtime::TreeArena& arena,
               double min_seconds, int max_iters, int min_iters)
{
    if (bg.module == nullptr)
        return 0.0;
    runtime::ArenaView view = arena.view();
    return benchutil::measureBest(
        [&] {
            bg.module->execute(view);
            benchutil::sink(view.size);
        },
        min_seconds, max_iters, min_iters);
}

/**
 * The tiered path to the same machine code: every run re-enters the
 * pipeline's CompileNative stage (memoized module, tier bookkeeping)
 * and then executes — what a serve-daemon request pays once hot.
 */
double
nativeSeconds(BenchGrammar& bg, runtime::TreeArena& arena,
              double min_seconds, int max_iters, int min_iters)
{
    if (bg.module == nullptr)
        return 0.0;
    runtime::ArenaView view = arena.view();
    return benchutil::measureBest(
        [&] {
            pipeline::NativeArtifact native = bg.seq->compileNative();
            native.module->execute(view);
            benchutil::sink(view.size);
        },
        min_seconds, max_iters, min_iters);
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }
    const double min_seconds = quick ? 0.0 : 0.2;
    const int max_iters = quick ? 1 : 10;
    const int min_iters = quick ? 1 : 3;
    const unsigned hw_threads = std::thread::hardware_concurrency();

    std::vector<uint32_t> sizes = quick
                                      ? std::vector<uint32_t>{20000}
                                      : std::vector<uint32_t>{100000,
                                                              1000000};
    std::vector<std::string> single_json, parallel_json;

    // One tier with a disk cache for the whole bench: the cold compile
    // here is what native_compile_s reports; a second tier against the
    // same directory later proves warm starts skip the compiler.
    namespace fs = std::filesystem;
    fs::path native_dir =
        fs::temp_directory_path() /
        ("hecate-bench-native-" + std::to_string(::getpid()));
    fs::remove_all(native_dir);
    service::NativeTierConfig native_config;
    native_config.cacheDir = native_dir.string();
    service::NativeTier native_tier(native_config);

    std::unique_ptr<BenchGrammar> render =
        loadBench(grammars::renderTree(), synth::SkeletonStyle::Sandwich,
                  &native_tier);
    std::unique_ptr<BenchGrammar> ast =
        loadBench(grammars::astBench(), synth::SkeletonStyle::Sandwich,
                  &native_tier);

    // --- Single thread: interp vs runtime vs codegen vs native --------
    std::printf("== Single thread: interp vs bytecode runtime vs emitted "
                "C++ (direct / tiered) ==\n");
    benchutil::row({"grammar", "nodes", "depth", "interp(s)", "runtime(s)",
                    "speedup", "codegen(s)", "rt/cg", "native(s)",
                    "nat/cg"});
    for (BenchGrammar* bg : {render.get(), ast.get()}) {
        for (uint32_t nodes : sizes) {
            runtime::TreeArena arena = makeArena(*bg->seq, nodes);
            tree::Tree tree = arena.toTree();

            double interp = benchutil::measureBest(
                [&] {
                    exec::execute(*bg->skeleton, *bg->schedule, tree);
                    benchutil::sink(tree.size());
                },
                min_seconds, max_iters, min_iters);
            double rt = benchutil::measureBest(
                [&] {
                    benchutil::sink(
                        runtime::execute(*bg->program, arena)
                            .rulesEvaluated);
                },
                min_seconds, max_iters, min_iters);
            double cg = codegenSeconds(*bg, arena, min_seconds, max_iters,
                                       min_iters);
            double native = nativeSeconds(*bg, arena, min_seconds,
                                          max_iters, min_iters);

            double speedup = rt > 0 ? interp / rt : 0;
            double rt_vs_cg = cg > 0 ? rt / cg : 0;
            double native_vs_cg = cg > 0 ? native / cg : 0;
            benchutil::row({bg->bench->name, std::to_string(arena.size()),
                            std::to_string(arena.depth()),
                            benchutil::secs(interp), benchutil::secs(rt),
                            benchutil::ratio(speedup), benchutil::secs(cg),
                            benchutil::ratio(rt_vs_cg),
                            benchutil::secs(native),
                            benchutil::ratio(native_vs_cg)});
            single_json.push_back(jsonObject(
                {{"grammar", "\"" + bg->bench->name + "\""},
                 {"nodes", std::to_string(arena.size())},
                 {"depth", std::to_string(arena.depth())},
                 {"interp_s", jsonNum(interp)},
                 {"runtime_s", jsonNum(rt)},
                 {"speedup", jsonNum(speedup)},
                 {"codegen_s", jsonNum(cg)},
                 {"runtime_vs_codegen", jsonNum(rt_vs_cg)},
                 {"native_s", jsonNum(native)},
                 {"native_compile_s", jsonNum(bg->compileSeconds)},
                 {"runtime_vs_native", jsonNum(native_vs_cg)}}));
        }
    }

    // --- Parallel executor scaling ------------------------------------
    std::printf("\n== Parallel executor: fork-join scaling "
                "(%u hardware threads) ==\n",
                hw_threads);
    benchutil::row({"grammar", "nodes", "workers", "time(s)", "speedup",
                    "regions", "tasks"});
    const uint32_t par_nodes = sizes.back();
    std::vector<uint32_t> worker_counts = {2, 4};
    for (BenchGrammar* bg : {render.get(), ast.get()}) {
        if (bg->parProgram == nullptr)
            continue;
        runtime::TreeArena arena = makeArena(*bg->par, par_nodes);

        runtime::RuntimeStats seq_stats;
        double seq = benchutil::measureBest(
            [&] {
                seq_stats = runtime::execute(*bg->parProgram, arena);
                benchutil::sink(seq_stats.rulesEvaluated);
            },
            min_seconds, max_iters, min_iters);
        benchutil::row({bg->bench->name, std::to_string(arena.size()), "1",
                        benchutil::secs(seq), benchutil::ratio(1.0),
                        std::to_string(seq_stats.parallelRegions),
                        std::to_string(seq_stats.tasksSpawned)});
        parallel_json.push_back(jsonObject(
            {{"grammar", "\"" + bg->bench->name + "\""},
             {"nodes", std::to_string(arena.size())},
             {"workers", "1"},
             {"time_s", jsonNum(seq)},
             {"speedup", jsonNum(1.0)},
             {"regions", std::to_string(seq_stats.parallelRegions)},
             {"tasks", std::to_string(seq_stats.tasksSpawned)}}));

        for (uint32_t workers : worker_counts) {
            ThreadPool pool(workers);
            runtime::ExecOptions options;
            options.pool = &pool;
            options.grain = 8192;
            runtime::RuntimeStats stats;
            double par = benchutil::measureBest(
                [&] {
                    stats = runtime::execute(*bg->parProgram, arena,
                                             options);
                    benchutil::sink(stats.rulesEvaluated);
                },
                min_seconds, max_iters, min_iters);
            double speedup = par > 0 ? seq / par : 0;
            benchutil::row({bg->bench->name, std::to_string(arena.size()),
                            std::to_string(workers), benchutil::secs(par),
                            benchutil::ratio(speedup),
                            std::to_string(stats.parallelRegions),
                            std::to_string(stats.tasksSpawned)});
            parallel_json.push_back(jsonObject(
                {{"grammar", "\"" + bg->bench->name + "\""},
                 {"nodes", std::to_string(arena.size())},
                 {"workers", std::to_string(workers)},
                 {"time_s", jsonNum(par)},
                 {"speedup", jsonNum(speedup)},
                 {"regions", std::to_string(stats.parallelRegions)},
                 {"tasks", std::to_string(stats.tasksSpawned)}}));
        }
    }

    // --- Sweep strategies: stack vs linear vs segmented vs tiled ------
    std::printf("\n== Sweep strategies: stack vs linear vs segmented vs "
                "tiled (scalar / simd / parallel) ==\n");
    benchutil::row({"grammar", "nodes", "variant", "workers", "time(s)",
                    "vs stack", "Mnodes/s", "selection"});
    std::vector<std::string> sweeps_json;
    struct SweepVariant {
        const char* name;
        runtime::SweepStrategy strategy;
        bool simd;
        uint32_t workers; ///< 0 = no pool
        runtime::ExprEngine engine = runtime::ExprEngine::Auto;
    };
    const SweepVariant sweep_variants[] = {
        {"stack", runtime::SweepStrategy::Stack, true, 0},
        {"linear", runtime::SweepStrategy::Linear, true, 0},
        {"seg-scalar", runtime::SweepStrategy::Segmented, false, 0},
        {"seg-interp", runtime::SweepStrategy::Segmented, true, 0,
         runtime::ExprEngine::Interp},
        {"seg-simd", runtime::SweepStrategy::Segmented, true, 0},
        {"seg-par2", runtime::SweepStrategy::Segmented, true, 2},
        {"seg-par4", runtime::SweepStrategy::Segmented, true, 4},
        {"tiled-interp", runtime::SweepStrategy::Tiled, true, 0,
         runtime::ExprEngine::Interp},
        {"tiled", runtime::SweepStrategy::Tiled, true, 0},
        {"tiled-par2", runtime::SweepStrategy::Tiled, true, 2},
        {"tiled-par4", runtime::SweepStrategy::Tiled, true, 4},
        {"auto", runtime::SweepStrategy::Auto, true, 0},
    };
    for (BenchGrammar* bg : {render.get(), ast.get()}) {
        if (!bg->program->sweepable())
            continue;
        for (uint32_t nodes : sizes) {
            runtime::TreeArena arena = makeArena(*bg->seq, nodes);
            // Warm the lazily-built per-arena structures so
            // single-iteration --quick rows time execution, not the
            // one-time derived-structure construction (full runs
            // amortize it out through best-of-N anyway).
            arena.levelSegments();
            arena.tileGraph();
            double stack_s = 0.0;
            for (const SweepVariant& v : sweep_variants) {
                std::unique_ptr<ThreadPool> pool;
                runtime::ExecOptions options;
                options.strategy = v.strategy;
                options.simd = v.simd;
                options.exprEngine = v.engine;
                if (v.workers > 0) {
                    pool = std::make_unique<ThreadPool>(v.workers);
                    options.pool = pool.get();
                    options.grain = 8192;
                }
                runtime::RuntimeStats stats;
                double secs = benchutil::measureBest(
                    [&] {
                        stats = runtime::execute(*bg->program, arena,
                                                 options);
                        benchutil::sink(stats.rulesEvaluated);
                    },
                    min_seconds, max_iters, min_iters);
                if (v.strategy == runtime::SweepStrategy::Stack)
                    stack_s = secs;
                double vs_stack = secs > 0 ? stack_s / secs : 0;
                double mnodes =
                    secs > 0 ? arena.size() / secs / 1e6 : 0;
                // What actually ran and why — for explicit variants the
                // reason is "explicit"; for auto it proves which engine
                // the measured-stats selector picked on this instance.
                const std::string selection =
                    std::string(runtime::sweepStrategyName(
                        stats.strategy)) +
                    "/" + runtime::strategyReasonName(stats.selection);
                benchutil::row(
                    {bg->bench->name, std::to_string(arena.size()),
                     v.name, std::to_string(v.workers),
                     benchutil::secs(secs), benchutil::ratio(vs_stack),
                     benchutil::ratio(mnodes), selection});
                sweeps_json.push_back(jsonObject(
                    {{"grammar", "\"" + bg->bench->name + "\""},
                     {"nodes", std::to_string(arena.size())},
                     {"variant", std::string("\"") + v.name + "\""},
                     {"workers", std::to_string(v.workers)},
                     {"time_s", jsonNum(secs)},
                     {"speedup_vs_stack", jsonNum(vs_stack)},
                     {"nodes_per_sec", jsonNum(
                          secs > 0 ? arena.size() / secs : 0)},
                     {"level_waves",
                      std::to_string(stats.levelWaves)},
                     {"segment_kernels",
                      std::to_string(stats.segmentKernels)},
                     {"tiles", std::to_string(stats.tilesExecuted)},
                     {"tile_steals",
                      std::to_string(stats.tileSteals)},
                     {"strips", std::to_string(stats.stripsRun)},
                     {"pred_ops",
                      std::to_string(stats.predicatedOps)},
                     {"fallback_nodes",
                      std::to_string(stats.fallbackNodes)},
                     {"selection", "\"" + selection + "\""}}));
            }
        }
    }

    // --- Forest batching: one-by-one vs one packed execution ----------
    // Swept over per-tree sizes to expose the crossover: batching wins
    // while per-execution overhead dominates (many small trees) and
    // loses once a single tree is itself larger than cache (solo runs
    // are naturally cache-blocked; the packed forest streams the whole
    // batch through DRAM each wave).
    const uint32_t forest_batch = quick ? 8 : 64;
    std::vector<uint32_t> forest_tree_sizes =
        quick ? std::vector<uint32_t>{200, 2000}
              : std::vector<uint32_t>{200, 2000, 20000};
    std::printf("\n== Forest batching: %u trees, one-by-one vs packed "
                "==\n",
                forest_batch);
    benchutil::row({"grammar", "trees", "nodes/tree", "nodes",
                    "per-tree(s)", "forest(s)", "speedup", "Mnodes/s"});
    std::vector<std::string> forest_json;
    for (BenchGrammar* bg : {render.get(), ast.get()}) {
        const sem::Grammar& grammar = bg->seq->grammar();
        sem::InterfaceId root = bg->seq->rootInterface();
        for (uint32_t tree_nodes : forest_tree_sizes) {
            runtime::GenConfig gen;
            gen.targetNodes = tree_nodes;
            gen.seed = 2024;

            std::vector<runtime::TreeArena> trees;
            for (uint32_t t = 0; t < forest_batch; ++t) {
                runtime::GenConfig one = gen;
                one.seed = gen.seed + t;
                trees.push_back(
                    runtime::TreeArena::generate(grammar, root, one));
            }
            runtime::ForestArena forest = runtime::ForestArena::generate(
                grammar, root, gen, forest_batch);

            double solo = benchutil::measureBest(
                [&] {
                    uint64_t rules = 0;
                    for (runtime::TreeArena& tree : trees)
                        rules += runtime::execute(*bg->program, tree)
                                     .rulesEvaluated;
                    benchutil::sink(rules);
                },
                min_seconds, max_iters, min_iters);
            double batched = benchutil::measureBest(
                [&] {
                    benchutil::sink(
                        runtime::execute(*bg->program, forest)
                            .rulesEvaluated);
                },
                min_seconds, max_iters, min_iters);

            double speedup = batched > 0 ? solo / batched : 0;
            double mnodes =
                batched > 0 ? forest.size() / batched / 1e6 : 0;
            benchutil::row(
                {bg->bench->name, std::to_string(forest_batch),
                 std::to_string(tree_nodes),
                 std::to_string(forest.size()), benchutil::secs(solo),
                 benchutil::secs(batched), benchutil::ratio(speedup),
                 benchutil::ratio(mnodes)});
            forest_json.push_back(jsonObject(
                {{"grammar", "\"" + bg->bench->name + "\""},
                 {"trees", std::to_string(forest_batch)},
                 {"tree_nodes", std::to_string(tree_nodes)},
                 {"nodes_total", std::to_string(forest.size())},
                 {"per_tree_s", jsonNum(solo)},
                 {"forest_s", jsonNum(batched)},
                 {"speedup", jsonNum(speedup)},
                 {"nodes_per_sec",
                  jsonNum(batched > 0 ? forest.size() / batched : 0)}}));
        }
    }

    // --- Native artifact cache: cold compile vs warm revival ----------
    // A fresh tier pointed at the same cache directory simulates a
    // process restart: every artifact must come back from disk (a
    // checksum-validated dlopen) without ever invoking the compiler.
    std::printf("\n== Native cache: cold compile vs warm disk revival "
                "==\n");
    benchutil::row({"grammar", "cold(s)", "warm(s)", "revived"});
    std::vector<std::string> native_grammar_json;
    double warm_hit_rate = 0.0;
    if (native_tier.compilerAvailable()) {
        service::NativeTier warm_tier(native_config);
        pipeline::PipelineOptions warm_options;
        warm_options.config.verify.maxDepth = 3;
        warm_options.nativeTier = &warm_tier;
        warm_options.tier = service::ExecTier::Native;
        for (BenchGrammar* bg : {render.get(), ast.get()}) {
            pipeline::Pipeline pipe(*bg->bench, "", warm_options);
            pipe.synthesize();
            pipe.compileProgram();
            Timer timer;
            pipeline::NativeArtifact warm = pipe.compileNative();
            double warm_s = timer.seconds();
            benchutil::row({bg->bench->name,
                            benchutil::secs(bg->compileSeconds),
                            benchutil::secs(warm_s),
                            warm.ok ? "yes" : "no"});
            native_grammar_json.push_back(jsonObject(
                {{"grammar", "\"" + bg->bench->name + "\""},
                 {"compile_s", jsonNum(bg->compileSeconds)},
                 {"warm_acquire_s", jsonNum(warm_s)},
                 {"revived", warm.ok ? "true" : "false"}}));
        }
        service::NativeCache::Stats warm_stats =
            warm_tier.cache().stats();
        uint64_t attempts = warm_stats.hits + warm_stats.diskHits +
                            warm_stats.misses;
        warm_hit_rate =
            attempts > 0
                ? static_cast<double>(warm_stats.diskHits) / attempts
                : 0.0;
        std::printf("warm hit rate: %.2f (%llu of %llu acquires from "
                    "disk, %llu compile(s))\n",
                    warm_hit_rate,
                    static_cast<unsigned long long>(warm_stats.diskHits),
                    static_cast<unsigned long long>(attempts),
                    static_cast<unsigned long long>(
                        warm_tier.stats().compiles));
    } else {
        std::printf("no usable C++ compiler; native cache sweep "
                    "skipped\n");
    }
    std::string native_json = jsonObject(
        {{"compiler",
          "\"" + benchutil::jsonEscape(native_tier.compilerIdentity()) +
              "\""},
         {"warm_hit_rate", jsonNum(warm_hit_rate)},
         {"grammars", "[" + [&] {
              std::string out;
              for (size_t i = 0; i < native_grammar_json.size(); ++i) {
                  if (i > 0)
                      out += ", ";
                  out += native_grammar_json[i];
              }
              return out;
          }() + "]"}});
    native_tier.drain();
    fs::remove_all(native_dir);

    auto join = [](const std::vector<std::string>& items) {
        std::string out;
        for (size_t i = 0; i < items.size(); ++i) {
            if (i > 0)
                out += ",\n    ";
            out += items[i];
        }
        return out;
    };
    std::ofstream json("BENCH_runtime.json");
    json << "{\n  \"quick\": " << (quick ? "true" : "false")
         << ",\n  \"hardware_threads\": " << hw_threads
         << ",\n  \"environment\": " << benchutil::environmentJson()
         << ",\n  \"single_thread\": [\n    " << join(single_json)
         << "\n  ],\n  \"parallel\": [\n    " << join(parallel_json)
         << "\n  ],\n  \"sweeps\": [\n    " << join(sweeps_json)
         << "\n  ],\n  \"forest\": [\n    " << join(forest_json)
         << "\n  ],\n  \"native\": " << native_json << "\n}\n";
    std::printf("\nwrote BENCH_runtime.json\n");
    return 0;
}
