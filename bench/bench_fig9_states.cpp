/**
 * @file
 * Reproduces Fig. 9: growth of the number of symbolic states as the
 * symbolic compilation proceeds through execution time steps, for the
 * general-purpose encoding (ready-bit formulas over sigma variables;
 * the count is the boolean DAG size) versus the domain-specific trace
 * encoding (the count is the cumulative ILP constraint-term total).
 *
 * Expected shape: the general-purpose series grows far faster with the
 * time step than the domain-specific series (paper: 1.2M vs a few
 * hundred by step 11 on the running example).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "grammars/grammars.hpp"
#include "lang/parser.hpp"
#include "obs/telemetry.hpp"
#include "symbolic/general_encoder.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "synth/autotuner.hpp"
#include "tree/enumerate.hpp"

namespace {

using namespace hecate;

/** Fig. 2 example tree in the render grammar of Fig. 3. */
const char* kGrammarSrc = R"(
interface Box {
    input w0, h0 : int;
    output w1, w, h1, h : int;
}
class Inner : Box {
    children { nx : Optional[Box]; fc : Optional[Box]; }
    rules {
        self.w  := max(self.w0, fc.w1);
        self.w1 := max(self.w, nx.w1);
        self.h  := max(self.h0, fc.h1);
        self.h1 := self.h + nx.h1;
    }
}
class Leaf : Box {
    children { nx : Optional[Box]; }
    rules {
        self.w  := self.w0;
        self.w1 := max(self.w, nx.w1);
        self.h  := self.h0;
        self.h1 := self.h + nx.h1;
    }
}
)";

const char* kSkeletonSrc = R"(
traversal layout {
    case Inner { recur fc; recur nx; ??; ??; ??; ??; }
    case Leaf { recur nx; ??; ??; ??; ??; }
}
)";

void
runSeries(const sem::Grammar& grammar, const tree::Tree& tree,
          const char* label)
{
    sched::Skeleton skeleton = sched::Skeleton::resolve(
        grammar, lang::parseTraversal(kSkeletonSrc));

    std::vector<size_t> general_states;
    obs::Telemetry general_tm;
    symbolic::synthesizeGeneral(skeleton, {&tree}, general_tm,
                                &general_states);

    std::vector<size_t> ilp_states;
    obs::Telemetry ilp_tm;
    symbolic::synthesizeIlp(skeleton, {&tree}, ilp_tm, &ilp_states);

    std::printf("\n%s: %zu slot instances (general), %zu trace statements "
                "(domain-specific)\n",
                label, general_states.size(), ilp_states.size());
    std::printf("%-8s%-22s%-22s\n", "step", "general(#states)",
                "domain-specific(#terms)");
    // The domain-specific series has one entry per trace statement
    // (instance x candidate); align it to instances by sampling.
    size_t steps = general_states.size();
    for (size_t i = 0; i < steps; ++i) {
        size_t ds_index =
            ilp_states.empty()
                ? 0
                : std::min(ilp_states.size() - 1,
                           (i + 1) * ilp_states.size() / steps - 1);
        std::printf("%-8zu%-22zu%-22zu\n", i + 1, general_states[i],
                    ilp_states.empty() ? 0 : ilp_states[ds_index]);
    }
    const double expanded = general_tm.counter("sat.expanded_states");
    const double terms = ilp_tm.counter("ilp.constraint_terms");
    std::printf("final: general symbolic states = %.4g (hash-consed DAG "
                "nodes %.0f, CNF clauses %.0f);  domain-specific "
                "constraints = %.0f, terms = %.0f\n",
                expanded, general_tm.counter("sat.formula_nodes"),
                general_tm.counter("sat.cnf_clauses"),
                ilp_tm.counter("ilp.constraints"), terms);
    std::printf("ratio general/domain-specific states: %.4gx\n",
                terms == 0 ? 0.0 : expanded / terms);
}

} // namespace

int
main()
{
    sem::Grammar grammar =
        sem::Grammar::analyze(lang::parseGrammar(kGrammarSrc));

    // The paper's Fig. 2 tree: n0(Inner) -> n1(Inner) -> {n3,n4 leaves},
    // n1's sibling n2.
    sem::ClassId inner = grammar.findClass("Inner");
    sem::ClassId leaf = grammar.findClass("Leaf");
    tree::Tree fig2(grammar);
    auto n0 = fig2.addNode(inner);
    auto n1 = fig2.addNode(inner);
    auto n2 = fig2.addNode(leaf);
    auto n3 = fig2.addNode(leaf);
    auto n4 = fig2.addNode(leaf);
    fig2.setScalar(n0, grammar.cls(inner).childByName.at("fc"), n1);
    fig2.setScalar(n1, grammar.cls(inner).childByName.at("nx"), n2);
    fig2.setScalar(n1, grammar.cls(inner).childByName.at("fc"), n3);
    fig2.setScalar(n3, grammar.cls(leaf).childByName.at("nx"), n4);
    fig2.setRoot(n0);
    fig2.validate();

    std::printf("Fig. 9: symbolic-state growth, general-purpose vs "
                "domain-specific symbolic compilation\n");
    runSeries(grammar, fig2, "running example (Fig. 2 tree, 5 nodes)");

    // A larger tree to show the divergence of the two growth curves.
    Rng rng(7);
    tree::SampleConfig sample;
    sample.maxDepth = 8;
    sample.optionalPresent = 0.85;
    tree::Tree big = tree::sampleTree(grammar, 0, sample, rng);
    while (big.size() < 40)
        big = tree::sampleTree(grammar, 0, sample, rng);
    runSeries(grammar, big,
              ("larger sampled tree (" + std::to_string(big.size()) +
               " nodes)")
                  .c_str());
    return 0;
}
