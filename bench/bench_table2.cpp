/**
 * @file
 * Reproduces Table 2: total synthesis time (synthesis + verification)
 * in seconds for the five Grafter benchmarks, comparing the Grafter
 * baseline, Hecate (domain-specific ILP encoding), and HecateG
 * (general-purpose SAT encoding).
 *
 * Expected shape (paper): Hecate fastest everywhere; HecateG ~3x
 * slower than Hecate; Grafter degrades sharply on large grammars
 * (AST). Absolute numbers differ from the paper (different machines
 * and substrates — see DESIGN.md).
 */

#include <cstdio>

#include "baselines/grafter.hpp"
#include "bench_util.hpp"
#include "grammars/grammars.hpp"
#include "lang/printer.hpp"
#include "pipeline/pipeline.hpp"
#include "synth/autotuner.hpp"

namespace {

using namespace hecate;

struct Row {
    std::string name;
    size_t rules = 0;
    double grafter = 0;
    double hecate = 0;
    double hecateG = 0;
    bool grafterOk = false, hecateOk = false, hecateGOk = false;
};

Row
runBenchmark(const grammars::Benchmark& bench)
{
    Row result;
    result.name = bench.name;

    sem::Grammar grammar = grammars::load(bench);
    result.rules = grammar.ruleCount();
    sem::InterfaceId root = grammars::rootInterface(grammar, bench);

    tree::EnumConfig verify;
    verify.maxDepth = 3;
    verify.limit = 64;

    // Grafter baseline.
    {
        baselines::GrafterResult r =
            baselines::grafterSchedule(grammar, root, verify);
        result.grafter = r.seconds;
        result.grafterOk = r.ok;
    }

    // Hecate and HecateG share the same sandwich skeleton (the paper's
    // user-provided symbolic traversal), each run as a pipeline.
    std::string skeleton_src = lang::printTraversal(
        synth::makeSkeleton(grammar, synth::SkeletonStyle::Sandwich));

    {
        pipeline::PipelineOptions options;
        options.config.verify = verify;
        pipeline::Pipeline pipe(bench, skeleton_src, std::move(options));
        const pipeline::SynthArtifact& r = pipe.synthesize();
        result.hecate = r.seconds;
        result.hecateOk = r.ok;
    }
    {
        pipeline::PipelineOptions options;
        options.config.verify = verify;
        options.config.engine = synth::Engine::GeneralPurposeSat;
        pipeline::Pipeline pipe(bench, skeleton_src, std::move(options));
        const pipeline::SynthArtifact& r = pipe.synthesize();
        result.hecateG = r.seconds;
        result.hecateGOk = r.ok;
    }
    return result;
}

} // namespace

int
main()
{
    using benchutil::row;
    using benchutil::secs;

    std::printf("Table 2: synthesis time (seconds), Grafter benchmark "
                "suite\n");
    std::printf("(paper reference: BinaryTree 2.6/1.1/3.2  FMM 7.6/1.0/1.6"
                "  Piecewise 12.6/2.1/3.1  AST 151.7/20.6/73.4  "
                "RenderTree 62.0/4.1/10.1)\n\n");
    row({"Benchmark", "# of Rules", "Grafter", "Hecate", "HecateG"});
    row({"---------", "----------", "-------", "------", "-------"});

    double speedup_g_sum = 0, speedup_grafter_sum = 0;
    int count = 0;
    for (const grammars::Benchmark* bench : grammars::grafterBenchmarks()) {
        Row r = runBenchmark(*bench);
        row({r.name, std::to_string(r.rules),
             r.grafterOk ? secs(r.grafter) : "FAILED",
             r.hecateOk ? secs(r.hecate) : "FAILED",
             r.hecateGOk ? secs(r.hecateG) : "FAILED"});
        if (r.grafterOk && r.hecateOk && r.hecateGOk) {
            speedup_g_sum += r.hecateG / r.hecate;
            speedup_grafter_sum += r.grafter / r.hecate;
            ++count;
        }
    }
    if (count > 0) {
        std::printf("\nmean speedup of Hecate vs HecateG: %.1fx "
                    "(paper: 3.1x)\n",
                    speedup_g_sum / count);
        std::printf("mean speedup of Hecate vs Grafter: %.1fx "
                    "(paper: 8.0x)\n",
                    speedup_grafter_sum / count);
    }
    return 0;
}
