#pragma once

/**
 * @file
 * Small shared helpers for the paper-reproduction benchmark binaries:
 * fixed-width table printing and adaptive wall-clock timing.
 */

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "support/timer.hpp"

namespace hecate::benchutil {

/** Print one table row of fixed-width columns. */
inline void
row(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

/** Format seconds with 3 decimals. */
inline std::string
secs(double s)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", s);
    return buffer;
}

/** Format a ratio with 2 decimals. */
inline std::string
ratio(double r)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", r);
    return buffer;
}

/**
 * Measure @p fn adaptively: repeat until the accumulated time passes
 * @p minSeconds (at least once, at most @p maxIters), return the mean
 * seconds per run.
 */
inline double
measure(const std::function<void()>& fn, double minSeconds = 0.2,
        int maxIters = 50)
{
    Timer timer;
    int iters = 0;
    do {
        fn();
        ++iters;
    } while (timer.seconds() < minSeconds && iters < maxIters);
    return timer.seconds() / iters;
}

/**
 * Like measure, but return the fastest single run (repeating until
 * @p minSeconds accumulate and at least @p minIters runs happened).
 * The minimum is the standard noise-robust statistic for wall-clock
 * comparisons on shared hosts: external interference only ever adds
 * time, so the best run is the closest observation of the true cost.
 */
inline double
measureBest(const std::function<void()>& fn, double minSeconds = 0.2,
            int maxIters = 50, int minIters = 1)
{
    double best = 0;
    double total = 0;
    int iters = 0;
    do {
        Timer timer;
        fn();
        double s = timer.seconds();
        if (iters == 0 || s < best)
            best = s;
        total += s;
        ++iters;
    } while ((total < minSeconds || iters < minIters) && iters < maxIters);
    return best;
}

/** Sink to defeat dead-code elimination. */
inline void
sink(uint64_t value)
{
    static volatile uint64_t sinkhole = 0;
    sinkhole = sinkhole ^ value;
}

/** Minimal JSON string escaping (quotes and backslashes). */
inline std::string
jsonEscape(const std::string& in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * The build environment every committed BENCH_*.json records, so a
 * number is never compared against one produced by a different
 * compiler, optimization level, or kernel variant: the compiler that
 * built this binary (id + version), the optimization flags it was
 * given (HECATE_BENCH_OPT_FLAGS, injected by bench/CMakeLists.txt),
 * and whether the SIMD sweep kernels were compiled out.
 */
inline std::string
environmentJson()
{
#if defined(__clang__)
    const std::string compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    const std::string compiler = std::string("gcc ") + __VERSION__;
#else
    const std::string compiler = "unknown";
#endif
#ifndef HECATE_BENCH_OPT_FLAGS
#define HECATE_BENCH_OPT_FLAGS "unknown"
#endif
#ifdef HECATE_DISABLE_SIMD
    const bool simd_disabled = true;
#else
    const bool simd_disabled = false;
#endif
    return "{\"compiler\": \"" + jsonEscape(compiler) +
           "\", \"opt_flags\": \"" + jsonEscape(HECATE_BENCH_OPT_FLAGS) +
           "\", \"simd_disabled\": " +
           (simd_disabled ? "true" : "false") + "}";
}

} // namespace hecate::benchutil
