#pragma once

/**
 * @file
 * Small shared helpers for the paper-reproduction benchmark binaries:
 * fixed-width table printing and adaptive wall-clock timing.
 */

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "support/timer.hpp"

namespace hecate::benchutil {

/** Print one table row of fixed-width columns. */
inline void
row(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

/** Format seconds with 3 decimals. */
inline std::string
secs(double s)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", s);
    return buffer;
}

/** Format a ratio with 2 decimals. */
inline std::string
ratio(double r)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", r);
    return buffer;
}

/**
 * Measure @p fn adaptively: repeat until the accumulated time passes
 * @p minSeconds (at least once, at most @p maxIters), return the mean
 * seconds per run.
 */
inline double
measure(const std::function<void()>& fn, double minSeconds = 0.2,
        int maxIters = 50)
{
    Timer timer;
    int iters = 0;
    do {
        fn();
        ++iters;
    } while (timer.seconds() < minSeconds && iters < maxIters);
    return timer.seconds() / iters;
}

/**
 * Like measure, but return the fastest single run (repeating until
 * @p minSeconds accumulate and at least @p minIters runs happened).
 * The minimum is the standard noise-robust statistic for wall-clock
 * comparisons on shared hosts: external interference only ever adds
 * time, so the best run is the closest observation of the true cost.
 */
inline double
measureBest(const std::function<void()>& fn, double minSeconds = 0.2,
            int maxIters = 50, int minIters = 1)
{
    double best = 0;
    double total = 0;
    int iters = 0;
    do {
        Timer timer;
        fn();
        double s = timer.seconds();
        if (iters == 0 || s < best)
            best = s;
        total += s;
        ++iters;
    } while ((total < minSeconds || iters < minIters) && iters < maxIters);
    return best;
}

/** Sink to defeat dead-code elimination. */
inline void
sink(uint64_t value)
{
    static volatile uint64_t sinkhole = 0;
    sinkhole = sinkhole ^ value;
}

} // namespace hecate::benchutil
