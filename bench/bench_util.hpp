#pragma once

/**
 * @file
 * Small shared helpers for the paper-reproduction benchmark binaries:
 * fixed-width table printing and adaptive wall-clock timing.
 */

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "support/timer.hpp"

namespace hecate::benchutil {

/** Print one table row of fixed-width columns. */
inline void
row(const std::vector<std::string>& cells, int width = 14)
{
    for (const std::string& cell : cells)
        std::printf("%-*s", width, cell.c_str());
    std::printf("\n");
}

/** Format seconds with 3 decimals. */
inline std::string
secs(double s)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", s);
    return buffer;
}

/** Format a ratio with 2 decimals. */
inline std::string
ratio(double r)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", r);
    return buffer;
}

/**
 * Measure @p fn adaptively: repeat until the accumulated time passes
 * @p minSeconds (at least once, at most @p maxIters), return the mean
 * seconds per run.
 */
inline double
measure(const std::function<void()>& fn, double minSeconds = 0.2,
        int maxIters = 50)
{
    Timer timer;
    int iters = 0;
    do {
        fn();
        ++iters;
    } while (timer.seconds() < minSeconds && iters < maxIters);
    return timer.seconds() / iters;
}

/** Sink to defeat dead-code elimination. */
inline void
sink(uint64_t value)
{
    static volatile uint64_t sinkhole = 0;
    sinkhole = sinkhole ^ value;
}

} // namespace hecate::benchutil
