# Empty compiler generated dependencies file for hecate_tests.
# This may be replaced when dependencies are built.
