file(REMOVE_RECURSE
  "CMakeFiles/hecate_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_codegen.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_codegen.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_exec.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_exec.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_grammars.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_grammars.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_lang.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_lang.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_property.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_property.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_sem_tree.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_sem_tree.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_solver.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_solver.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_support.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_support.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_synth.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_synth.cpp.o.d"
  "CMakeFiles/hecate_tests.dir/test_workloads.cpp.o"
  "CMakeFiles/hecate_tests.dir/test_workloads.cpp.o.d"
  "hecate_tests"
  "hecate_tests.pdb"
  "hecate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
