
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/hecate_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/hecate_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_exec.cpp" "tests/CMakeFiles/hecate_tests.dir/test_exec.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_exec.cpp.o.d"
  "/root/repo/tests/test_grammars.cpp" "tests/CMakeFiles/hecate_tests.dir/test_grammars.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_grammars.cpp.o.d"
  "/root/repo/tests/test_lang.cpp" "tests/CMakeFiles/hecate_tests.dir/test_lang.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_lang.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/hecate_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_sem_tree.cpp" "tests/CMakeFiles/hecate_tests.dir/test_sem_tree.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_sem_tree.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/hecate_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/hecate_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_synth.cpp" "tests/CMakeFiles/hecate_tests.dir/test_synth.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_synth.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/hecate_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/hecate_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hecate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
