
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ftl.cpp" "src/CMakeFiles/hecate.dir/baselines/ftl.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/baselines/ftl.cpp.o.d"
  "/root/repo/src/baselines/grafter.cpp" "src/CMakeFiles/hecate.dir/baselines/grafter.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/baselines/grafter.cpp.o.d"
  "/root/repo/src/codegen/cpp_emitter.cpp" "src/CMakeFiles/hecate.dir/codegen/cpp_emitter.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/codegen/cpp_emitter.cpp.o.d"
  "/root/repo/src/exec/cost_model.cpp" "src/CMakeFiles/hecate.dir/exec/cost_model.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/exec/cost_model.cpp.o.d"
  "/root/repo/src/exec/interp.cpp" "src/CMakeFiles/hecate.dir/exec/interp.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/exec/interp.cpp.o.d"
  "/root/repo/src/grammars/grammars.cpp" "src/CMakeFiles/hecate.dir/grammars/grammars.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/grammars/grammars.cpp.o.d"
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/hecate.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/hecate.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/hecate.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/printer.cpp" "src/CMakeFiles/hecate.dir/lang/printer.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/lang/printer.cpp.o.d"
  "/root/repo/src/lang/token.cpp" "src/CMakeFiles/hecate.dir/lang/token.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/lang/token.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/hecate.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/visit_plan.cpp" "src/CMakeFiles/hecate.dir/sched/visit_plan.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/sched/visit_plan.cpp.o.d"
  "/root/repo/src/sem/analyzer.cpp" "src/CMakeFiles/hecate.dir/sem/analyzer.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/sem/analyzer.cpp.o.d"
  "/root/repo/src/sem/grammar.cpp" "src/CMakeFiles/hecate.dir/sem/grammar.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/sem/grammar.cpp.o.d"
  "/root/repo/src/solver/formula.cpp" "src/CMakeFiles/hecate.dir/solver/formula.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/solver/formula.cpp.o.d"
  "/root/repo/src/solver/ilp.cpp" "src/CMakeFiles/hecate.dir/solver/ilp.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/solver/ilp.cpp.o.d"
  "/root/repo/src/solver/sat.cpp" "src/CMakeFiles/hecate.dir/solver/sat.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/solver/sat.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/hecate.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/CMakeFiles/hecate.dir/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/support/thread_pool.cpp.o.d"
  "/root/repo/src/symbolic/general_encoder.cpp" "src/CMakeFiles/hecate.dir/symbolic/general_encoder.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/symbolic/general_encoder.cpp.o.d"
  "/root/repo/src/symbolic/ilp_encoder.cpp" "src/CMakeFiles/hecate.dir/symbolic/ilp_encoder.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/symbolic/ilp_encoder.cpp.o.d"
  "/root/repo/src/symbolic/trace.cpp" "src/CMakeFiles/hecate.dir/symbolic/trace.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/symbolic/trace.cpp.o.d"
  "/root/repo/src/synth/autotuner.cpp" "src/CMakeFiles/hecate.dir/synth/autotuner.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/synth/autotuner.cpp.o.d"
  "/root/repo/src/synth/cegis.cpp" "src/CMakeFiles/hecate.dir/synth/cegis.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/synth/cegis.cpp.o.d"
  "/root/repo/src/tree/enumerate.cpp" "src/CMakeFiles/hecate.dir/tree/enumerate.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/tree/enumerate.cpp.o.d"
  "/root/repo/src/tree/tree.cpp" "src/CMakeFiles/hecate.dir/tree/tree.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/tree/tree.cpp.o.d"
  "/root/repo/src/workloads/ast_workload.cpp" "src/CMakeFiles/hecate.dir/workloads/ast_workload.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/workloads/ast_workload.cpp.o.d"
  "/root/repo/src/workloads/rendertree.cpp" "src/CMakeFiles/hecate.dir/workloads/rendertree.cpp.o" "gcc" "src/CMakeFiles/hecate.dir/workloads/rendertree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
