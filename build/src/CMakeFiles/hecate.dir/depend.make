# Empty dependencies file for hecate.
# This may be replaced when dependencies are built.
