file(REMOVE_RECURSE
  "libhecate.a"
)
