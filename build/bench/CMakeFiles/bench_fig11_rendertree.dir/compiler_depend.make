# Empty compiler generated dependencies file for bench_fig11_rendertree.
# This may be replaced when dependencies are built.
