file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_rendertree.dir/bench_fig11_rendertree.cpp.o"
  "CMakeFiles/bench_fig11_rendertree.dir/bench_fig11_rendertree.cpp.o.d"
  "bench_fig11_rendertree"
  "bench_fig11_rendertree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_rendertree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
