# Empty compiler generated dependencies file for bench_autotuner.
# This may be replaced when dependencies are built.
