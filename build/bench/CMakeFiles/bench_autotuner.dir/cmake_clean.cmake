file(REMOVE_RECURSE
  "CMakeFiles/bench_autotuner.dir/bench_autotuner.cpp.o"
  "CMakeFiles/bench_autotuner.dir/bench_autotuner.cpp.o.d"
  "bench_autotuner"
  "bench_autotuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
