# Empty dependencies file for bench_fig16_ast.
# This may be replaced when dependencies are built.
