file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_ast.dir/bench_fig16_ast.cpp.o"
  "CMakeFiles/bench_fig16_ast.dir/bench_fig16_ast.cpp.o.d"
  "bench_fig16_ast"
  "bench_fig16_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
