file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_states.dir/bench_fig9_states.cpp.o"
  "CMakeFiles/bench_fig9_states.dir/bench_fig9_states.cpp.o.d"
  "bench_fig9_states"
  "bench_fig9_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
