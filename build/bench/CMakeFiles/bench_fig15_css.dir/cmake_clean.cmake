file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_css.dir/bench_fig15_css.cpp.o"
  "CMakeFiles/bench_fig15_css.dir/bench_fig15_css.cpp.o.d"
  "bench_fig15_css"
  "bench_fig15_css.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_css.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
