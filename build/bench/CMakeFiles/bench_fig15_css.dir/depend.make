# Empty dependencies file for bench_fig15_css.
# This may be replaced when dependencies are built.
