file(REMOVE_RECURSE
  "CMakeFiles/ast_optimizer.dir/ast_optimizer.cpp.o"
  "CMakeFiles/ast_optimizer.dir/ast_optimizer.cpp.o.d"
  "ast_optimizer"
  "ast_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ast_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
