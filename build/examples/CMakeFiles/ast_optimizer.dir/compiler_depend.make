# Empty compiler generated dependencies file for ast_optimizer.
# This may be replaced when dependencies are built.
