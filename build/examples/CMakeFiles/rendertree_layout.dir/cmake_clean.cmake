file(REMOVE_RECURSE
  "CMakeFiles/rendertree_layout.dir/rendertree_layout.cpp.o"
  "CMakeFiles/rendertree_layout.dir/rendertree_layout.cpp.o.d"
  "rendertree_layout"
  "rendertree_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rendertree_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
