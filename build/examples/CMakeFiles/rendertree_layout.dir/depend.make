# Empty dependencies file for rendertree_layout.
# This may be replaced when dependencies are built.
