file(REMOVE_RECURSE
  "CMakeFiles/hecate_cli.dir/hecate_cli.cpp.o"
  "CMakeFiles/hecate_cli.dir/hecate_cli.cpp.o.d"
  "hecate_cli"
  "hecate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
