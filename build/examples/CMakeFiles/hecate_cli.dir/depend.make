# Empty dependencies file for hecate_cli.
# This may be replaced when dependencies are built.
