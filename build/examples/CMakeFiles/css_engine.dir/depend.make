# Empty dependencies file for css_engine.
# This may be replaced when dependencies are built.
