file(REMOVE_RECURSE
  "CMakeFiles/css_engine.dir/css_engine.cpp.o"
  "CMakeFiles/css_engine.dir/css_engine.cpp.o.d"
  "css_engine"
  "css_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/css_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
