#pragma once

/**
 * @file
 * RAII wrapper around a dlopen'ed native-tier module. Loading
 * validates the full entry contract before the module is ever
 * executed: all three symbols of hecate_native_abi.h must resolve and
 * `hecate_native_abi_version()` must equal the host's
 * HECATE_NATIVE_ABI_VERSION — a version skew (stale on-disk artifact
 * from an older build) is a load error, never a crash.
 *
 * execute() marshals a runtime::ArenaView into the plain-C
 * HecateArenaV1 and calls the module's entry point; the module writes
 * output attribute cells in place, exactly like the bytecode executor.
 */

#include <memory>
#include <string>

#include "runtime/arena.hpp"

namespace hecate::codegen {

/** A loaded, ABI-validated native module (shared, immutable). */
class NativeModule {
  public:
    /**
     * dlopen @p soPath and resolve + validate the entry symbols.
     * Returns nullptr and fills @p error on any failure (unloadable
     * object, missing symbol, ABI version mismatch).
     */
    static std::shared_ptr<NativeModule>
    load(const std::string& soPath, std::string* error = nullptr);

    ~NativeModule();

    NativeModule(const NativeModule&) = delete;
    NativeModule& operator=(const NativeModule&) = delete;

    const std::string& path() const { return path_; }

    /** The cache-key digest baked in at emission time. */
    const char* fingerprint() const { return fingerprint_; }

    /** Run the specialized traversal over @p view in place. */
    void execute(const runtime::ArenaView& view) const;

  private:
    NativeModule() = default;

    std::string path_;
    void* handle_ = nullptr;
    const char* fingerprint_ = "";
    void (*execute_)(const void* arena) = nullptr;
};

} // namespace hecate::codegen
