#ifndef HECATE_NATIVE_ABI_H
#define HECATE_NATIVE_ABI_H

/**
 * @file
 * The extern-"C" ABI between the Hecate host process and a
 * schedule-specialized native module (the tiered-execution `.so`
 * emitted by codegen/native_emitter and built by
 * codegen/native_compiler).
 *
 * The contract is deliberately tiny and data-only: the host passes one
 * HecateArenaV1 describing the SoA arena (runtime::ArenaView laid out
 * as plain C), and the module traverses it, writing output attribute
 * cells through `cols` in place. No Hecate type crosses the boundary —
 * the emitted TU embeds a byte-identical copy of these structs and
 * never includes host headers, so a cached `.so` stays loadable across
 * host rebuilds as long as HECATE_NATIVE_ABI_VERSION matches.
 *
 * Exported symbols (C linkage, default visibility):
 *
 *   uint32_t    hecate_native_abi_version(void);
 *       The HECATE_NATIVE_ABI_VERSION the module was emitted against.
 *       The loader refuses modules whose version differs from its own.
 *
 *   const char* hecate_native_fingerprint(void);
 *       The cache-key digest baked into the module at emission time
 *       (provenance for debugging and tests).
 *
 *   void        hecate_native_execute(const HecateArenaV1* arena);
 *       Run the specialized traversal over every root of the arena.
 *       Semantically identical to the bytecode executor: wrapping
 *       int64 arithmetic, absent-child reads through the zero row,
 *       writes to absent optional targets skipped entirely.
 *
 * Index conventions mirror runtime::ArenaView: node ids are dense
 * uint32_t in BFS order; node n's scalar-child block starts at
 * `scalars + scalar_base[n]` with row 0 = n itself and row c+1 =
 * scalar child slot c; absent children hold `zero_row` (a row every
 * column keeps at zero). Collection slot s of node n is
 * `coll_ranges[coll_base[n] + s]`, a (begin, count) range into
 * `coll_elems`.
 *
 * Bump HECATE_NATIVE_ABI_VERSION on ANY change to this file's structs
 * or symbol contracts — the version participates in the native cache
 * key, so stale on-disk artifacts are invalidated automatically.
 */

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define HECATE_NATIVE_ABI_VERSION 1u

/** One collection slot's contiguous element range (CSR row). */
typedef struct HecateCollRangeV1 {
    uint32_t begin;
    uint32_t count;
} HecateCollRangeV1;

/** Borrowed SoA arena view (runtime::ArenaView as plain C). */
typedef struct HecateArenaV1 {
    uint32_t node_count; /**< real nodes (excludes the zero row) */
    uint32_t zero_row;   /**< == node_count; absent-child sentinel */
    const uint32_t* cls;         /**< class id, by node */
    const uint32_t* scalar_base; /**< by node, into scalars */
    const uint32_t* scalars;     /**< CSR scalar blocks (row 0 = self) */
    const uint32_t* coll_base;   /**< by node, into coll_ranges */
    const HecateCollRangeV1* coll_ranges;
    const uint32_t* coll_elems;
    int64_t* const* cols; /**< column base pointers, by column id */
    const uint32_t* roots; /**< per-tree root indices */
    uint32_t root_count;
} HecateArenaV1;

/** Entry-symbol names the loader resolves. */
#define HECATE_NATIVE_SYM_ABI_VERSION "hecate_native_abi_version"
#define HECATE_NATIVE_SYM_FINGERPRINT "hecate_native_fingerprint"
#define HECATE_NATIVE_SYM_EXECUTE "hecate_native_execute"

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HECATE_NATIVE_ABI_H */
