#pragma once

/**
 * @file
 * Out-of-process driver for the native tier: discovers a hosted C++
 * compiler and turns an emitted TU (codegen/native_emitter) into a
 * shared object in a private temp directory.
 *
 * Discovery policy: when `HECATE_CXX` or `CXX` is set in the
 * environment, that value is used exclusively — a broken override
 * (e.g. `CXX=/nonexistent`) means "no compiler", never a silent
 * fallback to something on PATH, so operators can pin or disable the
 * tier deterministically. With neither set, `c++`, `g++`, `clang++`
 * are probed in order.
 *
 * Every compile attempt gets a fresh mkdtemp directory for its TU and
 * `.so`, so concurrent attempts (or retries after a crash) never
 * collide. Compiler stderr is captured into CompileResult::error
 * (first 4 KiB) on failure; nothing in this file throws for toolchain
 * problems — a broken compiler must degrade the tier, not the process.
 */

#include <string>

namespace hecate::codegen {

/** A usable (probed) compiler. */
struct CompilerInfo {
    std::string path;     ///< executable (absolute or PATH-resolved)
    std::string identity; ///< "<path> <version first line>" — cache-key part

    bool valid() const { return !path.empty(); }
};

/**
 * Probe @p path by running `<path> --version`. Returns an invalid
 * CompilerInfo and fills @p error when the tool cannot be run.
 */
CompilerInfo probeCompiler(const std::string& path,
                           std::string* error = nullptr);

/**
 * Discover the compiler per the policy above. Invalid result + @p
 * error message when none is usable.
 */
CompilerInfo discoverCompiler(std::string* error = nullptr);

/** Outcome of one out-of-process compile attempt. */
struct CompileResult {
    bool ok = false;
    std::string soPath;   ///< built artifact (inside tempDir) when ok
    std::string tempDir;  ///< per-attempt dir; caller removeTempDir()s
    double seconds = 0.0; ///< wall-clock compile latency
    std::string error;    ///< failure reason + compiler stderr (≤ 4 KiB)
};

/**
 * Compile @p tu with @p compiler (`-std=c++17 -O2 -fPIC -shared`) into
 * a fresh temp directory. Never throws for toolchain failures — check
 * `ok`. The caller owns the temp dir (adopt the `.so` or remove it).
 */
CompileResult compileNativeTU(const CompilerInfo& compiler,
                              const std::string& tu);

/** Best-effort recursive removal of a compile temp dir. */
void removeTempDir(const std::string& dir);

} // namespace hecate::codegen
