#include "codegen/native_emitter.hpp"

#include <limits>

#include "codegen/hecate_native_abi.h"
#include <set>
#include <vector>

#include "runtime/arena.hpp"
#include "support/diagnostics.hpp"

namespace hecate::codegen {

namespace {

/**
 * One lowered action of a class case — the same linearization
 * runtime::Program::compile produces, with parallel regions flattened
 * to their sequential equivalent (branch order = inline-dispatch
 * order; verified schedules make branches data-independent).
 */
struct Action {
    enum class Kind : uint8_t {
        Eval,      ///< apply one rule
        Recur,     ///< visit scalar-block row `row` if present
        VisitColl, ///< visit every element of collection slot `slot`
    };

    Kind kind;
    sem::RuleId rule = sem::kInvalidId;
    uint32_t row = 0;  ///< Recur: scalar-block row (child slot + 1)
    uint32_t slot = 0; ///< VisitColl: collection CSR slot
    sem::ChildId child = sem::kInvalidId;
};

std::string
lit(int64_t v)
{
    // INT64_MIN has no negatable literal spelling.
    if (v == std::numeric_limits<int64_t>::min())
        return "(-9223372036854775807LL - 1)";
    return std::to_string(v) + "LL";
}

std::string
wrapCall(const std::string& op)
{
    if (op == "+") return "h_add";
    if (op == "-") return "h_sub";
    if (op == "*") return "h_mul";
    if (op == "/") return "h_div";
    if (op == "%") return "h_mod";
    return std::string(); // comparison: emitted as a ternary
}

std::string
cmpOp(const std::string& op)
{
    if (op == "<" || op == "<=" || op == ">" || op == ">=" ||
        op == "==" || op == "!=")
        return op;
    internalError("native emitter: unknown operator '" + op + "'");
}

std::string
foldCall(const std::string& fn)
{
    if (fn == "add") return "h_add";
    if (fn == "mul") return "h_mul";
    if (fn == "max") return "h_max";
    if (fn == "min") return "h_min";
    internalError("native emitter: unknown fold function '" + fn + "'");
}

/** Emits one class's statements against the arena ABI. */
class CaseEmitter {
  public:
    CaseEmitter(const sem::Grammar& grammar, const runtime::Layout& layout,
                sem::ClassId cls)
        : grammar_(grammar), layout_(layout), cls_(grammar.cls(cls))
    {
    }

    /** Column alias used in the body ("c<id>"), recorded for hoisting. */
    std::string col(uint32_t id)
    {
        usedCols_.insert(id);
        return "c" + std::to_string(id);
    }

    uint32_t selfColumn(sem::AttrId attr) const
    {
        return layout_.column(cls_.iface, attr);
    }

    uint32_t childColumn(sem::ChildId child, const std::string& attr) const
    {
        const sem::ChildInfo& info = cls_.children[child];
        return layout_.column(
            info.iface, grammar_.iface(info.iface).attrByName.at(attr));
    }

    /** Render one L_a expression in this class's context. */
    std::string expr(const ast::Expr& e)
    {
        switch (e.kind) {
          case ast::ExprKind::Const:
            return lit(e.value);
          case ast::ExprKind::Select: {
            const ast::Select& sel = e.select;
            if (sel.isSelf()) {
                const sem::InterfaceInfo& iface = grammar_.iface(cls_.iface);
                return col(selfColumn(iface.attrByName.at(sel.attr))) +
                       "[n]";
            }
            sem::ChildId id = cls_.childByName.at(sel.base);
            int32_t slot = layout_.cls(cls_.id).scalarSlotOf[id];
            checkInvariant(slot >= 0,
                           "native emitter: select through a collection");
            needsKids_ = true;
            return col(childColumn(id, sel.attr)) + "[k[" +
                   std::to_string(slot + 1) + "]]";
          }
          case ast::ExprKind::Binary: {
            std::string l = expr(*e.args[0]);
            std::string r = expr(*e.args[1]);
            std::string fn = wrapCall(e.op);
            if (!fn.empty())
                return fn + "(" + l + ", " + r + ")";
            return "((" + l + ") " + cmpOp(e.op) + " (" + r +
                   ") ? (int64_t)1 : (int64_t)0)";
          }
          case ast::ExprKind::Call:
            if (e.op == "abs")
                return "h_abs(" + expr(*e.args[0]) + ")";
            if (e.op == "max" || e.op == "min")
                return "h_" + e.op + "(" + expr(*e.args[0]) + ", " +
                       expr(*e.args[1]) + ")";
            internalError("native emitter: unknown function '" + e.op +
                          "'");
          case ast::ExprKind::If:
            // The ternary evaluates exactly one branch, matching the
            // bytecode JZ/JMP lowering.
            return "((" + expr(*e.args[0]) + ") != 0 ? (" +
                   expr(*e.args[1]) + ") : (" + expr(*e.args[2]) + "))";
          case ast::ExprKind::Fold: {
            std::string init = expr(*e.args[0]);
            sem::ChildId id = cls_.childByName.at(e.select.base);
            int32_t slot = layout_.cls(cls_.id).collSlotOf[id];
            checkInvariant(slot >= 0,
                           "native emitter: fold over a scalar child");
            std::string elemCol = col(childColumn(id, e.select.attr));
            std::string s = std::to_string(foldCounter_++);
            std::string acc = "acc" + s;
            std::string range = "r" + s;
            std::string i = "i" + s;
            return "([&]() -> int64_t {\n" + pad_ +
                   "    int64_t " + acc + " = " + init + ";\n" + pad_ +
                   "    const HecateCollRangeV1 " + range +
                   " = a->coll_ranges[a->coll_base[n] + " +
                   std::to_string(slot) + "];\n" + pad_ +
                   "    for (uint32_t " + i + " = 0; " + i + " < " +
                   range + ".count; ++" + i + ")\n" + pad_ + "        " +
                   acc + " = " + foldCall(e.op) + "(" + acc + ", " +
                   elemCol + "[a->coll_elems[" + range + ".begin + " + i +
                   "]]);\n" + pad_ + "    return " + acc + ";\n" + pad_ +
                   "}())";
          }
        }
        internalError("native emitter: unknown expression kind");
    }

    /** One rule application (the executor's EvalSpec semantics). */
    std::string evalStmt(sem::RuleId ruleId)
    {
        const sem::RuleInfo& rule = grammar_.rule(ruleId);
        if (rule.lhsChild == sem::kInvalidId) {
            std::string target =
                col(selfColumn(rule.lhs)) + "[n]"; // row 0 = self
            return pad_ + target + " = " + expr(*rule.decl->rhs) + ";\n";
        }
        // Inherited rule: the write is skipped entirely when the
        // optional target child is absent (the vacuous-eval rule).
        const sem::ChildInfo& child = cls_.children[rule.lhsChild];
        int32_t slot = layout_.cls(cls_.id).scalarSlotOf[rule.lhsChild];
        checkInvariant(slot >= 0,
                       "native emitter: inherited rule targets a "
                       "collection");
        needsKids_ = true;
        needsZero_ = true;
        std::string head = pad_ + "{\n" + pad_ + "    const uint32_t t = k[" +
                           std::to_string(slot + 1) + "];\n" + pad_ +
                           "    if (t != z)\n";
        std::string save = pad_;
        pad_ += "        ";
        std::string value = expr(*rule.decl->rhs);
        pad_ = save;
        return head + pad_ + "        " +
               col(layout_.column(child.iface, rule.lhs)) + "[t] = " +
               value + ";\n" + pad_ + "}\n";
    }

    /** Descend into scalar-block row @p row when the child is present. */
    std::string recurStmt(uint32_t row, const std::string& dispatch)
    {
        needsKids_ = true;
        needsZero_ = true;
        return pad_ + "{\n" + pad_ + "    const uint32_t t = k[" +
               std::to_string(row) + "];\n" + pad_ + "    if (t != z)\n" +
               pad_ + "        " + dispatch + "(a, t);\n" + pad_ + "}\n";
    }

    /** Visit every element of collection slot @p slot in order. */
    std::string visitCollStmt(uint32_t slot, const std::string& dispatch)
    {
        std::string s = std::to_string(foldCounter_++);
        return pad_ + "{\n" + pad_ + "    const HecateCollRangeV1 r" + s +
               " = a->coll_ranges[a->coll_base[n] + " +
               std::to_string(slot) + "];\n" + pad_ +
               "    for (uint32_t i" + s + " = 0; i" + s + " < r" + s +
               ".count; ++i" + s + ")\n" + pad_ + "        " + dispatch +
               "(a, a->coll_elems[r" + s + ".begin + i" + s + "]);\n" +
               pad_ + "}\n";
    }

    /** Wrap @p body in a function definition with the needed hoists. */
    std::string function(const std::string& name,
                         const std::string& body) const
    {
        std::string out = "static void " + name +
                          "(const HecateArenaV1* a, uint32_t n)\n{\n";
        if (body.empty()) {
            out += "    (void)a;\n    (void)n;\n}\n\n";
            return out;
        }
        for (uint32_t id : usedCols_)
            out += "    int64_t* const c" + std::to_string(id) +
                   " = a->cols[" + std::to_string(id) + "];\n";
        if (needsKids_)
            out += "    const uint32_t* const k = a->scalars + "
                   "a->scalar_base[n];\n";
        if (needsZero_)
            out += "    const uint32_t z = a->zero_row;\n";
        out += body + "}\n\n";
        return out;
    }

  private:
    const sem::Grammar& grammar_;
    const runtime::Layout& layout_;
    const sem::ClassInfo& cls_;
    std::set<uint32_t> usedCols_;
    bool needsKids_ = false;
    bool needsZero_ = false;
    int foldCounter_ = 0;
    std::string pad_ = "    ";
};

/**
 * Linearize one class case exactly as runtime::Program::compile does
 * (see Compiler::compileStmt): holes vanish, iterate lowers to an
 * element visit (only when its body recurs) followed by the body's
 * evals, parallel regions flatten to their branch visits in order.
 */
void
lowerStmt(const sched::Skeleton& skeleton, const sem::ClassInfo& cls,
          const runtime::ClassLayout& cl, const ast::TStmt& stmt,
          std::vector<Action>& out)
{
    auto scalarRow = [&](const std::string& child) {
        sem::ChildId id = cls.childByName.at(child);
        int32_t slot = cl.scalarSlotOf[id];
        checkInvariant(slot >= 0,
                       "native emitter: recur on a collection child");
        Action a;
        a.kind = Action::Kind::Recur;
        a.row = static_cast<uint32_t>(slot) + 1;
        a.child = id;
        return a;
    };
    auto collVisit = [&](const std::string& child) {
        sem::ChildId id = cls.childByName.at(child);
        int32_t slot = cl.collSlotOf[id];
        checkInvariant(slot >= 0,
                       "native emitter: iterate on a scalar child");
        Action a;
        a.kind = Action::Kind::VisitColl;
        a.slot = static_cast<uint32_t>(slot);
        a.child = id;
        return a;
    };

    switch (stmt.kind) {
      case ast::TStmtKind::Hole:
        return; // concrete skeletons are hole-free; empty holes vanish
      case ast::TStmtKind::Eval:
        out.push_back({Action::Kind::Eval, skeleton.evalRule(&stmt), 0, 0,
                       sem::kInvalidId});
        return;
      case ast::TStmtKind::Recur:
        out.push_back(scalarRow(stmt.child));
        return;
      case ast::TStmtKind::Iterate: {
        bool hasRecur = false;
        for (const auto& body : stmt.body)
            hasRecur |= body->kind == ast::TStmtKind::Recur;
        if (hasRecur)
            out.push_back(collVisit(stmt.child));
        for (const auto& body : stmt.body) {
            if (body->kind == ast::TStmtKind::Eval)
                out.push_back({Action::Kind::Eval,
                               skeleton.evalRule(body.get()), 0, 0,
                               sem::kInvalidId});
        }
        return;
      }
      case ast::TStmtKind::Parallel:
        if (!stmt.child.empty()) {
            out.push_back(collVisit(stmt.child));
        } else {
            for (const auto& body : stmt.body) {
                if (body->kind == ast::TStmtKind::Recur)
                    out.push_back(scalarRow(body->child));
            }
        }
        return;
    }
    internalError("native emitter: unknown statement kind");
}

/** The dispatch expression for descending into @p child's nodes. */
std::string
dispatchFor(const sem::ClassInfo& cls, sem::ChildId child)
{
    const std::vector<sem::ClassId>& allowed =
        cls.children[child].allowedClasses;
    if (allowed.size() == 1)
        return "visit_c" + std::to_string(allowed[0]); // devirtualized
    return "visit";
}

std::string
prologue(NativeForm form, const std::string& fingerprint)
{
    std::string out;
    out += "// Hecate schedule-specialized native module.\n";
    out += "// emitter v" + std::to_string(kNativeEmitterVersion) +
           ", form " + nativeFormName(form) + ", fingerprint " +
           fingerprint + "\n";
    out += "// Self-contained: embeds the ABI structs of "
           "hecate_native_abi.h (v" +
           std::to_string(HECATE_NATIVE_ABI_VERSION) +
           ")\n// and the wrapping int64 helpers of support/arith.hpp.\n";
    out += "#include <stdint.h>\n\n";
    out += "extern \"C\" {\n"
           "typedef struct HecateCollRangeV1 {\n"
           "    uint32_t begin;\n"
           "    uint32_t count;\n"
           "} HecateCollRangeV1;\n\n"
           "typedef struct HecateArenaV1 {\n"
           "    uint32_t node_count;\n"
           "    uint32_t zero_row;\n"
           "    const uint32_t* cls;\n"
           "    const uint32_t* scalar_base;\n"
           "    const uint32_t* scalars;\n"
           "    const uint32_t* coll_base;\n"
           "    const HecateCollRangeV1* coll_ranges;\n"
           "    const uint32_t* coll_elems;\n"
           "    int64_t* const* cols;\n"
           "    const uint32_t* roots;\n"
           "    uint32_t root_count;\n"
           "} HecateArenaV1;\n"
           "} // extern \"C\"\n\n";
    out += "namespace {\n"
           "inline int64_t h_add(int64_t x, int64_t y)\n"
           "{ return (int64_t)((uint64_t)x + (uint64_t)y); }\n"
           "inline int64_t h_sub(int64_t x, int64_t y)\n"
           "{ return (int64_t)((uint64_t)x - (uint64_t)y); }\n"
           "inline int64_t h_mul(int64_t x, int64_t y)\n"
           "{ return (int64_t)((uint64_t)x * (uint64_t)y); }\n"
           "inline int64_t h_neg(int64_t x)\n"
           "{ return (int64_t)((uint64_t)0 - (uint64_t)x); }\n"
           "inline int64_t h_abs(int64_t x) { return x < 0 ? h_neg(x) : x; }\n"
           "inline int64_t h_div(int64_t x, int64_t y)\n"
           "{\n"
           "    if (y == 0)\n"
           "        return 0;\n"
           "    if (y == -1)\n"
           "        return h_neg(x);\n"
           "    return x / y;\n"
           "}\n"
           "inline int64_t h_mod(int64_t x, int64_t y)\n"
           "{\n"
           "    if (y == 0 || y == -1)\n"
           "        return 0;\n"
           "    return x % y;\n"
           "}\n"
           "inline int64_t h_max(int64_t x, int64_t y)"
           " { return x > y ? x : y; }\n"
           "inline int64_t h_min(int64_t x, int64_t y)"
           " { return x < y ? x : y; }\n";
    return out;
}

std::string
epilogue(NativeForm form, const std::string& fingerprint,
         const std::string& executeBody)
{
    std::string out;
    out += "} // namespace\n\n";
    out += "extern \"C\" uint32_t hecate_native_abi_version(void)\n{\n"
           "    return " +
           std::to_string(HECATE_NATIVE_ABI_VERSION) + "u;\n}\n\n";
    out += "extern \"C\" const char* hecate_native_fingerprint(void)\n{\n"
           "    return \"" +
           fingerprint + "\";\n}\n\n";
    out += "extern \"C\" void hecate_native_execute(const HecateArenaV1* "
           "a)\n{\n" +
           executeBody + "}\n";
    (void)form;
    return out;
}

} // namespace

const char*
nativeFormName(NativeForm form)
{
    switch (form) {
      case NativeForm::Recursive:
        return "recursive";
      case NativeForm::Linear:
        return "linear";
    }
    return "?";
}

NativeForm
resolveNativeForm(const runtime::Program& program,
                  runtime::SweepStrategy strategy)
{
    switch (strategy) {
      case runtime::SweepStrategy::Stack:
        return NativeForm::Recursive;
      case runtime::SweepStrategy::Linear:
      case runtime::SweepStrategy::Segmented:
      case runtime::SweepStrategy::Tiled:
        if (!program.sweepable())
            userError("native tier: the linear form requires a sweepable "
                      "(sandwich-shaped) program; use the stack strategy");
        return NativeForm::Linear;
      case runtime::SweepStrategy::Auto:
        return program.sweepable() ? NativeForm::Linear
                                   : NativeForm::Recursive;
    }
    internalError("native emitter: unknown sweep strategy");
}

std::string
emitNativeTU(const sched::Skeleton& concrete, NativeForm form,
             const std::string& fingerprint)
{
    const sem::Grammar& grammar = concrete.grammar();
    runtime::Layout layout(grammar);

    // Lower every class case to its action list once.
    std::vector<std::vector<Action>> actions(grammar.classes().size());
    for (const sem::ClassInfo& cls : grammar.classes()) {
        for (const auto& stmt : concrete.caseFor(cls.id).stmts)
            lowerStmt(concrete, cls, layout.cls(cls.id), *stmt,
                      actions[cls.id]);
    }

    std::string out = prologue(form, fingerprint);
    std::string executeBody;

    if (form == NativeForm::Recursive) {
        // Forward declarations: visit bodies call each other freely.
        out += "\nstatic void visit(const HecateArenaV1* a, uint32_t n);\n";
        for (const sem::ClassInfo& cls : grammar.classes())
            out += "static void visit_c" + std::to_string(cls.id) +
                   "(const HecateArenaV1* a, uint32_t n);\n";
        out += "\n";
        for (const sem::ClassInfo& cls : grammar.classes()) {
            CaseEmitter emitter(grammar, layout, cls.id);
            std::string body;
            for (const Action& action : actions[cls.id]) {
                switch (action.kind) {
                  case Action::Kind::Eval:
                    body += emitter.evalStmt(action.rule);
                    break;
                  case Action::Kind::Recur:
                    body += emitter.recurStmt(
                        action.row, dispatchFor(cls, action.child));
                    break;
                  case Action::Kind::VisitColl:
                    body += emitter.visitCollStmt(
                        action.slot, dispatchFor(cls, action.child));
                    break;
                }
            }
            out += emitter.function("visit_c" + std::to_string(cls.id),
                                    body);
        }
        out += "static void visit(const HecateArenaV1* a, uint32_t n)\n"
               "{\n    switch (a->cls[n]) {\n";
        for (const sem::ClassInfo& cls : grammar.classes())
            out += "    case " + std::to_string(cls.id) + "u:\n" +
                   "        visit_c" + std::to_string(cls.id) +
                   "(a, n);\n        break;\n";
        out += "    default:\n        break;\n    }\n}\n\n";
        executeBody = "    for (uint32_t r = 0; r < a->root_count; ++r)\n"
                      "        visit(a, a->roots[r]);\n";
    } else {
        // Linear two-pass form (Worker::runSweep): split each case's
        // eval runs around its child visits. Sweepability (verified by
        // the caller against the compiled Program) guarantees the
        // sandwich shape; any eval between visits is a shape bug.
        std::vector<bool> hasPre(grammar.classes().size(), false);
        std::vector<bool> hasPost(grammar.classes().size(), false);
        for (const sem::ClassInfo& cls : grammar.classes()) {
            CaseEmitter pre(grammar, layout, cls.id);
            CaseEmitter post(grammar, layout, cls.id);
            std::string preBody, postBody;
            bool midSeen = false;
            for (const Action& action : actions[cls.id]) {
                if (action.kind != Action::Kind::Eval) {
                    checkInvariant(postBody.empty(),
                                   "native emitter: child visit after a "
                                   "post-visit eval run (not sweepable)");
                    midSeen = true;
                    continue; // the sweep passes replace child visits
                }
                if (!midSeen)
                    preBody += pre.evalStmt(action.rule);
                else
                    postBody += post.evalStmt(action.rule);
            }
            if (!preBody.empty()) {
                hasPre[cls.id] = true;
                out += pre.function("pre_c" + std::to_string(cls.id),
                                    preBody);
            }
            if (!postBody.empty()) {
                hasPost[cls.id] = true;
                out += post.function("post_c" + std::to_string(cls.id),
                                     postBody);
            }
        }
        executeBody =
            "    const uint32_t count = a->node_count;\n"
            "    for (uint32_t n = 0; n < count; ++n) {\n"
            "        switch (a->cls[n]) {\n";
        for (const sem::ClassInfo& cls : grammar.classes()) {
            if (hasPre[cls.id])
                executeBody += "        case " + std::to_string(cls.id) +
                               "u:\n            pre_c" +
                               std::to_string(cls.id) +
                               "(a, n);\n            break;\n";
        }
        executeBody += "        default:\n            break;\n"
                       "        }\n    }\n"
                       "    for (uint32_t n = count; n-- > 0;) {\n"
                       "        switch (a->cls[n]) {\n";
        for (const sem::ClassInfo& cls : grammar.classes()) {
            if (hasPost[cls.id])
                executeBody += "        case " + std::to_string(cls.id) +
                               "u:\n            post_c" +
                               std::to_string(cls.id) +
                               "(a, n);\n            break;\n";
        }
        executeBody += "        default:\n            break;\n"
                       "        }\n    }\n";
    }

    out += epilogue(form, fingerprint, executeBody);
    return out;
}

} // namespace hecate::codegen
