#include "codegen/native_compiler.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace hecate::codegen {

namespace {

constexpr size_t kMaxStderrBytes = 4096;

/** First kMaxStderrBytes of @p path, trailing whitespace trimmed. */
std::string
readCapped(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::string out(kMaxStderrBytes, '\0');
    in.read(out.data(), static_cast<std::streamsize>(out.size()));
    out.resize(static_cast<size_t>(in.gcount()));
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == '\r' || out.back() == ' '))
        out.pop_back();
    return out;
}

/**
 * Run @p argv (null-terminated) with stdout/stderr redirected to
 * files. Returns the child's exit status, or -1 when it could not be
 * spawned / died on a signal (@p error describes why).
 */
int
runTool(const std::vector<std::string>& argv, const std::string& stdoutPath,
        const std::string& stderrPath, std::string* error)
{
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv)
        cargv.push_back(const_cast<char*>(arg.c_str()));
    cargv.push_back(nullptr);

    pid_t pid = fork();
    if (pid < 0) {
        if (error)
            *error = std::string("fork failed: ") + std::strerror(errno);
        return -1;
    }
    if (pid == 0) {
        int out = open(stdoutPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                       0600);
        int err = open(stderrPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                       0600);
        int devnull = open("/dev/null", O_RDONLY);
        if (devnull >= 0)
            dup2(devnull, STDIN_FILENO);
        if (out >= 0)
            dup2(out, STDOUT_FILENO);
        if (err >= 0)
            dup2(err, STDERR_FILENO);
        execvp(cargv[0], cargv.data());
        // Exec failed; report through the captured stderr channel.
        std::fprintf(stderr, "exec %s: %s\n", cargv[0],
                     std::strerror(errno));
        _exit(127);
    }
    int status = 0;
    while (waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) {
            if (error)
                *error =
                    std::string("waitpid failed: ") + std::strerror(errno);
            return -1;
        }
    }
    if (WIFSIGNALED(status)) {
        if (error)
            *error = "tool killed by signal " +
                     std::to_string(WTERMSIG(status));
        return -1;
    }
    return WEXITSTATUS(status);
}

/** Fresh private directory for one compile attempt; empty on failure. */
std::string
makeTempDir(std::string* error)
{
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base && *base ? base : "/tmp") +
                       "/hecate-native-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (!mkdtemp(buf.data())) {
        if (error)
            *error = std::string("mkdtemp failed: ") + std::strerror(errno);
        return {};
    }
    return std::string(buf.data());
}

} // namespace

CompilerInfo
probeCompiler(const std::string& path, std::string* error)
{
    std::string dir = makeTempDir(error);
    if (dir.empty())
        return {};
    std::string outPath = dir + "/version.out";
    std::string errPath = dir + "/version.err";
    std::string spawnError;
    int status =
        runTool({path, "--version"}, outPath, errPath, &spawnError);
    CompilerInfo info;
    if (status == 0) {
        std::string firstLine = readCapped(outPath);
        size_t eol = firstLine.find('\n');
        if (eol != std::string::npos)
            firstLine.resize(eol);
        info.path = path;
        info.identity = firstLine.empty() ? path : path + " " + firstLine;
    } else if (error) {
        std::string detail = readCapped(errPath);
        *error = "compiler probe '" + path + " --version' failed";
        if (!spawnError.empty())
            *error += ": " + spawnError;
        if (!detail.empty())
            *error += ": " + detail;
    }
    removeTempDir(dir);
    return info;
}

CompilerInfo
discoverCompiler(std::string* error)
{
    for (const char* var : {"HECATE_CXX", "CXX"}) {
        const char* value = std::getenv(var);
        if (value && *value) {
            // An explicit override is authoritative: broken means "no
            // compiler", never a fallback probe.
            std::string probeError;
            CompilerInfo info = probeCompiler(value, &probeError);
            if (!info.valid() && error)
                *error = std::string(var) + "=" + value +
                         " is not a usable compiler (" + probeError + ")";
            return info;
        }
    }
    std::string lastError;
    for (const char* candidate : {"c++", "g++", "clang++"}) {
        CompilerInfo info = probeCompiler(candidate, &lastError);
        if (info.valid())
            return info;
    }
    if (error)
        *error = "no C++ compiler found (tried c++, g++, clang++; set "
                 "CXX or HECATE_CXX): " +
                 lastError;
    return {};
}

CompileResult
compileNativeTU(const CompilerInfo& compiler, const std::string& tu)
{
    CompileResult result;
    if (!compiler.valid()) {
        result.error = "no compiler";
        return result;
    }
    std::string dirError;
    result.tempDir = makeTempDir(&dirError);
    if (result.tempDir.empty()) {
        result.error = dirError;
        return result;
    }
    std::string tuPath = result.tempDir + "/module.cpp";
    std::string soPath = result.tempDir + "/module.so";
    {
        std::ofstream out(tuPath, std::ios::binary | std::ios::trunc);
        out << tu;
        if (!out) {
            result.error = "failed to write TU to " + tuPath;
            return result;
        }
    }
    std::string outPath = result.tempDir + "/compile.out";
    std::string errPath = result.tempDir + "/compile.err";
    auto begin = std::chrono::steady_clock::now();
    std::string spawnError;
    int status = runTool({compiler.path, "-std=c++17", "-O2", "-fPIC",
                          "-shared", tuPath, "-o", soPath},
                         outPath, errPath, &spawnError);
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();
    if (status != 0) {
        result.error = "compile failed (" + compiler.path +
                       (status < 0 ? ", " + spawnError
                                   : ", exit " + std::to_string(status)) +
                       ")";
        std::string detail = readCapped(errPath);
        if (!detail.empty())
            result.error += ":\n" + detail;
        return result;
    }
    result.ok = true;
    result.soPath = soPath;
    return result;
}

void
removeTempDir(const std::string& dir)
{
    if (dir.empty() || dir.find("hecate-native-") == std::string::npos)
        return; // refuse to remove anything we did not create
    DIR* d = opendir(dir.c_str());
    if (d) {
        while (dirent* entry = readdir(d)) {
            std::string name = entry->d_name;
            if (name == "." || name == "..")
                continue;
            ::unlink((dir + "/" + name).c_str());
        }
        closedir(d);
    }
    ::rmdir(dir.c_str());
}

} // namespace hecate::codegen
