#include "codegen/native_loader.hpp"

#include <cstddef>

#include <dlfcn.h>

#include "codegen/hecate_native_abi.h"
#include "support/diagnostics.hpp"

namespace hecate::codegen {

namespace {

// The loader passes runtime::CollRange rows straight through as
// HecateCollRangeV1 — the ABI struct is the layout contract.
static_assert(sizeof(HecateCollRangeV1) == sizeof(runtime::CollRange));
static_assert(offsetof(HecateCollRangeV1, begin) ==
              offsetof(runtime::CollRange, begin));
static_assert(offsetof(HecateCollRangeV1, count) ==
              offsetof(runtime::CollRange, count));
static_assert(sizeof(sem::ClassId) == sizeof(uint32_t));
static_assert(sizeof(runtime::NodeIdx) == sizeof(uint32_t));

} // namespace

std::shared_ptr<NativeModule>
NativeModule::load(const std::string& soPath, std::string* error)
{
    dlerror(); // clear any stale state
    void* handle = dlopen(soPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle) {
        if (error) {
            const char* why = dlerror();
            *error = "dlopen failed: " + std::string(why ? why : soPath);
        }
        return nullptr;
    }

    auto fail = [&](const std::string& message) {
        if (error)
            *error = message;
        dlclose(handle);
        return nullptr;
    };

    auto resolve = [&](const char* name) -> void* {
        dlerror();
        void* sym = dlsym(handle, name);
        if (!sym)
            return nullptr;
        return sym;
    };

    void* versionSym = resolve(HECATE_NATIVE_SYM_ABI_VERSION);
    void* fingerprintSym = resolve(HECATE_NATIVE_SYM_FINGERPRINT);
    void* executeSym = resolve(HECATE_NATIVE_SYM_EXECUTE);
    if (!versionSym || !fingerprintSym || !executeSym)
        return fail("native module " + soPath +
                    " is missing a required entry symbol");

    uint32_t version =
        reinterpret_cast<uint32_t (*)(void)>(versionSym)();
    if (version != HECATE_NATIVE_ABI_VERSION)
        return fail("native module " + soPath + " speaks ABI v" +
                    std::to_string(version) + ", host expects v" +
                    std::to_string(HECATE_NATIVE_ABI_VERSION));

    auto module = std::shared_ptr<NativeModule>(new NativeModule());
    module->path_ = soPath;
    module->handle_ = handle;
    module->fingerprint_ =
        reinterpret_cast<const char* (*)(void)>(fingerprintSym)();
    module->execute_ =
        reinterpret_cast<void (*)(const void*)>(executeSym);
    return module;
}

NativeModule::~NativeModule()
{
    if (handle_)
        dlclose(handle_);
}

void
NativeModule::execute(const runtime::ArenaView& view) const
{
    checkInvariant(execute_ != nullptr,
                   "native module executed before load");
    HecateArenaV1 arena;
    arena.node_count = view.size;
    arena.zero_row = view.zeroRow;
    arena.cls = view.cls;
    arena.scalar_base = view.scalarBase;
    arena.scalars = view.scalars;
    arena.coll_base = view.collBase;
    arena.coll_ranges =
        reinterpret_cast<const HecateCollRangeV1*>(view.collRanges);
    arena.coll_elems = view.collElems;
    arena.cols = view.cols;
    arena.roots = view.roots;
    arena.root_count = view.rootCount;
    execute_(&arena);
}

} // namespace hecate::codegen
