#pragma once

/**
 * @file
 * C++ code generator: syntax-directed translation of a synthesized
 * concrete traversal into compilable C++ classes, mirroring what the
 * paper does to run Hecate schedules on the Grafter workloads (§6.1:
 * "we also implement a code generator for converting concrete
 * traversals synthesized by Hecate into corresponding C++ versions").
 *
 * The emitted style matches the paper's figures: one struct per
 * interface holding the attributes, one struct per class holding the
 * children (pointers for scalars, std::vector for collections), and
 * one traversal method per class (Fig. 1 / Fig. 14). Fold rules
 * scheduled inside `iterate` emit accumulator code fused into the
 * child loop (Fig. 14(b)); `parallel` regions emit the paper's
 * `// parallel` loop split (Fig. 14(c)).
 */

#include <string>

#include "sched/schedule.hpp"

namespace hecate::codegen {

/** Options for the emitter. */
struct CodegenOptions {
    std::string methodName = "fusedCalc"; ///< traversal method name
    std::string guardMacro;               ///< optional include guard name
};

/**
 * Emit a self-contained C++ translation unit implementing @p schedule
 * over @p skeleton's grammar. The schedule must be complete
 * (coversAllRules); throws UserError otherwise.
 */
std::string emitCpp(const sched::Skeleton& skeleton,
                    const sched::Schedule& schedule,
                    const CodegenOptions& options = {});

} // namespace hecate::codegen
