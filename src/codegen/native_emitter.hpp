#pragma once

/**
 * @file
 * Native emitter: one concrete (hole-free) traversal skeleton in, one
 * self-contained C++ translation unit out, specialized to the grammar,
 * the synthesized schedule, and a traversal form.
 *
 * Unlike codegen/cpp_emitter — the paper-style, human-readable
 * pointer-class rendering — this emitter targets the tiered execution
 * path: the TU operates directly on the arena's SoA columns through
 * the extern-"C" ABI of hecate_native_abi.h, embeds its own copy of
 * the ABI structs and of the wrapping int64 helpers
 * (support/arith.hpp semantics), and compiles with any hosted C++17
 * compiler with no include paths at all. Execution is byte-identical
 * to the bytecode executor on the full input domain: wrapping
 * arithmetic, absent-child reads aliasing the always-zero row, writes
 * to absent optional targets skipped, `if` evaluating exactly one
 * branch, folds running left-to-right in element order.
 *
 * Two code shapes exist, mirroring the executor's sweep strategies:
 *
 *  - Recursive: per-class visit functions + a class-switch dispatcher,
 *    statements emitted in the exact order Program::compile lowers
 *    them (parallel regions run sequentially — branch order is the
 *    inline-dispatch order, and a verified schedule makes branches
 *    data-independent anyway).
 *  - Linear: for sweepable (sandwich-shaped) programs, the two-pass
 *    form of Worker::runSweep — one ascending pass over the BFS node
 *    array for the pre-visit eval runs, one descending pass for the
 *    post-visit runs. Streaming column access, no call tree.
 *
 * The emitter version participates in the native cache key: bump
 * kNativeEmitterVersion whenever emitted code changes shape, so stale
 * on-disk artifacts are recompiled rather than trusted.
 */

#include <string>

#include "runtime/executor.hpp"
#include "runtime/program.hpp"
#include "sched/schedule.hpp"

namespace hecate::codegen {

/** Bump on any change to the emitted code (cache-key component). */
inline constexpr uint32_t kNativeEmitterVersion = 1;

/** Code shape of an emitted TU. */
enum class NativeForm : uint8_t {
    Recursive, ///< per-class visit functions (any program)
    Linear,    ///< two-pass linear sweep (sweepable programs only)
};

/** Stable short name ("recursive" / "linear") — cache-key component. */
const char* nativeFormName(NativeForm form);

/**
 * The code shape @p strategy asks for, given @p program:
 * Stack -> Recursive; Linear / Segmented -> Linear (UserError when the
 * program is not sweepable); Auto -> Linear when sweepable, else
 * Recursive.
 */
NativeForm resolveNativeForm(const runtime::Program& program,
                             runtime::SweepStrategy strategy);

/**
 * Emit the specialized TU for @p concrete (a hole-free skeleton, i.e.
 * pipeline::Pipeline::plan().concrete) in @p form. @p fingerprint is
 * baked into the module as hecate_native_fingerprint() — pass the
 * native cache key's digest.
 *
 * Requires @p form == Linear only for programs whose compiled form is
 * sweepable (callers resolve the form against the compiled Program
 * first); throws InternalError when the skeleton's shape contradicts
 * the requested linear form.
 */
std::string emitNativeTU(const sched::Skeleton& concrete, NativeForm form,
                         const std::string& fingerprint);

} // namespace hecate::codegen
