#pragma once

/**
 * @file
 * Hecate-as-a-service: the long-lived network front end over
 * service::SynthService + pipeline::Pipeline.
 *
 * One poll-based acceptor thread owns the listening socket, every
 * connection fd, per-connection frame decoding (net/wire.hpp) and all
 * admission decisions; N worker threads execute admitted requests and
 * hand serialized responses back through per-connection output
 * buffers (a self-pipe wakes the poll loop). The protocol is
 * length-prefixed JSON, one request object per frame — see
 * README "Serving" for the full request/response schema.
 *
 * Admission policy, in order, for the work ops (synth / run / batch /
 * edit / reexec):
 *
 *  1. per-client token-bucket quota (client id = the request's
 *     "client" field): over quota -> {"error":"quota_exceeded",
 *     "retry_after_ms":...} computed from the bucket's refill rate;
 *  2. bounded work queue: full -> {"error":"over_capacity",
 *     "retry_after_ms":...}. The queue bound is the server's only
 *     request memory: admission never buffers unbounded work, so
 *     overload degrades into cheap rejections, not growth.
 *
 * A run request carrying a "session" field pins its pipeline and
 * executed arena server-side (bounded LRU table, ServeOptions::
 * maxSessions); subsequent `edit` ops mutate the pinned tree through
 * the incremental edit API and `reexec` heals it with a partial
 * re-execution (src/incr/) instead of a full recompute. Both are
 * quota-accounted and queue-bounded exactly like `run`.
 *
 * Cheap ops (ping / metrics / cache_stats / drain) are answered
 * inline on the poll thread — the metrics endpoint stays live even
 * when every worker is busy and the queue is full. drain is refused
 * for non-loopback peers unless allowRemoteDrain is set.
 *
 * Output is bounded too: while a connection's unflushed response
 * bytes exceed maxOutbufBytes the poll thread stops reading from it
 * and stops decoding frames it already buffered, so a client that
 * pipelines cheap ops without ever reading responses stalls against
 * TCP backpressure instead of growing the outbuf without bound.
 * Responses whose serialized form exceeds maxFrameBytes are replaced
 * by a small {"error":"response_too_large"} reply — an oversized
 * response must never throw out of a worker thread.
 *
 * Malformed input never tears the server down: an unparseable JSON
 * payload — or a well-formed object with wrongly-typed protocol
 * fields — gets {"error":"malformed_request"} and the connection
 * lives on; an invalid frame length is unrecoverable for that byte
 * stream (resync is impossible), so that one connection is closed.
 *
 * Shutdown: requestDrain() (async-signal-safe — the CLI's SIGTERM
 * handler calls it) or a "drain" request stops accepting connections
 * and admitting work, lets queued + in-flight requests finish,
 * flushes every response buffer (bounded by drainGraceMs), persists
 * the schedule cache to cacheDir, then stops the workers.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/json.hpp"
#include "net/wire.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "service/synth_service.hpp"

namespace hecate::pipeline {
class Pipeline;
}
namespace hecate::runtime {
class TreeArena;
}
namespace hecate {
class ThreadPool;
}

namespace hecate::net {

/** True for 127.0.0.0/8 (@p addr in host byte order). */
bool isLoopbackIPv4(uint32_t addr);

/** Serve-mode knobs. */
struct ServeOptions {
    std::string host = "127.0.0.1";
    uint16_t port = 0;          ///< 0 = ephemeral (see Server::port())
    size_t workers = 0;         ///< request workers; 0 = hardware
    /**
     * Execution threads per in-flight request (nested parallelism
     * cap): run/reexec ops route tree execution through a shared
     * thread pool of execThreads - 1 extra workers, so total
     * execution-side threads stay bounded at roughly workers *
     * execThreads even when every request worker is busy. 0 = auto =
     * max(1, hardware_threads / request workers) — a fully loaded
     * daemon never oversubscribes the machine, while a mostly-idle
     * wide machine still parallelizes individual requests.
     */
    uint32_t execThreads = 0;
    size_t queueCapacity = 512; ///< admission bound (queued, not in-flight)
    size_t maxConnections = 4096;
    uint32_t maxFrameBytes = 4u << 20; ///< per-frame payload cap
    /**
     * Per-connection unflushed-output cap: reading (and frame
     * processing) pauses while a connection's outbuf exceeds this,
     * so clients that never read responses cannot exhaust memory.
     * 0 = default (8 MiB).
     */
    size_t maxOutbufBytes = 8u << 20;
    /** Accept the drain op from non-loopback peers. */
    bool allowRemoteDrain = false;
    /**
     * Per-client token bucket: sustained requests/second and burst
     * capacity. rps 0 disables quotas; burst 0 defaults to
     * max(1, rps).
     */
    double quotaRps = 0.0;
    double quotaBurst = 0.0;
    uint32_t retryAfterMs = 50;    ///< hint in over_capacity rejections
    uint32_t drainGraceMs = 5000;  ///< max wait for unflushed responses
    /**
     * Bound on pinned arena sessions (run requests carrying a
     * "session" field keep their arena server-side for later `edit` /
     * `reexec` ops). The least-recently-used session is evicted when
     * the table is full; an in-flight op keeps its evicted session
     * alive until it completes.
     */
    size_t maxSessions = 16;
    std::string cacheDir;          ///< warm-load at start, persist at drain
    service::ServiceConfig service; ///< inner SynthService knobs
    /** Serve-wide telemetry sink; null = server-owned internal sink. */
    obs::Telemetry* telemetry = nullptr;
};

/** Monotonic server counters (also exported via the metrics op). */
struct ServerStats {
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsClosed = 0;
    uint64_t framesReceived = 0;
    uint64_t requestsAdmitted = 0;
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedQuota = 0;
    uint64_t rejectedDraining = 0;
    uint64_t malformedRequests = 0;
    uint64_t protocolErrors = 0; ///< bad frames (connection dropped)
    uint64_t responsesSent = 0;
    uint64_t responsesOversized = 0; ///< replaced by response_too_large
    size_t queueDepth = 0; ///< snapshot
    size_t inFlight = 0;   ///< snapshot
};

/** The serve daemon. start() it, then waitUntilStopped(). */
class Server {
  public:
    explicit Server(ServeOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Bind, listen, warm-load the cache, spawn the poll thread and
     * the workers. Throws UserError when the address cannot be bound.
     */
    void start();

    /** The bound port (after start; resolves port 0 to the real one). */
    uint16_t port() const { return boundPort_; }

    /**
     * Begin graceful drain. Async-signal-safe (an atomic store and a
     * write() on the self-pipe), so the CLI's SIGTERM handler may call
     * it directly. Idempotent.
     */
    void requestDrain();

    /** Block until the drain has completed and every thread joined. */
    void waitUntilStopped();

    bool draining() const
    {
        return draining_.load(std::memory_order_relaxed);
    }

    ServerStats stats() const;
    service::SynthService& service() { return *service_; }
    obs::Telemetry& telemetry() { return *telemetry_; }

  private:
    /** One live connection; shared between poll thread and workers. */
    struct Connection {
        explicit Connection(int fd, uint32_t maxFrame)
            : fd(fd), decoder(maxFrame)
        {
        }

        int fd;
        FrameDecoder decoder; ///< poll thread only
        bool loopback = false; ///< peer is 127.0.0.0/8 (gates drain)
        std::mutex outMutex;
        std::string outbuf;       ///< pending response bytes
        bool closed = false;      ///< fd closed; drop late responses
        bool closeAfterFlush = false;
        /**
         * Frame stream unrecoverable (bad length): one protocol_error
         * was sent; never read or decode this connection again.
         */
        bool poisoned = false;
    };

    /** One admitted work request. */
    struct Job {
        std::shared_ptr<Connection> conn;
        Json request;
        std::string op;
        std::chrono::steady_clock::time_point admitted;
    };

    /** Client quota state (poll thread only). */
    struct TokenBucket {
        double tokens = 0;
        std::chrono::steady_clock::time_point last;
    };

    void pollLoop();
    void workerLoop();

    void acceptPending();
    void readConnection(const std::shared_ptr<Connection>& conn);
    void flushConnection(const std::shared_ptr<Connection>& conn);
    void closeConnection(const std::shared_ptr<Connection>& conn);

    /** Close without taking outMutex (caller holds it). Idempotent. */
    void lockedClose(const std::shared_ptr<Connection>& conn);

    /**
     * Decode + handle buffered frames until none remain or the
     * connection's outbuf exceeds the cap (leftover frames resume
     * after a flush). False when a frame-length error closed the
     * connection. Poll thread only.
     */
    bool processFrames(const std::shared_ptr<Connection>& conn);

    /** Unflushed output bytes pending on @p conn. */
    size_t outbufBytes(const std::shared_ptr<Connection>& conn) const;

    /** Handle one decoded frame on the poll thread. */
    void handleFrame(const std::shared_ptr<Connection>& conn,
                     const std::string& payload);

    /**
     * Dispatch one well-formed request object. UserError thrown here
     * (e.g. a wrongly-typed "op"/"client" field) is recoverable: the
     * caller answers malformed_request and the connection survives.
     */
    void dispatchRequest(const std::shared_ptr<Connection>& conn,
                         const Json& request);

    /** Quota check; fills @p retryAfterMs on failure. */
    bool admitQuota(const std::string& client, uint32_t* retryAfterMs);

    /** Serialize + enqueue a response and wake the poll loop. */
    void sendResponse(const std::shared_ptr<Connection>& conn,
                      const Json& response);

    /** Build the uniform failure response. */
    static Json errorResponse(const Json& request, const std::string& error,
                              const std::string& detail = std::string(),
                              uint32_t retryAfterMs = 0);

    Json handleMetrics();
    Json handleCacheStats();

    /** Worker-side execution of one admitted job. */
    /**
     * One client-pinned arena: the pipeline that compiled its program
     * (and incremental plan) plus the executed arena, kept server-side
     * so `edit` / `reexec` requests can mutate and incrementally heal
     * it across round trips. `mutex` serializes ops on one session;
     * the table lock (sessionsMutex_) is never held across an op.
     */
    struct PinnedSession {
        std::mutex mutex;
        std::unique_ptr<pipeline::Pipeline> pipe;
        std::unique_ptr<runtime::TreeArena> arena;
        uint64_t lastUsed = 0; ///< LRU tick (under sessionsMutex_)
    };

    Json executeJob(const Job& job);
    Json executeSynth(const Json& request);
    Json executeRun(const Json& request);
    Json executeBatch(const Json& request);
    Json executeEdit(const Json& request);
    Json executeReexec(const Json& request);

    /** Session key for @p request ("client" + "session" fields). */
    static std::string sessionKey(const Json& request);
    std::shared_ptr<PinnedSession> findSession(const std::string& key);
    void pinSession(const std::string& key,
                    std::shared_ptr<PinnedSession> session);

    /** The synth request the work op's common fields describe. */
    service::SynthRequest parseSynthFields(const Json& request);

    void wakePoll();

    ServeOptions options_;
    std::unique_ptr<obs::Telemetry> ownedTelemetry_;
    obs::Telemetry* telemetry_ = nullptr;
    std::unique_ptr<service::SynthService> service_;

    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    uint16_t boundPort_ = 0;

    std::thread pollThread_;
    std::thread prewarmThread_; ///< --tier auto native-cache prewarm
    std::vector<std::thread> workers_;
    /**
     * Shared execution pool for run/reexec tree walks (see
     * ServeOptions::execThreads). One pool for the whole daemon, not
     * one per request worker: concurrent requests steal from the same
     * deques and serialize gracefully instead of multiplying threads.
     * Null when the effective exec-thread count is 1.
     */
    std::unique_ptr<ThreadPool> execPool_;
    uint32_t execThreadsEffective_ = 1;
    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};

    // Poll-thread-owned connection and quota state.
    std::map<int, std::shared_ptr<Connection>> connections_;
    std::map<std::string, TokenBucket> quotas_;

    // Pinned arena sessions (see PinnedSession). Guarded by
    // sessionsMutex_; individual sessions carry their own mutex.
    std::mutex sessionsMutex_;
    std::map<std::string, std::shared_ptr<PinnedSession>> sessions_;
    uint64_t sessionTick_ = 0;
    std::atomic<uint64_t> sessionsCreated_{0};
    std::atomic<uint64_t> sessionsEvicted_{0};

    // Bounded admission queue.
    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> queue_;
    size_t inFlight_ = 0;
    bool stopWorkers_ = false;

    // Counters (relaxed; exact ordering does not matter for metrics).
    std::atomic<uint64_t> connectionsAccepted_{0};
    std::atomic<uint64_t> connectionsClosed_{0};
    std::atomic<uint64_t> framesReceived_{0};
    std::atomic<uint64_t> requestsAdmitted_{0};
    std::atomic<uint64_t> rejectedQueueFull_{0};
    std::atomic<uint64_t> rejectedQuota_{0};
    std::atomic<uint64_t> rejectedDraining_{0};
    std::atomic<uint64_t> malformedRequests_{0};
    std::atomic<uint64_t> protocolErrors_{0};
    std::atomic<uint64_t> responsesSent_{0};
    std::atomic<uint64_t> responsesOversized_{0};

    /** Per-op latency histograms (admission -> response enqueued). */
    obs::LatencyHistogram latencySynth_;
    obs::LatencyHistogram latencyRun_;
    obs::LatencyHistogram latencyBatch_;

    std::chrono::steady_clock::time_point startTime_;
};

} // namespace hecate::net
