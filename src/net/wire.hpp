#pragma once

/**
 * @file
 * The serve protocol's wire layer: length-prefixed frames.
 *
 * A frame is a 4-byte big-endian payload length followed by that many
 * payload bytes (UTF-8 JSON at the layer above). Length 0 is invalid;
 * lengths above the receiver's max are a protocol error the receiver
 * reports before closing that one connection — a hostile or buggy
 * client must never take the server down or make it buffer unbounded
 * input.
 *
 * FrameDecoder is the incremental, non-blocking half (the server's
 * poll loop feeds it whatever recv returned); readFrame/writeFrame are
 * the blocking half used by the in-process client and tests.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hecate::net {

/** Hard ceiling on any frame this build will accept or emit (64 MiB). */
inline constexpr uint32_t kFrameHardLimit = 64u << 20;

/** Append one frame (length prefix + payload) to @p out. */
void appendFrame(std::string& out, std::string_view payload);

/** Incremental frame decoder over a growing byte buffer. */
class FrameDecoder {
  public:
    /** @p maxPayload: reject frames longer than this (protocol error). */
    explicit FrameDecoder(uint32_t maxPayload) : maxPayload_(maxPayload) {}

    /** Append newly received bytes. */
    void feed(std::string_view bytes) { buffer_.append(bytes); }

    /**
     * Extract the next complete frame's payload, or nullopt when the
     * buffer holds only a partial frame. Throws UserError on a frame
     * that exceeds the payload bound (the caller should answer with a
     * protocol error and drop the connection: the stream cannot be
     * resynchronized past a bad length prefix).
     */
    std::optional<std::string> next();

    /** Bytes currently buffered (tests / accounting). */
    size_t buffered() const { return buffer_.size(); }

  private:
    uint32_t maxPayload_;
    std::string buffer_;
};

/**
 * Blocking helpers over a connected socket fd (client side). Both
 * retry on EINTR and throw UserError on I/O errors; readFrame returns
 * nullopt on clean EOF at a frame boundary.
 */
void writeFrame(int fd, std::string_view payload);
std::optional<std::string> readFrame(int fd, uint32_t maxPayload);

} // namespace hecate::net
