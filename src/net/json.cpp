#include "net/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/diagnostics.hpp"

namespace hecate::net {

namespace {

const char*
kindName(Json::Kind kind)
{
    switch (kind) {
    case Json::Kind::Null:
        return "null";
    case Json::Kind::Bool:
        return "bool";
    case Json::Kind::Int:
    case Json::Kind::Double:
        return "number";
    case Json::Kind::String:
        return "string";
    case Json::Kind::Array:
        return "array";
    case Json::Kind::Object:
        return "object";
    }
    return "?";
}

[[noreturn]] void
typeError(const char* wanted, Json::Kind got)
{
    userError(std::string("json: expected ") + wanted + ", got " +
              kindName(got));
}

} // namespace

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        typeError("bool", kind_);
    return bool_;
}

int64_t
Json::asInt() const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Double && std::nearbyint(double_) == double_ &&
        double_ >= -9.2233720368547758e18 && double_ <= 9.2233720368547758e18)
        return static_cast<int64_t>(double_);
    typeError("integer", kind_);
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    if (kind_ == Kind::Double)
        return double_;
    typeError("number", kind_);
}

const std::string&
Json::asString() const
{
    if (kind_ != Kind::String)
        typeError("string", kind_);
    return string_;
}

const JsonArray&
Json::asArray() const
{
    if (kind_ != Kind::Array)
        typeError("array", kind_);
    return *array_;
}

const JsonObject&
Json::asObject() const
{
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    return *object_;
}

const Json&
Json::at(const std::string& key) const
{
    const Json* found = find(key);
    if (found == nullptr)
        userError("json: missing field '" + key + "'");
    return *found;
}

const Json*
Json::find(const std::string& key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
}

int64_t
Json::intOr(const std::string& key, int64_t fallback) const
{
    const Json* found = find(key);
    return found == nullptr ? fallback : found->asInt();
}

double
Json::doubleOr(const std::string& key, double fallback) const
{
    const Json* found = find(key);
    return found == nullptr ? fallback : found->asDouble();
}

bool
Json::boolOr(const std::string& key, bool fallback) const
{
    const Json* found = find(key);
    return found == nullptr ? fallback : found->asBool();
}

std::string
Json::stringOr(const std::string& key, std::string fallback) const
{
    const Json* found = find(key);
    return found == nullptr ? std::move(fallback) : found->asString();
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void
appendEscaped(std::string& out, const std::string& text)
{
    out += '"';
    for (unsigned char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
appendValue(std::string& out, const Json& value)
{
    switch (value.kind()) {
    case Json::Kind::Null:
        out += "null";
        break;
    case Json::Kind::Bool:
        out += value.asBool() ? "true" : "false";
        break;
    case Json::Kind::Int:
        out += std::to_string(value.asInt());
        break;
    case Json::Kind::Double: {
        double d = value.asDouble();
        if (!std::isfinite(d)) {
            // JSON has no Inf/NaN; null keeps the document valid.
            out += "null";
            break;
        }
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", d);
        out += buffer;
        break;
    }
    case Json::Kind::String:
        appendEscaped(out, value.asString());
        break;
    case Json::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json& elem : value.asArray()) {
            if (!first)
                out += ',';
            first = false;
            appendValue(out, elem);
        }
        out += ']';
        break;
    }
    case Json::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [key, elem] : value.asObject()) {
            if (!first)
                out += ',';
            first = false;
            appendEscaped(out, key);
            out += ':';
            appendValue(out, elem);
        }
        out += '}';
        break;
    }
    }
}

} // namespace

std::string
Json::dump() const
{
    std::string out;
    appendValue(out, *this);
    return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

/** Recursive-descent parser over a string_view with a depth bound. */
class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse()
    {
        Json value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing bytes after document");
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string& why)
    {
        userError("json: " + why + " at byte " + std::to_string(pos_));
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal)
            return false;
        pos_ += literal.size();
        return true;
    }

    Json parseValue(int depth)
    {
        if (depth > kMaxJsonDepth)
            fail("nesting too deep");
        skipWhitespace();
        char c = peek();
        switch (c) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"':
            return Json(parseString());
        case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("invalid literal");
        case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("invalid literal");
        case 'n':
            if (consumeLiteral("null"))
                return Json(nullptr);
            fail("invalid literal");
        default:
            return parseNumber();
        }
    }

    Json parseObject(int depth)
    {
        expect('{');
        JsonObject object;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(object));
        }
        for (;;) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            object.insert_or_assign(std::move(key), parseValue(depth + 1));
            skipWhitespace();
            char next = peek();
            ++pos_;
            if (next == '}')
                return Json(std::move(object));
            if (next != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json parseArray(int depth)
    {
        expect('[');
        JsonArray array;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(array));
        }
        for (;;) {
            array.push_back(parseValue(depth + 1));
            skipWhitespace();
            char next = peek();
            ++pos_;
            if (next == ']')
                return Json(std::move(array));
            if (next != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            unsigned char c = static_cast<unsigned char>(text_[pos_++]);
            if (c == '"')
                return out;
            if (c < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // passed through as two 3-byte sequences — the protocol
                // carries source text, not arbitrary Unicode).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    Json parseNumber()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        // Strict JSON: no leading zeros ("01"), which some parsers
        // silently read as octal or decimal.
        if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
            text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
            fail("leading zeros are not allowed in numbers");
        }
        bool isDouble = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isDouble = true;
                ++pos_;
            } else {
                break;
            }
        }
        std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-")
            fail("invalid number");
        if (!isDouble) {
            int64_t value = 0;
            auto [end, ec] = std::from_chars(
                token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && end == token.data() + token.size())
                return Json(value);
            // Integer overflow: fall through to double.
        }
        std::string buffer(token);
        errno = 0;
        char* end = nullptr;
        double value = std::strtod(buffer.c_str(), &end);
        if (end != buffer.c_str() + buffer.size() || errno == ERANGE)
            fail("invalid number");
        return Json(value);
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

Json
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace hecate::net
