#include "net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exec/interp.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/executor.hpp"
#include "support/thread_pool.hpp"
#include "service/prewarm_index.hpp"
#include "support/diagnostics.hpp"
#include "support/timer.hpp"

namespace hecate::net {

namespace {

/** Caps on client-controlled knobs (strict admission validation). */
constexpr int64_t kMaxTreeSize = int64_t{1} << 31;
constexpr int64_t kMaxBatchCount = int64_t{1} << 20;
constexpr int64_t kMaxDepthKnob = 16;
constexpr size_t kMaxQuotaClients = 65536;

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/**
 * Decode one client-supplied tree node (recursively) into @p tree.
 * Schema: {"class": NAME, "inputs": {attr: int, ...},
 * "children": {name: node | null | [node, ...], ...}}.
 */
tree::NodeId
decodeTreeNode(const sem::Grammar& grammar, tree::Tree& tree,
               const Json& spec, int depth)
{
    if (depth > kMaxJsonDepth)
        userError("tree: nesting too deep");
    const std::string& className = spec.at("class").asString();
    sem::ClassId clsId = grammar.findClass(className);
    if (clsId == sem::kInvalidId)
        userError("tree: unknown class '" + className + "'");
    const sem::ClassInfo& cls = grammar.cls(clsId);
    const sem::InterfaceInfo& iface = grammar.iface(cls.iface);

    tree::NodeId node = tree.addNode(clsId);

    if (const Json* inputs = spec.find("inputs")) {
        for (const auto& [name, value] : inputs->asObject()) {
            auto it = iface.attrByName.find(name);
            if (it == iface.attrByName.end())
                userError("tree: unknown attribute '" + name +
                          "' on interface " + iface.name);
            if (!iface.isInput(it->second))
                userError("tree: attribute '" + name +
                          "' is an output (only inputs may be supplied)");
            tree.setInput(node, it->second, value.asInt());
        }
    }

    if (const Json* children = spec.find("children")) {
        for (const auto& [name, childSpec] : children->asObject()) {
            auto it = cls.childByName.find(name);
            if (it == cls.childByName.end())
                userError("tree: unknown child '" + name + "' on class " +
                          cls.name);
            const sem::ChildInfo& info = cls.children[it->second];
            if (info.collection) {
                for (const Json& elem : childSpec.asArray()) {
                    tree.addElement(node, info.id,
                                    decodeTreeNode(grammar, tree, elem,
                                                   depth + 1));
                }
            } else if (!childSpec.isNull()) {
                tree.setScalar(node, info.id,
                               decodeTreeNode(grammar, tree, childSpec,
                                              depth + 1));
            }
        }
    }
    return node;
}

/** Build + validate a whole client-supplied tree. */
tree::Tree
decodeTree(const sem::Grammar& grammar, const Json& spec)
{
    tree::Tree tree(grammar);
    tree.setRoot(decodeTreeNode(grammar, tree, spec, 0));
    tree.validate();
    return tree;
}

/** Encode every output attribute of @p arena back to JSON (small trees). */
Json
encodeOutputs(const sem::Grammar& grammar, const runtime::TreeArena& arena)
{
    JsonArray nodes;
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        JsonObject values;
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            if (iface.isInput(attr))
                continue;
            uint32_t col = arena.layout().column(cls.iface, attr);
            values.emplace(iface.attrs[attr].name,
                           Json(arena.value(node, col)));
        }
        JsonObject entry;
        entry.emplace("class", Json(cls.name));
        entry.emplace("outputs", Json(std::move(values)));
        nodes.push_back(Json(std::move(entry)));
    }
    return Json(std::move(nodes));
}

/** Differential check of @p arena against exec::computeReference. */
uint64_t
countMismatches(const sem::Grammar& grammar,
                const runtime::TreeArena& arena)
{
    tree::Tree reference = arena.toTree();
    reference.clearOutputs();
    exec::computeReference(reference);
    uint64_t mismatches = 0;
    for (runtime::NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& cls = grammar.cls(arena.classOf(node));
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            uint32_t col = arena.layout().column(cls.iface, attr);
            if (reference.node(node).values[attr] !=
                arena.value(node, col))
                ++mismatches;
        }
    }
    return mismatches;
}

Json
latencyJson(const obs::LatencyHistogram& histogram)
{
    JsonObject out;
    out.emplace("count", Json(histogram.count()));
    out.emplace("p50_ms", Json(histogram.quantileSeconds(0.50) * 1e3));
    out.emplace("p99_ms", Json(histogram.quantileSeconds(0.99) * 1e3));
    return Json(std::move(out));
}

} // namespace

bool
isLoopbackIPv4(uint32_t addr)
{
    return (addr >> 24) == 127;
}

Server::Server(ServeOptions options) : options_(std::move(options))
{
    if (options_.telemetry != nullptr) {
        telemetry_ = options_.telemetry;
    } else {
        ownedTelemetry_ = std::make_unique<obs::Telemetry>();
        telemetry_ = ownedTelemetry_.get();
    }
    if (options_.maxFrameBytes == 0 ||
        options_.maxFrameBytes > kFrameHardLimit)
        options_.maxFrameBytes = kFrameHardLimit;
    if (options_.queueCapacity == 0)
        options_.queueCapacity = 1;
    if (options_.maxOutbufBytes == 0)
        options_.maxOutbufBytes = 8u << 20;
    service_ = std::make_unique<service::SynthService>(options_.service);
}

Server::~Server()
{
    requestDrain();
    waitUntilStopped();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
}

void
Server::start()
{
    checkInvariant(!started_.load(), "Server::start called twice");
    startTime_ = std::chrono::steady_clock::now();

    if (!options_.cacheDir.empty())
        service::warmLoad(service_->cache(), options_.cacheDir,
                          *telemetry_);

    int pipeFds[2];
    if (::pipe(pipeFds) != 0)
        userError(std::string("cannot create wake pipe: ") +
                  std::strerror(errno));
    wakeRead_ = pipeFds[0];
    wakeWrite_ = pipeFds[1];
    setNonBlocking(wakeRead_);
    setNonBlocking(wakeWrite_);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        userError(std::string("cannot create socket: ") +
                  std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
        userError("invalid listen host '" + options_.host + "'");
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        userError("cannot bind " + options_.host + ":" +
                  std::to_string(options_.port) + ": " +
                  std::strerror(errno));
    if (::listen(listenFd_, 512) != 0)
        userError(std::string("listen failed: ") + std::strerror(errno));
    setNonBlocking(listenFd_);

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound),
                  &boundLen);
    boundPort_ = ntohs(bound.sin_port);

    size_t workers = options_.workers;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    // Nested-parallelism cap: each request worker may drive a parallel
    // tree execution, so exec threads default to the machine's share
    // per worker. The pool holds the extra threads (the request worker
    // itself is execution thread #1).
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    execThreadsEffective_ =
        options_.execThreads != 0
            ? options_.execThreads
            : static_cast<uint32_t>(std::max<size_t>(1, hw / workers));
    if (execThreadsEffective_ > 1)
        execPool_ =
            std::make_unique<ThreadPool>(execThreadsEffective_ - 1);
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    pollThread_ = std::thread([this] { pollLoop(); });

    // Under --tier auto, first requests run on bytecode until poll()
    // resolves their module; pre-loading the persisted artifact store
    // off the request path lets warm keys hot-swap to native on their
    // very first poll. Background thread: startup must not wait on
    // dlopen of an arbitrary number of artifacts.
    if (service_->tier() == service::ExecTier::Auto &&
        !service_->nativeTier().cache().dir().empty()) {
        prewarmThread_ = std::thread([this] {
            service::PrewarmReport report = service::prewarmNativeCache(
                service_->nativeTier().cache(), telemetry_);
            if (report.loaded > 0 || report.skipped > 0)
                std::fprintf(stderr,
                             "serve: prewarmed %zu native module(s) "
                             "in %.1fms (%zu skipped)\n",
                             report.loaded, report.seconds * 1e3,
                             report.skipped);
        });
    }
    started_.store(true);
}

void
Server::requestDrain()
{
    draining_.store(true, std::memory_order_relaxed);
    wakePoll();
}

void
Server::wakePoll()
{
    if (wakeWrite_ >= 0) {
        char byte = 'w';
        // Async-signal-safe; EAGAIN means the pipe already holds a
        // wake-up, which is all we need.
        [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
    }
}

void
Server::waitUntilStopped()
{
    if (prewarmThread_.joinable())
        prewarmThread_.join();
    if (pollThread_.joinable())
        pollThread_.join();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopWorkers_ = true;
    }
    queueCv_.notify_all();
    for (std::thread& worker : workers_)
        if (worker.joinable())
            worker.join();
    workers_.clear();
    bool wasStopped = stopped_.exchange(true);
    if (!wasStopped && started_.load()) {
        service_->drain();
        if (!options_.cacheDir.empty()) {
            size_t written = service_->cache().save(options_.cacheDir);
            telemetry_->set("cache.persisted.entries",
                            static_cast<double>(written));
        }
    }
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    stats.connectionsAccepted = connectionsAccepted_.load();
    stats.connectionsClosed = connectionsClosed_.load();
    stats.framesReceived = framesReceived_.load();
    stats.requestsAdmitted = requestsAdmitted_.load();
    stats.rejectedQueueFull = rejectedQueueFull_.load();
    stats.rejectedQuota = rejectedQuota_.load();
    stats.rejectedDraining = rejectedDraining_.load();
    stats.malformedRequests = malformedRequests_.load();
    stats.protocolErrors = protocolErrors_.load();
    stats.responsesSent = responsesSent_.load();
    stats.responsesOversized = responsesOversized_.load();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stats.queueDepth = queue_.size();
        stats.inFlight = inFlight_;
    }
    return stats;
}

// ---------------------------------------------------------------------------
// Poll loop
// ---------------------------------------------------------------------------

void
Server::pollLoop()
{
    std::chrono::steady_clock::time_point drainStart{};
    for (;;) {
        const bool draining = draining_.load(std::memory_order_relaxed);
        if (draining && listenFd_ >= 0) {
            // Stop accepting; existing connections finish their work.
            ::close(listenFd_);
            listenFd_ = -1;
            drainStart = std::chrono::steady_clock::now();
        }

        std::vector<pollfd> fds;
        std::vector<std::shared_ptr<Connection>> polled;
        fds.reserve(connections_.size() + 2);
        fds.push_back({wakeRead_, POLLIN, 0});
        if (listenFd_ >= 0)
            fds.push_back({listenFd_, POLLIN, 0});
        for (auto& [fd, conn] : connections_) {
            short events = 0;
            {
                std::lock_guard<std::mutex> lock(conn->outMutex);
                if (!conn->outbuf.empty())
                    events |= POLLOUT;
                // Backpressure: a connection that is not reading its
                // responses does not get new bytes read either —
                // its unread requests stay in the kernel buffers.
                if (!conn->poisoned &&
                    conn->outbuf.size() <= options_.maxOutbufBytes)
                    events |= POLLIN;
            }
            fds.push_back({fd, events, 0});
            polled.push_back(conn);
        }

        if (draining) {
            // Drain exit test: no queued or in-flight work and no
            // unflushed response bytes (or the grace period expired).
            bool idle;
            {
                std::lock_guard<std::mutex> lock(queueMutex_);
                idle = queue_.empty() && inFlight_ == 0;
            }
            bool flushed = true;
            for (const auto& conn : polled) {
                std::lock_guard<std::mutex> lock(conn->outMutex);
                if (!conn->outbuf.empty())
                    flushed = false;
            }
            const bool graceOver =
                std::chrono::steady_clock::now() - drainStart >
                std::chrono::milliseconds(options_.drainGraceMs);
            if ((idle && flushed) || graceOver) {
                for (const auto& conn : polled)
                    closeConnection(conn);
                connections_.clear();
                return;
            }
        }

        int ready = ::poll(fds.data(), fds.size(), 100);
        if (ready < 0) {
            if (errno != EINTR) {
                // Unrecoverable poll failure: fall into the drain path
                // so queued work still finishes and fds get closed.
                draining_.store(true, std::memory_order_relaxed);
            }
            continue;
        }

        size_t index = 0;
        if (fds[index].revents & POLLIN) {
            char buffer[256];
            while (::read(wakeRead_, buffer, sizeof(buffer)) > 0) {
            }
        }
        ++index;
        if (listenFd_ >= 0) {
            if (fds[index].revents & POLLIN)
                acceptPending();
            ++index;
        }
        for (size_t i = 0; i < polled.size(); ++i, ++index) {
            const std::shared_ptr<Connection>& conn = polled[i];
            short revents = fds[index].revents;
            if (conn->closed)
                continue;
            if (revents & POLLOUT)
                flushConnection(conn);
            if (revents & (POLLIN | POLLHUP | POLLERR))
                readConnection(conn);
            // A flush may have brought the outbuf back under the cap:
            // resume frames the decoder buffered before reads paused.
            if (!conn->closed && !conn->poisoned &&
                outbufBytes(conn) <= options_.maxOutbufBytes)
                processFrames(conn);
        }

        // Reap closed connections.
        for (auto it = connections_.begin(); it != connections_.end();) {
            if (it->second->closed)
                it = connections_.erase(it);
            else
                ++it;
        }
    }
}

void
Server::acceptPending()
{
    for (;;) {
        sockaddr_in peer{};
        socklen_t peerLen = sizeof(peer);
        int fd = ::accept(listenFd_, reinterpret_cast<sockaddr*>(&peer),
                          &peerLen);
        if (fd < 0)
            return; // EAGAIN or transient error: poll again later
        if (connections_.size() >= options_.maxConnections) {
            ::close(fd);
            continue;
        }
        setNonBlocking(fd);
        setNoDelay(fd);
        auto conn =
            std::make_shared<Connection>(fd, options_.maxFrameBytes);
        conn->loopback = peer.sin_family == AF_INET &&
                         isLoopbackIPv4(ntohl(peer.sin_addr.s_addr));
        connections_.emplace(fd, std::move(conn));
        ++connectionsAccepted_;
    }
}

void
Server::readConnection(const std::shared_ptr<Connection>& conn)
{
    if (conn->poisoned)
        return; // condemned stream: the flush path closes it
    char buffer[64 * 1024];
    for (;;) {
        // Process frames between recv chunks so the outbuf cap bounds
        // even a single line-rate burst of pipelined requests: once
        // the cap is exceeded we stop pulling bytes and leave the
        // remainder to TCP backpressure.
        if (!processFrames(conn))
            return; // protocol error closed the connection
        if (outbufBytes(conn) > options_.maxOutbufBytes)
            break;
        ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n > 0) {
            conn->decoder.feed(std::string_view(buffer,
                                                static_cast<size_t>(n)));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or hard error: process what we already have, then close.
        conn->closeAfterFlush = true;
        break;
    }

    if (!processFrames(conn))
        return;

    if (conn->closeAfterFlush) {
        std::lock_guard<std::mutex> lock(conn->outMutex);
        if (conn->outbuf.empty()) {
            // Nothing pending: close now (otherwise flush closes it).
            lockedClose(conn);
        }
    }
}

size_t
Server::outbufBytes(const std::shared_ptr<Connection>& conn) const
{
    std::lock_guard<std::mutex> lock(conn->outMutex);
    return conn->outbuf.size();
}

bool
Server::processFrames(const std::shared_ptr<Connection>& conn)
{
    try {
        while (outbufBytes(conn) <= options_.maxOutbufBytes) {
            std::optional<std::string> payload = conn->decoder.next();
            if (!payload.has_value())
                break;
            handleFrame(conn, *payload);
        }
    } catch (const UserError& error) {
        // Invalid frame length: the byte stream cannot be re-synced.
        // Tell the client why, then drop only this connection.
        ++protocolErrors_;
        conn->poisoned = true;
        sendResponse(conn, errorResponse(Json(), "protocol_error",
                                         error.what()));
        conn->closeAfterFlush = true;
        std::lock_guard<std::mutex> lock(conn->outMutex);
        if (conn->outbuf.empty())
            lockedClose(conn);
        return false;
    }
    return true;
}

void
Server::flushConnection(const std::shared_ptr<Connection>& conn)
{
    std::lock_guard<std::mutex> lock(conn->outMutex);
    while (!conn->outbuf.empty()) {
        ssize_t n = ::send(conn->fd, conn->outbuf.data(),
                           conn->outbuf.size(), MSG_NOSIGNAL);
        if (n > 0) {
            conn->outbuf.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        // Peer went away; drop the rest.
        conn->outbuf.clear();
        conn->closeAfterFlush = true;
        break;
    }
    if (conn->outbuf.empty() && conn->closeAfterFlush)
        lockedClose(conn);
}

void
Server::closeConnection(const std::shared_ptr<Connection>& conn)
{
    std::lock_guard<std::mutex> lock(conn->outMutex);
    lockedClose(conn);
}

void
Server::lockedClose(const std::shared_ptr<Connection>& conn)
{
    if (conn->closed)
        return;
    ::close(conn->fd);
    conn->closed = true;
    ++connectionsClosed_;
}

// ---------------------------------------------------------------------------
// Admission (poll thread)
// ---------------------------------------------------------------------------

bool
Server::admitQuota(const std::string& client, uint32_t* retryAfterMs)
{
    if (options_.quotaRps <= 0)
        return true;
    const double burst = options_.quotaBurst > 0
                             ? options_.quotaBurst
                             : std::max(1.0, options_.quotaRps);
    // Coarse memory bound: a hostile client-id stream must not grow
    // the quota table forever. Resetting forgives at most one burst.
    if (quotas_.size() > kMaxQuotaClients)
        quotas_.clear();

    auto now = std::chrono::steady_clock::now();
    auto [it, fresh] = quotas_.try_emplace(client);
    TokenBucket& bucket = it->second;
    if (fresh) {
        bucket.tokens = burst;
        bucket.last = now;
    } else {
        double elapsed =
            std::chrono::duration<double>(now - bucket.last).count();
        bucket.tokens = std::min(burst,
                                 bucket.tokens +
                                     elapsed * options_.quotaRps);
        bucket.last = now;
    }
    if (bucket.tokens >= 1.0) {
        bucket.tokens -= 1.0;
        return true;
    }
    double waitSeconds = (1.0 - bucket.tokens) / options_.quotaRps;
    *retryAfterMs =
        static_cast<uint32_t>(std::max(1.0, waitSeconds * 1e3));
    return false;
}

Json
Server::errorResponse(const Json& request, const std::string& error,
                      const std::string& detail, uint32_t retryAfterMs)
{
    JsonObject out;
    out.emplace("ok", Json(false));
    out.emplace("error", Json(error));
    if (!detail.empty())
        out.emplace("detail", Json(detail));
    if (retryAfterMs > 0)
        out.emplace("retry_after_ms", Json(uint64_t{retryAfterMs}));
    if (const Json* id = request.find("id"))
        out.emplace("id", *id);
    if (const Json* op = request.find("op"))
        out.emplace("op", *op);
    return Json(std::move(out));
}

void
Server::handleFrame(const std::shared_ptr<Connection>& conn,
                    const std::string& payload)
{
    ++framesReceived_;
    Json request;
    try {
        request = parseJson(payload);
        if (!request.isObject())
            userError("request must be a JSON object");
    } catch (const UserError& error) {
        // Malformed JSON in a well-formed frame: recoverable — the
        // frame boundary is intact, so the connection survives.
        ++malformedRequests_;
        sendResponse(conn, errorResponse(Json(), "malformed_request",
                                         error.what()));
        return;
    }

    try {
        dispatchRequest(conn, request);
    } catch (const UserError& error) {
        // Wrongly-typed protocol fields (e.g. {"op": 123}) are just
        // as recoverable as bad JSON: the frame boundary is intact,
        // so answer malformed_request and keep the connection.
        ++malformedRequests_;
        sendResponse(conn, errorResponse(request, "malformed_request",
                                         error.what()));
    }
}

void
Server::dispatchRequest(const std::shared_ptr<Connection>& conn,
                        const Json& request)
{
    std::string op = request.stringOr("op", "");
    if (op == "ping") {
        JsonObject out;
        out.emplace("ok", Json(true));
        out.emplace("op", Json("ping"));
        if (const Json* id = request.find("id"))
            out.emplace("id", *id);
        sendResponse(conn, Json(std::move(out)));
        return;
    }
    if (op == "metrics") {
        Json response = handleMetrics();
        JsonObject out = response.asObject();
        if (const Json* id = request.find("id"))
            out.emplace("id", *id);
        sendResponse(conn, Json(std::move(out)));
        return;
    }
    if (op == "cache_stats") {
        Json response = handleCacheStats();
        JsonObject out = response.asObject();
        if (const Json* id = request.find("id"))
            out.emplace("id", *id);
        sendResponse(conn, Json(std::move(out)));
        return;
    }
    if (op == "drain") {
        if (!conn->loopback && !options_.allowRemoteDrain) {
            // Shutdown is irreversible; do not hand it to arbitrary
            // remote peers just because --host exposed the port.
            sendResponse(conn,
                         errorResponse(request, "drain_forbidden",
                                       "drain is restricted to loopback "
                                       "peers (--allow-remote-drain "
                                       "overrides)"));
            return;
        }
        JsonObject out;
        out.emplace("ok", Json(true));
        out.emplace("op", Json("drain"));
        out.emplace("draining", Json(true));
        if (const Json* id = request.find("id"))
            out.emplace("id", *id);
        sendResponse(conn, Json(std::move(out)));
        requestDrain();
        return;
    }
    if (op != "synth" && op != "run" && op != "batch" && op != "edit" &&
        op != "reexec") {
        ++malformedRequests_;
        sendResponse(conn, errorResponse(request, "unknown_op",
                                         "op '" + op + "'"));
        return;
    }

    if (draining_.load(std::memory_order_relaxed)) {
        ++rejectedDraining_;
        sendResponse(conn, errorResponse(request, "draining",
                                         "server is draining"));
        return;
    }

    // Admission 1: per-client quota.
    std::string client = request.stringOr("client", "anon");
    uint32_t retryAfterMs = 0;
    if (!admitQuota(client, &retryAfterMs)) {
        ++rejectedQuota_;
        telemetry_->add("serve.rejected.quota");
        sendResponse(conn,
                     errorResponse(request, "quota_exceeded",
                                   "client '" + client + "' over quota",
                                   retryAfterMs));
        return;
    }

    // Admission 2: bounded work queue.
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (queue_.size() >= options_.queueCapacity) {
            ++rejectedQueueFull_;
            telemetry_->add("serve.rejected.queue");
            sendResponse(conn,
                         errorResponse(request, "over_capacity",
                                       "work queue is full",
                                       options_.retryAfterMs));
            return;
        }
        queue_.push_back(Job{conn, request, op,
                             std::chrono::steady_clock::now()});
    }
    ++requestsAdmitted_;
    telemetry_->add("serve.admitted." + op);
    queueCv_.notify_one();
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void
Server::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopWorkers_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopWorkers_)
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }

        try {
            Json response = executeJob(job);
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job.admitted)
                    .count();
            if (job.op == "synth")
                latencySynth_.recordSeconds(seconds);
            else if (job.op == "batch")
                latencyBatch_.recordSeconds(seconds);
            else // run / edit / reexec share the run histogram
                latencyRun_.recordSeconds(seconds);
            sendResponse(job.conn, response);
        } catch (const std::exception& error) {
            // Nothing may escape a worker thread: an uncaught
            // exception in a std::thread is std::terminate, i.e. one
            // request taking the whole daemon down. executeJob
            // converts request failures already; this is the backstop
            // for the response path itself.
            try {
                sendResponse(job.conn,
                             errorResponse(job.request, "internal_error",
                                           error.what()));
            } catch (...) {
            }
        } catch (...) {
        }

        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            --inFlight_;
        }
        wakePoll();
    }
}

Json
Server::executeJob(const Job& job)
{
    try {
        Json result;
        if (job.op == "synth")
            result = executeSynth(job.request);
        else if (job.op == "run")
            result = executeRun(job.request);
        else if (job.op == "edit")
            result = executeEdit(job.request);
        else if (job.op == "reexec")
            result = executeReexec(job.request);
        else
            result = executeBatch(job.request);
        JsonObject out = result.asObject();
        out.emplace("op", Json(job.op));
        if (const Json* id = job.request.find("id"))
            out.emplace("id", *id);
        return Json(std::move(out));
    } catch (const Error& error) {
        return errorResponse(job.request, "request_failed", error.what());
    } catch (const std::exception& error) {
        return errorResponse(job.request, "internal_error", error.what());
    }
}

service::SynthRequest
Server::parseSynthFields(const Json& request)
{
    service::SynthRequest synth;
    const std::string grammarArg = request.at("grammar").asString();
    // "builtin:NAME" names a bundled benchmark; anything else is
    // inline L_a source (serve mode never touches the server's
    // filesystem on behalf of a client).
    if (grammarArg.rfind("builtin:", 0) == 0) {
        const grammars::Benchmark* builtin =
            pipeline::findBuiltin(grammarArg.substr(8));
        if (builtin == nullptr)
            userError("unknown builtin grammar '" + grammarArg + "'");
        synth.grammarSrc = builtin->source;
        synth.rootInterface = builtin->rootInterface;
    } else {
        synth.grammarSrc = grammarArg;
    }
    synth.traversalSrc = request.stringOr("traversal", "");
    std::string root = request.stringOr("root", "");
    if (!root.empty())
        synth.rootInterface = root;

    int64_t depth = request.intOr("depth", 3);
    if (depth < 1 || depth > kMaxDepthKnob)
        userError("depth must be in [1, " +
                  std::to_string(kMaxDepthKnob) + "]");
    synth.config.verify.maxDepth = static_cast<uint32_t>(depth);
    synth.config.engine =
        pipeline::parseEngineName(request.stringOr("engine", "ilp"));
    return synth;
}

Json
Server::executeSynth(const Json& request)
{
    service::SynthRequest synth = parseSynthFields(request);
    synth.telemetry = telemetry_;
    service::SynthOutcome outcome = service_->runNow(synth);
    if (!outcome.ok)
        return errorResponse(request, "synthesis_failed", outcome.failure);
    JsonObject out;
    out.emplace("ok", Json(true));
    out.emplace("provenance",
                Json(service::provenanceName(outcome.provenance)));
    out.emplace("key", Json(outcome.keyDigest));
    out.emplace("traversal", Json(outcome.concreteTraversal));
    out.emplace("cegis_iterations", Json(uint64_t{outcome.cegisIterations}));
    out.emplace("ms", Json(outcome.seconds * 1e3));
    return Json(std::move(out));
}

Json
Server::executeRun(const Json& request)
{
    service::SynthRequest synth = parseSynthFields(request);
    synth.telemetry = telemetry_;
    service::SynthOutcome outcome = service_->runNow(synth);
    if (!outcome.ok)
        return errorResponse(request, "synthesis_failed", outcome.failure);

    // The schedule is now in the cache; a fresh pipeline resolves it
    // from there and runs the execution stages.
    const std::string session = request.stringOr("session", "");
    obs::Telemetry local;
    pipeline::PipelineOptions options;
    options.config = synth.config;
    options.rootInterface = synth.rootInterface;
    options.cache = &service_->cache();
    // A pinned pipeline outlives this request, so it must not point at
    // the stack-scoped sink; the shared server sink is mutex-guarded.
    options.telemetry = session.empty() ? &local : telemetry_;
    options.nativeTier = &service_->nativeTier();
    options.tier = service_->tier();
    auto pipe = std::make_unique<pipeline::Pipeline>(
        synth.grammarSrc, synth.traversalSrc, std::move(options));

    const Json* treeSpec = request.find("tree");
    runtime::ExecOptions exec;
    exec.strategy = runtime::SweepStrategy::Auto;
    exec.pool = execPool_.get();

    std::optional<pipeline::ExecuteArtifact> artifact;
    if (treeSpec != nullptr) {
        tree::Tree tree = decodeTree(pipe->grammar(), *treeSpec);
        artifact.emplace(pipe->executeTree(tree, exec));
    } else {
        int64_t treeSize = request.intOr("tree_size", 1000);
        int64_t treeDepth = request.intOr("tree_depth", 0);
        int64_t seed = request.intOr("seed", 1);
        if (treeSize < 1 || treeSize > kMaxTreeSize)
            userError("tree_size out of range");
        if (treeDepth < 0 || seed < 0)
            userError("tree_depth and seed must be non-negative");
        pipeline::ExecuteRequest run;
        run.gen.targetNodes = static_cast<uint32_t>(treeSize);
        run.gen.maxDepth = static_cast<uint32_t>(treeDepth);
        run.gen.seed = static_cast<uint64_t>(seed);
        run.exec = exec;
        artifact.emplace(pipe->execute(run));
    }
    if (session.empty())
        telemetry_->absorb(local);

    JsonObject out;
    out.emplace("ok", Json(true));
    out.emplace("provenance",
                Json(service::provenanceName(outcome.provenance)));
    out.emplace("nodes", Json(uint64_t{artifact->arena.size()}));
    out.emplace("checksum", Json(artifact->arena.checksum()));
    out.emplace("node_visits", Json(artifact->stats.nodeVisits));
    out.emplace("rules_evaluated", Json(artifact->stats.rulesEvaluated));
    out.emplace("generate_ms", Json(artifact->generateSeconds * 1e3));
    out.emplace("execute_ms", Json(artifact->executeSeconds * 1e3));

    if (request.boolOr("check", false)) {
        uint64_t mismatches =
            countMismatches(pipe->grammar(), artifact->arena);
        out.emplace("check",
                    Json(mismatches == 0 ? "ok" : "mismatch"));
        out.emplace("mismatches", Json(mismatches));
        if (mismatches != 0)
            out.insert_or_assign("ok", Json(false));
    }
    if (treeSpec != nullptr && request.boolOr("return_outputs", false))
        out.emplace("nodes_out",
                    encodeOutputs(pipe->grammar(), artifact->arena));

    if (!session.empty()) {
        auto pinned = std::make_shared<PinnedSession>();
        pinned->pipe = std::move(pipe);
        pinned->arena = std::make_unique<runtime::TreeArena>(
            std::move(artifact->arena));
        pinSession(sessionKey(request), std::move(pinned));
        out.emplace("session", Json(session));
    }
    return Json(std::move(out));
}

// ---------------------------------------------------------------------------
// Pinned sessions: edit + reexec
// ---------------------------------------------------------------------------

std::string
Server::sessionKey(const Json& request)
{
    // Sessions are namespaced per client so one client cannot edit
    // another's pinned arena by guessing a session name.
    return request.stringOr("client", "anon") + '\x1f' +
           request.stringOr("session", "");
}

std::shared_ptr<Server::PinnedSession>
Server::findSession(const std::string& key)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    auto it = sessions_.find(key);
    if (it == sessions_.end())
        return nullptr;
    it->second->lastUsed = ++sessionTick_;
    return it->second;
}

void
Server::pinSession(const std::string& key,
                   std::shared_ptr<PinnedSession> session)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    session->lastUsed = ++sessionTick_;
    auto [it, inserted] = sessions_.insert_or_assign(key,
                                                     std::move(session));
    (void)it;
    if (inserted)
        ++sessionsCreated_;
    while (sessions_.size() > std::max<size_t>(1, options_.maxSessions)) {
        auto victim = sessions_.begin();
        for (auto walk = sessions_.begin(); walk != sessions_.end(); ++walk)
            if (walk->second->lastUsed < victim->second->lastUsed)
                victim = walk;
        if (victim->first == key)
            break; // never evict the entry we just pinned
        sessions_.erase(victim);
        ++sessionsEvicted_;
    }
}

Json
Server::executeEdit(const Json& request)
{
    const std::string session = request.stringOr("session", "");
    if (session.empty())
        userError("edit requires a 'session' field");
    std::shared_ptr<PinnedSession> pinned = findSession(sessionKey(request));
    if (pinned == nullptr)
        return errorResponse(request, "unknown_session",
                             "no pinned arena for session '" + session +
                                 "' (run with \"session\" first)");

    const Json* editsField = request.find("edits");
    if (editsField == nullptr || !editsField->isArray())
        userError("edit requires an 'edits' array");
    std::vector<incr::Edit> edits;
    for (const Json& item : editsField->asArray()) {
        incr::Edit e;
        const std::string kind = item.stringOr("kind", "mutate");
        int64_t node = item.intOr("node", -1);
        if (node < 0)
            userError("edit: 'node' must be a non-negative node index");
        e.node = static_cast<runtime::NodeIdx>(node);
        if (kind == "mutate") {
            e.kind = incr::Edit::Kind::MutateInput;
            int64_t attr = item.intOr("attr", 0);
            if (attr < 0)
                userError("edit: 'attr' must be a non-negative "
                          "attribute id");
            e.attr = static_cast<sem::AttrId>(attr);
            e.value = item.intOr("value", 0);
        } else if (kind == "replace") {
            e.kind = incr::Edit::Kind::ReplaceSubtree;
            int64_t nodes = item.intOr("subtree_nodes", 8);
            if (nodes < 1 || nodes > kMaxTreeSize)
                userError("edit: 'subtree_nodes' out of range");
            e.subtreeNodes = static_cast<uint32_t>(nodes);
            int64_t seed = item.intOr("seed", 1);
            if (seed < 0)
                userError("edit: 'seed' must be non-negative");
            e.seed = static_cast<uint64_t>(seed);
        } else {
            userError("edit: unknown kind '" + kind +
                      "' (expected 'mutate' or 'replace')");
        }
        edits.push_back(e);
    }

    std::lock_guard<std::mutex> lock(pinned->mutex);
    uint64_t applied = pinned->pipe->edit(*pinned->arena, edits);
    JsonObject out;
    out.emplace("ok", Json(true));
    out.emplace("session", Json(session));
    out.emplace("edits", Json(applied));
    out.emplace("nodes", Json(uint64_t{pinned->arena->size()}));
    return Json(std::move(out));
}

Json
Server::executeReexec(const Json& request)
{
    const std::string session = request.stringOr("session", "");
    if (session.empty())
        userError("reexec requires a 'session' field");
    std::shared_ptr<PinnedSession> pinned = findSession(sessionKey(request));
    if (pinned == nullptr)
        return errorResponse(request, "unknown_session",
                             "no pinned arena for session '" + session +
                                 "' (run with \"session\" first)");

    incr::IncrOptions incrOptions;
    incrOptions.pool = execPool_.get();
    const std::string strategy = request.stringOr("strategy", "auto");
    if (strategy == "auto")
        incrOptions.strategy = incr::IncrStrategy::Auto;
    else if (strategy == "stack")
        incrOptions.strategy = incr::IncrStrategy::Stack;
    else if (strategy == "wave")
        incrOptions.strategy = incr::IncrStrategy::Wave;
    else
        userError("reexec: unknown strategy '" + strategy +
                  "' (expected 'auto', 'stack' or 'wave')");

    std::lock_guard<std::mutex> lock(pinned->mutex);
    Timer timer;
    incr::IncrStats stats =
        pinned->pipe->reexecute(*pinned->arena, incrOptions);
    const double seconds = timer.seconds();

    JsonObject out;
    out.emplace("ok", Json(true));
    out.emplace("session", Json(session));
    out.emplace("nodes", Json(uint64_t{pinned->arena->size()}));
    out.emplace("checksum", Json(pinned->arena->checksum()));
    out.emplace("edits_applied", Json(stats.editsApplied));
    out.emplace("seeds", Json(stats.seeds));
    out.emplace("virgin_nodes", Json(stats.virginNodes));
    out.emplace("nodes_visited", Json(stats.nodesVisited));
    out.emplace("rules_checked", Json(stats.rulesChecked));
    out.emplace("rules_evaluated", Json(stats.rulesEvaluated));
    out.emplace("cells_dirtied", Json(stats.cellsDirtied));
    out.emplace("level_waves", Json(stats.levelWaves));
    out.emplace("walk", Json(stats.usedWave ? "wave" : "stack"));
    out.emplace("reexec_ms", Json(seconds * 1e3));

    if (request.boolOr("check", false)) {
        // Structural edits orphan rows in place, so the differential
        // reference only lines up against the compacted arena.
        uint64_t mismatches = countMismatches(
            pinned->pipe->grammar(), pinned->arena->compact());
        out.emplace("check", Json(mismatches == 0 ? "ok" : "mismatch"));
        out.emplace("mismatches", Json(mismatches));
        if (mismatches != 0)
            out.insert_or_assign("ok", Json(false));
    }
    return Json(std::move(out));
}

Json
Server::executeBatch(const Json& request)
{
    service::BatchRequest batch;
    batch.synth = parseSynthFields(request);
    batch.synth.telemetry = telemetry_;

    int64_t treeSize = request.intOr("tree_size", 1000);
    int64_t batchCount = request.intOr("batch_count", 1);
    int64_t seed = request.intOr("seed", 1);
    if (treeSize < 1 || treeSize > kMaxTreeSize)
        userError("tree_size out of range");
    if (batchCount < 1 || batchCount > kMaxBatchCount)
        userError("batch_count out of range");
    if (seed < 0)
        userError("seed must be non-negative");
    batch.gen.targetNodes = static_cast<uint32_t>(treeSize);
    batch.gen.seed = static_cast<uint64_t>(seed);
    batch.batchCount = static_cast<uint32_t>(batchCount);

    service::BatchOutcome outcome = service_->runBatch(batch);
    if (!outcome.ok)
        return errorResponse(request, "batch_failed", outcome.failure);
    JsonObject out;
    out.emplace("ok", Json(true));
    out.emplace("provenance",
                Json(service::provenanceName(outcome.synth.provenance)));
    out.emplace("trees", Json(uint64_t{batch.batchCount}));
    out.emplace("nodes", Json(outcome.nodes));
    out.emplace("checksum", Json(outcome.checksum));
    out.emplace("generate_ms", Json(outcome.generateSeconds * 1e3));
    out.emplace("execute_ms", Json(outcome.executeSeconds * 1e3));
    return Json(std::move(out));
}

// ---------------------------------------------------------------------------
// Inline ops
// ---------------------------------------------------------------------------

Json
Server::handleCacheStats()
{
    service::ScheduleCache& cache = service_->cache();
    service::ScheduleCache::Stats stats = cache.stats();
    JsonObject out;
    out.emplace("ok", Json(true));
    out.emplace("op", Json("cache_stats"));
    out.emplace("entries", Json(uint64_t{cache.size()}));
    out.emplace("capacity", Json(uint64_t{cache.capacity()}));
    out.emplace("hits", Json(stats.hits));
    out.emplace("misses", Json(stats.misses));
    out.emplace("insertions", Json(stats.insertions));
    out.emplace("evictions", Json(stats.evictions));
    return Json(std::move(out));
}

Json
Server::handleMetrics()
{
    ServerStats snapshot = stats();
    JsonObject out;
    out.emplace("ok", Json(true));
    out.emplace("op", Json("metrics"));
    out.emplace("draining", Json(draining()));
    out.emplace(
        "uptime_s",
        Json(std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - startTime_)
                 .count()));

    JsonObject queue;
    queue.emplace("depth", Json(uint64_t{snapshot.queueDepth}));
    queue.emplace("capacity", Json(uint64_t{options_.queueCapacity}));
    queue.emplace("in_flight", Json(uint64_t{snapshot.inFlight}));
    queue.emplace("workers", Json(uint64_t{workers_.size()}));
    out.emplace("queue", Json(std::move(queue)));

    JsonObject requests;
    requests.emplace("admitted", Json(snapshot.requestsAdmitted));
    requests.emplace("rejected_queue", Json(snapshot.rejectedQueueFull));
    requests.emplace("rejected_quota", Json(snapshot.rejectedQuota));
    requests.emplace("rejected_draining", Json(snapshot.rejectedDraining));
    requests.emplace("malformed", Json(snapshot.malformedRequests));
    requests.emplace("protocol_errors", Json(snapshot.protocolErrors));
    requests.emplace("responses", Json(snapshot.responsesSent));
    requests.emplace("responses_oversized",
                     Json(snapshot.responsesOversized));
    out.emplace("requests", Json(std::move(requests)));

    JsonObject connections;
    connections.emplace("accepted", Json(snapshot.connectionsAccepted));
    connections.emplace("closed", Json(snapshot.connectionsClosed));
    connections.emplace(
        "open", Json(snapshot.connectionsAccepted -
                     snapshot.connectionsClosed));
    out.emplace("connections", Json(std::move(connections)));

    service::ScheduleCache& cache = service_->cache();
    service::ScheduleCache::Stats cacheStats = cache.stats();
    JsonObject cacheOut;
    cacheOut.emplace("entries", Json(uint64_t{cache.size()}));
    cacheOut.emplace("hits", Json(cacheStats.hits));
    cacheOut.emplace("misses", Json(cacheStats.misses));
    cacheOut.emplace("warm_entries",
                     Json(telemetry_->counter("cache.warm.entries")));
    cacheOut.emplace("warm_ms",
                     Json(telemetry_->counter("cache.warm.ms")));
    out.emplace("cache", Json(std::move(cacheOut)));

    service::NativeTier& tier = service_->nativeTier();
    tier.exportCounters(*telemetry_);
    service::NativeTierStats tierStats = tier.stats();
    service::NativeCache::Stats nativeCache = tier.cache().stats();
    JsonObject nativeOut;
    nativeOut.emplace("tier",
                      Json(service::tierName(service_->tier())));
    nativeOut.emplace("compiler_available",
                      Json(tier.compilerAvailable()));
    nativeOut.emplace("compiler", Json(tier.compilerIdentity()));
    nativeOut.emplace("compiles", Json(tierStats.compiles));
    nativeOut.emplace("compile_failures",
                      Json(tierStats.compileFailures));
    nativeOut.emplace("compile_s", Json(tierStats.compileSeconds));
    nativeOut.emplace("swaps", Json(tierStats.swaps));
    nativeOut.emplace("pinned_keys", Json(tierStats.pinnedKeys));
    nativeOut.emplace("cache_hits", Json(nativeCache.hits));
    nativeOut.emplace("cache_misses", Json(nativeCache.misses));
    nativeOut.emplace("disk_hits", Json(nativeCache.diskHits));
    nativeOut.emplace("corrupt_evicted",
                      Json(nativeCache.corruptEvicted));
    out.emplace("native", Json(std::move(nativeOut)));

    // Execution-side parallelism and strategy-selection provenance:
    // which sweep strategies actually ran and why Auto picked them
    // (counters fed by Pipeline::exportExecCounters).
    JsonObject execOut;
    execOut.emplace("exec_threads", Json(uint64_t{execThreadsEffective_}));
    JsonObject strategyOut;
    for (const char* name : {"stack", "linear", "segmented", "tiled"}) {
        strategyOut.emplace(
            name, Json(telemetry_->counter(std::string("exec.strategy.") +
                                           name)));
    }
    execOut.emplace("strategy", Json(std::move(strategyOut)));
    JsonObject selectOut;
    for (const char* reason :
         {"explicit", "not-sweepable", "narrow-levels", "bytecode-heavy",
          "cache-resident", "large-tree", "strip-convertible"}) {
        selectOut.emplace(
            reason, Json(telemetry_->counter(std::string("exec.select.") +
                                             reason)));
    }
    execOut.emplace("selection", Json(std::move(selectOut)));
    execOut.emplace("tiles", Json(telemetry_->counter("exec.tiles")));
    execOut.emplace("tile_steals",
                    Json(telemetry_->counter("exec.tile_steals")));
    execOut.emplace("strips", Json(telemetry_->counter("exec.strips")));
    execOut.emplace("pred_ops",
                    Json(telemetry_->counter("exec.pred_ops")));
    execOut.emplace("fallback_nodes",
                    Json(telemetry_->counter("exec.fallback_nodes")));
    out.emplace("exec", Json(std::move(execOut)));

    JsonObject sessionsOut;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessionsOut.emplace("active", Json(uint64_t{sessions_.size()}));
    }
    sessionsOut.emplace("capacity", Json(uint64_t{options_.maxSessions}));
    sessionsOut.emplace("created", Json(sessionsCreated_.load()));
    sessionsOut.emplace("evicted", Json(sessionsEvicted_.load()));
    out.emplace("sessions", Json(std::move(sessionsOut)));

    service::ServiceStats svc = service_->stats();
    JsonObject svcOut;
    svcOut.emplace("requests", Json(svc.requests));
    svcOut.emplace("cache_hits", Json(svc.cacheHits));
    svcOut.emplace("joined_in_flight", Json(svc.joinedInFlight));
    svcOut.emplace("fresh_runs", Json(svc.freshRuns));
    svcOut.emplace("failures", Json(svc.failures));
    out.emplace("service", Json(std::move(svcOut)));

    JsonObject latency;
    latency.emplace("synth", latencyJson(latencySynth_));
    latency.emplace("run", latencyJson(latencyRun_));
    latency.emplace("batch", latencyJson(latencyBatch_));
    out.emplace("latency", Json(std::move(latency)));

    JsonObject counters;
    for (const auto& [name, value] : telemetry_->counters())
        counters.emplace(name, Json(value));
    out.emplace("counters", Json(std::move(counters)));
    return Json(std::move(out));
}

void
Server::sendResponse(const std::shared_ptr<Connection>& conn,
                     const Json& response)
{
    std::string payload = response.dump();
    if (payload.size() > options_.maxFrameBytes) {
        // A response that cannot fit in one frame (e.g. run with
        // return_outputs on a tree whose outputs expand past the
        // cap) must degrade into an error reply, never into an
        // appendFrame throw on a worker thread.
        ++responsesOversized_;
        Json substitute = errorResponse(
            response, "response_too_large",
            "serialized response (" + std::to_string(payload.size()) +
                " bytes) exceeds the " +
                std::to_string(options_.maxFrameBytes) +
                "-byte frame cap; raise --max-frame");
        payload = substitute.dump();
        if (payload.size() > options_.maxFrameBytes) {
            // Even the echoed id blew the cap: drop the echo.
            JsonObject minimal;
            minimal.emplace("ok", Json(false));
            minimal.emplace("error", Json("response_too_large"));
            payload = Json(std::move(minimal)).dump();
        }
    }
    bool needWake = false;
    {
        std::lock_guard<std::mutex> lock(conn->outMutex);
        if (conn->closed)
            return; // connection died while the job ran
        bool wasEmpty = conn->outbuf.empty();
        appendFrame(conn->outbuf, payload);
        needWake = wasEmpty;
    }
    ++responsesSent_;
    if (needWake)
        wakePoll();
}

} // namespace hecate::net
