#include "net/wire.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "support/diagnostics.hpp"

namespace hecate::net {

namespace {

uint32_t
decodeLength(const char* bytes)
{
    return (static_cast<uint32_t>(static_cast<unsigned char>(bytes[0])) << 24) |
           (static_cast<uint32_t>(static_cast<unsigned char>(bytes[1])) << 16) |
           (static_cast<uint32_t>(static_cast<unsigned char>(bytes[2])) << 8) |
           static_cast<uint32_t>(static_cast<unsigned char>(bytes[3]));
}

void
encodeLength(char* bytes, uint32_t length)
{
    bytes[0] = static_cast<char>((length >> 24) & 0xFF);
    bytes[1] = static_cast<char>((length >> 16) & 0xFF);
    bytes[2] = static_cast<char>((length >> 8) & 0xFF);
    bytes[3] = static_cast<char>(length & 0xFF);
}

} // namespace

void
appendFrame(std::string& out, std::string_view payload)
{
    if (payload.empty() || payload.size() > kFrameHardLimit)
        userError("frame payload size out of range");
    char prefix[4];
    encodeLength(prefix, static_cast<uint32_t>(payload.size()));
    out.append(prefix, 4);
    out.append(payload);
}

std::optional<std::string>
FrameDecoder::next()
{
    if (buffer_.size() < 4)
        return std::nullopt;
    uint32_t length = decodeLength(buffer_.data());
    if (length == 0 || length > maxPayload_ || length > kFrameHardLimit) {
        userError("frame length " + std::to_string(length) +
                  " outside accepted range [1, " +
                  std::to_string(maxPayload_) + "]");
    }
    if (buffer_.size() < 4 + static_cast<size_t>(length))
        return std::nullopt;
    std::string payload = buffer_.substr(4, length);
    buffer_.erase(0, 4 + static_cast<size_t>(length));
    return payload;
}

namespace {

void
writeAll(int fd, const char* data, size_t size)
{
    size_t sent = 0;
    while (sent < size) {
        ssize_t n = ::write(fd, data + sent, size - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            userError(std::string("socket write failed: ") +
                      std::strerror(errno));
        }
        sent += static_cast<size_t>(n);
    }
}

/** Read exactly @p size bytes; false on EOF before the first byte. */
bool
readAll(int fd, char* data, size_t size)
{
    size_t got = 0;
    while (got < size) {
        ssize_t n = ::read(fd, data + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            userError(std::string("socket read failed: ") +
                      std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0)
                return false;
            userError("connection closed mid-frame");
        }
        got += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

void
writeFrame(int fd, std::string_view payload)
{
    std::string frame;
    frame.reserve(payload.size() + 4);
    appendFrame(frame, payload);
    writeAll(fd, frame.data(), frame.size());
}

std::optional<std::string>
readFrame(int fd, uint32_t maxPayload)
{
    char prefix[4];
    if (!readAll(fd, prefix, 4))
        return std::nullopt;
    uint32_t length = decodeLength(prefix);
    if (length == 0 || length > maxPayload || length > kFrameHardLimit)
        userError("frame length " + std::to_string(length) +
                  " outside accepted range");
    std::string payload(length, '\0');
    if (!readAll(fd, payload.data(), length))
        userError("connection closed mid-frame");
    return payload;
}

} // namespace hecate::net
