#pragma once

/**
 * @file
 * Minimal JSON value model for the serve protocol: parse, build,
 * serialize. Strict by design — the parser rejects trailing garbage,
 * unescaped control characters, and nesting deeper than kMaxDepth, so
 * a malformed client frame turns into one UserError instead of
 * undefined parser state.
 *
 * Numbers keep an integer/double distinction: attribute values are
 * int64 end to end, and a client-supplied tree must round-trip
 * full-width inputs without drifting through a double.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hecate::net {

class Json;

using JsonArray = std::vector<Json>;
/** std::map: deterministic member order in serialized output. */
using JsonObject = std::map<std::string, Json>;

/** One JSON value (null / bool / int / double / string / array / object). */
class Json {
  public:
    enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool value) : kind_(Kind::Bool), bool_(value) {}
    Json(int value) : kind_(Kind::Int), int_(value) {}
    Json(unsigned value) : kind_(Kind::Int), int_(value) {}
    Json(int64_t value) : kind_(Kind::Int), int_(value) {}
    Json(uint64_t value) : kind_(Kind::Int), int_(static_cast<int64_t>(value)) {}
    Json(double value) : kind_(Kind::Double), double_(value) {}
    Json(const char* value) : kind_(Kind::String), string_(value) {}
    Json(std::string value) : kind_(Kind::String), string_(std::move(value)) {}
    Json(JsonArray value)
        : kind_(Kind::Array), array_(std::make_shared<JsonArray>(std::move(value)))
    {
    }
    Json(JsonObject value)
        : kind_(Kind::Object),
          object_(std::make_shared<JsonObject>(std::move(value)))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isNumber() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; each throws UserError on a kind mismatch. */
    bool asBool() const;
    int64_t asInt() const;  ///< Double accepted when integral
    double asDouble() const;
    const std::string& asString() const;
    const JsonArray& asArray() const;
    const JsonObject& asObject() const;

    /** Object member; UserError when absent or not an object. */
    const Json& at(const std::string& key) const;

    /** Object member or nullptr (nullptr too when not an object). */
    const Json* find(const std::string& key) const;

    /** Member when present, @p fallback otherwise (for optional knobs). */
    int64_t intOr(const std::string& key, int64_t fallback) const;
    double doubleOr(const std::string& key, double fallback) const;
    bool boolOr(const std::string& key, bool fallback) const;
    std::string stringOr(const std::string& key, std::string fallback) const;

    /** Compact single-line serialization. */
    std::string dump() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    // Containers sit behind shared_ptr so a Json is cheap to copy when
    // fanning a parsed request out to workers (values are never
    // mutated after parse).
    std::shared_ptr<JsonArray> array_;
    std::shared_ptr<JsonObject> object_;
};

/** Nesting bound enforced by parseJson (arrays + objects combined). */
inline constexpr int kMaxJsonDepth = 64;

/**
 * Parse @p text as one JSON document. Throws UserError on any syntax
 * error, trailing non-whitespace bytes, or nesting past kMaxJsonDepth.
 */
Json parseJson(std::string_view text);

} // namespace hecate::net
