#include "net/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/diagnostics.hpp"

namespace hecate::net {

Client::Client(const std::string& host, uint16_t port,
               uint32_t maxFrameBytes)
    : maxFrameBytes_(maxFrameBytes)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        userError(std::string("cannot create socket: ") +
                  std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        userError("invalid server host '" + host + "'");
    }
    int rc;
    do {
        rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        userError("cannot connect to " + host + ":" +
                  std::to_string(port) + ": " + std::strerror(err));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client()
{
    close();
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), maxFrameBytes_(other.maxFrameBytes_)
{
    other.fd_ = -1;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::send(const Json& request)
{
    checkInvariant(fd_ >= 0, "Client::send on a closed connection");
    writeFrame(fd_, request.dump());
}

std::optional<Json>
Client::receive()
{
    checkInvariant(fd_ >= 0, "Client::receive on a closed connection");
    std::optional<std::string> payload = readFrame(fd_, maxFrameBytes_);
    if (!payload.has_value())
        return std::nullopt;
    return parseJson(*payload);
}

Json
Client::call(const Json& request)
{
    send(request);
    std::optional<Json> response = receive();
    if (!response.has_value())
        userError("server closed the connection before responding");
    return *response;
}

} // namespace hecate::net
