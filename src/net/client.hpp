#pragma once

/**
 * @file
 * Minimal blocking client for the serve protocol: connect, send one
 * length-prefixed JSON request per call(), read frames back. Used by
 * the tests and bench_serve; the CLI's `serve --probe` also goes
 * through it. Pipelining is explicit: send() enqueues without waiting,
 * receive() blocks for the next response frame — bench_serve keeps
 * hundreds of requests in flight per connection this way.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "net/json.hpp"
#include "net/wire.hpp"

namespace hecate::net {

/** One blocking protocol connection. */
class Client {
  public:
    /** Connect to @p host:@p port; throws UserError on failure. */
    Client(const std::string& host, uint16_t port,
           uint32_t maxFrameBytes = kFrameHardLimit);
    ~Client();

    Client(Client&& other) noexcept;
    Client& operator=(Client&&) = delete;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /** Round trip: send @p request, block for one response. */
    Json call(const Json& request);

    /** Pipelined half: send without waiting for the response. */
    void send(const Json& request);

    /**
     * Pipelined half: block for the next response frame; nullopt on
     * clean server-side close.
     */
    std::optional<Json> receive();

    /** Close the connection early (destructor also closes). */
    void close();

    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    uint32_t maxFrameBytes_;
};

} // namespace hecate::net
