#pragma once

/**
 * @file
 * The benchmark attribute grammars of the paper's evaluation:
 *
 *  - The five Grafter benchmarks of Table 2 — BinaryTree (16 rules),
 *    FMM (14), Piecewise (12), AST (136), RenderTree (50);
 *  - The three FTL layout grammars of Fig. 15 — CSS-float (192),
 *    CSS-margin (178), CSS-full (244).
 *
 * The original benchmark sources (Grafter's C++ suites, FTL's Prolog
 * grammars) are not redistributable here, so these are re-authored in
 * L_a with the paper's exact rule counts, pass structure, and
 * dependency style (bottom-up synthesized passes + top-down inherited
 * passes); see DESIGN.md's substitution table. Each grammar is kept as
 * DSL source text and parsed through the regular front end.
 */

#include <string>
#include <vector>

#include "sem/grammar.hpp"

namespace hecate::grammars {

/** One benchmark problem. */
struct Benchmark {
    std::string name;
    std::string source;        ///< L_a source text
    std::string rootInterface; ///< interface of tree roots
    size_t expectedRules = 0;  ///< the paper's "# of Rules"
    std::string description;
};

/** Grafter Table 2 benchmarks. */
const Benchmark& binaryTree();
const Benchmark& fmm();
const Benchmark& piecewise();
const Benchmark& astBench();
const Benchmark& renderTree();

/** FTL Fig. 15 benchmarks. */
const Benchmark& cssFloat();
const Benchmark& cssMargin();
const Benchmark& cssFull();

/** The five Grafter benchmarks in Table 2 order. */
std::vector<const Benchmark*> grafterBenchmarks();

/** The three CSS benchmarks in Fig. 15 order. */
std::vector<const Benchmark*> cssBenchmarks();

/** Parse + analyze a benchmark's grammar. */
sem::Grammar load(const Benchmark& benchmark);

/** Root interface id of @p benchmark within @p grammar. */
sem::InterfaceId rootInterface(const sem::Grammar& grammar,
                               const Benchmark& benchmark);

} // namespace hecate::grammars
