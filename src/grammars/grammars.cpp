#include "grammars/grammars.hpp"

#include <sstream>

#include "lang/parser.hpp"

namespace hecate::grammars {

namespace {

// ---------------------------------------------------------------------------
// Hand-written grammars (BinaryTree, FMM, Piecewise, RenderTree)
// ---------------------------------------------------------------------------

/** BinaryTree: tree statistics in two fusable bottom-up passes. */
const char* kBinaryTreeSrc = R"(
interface BT {
    input v0 : int;
    output sum, cnt, hgt, mx, mn, avg, dev, ok : int;
}
class Node : BT {
    children {
        l : Optional[BT];
        r : Optional[BT];
    }
    rules(aggregate) {
        self.sum := self.v0 + l.sum + r.sum;
        self.cnt := 1 + l.cnt + r.cnt;
        self.hgt := 1 + max(l.hgt, r.hgt);
        self.mx  := max(self.v0, max(l.mx, r.mx));
    }
    rules(analyze) {
        self.mn  := min(self.v0, min(l.mn, r.mn));
        self.avg := self.sum / self.cnt;
        self.dev := abs(self.v0 - self.avg);
        self.ok  := (self.mn <= self.v0) + (self.v0 <= self.mx);
    }
}
class Tip : BT {
    rules(aggregate) {
        self.sum := self.v0;
        self.cnt := 1;
        self.hgt := 1;
        self.mx  := self.v0;
    }
    rules(analyze) {
        self.mn  := self.v0;
        self.avg := self.sum / self.cnt;
        self.dev := abs(self.v0 - self.avg);
        self.ok  := 1;
    }
}
)";

/** FMM: upward multipole pass, downward field pass, evaluation pass. */
const char* kFmmSrc = R"(
interface Cell {
    input q0, x0 : int;
    output m, w, p, e, d : int;
}
interface Space {
    input s0 : int;
    output t1, t2, t3 : int;
}
class Box : Cell {
    children {
        l : Optional[Cell];
        r : Optional[Cell];
    }
    rules(upward) {
        self.m := self.q0 + l.m + r.m;
        self.w := self.x0 * self.q0 + l.w + r.w;
    }
    rules(downward) {
        l.d := self.d + self.x0;
        r.d := self.d - self.x0;
    }
    rules(evaluate) {
        self.p := self.d + self.m;
        self.e := abs(self.w - self.m);
    }
}
class Body : Cell {
    rules(upward) {
        self.m := self.q0;
        self.w := self.x0 * self.q0;
    }
    rules(evaluate) {
        self.p := self.d + self.m;
        self.e := abs(self.w - self.m);
    }
}
class Sim : Space {
    children {
        b : Optional[Cell];
    }
    rules(downward) {
        b.d := self.s0;
    }
    rules(evaluate) {
        self.t1 := b.p;
        self.t2 := b.m + self.s0;
        self.t3 := b.w;
    }
}
)";

/** Piecewise: piecewise-linear function measurement and evaluation. */
const char* kPiecewiseSrc = R"(
interface Seg {
    input a0, b0, lo0, hi0 : int;
    output len, val, mn, mx : int;
}
interface PF {
    input x0 : int;
    output y, n, s, m : int;
}
class Split : Seg {
    children {
        l : Optional[Seg];
        r : Optional[Seg];
    }
    rules(measure) {
        self.len := l.len + r.len;
        self.mn  := min(l.mn, r.mn);
        self.mx  := max(l.mx, r.mx);
    }
    rules(evaluate) {
        self.val := l.val + r.val;
    }
}
class Piece : Seg {
    rules(measure) {
        self.len := self.hi0 - self.lo0;
        self.mn  := min(self.a0 * self.lo0 + self.b0,
                        self.a0 * self.hi0 + self.b0);
        self.mx  := max(self.a0 * self.lo0 + self.b0,
                        self.a0 * self.hi0 + self.b0);
    }
    rules(evaluate) {
        self.val := self.a0 * self.lo0 + self.b0;
    }
}
class PFunc : PF {
    children {
        f : Optional[Seg];
    }
    rules(measure) {
        self.n := f.len;
        self.s := f.mx - f.mn;
    }
    rules(evaluate) {
        self.y := f.val + self.x0;
        self.m := f.mn + self.x0;
    }
}
)";

/**
 * RenderTree: the five rendering passes of §6.2 over a first-child /
 * next-sibling document tree: flex width resolution, relative widths,
 * font propagation (inherited), heights (which consume the inherited
 * font size), and position finalization (inherited).
 */
const char* kRenderTreeSrc = R"(
interface Box {
    input w0, h0, fs1 : int;
    output wf, w, w1, h, h1, fs, ax, ay : int;
}
interface Doc {
    input fs0 : int;
    output total : int;
}
class Horiz : Box {
    children {
        nx : Optional[Box];
        fc : Optional[Box];
    }
    rules(flexWidths) {
        self.wf := max(self.w0, fc.wf);
    }
    rules(relWidths) {
        self.w  := max(self.wf, fc.w1);
        self.w1 := max(self.w, nx.w1);
    }
    rules(fonts) {
        fc.fs := max(self.fs, self.fs1);
        nx.fs := self.fs;
    }
    rules(heights) {
        self.h  := max(self.h0, fc.h1) + self.fs;
        self.h1 := max(self.h, nx.h1);
    }
    rules(positions) {
        fc.ax := self.ax + 1;
        nx.ax := self.ax + self.w0;
        fc.ay := self.ay + 1;
        nx.ay := self.ay;
    }
}
class Vert : Box {
    children {
        nx : Optional[Box];
        fc : Optional[Box];
    }
    rules(flexWidths) {
        self.wf := self.w0 + fc.wf;
    }
    rules(relWidths) {
        self.w  := max(self.wf, fc.w1);
        self.w1 := max(self.w, nx.w1);
    }
    rules(fonts) {
        fc.fs := self.fs + self.fs1;
        nx.fs := self.fs;
    }
    rules(heights) {
        self.h  := self.h0 + fc.h1 + self.fs;
        self.h1 := self.h + nx.h1;
    }
    rules(positions) {
        fc.ax := self.ax + 2;
        nx.ax := self.ax;
        fc.ay := self.ay + 2;
        nx.ay := self.ay + self.h0;
    }
}
class Text : Box {
    children {
        nx : Optional[Box];
    }
    rules(flexWidths) {
        self.wf := self.w0;
    }
    rules(relWidths) {
        self.w  := self.wf;
        self.w1 := max(self.w, nx.w1);
    }
    rules(fonts) {
        nx.fs := self.fs;
    }
    rules(heights) {
        self.h  := self.h0 + self.fs;
        self.h1 := self.h + nx.h1;
    }
    rules(positions) {
        nx.ax := self.ax + self.w0;
        nx.ay := self.ay;
    }
}
class Image : Box {
    children {
        nx : Optional[Box];
    }
    rules(flexWidths) {
        self.wf := self.w0 + 1;
    }
    rules(relWidths) {
        self.w  := self.wf;
        self.w1 := max(self.w, nx.w1);
    }
    rules(fonts) {
        nx.fs := self.fs;
    }
    rules(heights) {
        self.h  := self.h0 + 1;
        self.h1 := self.h + nx.h1;
    }
    rules(positions) {
        nx.ax := self.ax + self.w0;
        nx.ay := self.ay;
    }
}
class List : Box {
    children {
        nx : Optional[Box];
    }
    rules(flexWidths) {
        self.wf := self.w0 + 2;
    }
    rules(relWidths) {
        self.w  := self.wf;
        self.w1 := max(self.w, nx.w1);
    }
    rules(fonts) {
        nx.fs := self.fs;
    }
    rules(heights) {
        self.h  := self.h0 + self.fs + 1;
        self.h1 := self.h + nx.h1;
    }
    rules(positions) {
        nx.ax := self.ax + self.w0;
        nx.ay := self.ay;
    }
}
class Document : Doc {
    children {
        b : Optional[Box];
    }
    rules(fonts) {
        b.fs := self.fs0;
    }
    rules(heights) {
        self.total := b.h1 + b.w1;
    }
    rules(positions) {
        b.ax := 0;
        b.ay := 0;
    }
}
)";

// ---------------------------------------------------------------------------
// Generated grammar families (AST and the CSS layout grammars)
// ---------------------------------------------------------------------------

/** Parameterization of a generated pass grammar. */
struct GenSpec {
    std::string ifaceName;                 ///< node interface
    std::string rootIface;                 ///< root interface
    std::string rootClass;                 ///< root class name
    std::vector<std::string> synthesized;  ///< attr names, pass-ordered
    std::vector<std::string> inherited;    ///< attr names
    std::vector<std::string> passes;       ///< pass names
    /** (class name, child count) — children are Optional[ifaceName]. */
    std::vector<std::pair<std::string, int>> classes;
    int rootOutputs = 2;
};

/** Pass tag for synthesized attribute @p j: block-wise over passes. */
std::string
passFor(const GenSpec& spec, size_t j)
{
    size_t block = j * spec.passes.size() / spec.synthesized.size();
    return spec.passes[std::min(block, spec.passes.size() - 1)];
}

/**
 * Generate L_a source for @p spec. Dependency style: synthesized
 * attribute j reads the same attribute of every child, plus the
 * previous synthesized attribute (odd j) and an inherited attribute
 * (j % 3 == 2) — a mix of bottom-up chains, intra-node chains, and
 * top-down coupling like real layout grammars.
 */
std::string
generateGrammar(const GenSpec& spec)
{
    std::ostringstream os;
    const std::string& n = spec.ifaceName;

    os << "interface " << n << " {\n    input x0, y0 : int;\n    output ";
    for (size_t j = 0; j < spec.synthesized.size(); ++j) {
        if (j > 0)
            os << ", ";
        os << spec.synthesized[j];
    }
    for (const std::string& attr : spec.inherited)
        os << ", " << attr;
    os << " : int;\n}\n";

    os << "interface " << spec.rootIface << " {\n    input r0 : int;\n"
       << "    output ";
    for (int u = 0; u < spec.rootOutputs; ++u) {
        if (u > 0)
            os << ", ";
        os << "out" << u;
    }
    os << " : int;\n}\n";

    for (const auto& [cls_name, child_count] : spec.classes) {
        os << "class " << cls_name << " : " << n << " {\n";
        if (child_count > 0) {
            os << "    children {\n";
            for (int c = 0; c < child_count; ++c)
                os << "        c" << c << " : Optional[" << n << "];\n";
            os << "    }\n";
        }
        // Synthesized rules, one pass block at a time.
        std::string open_pass;
        for (size_t j = 0; j < spec.synthesized.size(); ++j) {
            std::string pass = passFor(spec, j);
            if (pass != open_pass) {
                if (!open_pass.empty())
                    os << "    }\n";
                os << "    rules(" << pass << ") {\n";
                open_pass = pass;
            }
            const std::string& attr = spec.synthesized[j];
            os << "        self." << attr << " := self.x0";
            for (int c = 0; c < child_count; ++c)
                os << " + c" << c << "." << attr;
            if (j > 0 && j % 2 == 1)
                os << " + self." << spec.synthesized[j - 1];
            if (j % 3 == 2 && !spec.inherited.empty())
                os << " + self." << spec.inherited[j % spec.inherited.size()];
            os << ";\n";
        }
        if (!open_pass.empty())
            os << "    }\n";
        // Inherited rules (tagged with the first pass so any later
        // synthesized pass may read them).
        if (child_count > 0 && !spec.inherited.empty()) {
            os << "    rules(" << spec.passes.front() << ") {\n";
            for (int c = 0; c < child_count; ++c) {
                for (size_t t = 0; t < spec.inherited.size(); ++t) {
                    os << "        c" << c << "." << spec.inherited[t]
                       << " := self." << spec.inherited[t] << " + self.y0 + "
                       << t << ";\n";
                }
            }
            os << "    }\n";
        }
        os << "}\n";
    }

    // Root class: seeds the inherited attributes, consumes synthesized
    // results in the final pass.
    os << "class " << spec.rootClass << " : " << spec.rootIface << " {\n"
       << "    children {\n        b : Optional[" << n << "];\n    }\n";
    if (!spec.inherited.empty()) {
        os << "    rules(" << spec.passes.front() << ") {\n";
        for (size_t t = 0; t < spec.inherited.size(); ++t) {
            os << "        b." << spec.inherited[t] << " := self.r0 + " << t
               << ";\n";
        }
        os << "    }\n";
    }
    os << "    rules(" << spec.passes.back() << ") {\n";
    for (int u = 0; u < spec.rootOutputs; ++u) {
        os << "        self.out" << u << " := b."
           << spec.synthesized[u % spec.synthesized.size()]
           << " + self.r0;\n";
    }
    os << "    }\n}\n";
    return os.str();
}

Benchmark
makeGenerated(const std::string& name, const GenSpec& spec,
              size_t expected_rules, const std::string& description)
{
    Benchmark bench;
    bench.name = name;
    bench.source = generateGrammar(spec);
    bench.rootInterface = spec.rootIface;
    bench.expectedRules = expected_rules;
    bench.description = description;
    return bench;
}

/** AST: six compiler passes over a 12-class imperative-language AST. */
Benchmark
makeAstBench()
{
    GenSpec spec;
    spec.ifaceName = "N";
    spec.rootIface = "P";
    spec.rootClass = "Program";
    spec.synthesized = {"dec", "inc", "cp", "vr", "cf", "db"};
    spec.inherited = {"env", "dp"};
    spec.passes = {"desugarDecr", "desugarIncr", "constProp",
                   "varRefsToConst", "constFold", "deadBranch"};
    spec.classes = {
        {"If", 4},     {"For", 4},   {"While", 3}, {"Func", 3},
        {"BinOp", 3},  {"Call", 3},  {"Assign", 2}, {"Decr", 2},
        {"Incr", 2},   {"Block", 2}, {"Ret", 2},   {"Num", 0},
    };
    spec.rootOutputs = 2;
    return makeGenerated(
        "AST", spec, 136,
        "12-class imperative AST with six de-sugaring/optimization "
        "passes (decrement/increment desugaring, constant propagation, "
        "variable-reference replacement, constant folding, unreachable-"
        "branch elimination)");
}

Benchmark
makeCssFloat()
{
    GenSpec spec;
    spec.ifaceName = "E";
    spec.rootIface = "V";
    spec.rootClass = "Viewport";
    spec.synthesized = {"minW", "prefW", "usedW", "innerW", "lineH",
                        "usedH", "baseline", "floatLw", "floatRw",
                        "clearY"};
    spec.inherited = {"cbW", "availL", "availR", "fsz"};
    spec.passes = {"intrinsic", "widths", "floats", "heights"};
    spec.classes = {
        {"BlockBox", 4}, {"InlineBox", 4}, {"FloatLBox", 3},
        {"FloatRBox", 3}, {"AnonBox", 3},  {"LineBox", 3},
        {"TextRun", 2},  {"Marker", 1},    {"Break", 1},
    };
    spec.rootOutputs = 2;
    return makeGenerated(
        "CSS-float", spec, 192,
        "basic CSS box rules plus left/right float placement");
}

Benchmark
makeCssMargin()
{
    GenSpec spec;
    spec.ifaceName = "E";
    spec.rootIface = "V";
    spec.rootClass = "Viewport";
    spec.synthesized = {"minW", "prefW", "usedW", "innerW", "marginT",
                        "marginB", "collapsedT", "collapsedB", "usedH",
                        "edgeY"};
    spec.inherited = {"cbW", "inFlow", "collapseCtx", "fsz"};
    spec.passes = {"intrinsic", "widths", "margins", "heights"};
    spec.classes = {
        {"BlockBox", 3}, {"InlineBox", 3}, {"AnonBox", 3},
        {"LineBox", 2},  {"TextRun", 2},   {"EmptyBox", 2},
        {"Spacer", 2},   {"Marker", 2},    {"Break", 1},
    };
    spec.rootOutputs = 4;
    return makeGenerated(
        "CSS-margin", spec, 178,
        "basic CSS box rules plus vertical margin collapsing");
}

Benchmark
makeCssFull()
{
    GenSpec spec;
    spec.ifaceName = "E";
    spec.rootIface = "V";
    spec.rootClass = "Viewport";
    spec.synthesized = {"minW", "prefW", "usedW", "innerW", "lineH",
                        "usedH", "baseline", "floatLw", "floatRw",
                        "clearY", "marginT", "marginB", "collapsedM"};
    spec.inherited = {"cbW", "availL", "availR", "fsz", "absCtx"};
    spec.passes = {"intrinsic", "widths", "floats", "margins",
                   "heights", "absolutes"};
    spec.classes = {
        {"BlockBox", 3}, {"InlineBox", 3}, {"FloatLBox", 3},
        {"FloatRBox", 2}, {"AbsBox", 2},   {"AnonBox", 2},
        {"LineBox", 2},  {"TextRun", 2},   {"Marker", 1},
        {"Break", 1},
    };
    spec.rootOutputs = 4;
    return makeGenerated(
        "CSS-full", spec, 244,
        "superset of CSS-float and CSS-margin: floats, margin "
        "collapsing, absolute positioning, and the remaining "
        "challenging CSS features");
}

Benchmark
makeHandWritten(const std::string& name, const char* source,
                const std::string& root_iface, size_t expected,
                const std::string& description)
{
    Benchmark bench;
    bench.name = name;
    bench.source = source;
    bench.rootInterface = root_iface;
    bench.expectedRules = expected;
    bench.description = description;
    return bench;
}

} // namespace

const Benchmark&
binaryTree()
{
    static const Benchmark bench = makeHandWritten(
        "BinaryTree", kBinaryTreeSrc, "BT", 16,
        "binary tree statistics in two bottom-up passes");
    return bench;
}

const Benchmark&
fmm()
{
    static const Benchmark bench = makeHandWritten(
        "FMM", kFmmSrc, "Space", 14,
        "fast-multipole style upward/downward/evaluate passes");
    return bench;
}

const Benchmark&
piecewise()
{
    static const Benchmark bench = makeHandWritten(
        "Piecewise", kPiecewiseSrc, "PF", 12,
        "piecewise-linear function measurement and evaluation");
    return bench;
}

const Benchmark&
astBench()
{
    static const Benchmark bench = makeAstBench();
    return bench;
}

const Benchmark&
renderTree()
{
    static const Benchmark bench = makeHandWritten(
        "RenderTree", kRenderTreeSrc, "Doc", 50,
        "five rendering passes over a first-child/next-sibling "
        "document tree (§6.2)");
    return bench;
}

const Benchmark&
cssFloat()
{
    static const Benchmark bench = makeCssFloat();
    return bench;
}

const Benchmark&
cssMargin()
{
    static const Benchmark bench = makeCssMargin();
    return bench;
}

const Benchmark&
cssFull()
{
    static const Benchmark bench = makeCssFull();
    return bench;
}

std::vector<const Benchmark*>
grafterBenchmarks()
{
    return {&binaryTree(), &fmm(), &piecewise(), &astBench(),
            &renderTree()};
}

std::vector<const Benchmark*>
cssBenchmarks()
{
    return {&cssFloat(), &cssMargin(), &cssFull()};
}

sem::Grammar
load(const Benchmark& benchmark)
{
    return sem::Grammar::analyze(lang::parseGrammar(benchmark.source));
}

sem::InterfaceId
rootInterface(const sem::Grammar& grammar, const Benchmark& benchmark)
{
    sem::InterfaceId id = grammar.findInterface(benchmark.rootInterface);
    checkInvariant(id != sem::kInvalidId, "benchmark root interface");
    return id;
}

} // namespace hecate::grammars
