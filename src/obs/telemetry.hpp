#pragma once

/**
 * @file
 * Structured telemetry for the synthesis pipeline: RAII scoped spans
 * (nested per stage / CEGIS round / solver call, across threads) and a
 * thread-safe counter registry, with exporters for Chrome trace-event
 * JSON (chrome://tracing, Perfetto) and a flat stats JSON.
 *
 * A Telemetry object is a sink. Pipeline stages, the CEGIS loop, the
 * encoders, and the executor all take a `Telemetry&`; code that wants
 * no telemetry passes Telemetry::nil(), a process-wide disabled sink
 * whose spans and counters are no-ops. This replaces the nullable
 * `GeneralStats*` / `IlpStats*` out-params that used to thread through
 * symbolic/ and the flat timing fields bolted onto SynthesisResult.
 *
 * Span nesting works across threads: every thread keeps its own
 * current-span frame, so spans opened on a pool worker (parallel
 * verification, the fork-join executor) parent correctly within the
 * worker and carry a stable per-thread id for the trace viewer.
 *
 * absorb() merges one sink into another — counters add, spans rebase
 * onto the destination's epoch (both clocks are steady_clock, so the
 * rebase is exact). The service uses this to fold each request's
 * private sink into the caller-wide one.
 */

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hecate::obs {

/** One completed span, times in microseconds since the sink's epoch. */
struct SpanRecord {
    std::string name;
    std::string category; ///< "stage", "phase", "solver", ...
    uint32_t tid = 0;     ///< stable small per-thread id
    uint64_t id = 0;      ///< unique within the process
    uint64_t parent = 0;  ///< enclosing span on the same thread; 0 = root
    int64_t index = -1;   ///< optional ordinal (CEGIS round, ...); -1 = none
    uint64_t startUs = 0;
    uint64_t durUs = 0;
};

class Telemetry;

/**
 * RAII handle for an open span. Records on destruction (or an explicit
 * end()). Move-only; spans on one thread must close LIFO, which scoping
 * guarantees.
 */
class Span {
  public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    /** Close the span early; idempotent. */
    void end();

  private:
    friend class Telemetry;
    Span() = default;

    Telemetry* telemetry_ = nullptr; ///< nullptr = inert (disabled sink)
    std::string name_;
    const char* category_ = "";
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
    int64_t index_ = -1;
    std::chrono::steady_clock::time_point start_;
    const Telemetry* prevTelemetry_ = nullptr; ///< restored frame
    uint64_t prevSpan_ = 0;
};

/** Thread-safe span buffer + counter registry with JSON exporters. */
class Telemetry {
  public:
    Telemetry();

    Telemetry(const Telemetry&) = delete;
    Telemetry& operator=(const Telemetry&) = delete;

    /** The process-wide disabled sink: every operation is a no-op. */
    static Telemetry& nil();

    bool enabled() const { return enabled_; }

    /**
     * Open a span. @p category groups spans for the exporters ("stage"
     * spans feed the per-stage wall-time table). @p index is an
     * optional ordinal shown in the trace args (e.g. the CEGIS round).
     */
    Span span(std::string_view name, const char* category = "phase",
              int64_t index = -1);

    /** Add @p delta to counter @p name (creates it at zero). */
    void add(std::string_view name, double delta = 1.0);

    /** Set counter @p name to @p value (last write wins). */
    void set(std::string_view name, double value);

    /** Current value of a counter (0 when absent). */
    double counter(std::string_view name) const;

    /** Snapshot of every counter, sorted by name. */
    std::map<std::string, double> counters() const;

    /** Snapshot of every completed span, in completion order. */
    std::vector<SpanRecord> spans() const;

    /** Total seconds across completed spans named @p name. */
    double spanSeconds(std::string_view name) const;

    /** Completed spans named @p name. */
    size_t spanCount(std::string_view name) const;

    /**
     * Merge @p other into this sink: counters add; spans append with
     * their timestamps rebased onto this sink's epoch. @p other is
     * left untouched.
     */
    void absorb(const Telemetry& other);

    /**
     * Chrome trace-event JSON: {"traceEvents": [...]} of "X" complete
     * events (ts/dur in microseconds), one tid per worker thread.
     */
    void writeChromeTrace(std::ostream& out) const;

    /**
     * Flat stats JSON: {"counters": {...}, "stages": {...},
     * "spans": {...}} — counters verbatim, per-stage wall seconds
     * (category "stage"), and per-name span aggregates.
     */
    void writeStatsJson(std::ostream& out) const;

    std::string chromeTraceJson() const;
    std::string statsJson() const;

  private:
    friend class Span;
    explicit Telemetry(bool enabled) : enabled_(enabled) {}

    void record(SpanRecord record);

    const bool enabled_ = true;
    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();

    mutable std::mutex mutex_;
    std::vector<SpanRecord> spans_;
    std::map<std::string, double> counters_;
};

} // namespace hecate::obs
