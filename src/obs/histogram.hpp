#pragma once

/**
 * @file
 * A small streaming latency histogram for the serve daemon's live
 * metrics endpoint: fixed-size log-bucketed counters (HdrHistogram's
 * octave + sub-bucket scheme, cut down) over microsecond samples.
 *
 * record() is wait-free — one relaxed atomic increment into a bucket —
 * so request workers publish latencies with no shared lock on the hot
 * path. quantile() scans the 512 buckets; it reads the counters
 * relaxed, so a quantile taken concurrently with recording is a
 * point-in-time approximation, which is exactly what a live /metrics
 * poll wants. Relative bucket error is bounded by the sub-bucket
 * resolution: ~6% (16 sub-buckets per octave).
 */

#include <array>
#include <atomic>
#include <cstdint>

namespace hecate::obs {

/** Streaming log-bucketed histogram of non-negative microsecond values. */
class LatencyHistogram {
  public:
    static constexpr int kSubBits = 4; ///< 16 sub-buckets per octave
    static constexpr int kOctaves = 32; ///< covers up to ~2^32 us (~1.2h)
    static constexpr int kBuckets = kOctaves << kSubBits;

    /** Record one sample (values are clamped into the covered range). */
    void record(uint64_t micros);

    /** Record a duration in seconds (negative values clamp to zero). */
    void recordSeconds(double seconds);

    uint64_t count() const;

    /**
     * Approximate @p q quantile (0 <= q <= 1) in microseconds: the
     * upper bound of the bucket holding the rank-q sample; 0 when the
     * histogram is empty.
     */
    uint64_t quantileMicros(double q) const;

    double quantileSeconds(double q) const
    {
        return static_cast<double>(quantileMicros(q)) * 1e-6;
    }

    /** Add @p other's counts into this histogram. */
    void merge(const LatencyHistogram& other);

  private:
    static int bucketFor(uint64_t micros);
    static uint64_t bucketUpperBound(int bucket);

    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
};

} // namespace hecate::obs
