#include "obs/histogram.hpp"

#include <bit>

namespace hecate::obs {

int
LatencyHistogram::bucketFor(uint64_t micros)
{
    // Octave 0 holds [0, 16): values below one full sub-bucket span
    // index directly. Above that, the octave is the position of the
    // leading bit and the sub-bucket the next kSubBits bits.
    constexpr uint64_t kSub = uint64_t{1} << kSubBits;
    if (micros < kSub)
        return static_cast<int>(micros);
    int octave = 63 - std::countl_zero(micros);
    int sub = static_cast<int>((micros >> (octave - kSubBits)) &
                               (kSub - 1));
    int index = ((octave - kSubBits + 1) << kSubBits) + sub;
    return index < kBuckets ? index : kBuckets - 1;
}

uint64_t
LatencyHistogram::bucketUpperBound(int bucket)
{
    constexpr uint64_t kSub = uint64_t{1} << kSubBits;
    if (bucket < static_cast<int>(kSub))
        return static_cast<uint64_t>(bucket);
    int octave = (bucket >> kSubBits) + kSubBits - 1;
    uint64_t sub = static_cast<uint64_t>(bucket) & (kSub - 1);
    return (kSub + sub + 1) << (octave - kSubBits);
}

void
LatencyHistogram::record(uint64_t micros)
{
    buckets_[static_cast<size_t>(bucketFor(micros))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
}

void
LatencyHistogram::recordSeconds(double seconds)
{
    if (seconds < 0)
        seconds = 0;
    record(static_cast<uint64_t>(seconds * 1e6));
}

uint64_t
LatencyHistogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

uint64_t
LatencyHistogram::quantileMicros(double q) const
{
    uint64_t total = count();
    if (total == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // Rank of the target sample, 1-based; q=1 is the max sample seen.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
    uint64_t seen = 0;
    int last = 0;
    for (int i = 0; i < kBuckets; ++i) {
        uint64_t n = buckets_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed);
        if (n == 0)
            continue;
        last = i;
        seen += n;
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    // Counter/bucket updates race benignly; fall back to the highest
    // occupied bucket.
    return bucketUpperBound(last);
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    for (int i = 0; i < kBuckets; ++i) {
        uint64_t n = other.buckets_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed);
        if (n != 0)
            buckets_[static_cast<size_t>(i)].fetch_add(
                n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
}

} // namespace hecate::obs
