#include "obs/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace hecate::obs {

namespace {

/** Stable small id for the calling thread (1-based, process-wide). */
uint32_t
threadId()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/** Unique span id (process-wide; 0 is reserved for "no parent"). */
uint64_t
nextSpanId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/**
 * The innermost open span of the calling thread. Tagged with its sink
 * so spans of interleaved sinks on one thread never adopt each other.
 */
struct ActiveFrame {
    const Telemetry* telemetry = nullptr;
    uint64_t span = 0;
};

thread_local ActiveFrame tlActive;

/** Minimal JSON string escaping (our names are plain ASCII anyway). */
std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a counter value: integral counters print without decimals. */
std::string
jsonNumber(double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        return buffer;
    }
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

} // namespace

Span::Span(Span&& other) noexcept
    : telemetry_(other.telemetry_), name_(std::move(other.name_)),
      category_(other.category_), id_(other.id_), parent_(other.parent_),
      index_(other.index_), start_(other.start_),
      prevTelemetry_(other.prevTelemetry_), prevSpan_(other.prevSpan_)
{
    other.telemetry_ = nullptr;
}

void
Span::end()
{
    if (telemetry_ == nullptr)
        return;
    Telemetry* telemetry = telemetry_;
    telemetry_ = nullptr;

    auto now = std::chrono::steady_clock::now();
    tlActive = {prevTelemetry_, prevSpan_};

    SpanRecord record;
    record.name = std::move(name_);
    record.category = category_;
    record.tid = threadId();
    record.id = id_;
    record.parent = parent_;
    record.index = index_;
    record.startUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            start_ - telemetry->epoch_)
            .count());
    record.durUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
            .count());
    telemetry->record(std::move(record));
}

Telemetry::Telemetry() : enabled_(true) {}

Telemetry&
Telemetry::nil()
{
    static Telemetry sink(false);
    return sink;
}

Span
Telemetry::span(std::string_view name, const char* category, int64_t index)
{
    Span span;
    if (!enabled_)
        return span;
    span.telemetry_ = this;
    span.name_ = std::string(name);
    span.category_ = category;
    span.id_ = nextSpanId();
    span.index_ = index;
    if (tlActive.telemetry == this)
        span.parent_ = tlActive.span;
    span.prevTelemetry_ = tlActive.telemetry;
    span.prevSpan_ = tlActive.span;
    tlActive = {this, span.id_};
    span.start_ = std::chrono::steady_clock::now();
    return span;
}

void
Telemetry::record(SpanRecord record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(record));
}

void
Telemetry::add(std::string_view name, double delta)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[std::string(name)] += delta;
}

void
Telemetry::set(std::string_view name, double value)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[std::string(name)] = value;
}

double
Telemetry::counter(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0.0 : it->second;
}

std::map<std::string, double>
Telemetry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::vector<SpanRecord>
Telemetry::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

double
Telemetry::spanSeconds(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const SpanRecord& span : spans_) {
        if (span.name == name)
            total += span.durUs;
    }
    return static_cast<double>(total) * 1e-6;
}

size_t
Telemetry::spanCount(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const SpanRecord& span : spans_) {
        if (span.name == name)
            ++count;
    }
    return count;
}

void
Telemetry::absorb(const Telemetry& other)
{
    if (!enabled_ || &other == this)
        return;
    std::map<std::string, double> counters = other.counters();
    std::vector<SpanRecord> spans = other.spans();
    // Both epochs are steady_clock points, so rebasing is exact. The
    // absorbed sink was constructed after this one in every use we
    // have, but clamp anyway so a negative offset cannot wrap.
    int64_t offset = std::chrono::duration_cast<std::chrono::microseconds>(
                         other.epoch_ - epoch_)
                         .count();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : counters)
        counters_[name] += value;
    for (SpanRecord& span : spans) {
        int64_t start = static_cast<int64_t>(span.startUs) + offset;
        span.startUs = start > 0 ? static_cast<uint64_t>(start) : 0;
        spans_.push_back(std::move(span));
    }
}

void
Telemetry::writeChromeTrace(std::ostream& out) const
{
    std::vector<SpanRecord> spans = this->spans();
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.startUs < b.startUs;
              });
    out << "{\"traceEvents\": [";
    bool first = true;
    for (const SpanRecord& span : spans) {
        if (!first)
            out << ",";
        first = false;
        char buffer[160];
        std::snprintf(buffer, sizeof(buffer),
                      "\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                      "\"ts\": %" PRIu64 ", \"dur\": %" PRIu64 ", ",
                      span.tid, span.startUs, span.durUs);
        out << buffer << "\"name\": \"" << jsonEscape(span.name)
            << "\", \"cat\": \"" << jsonEscape(span.category) << "\"";
        out << ", \"args\": {\"id\": " << span.id
            << ", \"parent\": " << span.parent;
        if (span.index >= 0)
            out << ", \"index\": " << span.index;
        out << "}}";
    }
    out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void
Telemetry::writeStatsJson(std::ostream& out) const
{
    std::map<std::string, double> counters = this->counters();
    std::vector<SpanRecord> spans = this->spans();

    struct Aggregate {
        uint64_t totalUs = 0;
        size_t count = 0;
    };
    std::map<std::string, Aggregate> stages, byName;
    for (const SpanRecord& span : spans) {
        Aggregate& aggregate = byName[span.name];
        aggregate.totalUs += span.durUs;
        ++aggregate.count;
        if (span.category == "stage") {
            Aggregate& stage = stages[span.name];
            stage.totalUs += span.durUs;
            ++stage.count;
        }
    }

    auto writeAggregates =
        [&out](const std::map<std::string, Aggregate>& aggregates) {
            bool first = true;
            for (const auto& [name, aggregate] : aggregates) {
                if (!first)
                    out << ",";
                first = false;
                char buffer[64];
                std::snprintf(buffer, sizeof(buffer),
                              "{\"seconds\": %.6f, \"count\": %zu}",
                              static_cast<double>(aggregate.totalUs) * 1e-6,
                              aggregate.count);
                out << "\n    \"" << jsonEscape(name) << "\": " << buffer;
            }
        };

    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
        if (!first)
            out << ",";
        first = false;
        out << "\n    \"" << jsonEscape(name)
            << "\": " << jsonNumber(value);
    }
    out << "\n  },\n  \"stages\": {";
    writeAggregates(stages);
    out << "\n  },\n  \"spans\": {";
    writeAggregates(byName);
    out << "\n  }\n}\n";
}

std::string
Telemetry::chromeTraceJson() const
{
    std::ostringstream out;
    writeChromeTrace(out);
    return out.str();
}

std::string
Telemetry::statsJson() const
{
    std::ostringstream out;
    writeStatsJson(out);
    return out.str();
}

} // namespace hecate::obs
