#pragma once

/**
 * @file
 * Runtime tree instances over a resolved grammar. A Tree is the "E"
 * domain of the paper (§3.2): nodes typed by grammar classes, child
 * slots matching the class's children declarations, and one integer
 * value cell per attribute (the "locations" L of a node).
 *
 * Trees serve three roles: CEGIS example/counterexample inputs, the
 * verifier's enumerated instances, and the value-interpreter's data.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sem/grammar.hpp"
#include "support/rng.hpp"

namespace hecate::tree {

using NodeId = uint32_t;

inline constexpr NodeId kNoNode = sem::kInvalidId;

/** One child slot of a node: a scalar link or a collection. */
struct ChildSlot {
    NodeId node = kNoNode;        ///< scalar child; kNoNode when absent
    std::vector<NodeId> elems;    ///< collection elements (in order)
};

/** One tree node. */
struct Node {
    NodeId id = kNoNode;
    sem::ClassId cls = sem::kInvalidId;
    std::vector<ChildSlot> children; ///< indexed by ChildId
    std::vector<int64_t> values;     ///< indexed by AttrId
};

/**
 * A tree instance. Nodes are created through addNode and wired with
 * setScalar/addElement; validate() checks the result is a well-typed
 * tree (single root, no sharing, required children present).
 */
class Tree {
  public:
    explicit Tree(const sem::Grammar& grammar) : grammar_(&grammar) {}

    const sem::Grammar& grammar() const { return *grammar_; }

    /** Create a node of class @p cls with zeroed attributes. */
    NodeId addNode(sem::ClassId cls);

    /** Wire scalar child slot @p child of @p parent to @p target. */
    void setScalar(NodeId parent, sem::ChildId child, NodeId target);

    /** Append @p target to collection slot @p child of @p parent. */
    void addElement(NodeId parent, sem::ChildId child, NodeId target);

    void setRoot(NodeId root) { root_ = root; }
    NodeId root() const { return root_; }

    size_t size() const { return nodes_.size(); }
    const Node& node(NodeId id) const { return nodes_[id]; }
    Node& node(NodeId id) { return nodes_[id]; }
    const std::vector<Node>& nodes() const { return nodes_; }

    /** Set an input attribute value. */
    void setInput(NodeId id, sem::AttrId attr, int64_t value)
    {
        nodes_[id].values[attr] = value;
    }

    int64_t value(NodeId id, sem::AttrId attr) const
    {
        return nodes_[id].values[attr];
    }

    /**
     * Check structural sanity: a root exists, every non-root node is
     * referenced exactly once, child classes satisfy slot types, and
     * required scalar children are present. Throws UserError on failure.
     */
    void validate() const;

    /** Reset all output attribute cells to zero (inputs preserved). */
    void clearOutputs();

    /** Short structural fingerprint like "Inner(Leaf,Inner(Leaf))". */
    std::string shapeString() const;

  private:
    std::string shapeStringFor(NodeId id) const;
    void checkChildType(const sem::ChildInfo& childInfo, NodeId target) const;

    const sem::Grammar* grammar_;
    std::vector<Node> nodes_;
    NodeId root_ = kNoNode;
};

/** Parameters for random tree sampling. */
struct SampleConfig {
    uint32_t maxDepth = 4;           ///< node depth budget
    uint32_t maxCollection = 3;      ///< max elements per collection slot
    double optionalPresent = 0.7;    ///< P(optional scalar child present)
    int64_t inputLo = 0;             ///< uniform input range low
    int64_t inputHi = 100;           ///< uniform input range high
};

/**
 * Sample a random tree whose root implements @p rootIface, with random
 * input attribute values. At maxDepth, only classes that can terminate
 * (all scalar children optional) are chosen; the sampler throws
 * UserError when the grammar admits no finite tree.
 */
Tree sampleTree(const sem::Grammar& grammar, sem::InterfaceId rootIface,
                const SampleConfig& config, Rng& rng);

} // namespace hecate::tree
