#include "tree/enumerate.hpp"

#include <algorithm>
#include <map>

namespace hecate::tree {

namespace {

/** Memoized shape enumerator. */
class Enumerator {
  public:
    Enumerator(const sem::Grammar& grammar, const EnumConfig& config)
        : grammar_(grammar), config_(config)
    {
    }

    /**
     * Shapes rooted at implementers of @p iface with depth budget
     * @p depth, smallest first, capped at @p cap.
     */
    std::vector<ShapePtr> forInterface(sem::InterfaceId iface, uint32_t depth,
                                       size_t cap)
    {
        auto key = std::make_tuple(iface, depth, cap);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;

        // Enumerate each implementer separately, then merge round-robin
        // so the cap cannot starve later classes of representation.
        std::vector<std::vector<ShapePtr>> per_class;
        if (depth > 0) {
            for (sem::ClassId cls : grammar_.implementers(iface)) {
                std::vector<ShapePtr> mine;
                appendClassShapes(mine, cls, depth, cap);
                per_class.push_back(std::move(mine));
            }
        }
        std::vector<ShapePtr> shapes;
        for (size_t round = 0; shapes.size() < cap; ++round) {
            bool any = false;
            for (auto& mine : per_class) {
                if (round < mine.size()) {
                    shapes.push_back(mine[round]);
                    any = true;
                    if (shapes.size() >= cap)
                        break;
                }
            }
            if (!any)
                break;
        }
        std::stable_sort(shapes.begin(), shapes.end(),
                         [](const ShapePtr& a, const ShapePtr& b) {
                             return a->nodeCount < b->nodeCount;
                         });
        memo_.emplace(key, shapes);
        return shapes;
    }

  private:
    /** All shapes rooted at class @p cls with subtree depth budget @p depth. */
    void appendClassShapes(std::vector<ShapePtr>& out, sem::ClassId cls,
                           uint32_t depth, size_t cap)
    {
        const sem::ClassInfo& info = grammar_.cls(cls);

        // Build the option list for every child slot.
        std::vector<std::vector<Shape::Slot>> slot_options;
        for (const sem::ChildInfo& child : info.children) {
            std::vector<Shape::Slot> options;
            if (child.collection) {
                options = collectionOptions(child, depth);
            } else {
                if (child.optional)
                    options.push_back({});
                for (const ShapePtr& sub : forInterface(
                         child.iface, depth - 1, config_.perSlotOptions)) {
                    Shape::Slot slot;
                    slot.scalar = sub;
                    options.push_back(std::move(slot));
                    if (options.size() >= config_.perSlotOptions)
                        break;
                }
            }
            if (options.empty())
                return; // class not constructible within budget
            slot_options.push_back(std::move(options));
        }

        // Odometer over the slot option lists.
        std::vector<size_t> idx(slot_options.size(), 0);
        for (;;) {
            auto shape = std::make_shared<Shape>();
            shape->cls = cls;
            shape->nodeCount = 1;
            for (size_t s = 0; s < slot_options.size(); ++s) {
                const Shape::Slot& slot = slot_options[s][idx[s]];
                if (slot.scalar)
                    shape->nodeCount += slot.scalar->nodeCount;
                for (const ShapePtr& elem : slot.elems)
                    shape->nodeCount += elem->nodeCount;
                shape->slots.push_back(slot);
            }
            out.push_back(std::move(shape));
            if (out.size() >= cap)
                return;

            size_t s = 0;
            while (s < idx.size() && ++idx[s] == slot_options[s].size()) {
                idx[s] = 0;
                ++s;
            }
            if (s == idx.size())
                return;
        }
    }

    /** Collections of arity 0..maxCollection over the element shapes. */
    std::vector<Shape::Slot> collectionOptions(const sem::ChildInfo& child,
                                               uint32_t depth)
    {
        std::vector<Shape::Slot> options;
        options.push_back({}); // empty collection
        std::vector<ShapePtr> elems =
            forInterface(child.iface, depth - 1, config_.perSlotOptions);
        if (elems.empty())
            return options;

        // Tuples in length order; cap each length's cross product.
        std::vector<std::vector<ShapePtr>> current = {{}};
        for (uint32_t len = 1; len <= config_.maxCollection; ++len) {
            std::vector<std::vector<ShapePtr>> next;
            for (const auto& prefix : current) {
                for (const ShapePtr& elem : elems) {
                    auto tuple = prefix;
                    tuple.push_back(elem);
                    next.push_back(std::move(tuple));
                    if (next.size() >= config_.perSlotOptions)
                        break;
                }
                if (next.size() >= config_.perSlotOptions)
                    break;
            }
            for (auto& tuple : next) {
                Shape::Slot slot;
                slot.elems = tuple;
                options.push_back(std::move(slot));
                if (options.size() >= config_.perSlotOptions)
                    return options;
            }
            current = std::move(next);
        }
        return options;
    }

    const sem::Grammar& grammar_;
    const EnumConfig& config_;
    std::map<std::tuple<sem::InterfaceId, uint32_t, size_t>,
             std::vector<ShapePtr>>
        memo_;
};

NodeId
instantiateShape(Tree& out, const sem::Grammar& grammar, const Shape& shape,
                 Rng& rng)
{
    NodeId id = out.addNode(shape.cls);
    const sem::ClassInfo& info = grammar.cls(shape.cls);
    const sem::InterfaceInfo& iface = grammar.iface(info.iface);
    for (sem::AttrId a = 0; a < iface.attrs.size(); ++a) {
        if (iface.isInput(a))
            out.setInput(id, a, rng.range(0, 100));
    }
    for (sem::ChildId c = 0; c < shape.slots.size(); ++c) {
        const Shape::Slot& slot = shape.slots[c];
        if (slot.scalar) {
            NodeId target =
                instantiateShape(out, grammar, *slot.scalar, rng);
            out.setScalar(id, c, target);
        }
        for (const ShapePtr& elem : slot.elems) {
            NodeId target = instantiateShape(out, grammar, *elem, rng);
            out.addElement(id, c, target);
        }
    }
    return id;
}

} // namespace

std::vector<ShapePtr>
enumerateShapes(const sem::Grammar& grammar, sem::InterfaceId rootIface,
                const EnumConfig& config)
{
    Enumerator enumerator(grammar, config);
    return enumerator.forInterface(rootIface, config.maxDepth, config.limit);
}

Tree
instantiate(const sem::Grammar& grammar, const Shape& shape, uint64_t seed)
{
    Tree out(grammar);
    Rng rng(seed);
    NodeId root = instantiateShape(out, grammar, shape, rng);
    out.setRoot(root);
    out.validate();
    return out;
}

} // namespace hecate::tree
