#pragma once

/**
 * @file
 * Bounded enumeration of tree shapes, the verifier's search space.
 *
 * The paper (§4.1) verifies candidate traversals against "all possible
 * trees up to depth k", encoded symbolically as a bounded m-ary tree.
 * We realize the same space explicitly: every shape derivable from the
 * grammar with depth <= maxDepth and collection arity <= maxCollection,
 * subject to a configurable cap. Shapes are shared DAG-style
 * (shared_ptr) so large spaces stay compact.
 */

#include <memory>
#include <vector>

#include "tree/tree.hpp"

namespace hecate::tree {

struct Shape;
using ShapePtr = std::shared_ptr<const Shape>;

/** A structural tree skeleton (classes + child presence, no values). */
struct Shape {
    /** One child slot of the shape. */
    struct Slot {
        ShapePtr scalar;             ///< nullptr = absent
        std::vector<ShapePtr> elems; ///< collection elements
    };

    sem::ClassId cls = sem::kInvalidId;
    std::vector<Slot> slots;
    uint32_t nodeCount = 1;
};

/** Knobs bounding the enumerated space. */
struct EnumConfig {
    uint32_t maxDepth = 3;        ///< the paper's k
    uint32_t maxCollection = 2;   ///< max collection arity
    size_t perSlotOptions = 24;   ///< cap on alternatives per child slot
    size_t limit = 512;           ///< cap on total shapes returned
    /**
     * The enumeration above is capped by `limit`, so the verifier backs
     * it with this many randomly sampled deeper trees (shape coverage
     * beyond the cap); 0 disables sampling.
     */
    uint32_t randomRounds = 24;
    /** Sampled trees may be this much deeper than maxDepth. */
    uint32_t sampleDepthBump = 2;
};

/**
 * Enumerate shapes rooted at implementers of @p rootIface, smallest
 * (fewest nodes) first.
 */
std::vector<ShapePtr> enumerateShapes(const sem::Grammar& grammar,
                                      sem::InterfaceId rootIface,
                                      const EnumConfig& config);

/**
 * Materialize @p shape as a Tree with deterministic pseudo-random
 * input values derived from @p seed.
 */
Tree instantiate(const sem::Grammar& grammar, const Shape& shape,
                 uint64_t seed = 1);

} // namespace hecate::tree
