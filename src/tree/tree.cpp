#include "tree/tree.hpp"

#include <algorithm>

namespace hecate::tree {

NodeId
Tree::addNode(sem::ClassId cls)
{
    const sem::ClassInfo& info = grammar_->cls(cls);
    const sem::InterfaceInfo& iface = grammar_->iface(info.iface);
    Node node;
    node.id = static_cast<NodeId>(nodes_.size());
    node.cls = cls;
    node.children.resize(info.children.size());
    node.values.assign(iface.attrs.size(), 0);
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

void
Tree::setScalar(NodeId parent, sem::ChildId child, NodeId target)
{
    nodes_[parent].children[child].node = target;
}

void
Tree::addElement(NodeId parent, sem::ChildId child, NodeId target)
{
    nodes_[parent].children[child].elems.push_back(target);
}

void
Tree::validate() const
{
    if (root_ == kNoNode)
        userError("tree has no root");

    std::vector<uint32_t> refs(nodes_.size(), 0);
    for (const Node& node : nodes_) {
        const sem::ClassInfo& info = grammar_->cls(node.cls);
        for (sem::ChildId c = 0; c < node.children.size(); ++c) {
            const sem::ChildInfo& child_info = info.children[c];
            const ChildSlot& slot = node.children[c];
            if (child_info.collection) {
                if (slot.node != kNoNode)
                    userError("collection slot holds a scalar link");
                for (NodeId elem : slot.elems) {
                    checkChildType(child_info, elem);
                    ++refs[elem];
                }
            } else {
                if (!slot.elems.empty())
                    userError("scalar slot holds collection elements");
                if (slot.node == kNoNode) {
                    if (!child_info.optional) {
                        userError("required child '" + child_info.name +
                                  "' missing on node of class '" +
                                  info.name + "'");
                    }
                } else {
                    checkChildType(child_info, slot.node);
                    ++refs[slot.node];
                }
            }
        }
    }
    for (const Node& node : nodes_) {
        uint32_t expected = node.id == root_ ? 0 : 1;
        if (refs[node.id] != expected) {
            userError("node " + std::to_string(node.id) +
                      " referenced " + std::to_string(refs[node.id]) +
                      " times (expected " + std::to_string(expected) + ")");
        }
    }
}

void
Tree::clearOutputs()
{
    for (Node& node : nodes_) {
        const sem::ClassInfo& info = grammar_->cls(node.cls);
        const sem::InterfaceInfo& iface = grammar_->iface(info.iface);
        for (sem::AttrId a = 0; a < node.values.size(); ++a) {
            if (!iface.isInput(a))
                node.values[a] = 0;
        }
    }
}

void
Tree::checkChildType(const sem::ChildInfo& child_info, NodeId target) const
{
    const Node& target_node = nodes_[target];
    const auto& allowed = child_info.allowedClasses;
    if (std::find(allowed.begin(), allowed.end(), target_node.cls) ==
        allowed.end()) {
        userError("child '" + child_info.name + "' holds a node of class '" +
                  grammar_->cls(target_node.cls).name +
                  "' not allowed by its type");
    }
}

std::string
Tree::shapeString() const
{
    return root_ == kNoNode ? "<empty>" : shapeStringFor(root_);
}

std::string
Tree::shapeStringFor(NodeId id) const
{
    const Node& node = nodes_[id];
    const sem::ClassInfo& info = grammar_->cls(node.cls);
    std::string out = info.name;
    bool any = false;
    std::string inner;
    for (sem::ChildId c = 0; c < node.children.size(); ++c) {
        const ChildSlot& slot = node.children[c];
        if (any)
            inner += ",";
        any = true;
        inner += info.children[c].name + "=";
        if (info.children[c].collection) {
            inner += "[";
            for (size_t i = 0; i < slot.elems.size(); ++i) {
                if (i > 0)
                    inner += ",";
                inner += shapeStringFor(slot.elems[i]);
            }
            inner += "]";
        } else if (slot.node == kNoNode) {
            inner += "_";
        } else {
            inner += shapeStringFor(slot.node);
        }
    }
    if (any)
        out += "(" + inner + ")";
    return out;
}

namespace {

/** True when @p cls can be the root of a depth-1 tree (all scalar
 *  children optional; collections may be empty). */
bool
isTerminalClass(const sem::Grammar& grammar, sem::ClassId cls)
{
    for (const sem::ChildInfo& child : grammar.cls(cls).children) {
        if (!child.collection && !child.optional)
            return false;
    }
    return true;
}

NodeId
sampleNode(Tree& out, const sem::Grammar& grammar,
           const std::vector<sem::ClassId>& candidates,
           const SampleConfig& config, Rng& rng, uint32_t depth)
{
    // At the depth budget, restrict to classes that can terminate.
    std::vector<sem::ClassId> usable;
    for (sem::ClassId cls : candidates) {
        if (depth > 1 || isTerminalClass(grammar, cls))
            usable.push_back(cls);
    }
    if (usable.empty()) {
        userError("grammar admits no tree within the depth budget "
                  "(no terminal class for a required child)");
    }
    sem::ClassId cls = usable[rng.below(usable.size())];
    NodeId id = out.addNode(cls);

    const sem::ClassInfo& info = grammar.cls(cls);
    const sem::InterfaceInfo& iface = grammar.iface(info.iface);
    for (sem::AttrId a = 0; a < iface.attrs.size(); ++a) {
        if (iface.isInput(a))
            out.setInput(id, a, rng.range(config.inputLo, config.inputHi));
    }

    for (sem::ChildId c = 0; c < info.children.size(); ++c) {
        const sem::ChildInfo& child = info.children[c];
        if (child.collection) {
            uint64_t count =
                depth > 1 ? rng.below(config.maxCollection + 1) : 0;
            for (uint64_t i = 0; i < count; ++i) {
                NodeId elem = sampleNode(out, grammar, child.allowedClasses,
                                         config, rng, depth - 1);
                out.addElement(id, c, elem);
            }
        } else {
            bool present = !child.optional ||
                           (depth > 1 && rng.chance(config.optionalPresent));
            if (present && depth > 1) {
                NodeId target = sampleNode(out, grammar,
                                           child.allowedClasses, config, rng,
                                           depth - 1);
                out.setScalar(id, c, target);
            } else if (!child.optional) {
                // depth == 1 and required: unreachable, usable filtered it.
                internalError("required child at depth budget");
            }
        }
    }
    return id;
}

} // namespace

Tree
sampleTree(const sem::Grammar& grammar, sem::InterfaceId rootIface,
           const SampleConfig& config, Rng& rng)
{
    Tree out(grammar);
    const std::vector<sem::ClassId>& candidates =
        grammar.implementers(rootIface);
    if (candidates.empty())
        userError("root interface has no implementing classes");
    NodeId root = sampleNode(out, grammar, candidates, config, rng,
                             std::max(config.maxDepth, 1u));
    out.setRoot(root);
    out.validate();
    return out;
}

} // namespace hecate::tree
