#pragma once

/**
 * @file
 * LevelSegments: the class-segregated, level-synchronous index
 * structure behind the segmented sweep strategy.
 *
 * Arena node ids are BFS-ordered, so "all nodes at depth L" is a
 * contiguous id range per tree, and segregating one level by class is
 * a stable counting sort — a permutation computable once per arena
 * and cached with it. The result is, per level, a short list of
 * class-homogeneous segments; a sandwich sweep then runs as
 * per-segment kernels (one dispatch per (segment, rule) instead of
 * per node) in ascending level order for the pre-visit runs and
 * descending order for the post-visit runs.
 *
 * Why per-level barriers suffice (the dependency argument, DESIGN.md
 * §10): an L_a rule evaluated at node n reads only cells of
 * {n} ∪ children(n) and writes one cell of that same set. Two
 * distinct nodes of the *same* level share no such cell — they are
 * not each other's child (equal depth) and share no child (one
 * parent per node) — so within one level every rule application
 * touches pairwise-disjoint cells: segments of a level can run in
 * any order, spec-major, or concurrently. Every dependency crosses
 * levels (parent to child or child to parent), and those are
 * sequenced by running levels in order with a barrier between waves.
 *
 * Segments carry a `contiguous` flag: when a (level, class) group is
 * one unbroken id run (single-class levels; each tree of a packed
 * forest contributes its own run), kernels stream columns directly
 * instead of indirecting through the permutation.
 */

#include <cstdint>
#include <vector>

#include "runtime/arena.hpp"

namespace hecate::runtime {

/** Per-level, per-class execution segments of one arena (or forest). */
class LevelSegments {
  public:
    /** One class-homogeneous run of same-level nodes. */
    struct Segment {
        sem::ClassId cls = 0;
        uint32_t posBegin = 0;    ///< into order()
        uint32_t count = 0;
        NodeIdx first = 0;        ///< starting node id when contiguous
        bool contiguous = false;  ///< order()[posBegin..] == first..
    };

    /** One depth level (a barrier-to-barrier wave). */
    struct Level {
        uint32_t segBegin = 0; ///< into segments()
        uint32_t segEnd = 0;
        uint32_t posBegin = 0; ///< into order(); the wave's node span
        uint32_t posEnd = 0;
    };

    /**
     * Shape summary, computed once during build. The segmented
     * strategy's win over the stack walk depends on these: it needs
     * wide waves (parallel work per barrier) made of long streaming
     * runs (kernel dispatch amortized over contiguous column spans).
     * Narrow or fragmented levels pay per-level barrier and per-kernel
     * dispatch overhead that a cache-friendly DFS walk never sees.
     */
    struct Stats {
        uint32_t levels = 0;
        uint32_t nodes = 0;
        uint32_t segments = 0;
        uint32_t maxLevelWidth = 0;
        /** Nodes inside contiguous (streaming) segments. */
        uint32_t contiguousNodes = 0;
        /** Mean nodes per segment (kernel dispatch amortization). */
        double avgSegmentLength = 0.0;
        /** Mean nodes per level (wave width). */
        double avgLevelWidth = 0.0;
    };

    /** Derive segments for @p view (roots seed the depth computation). */
    static LevelSegments build(const ArenaView& view);

    /**
     * Split one class-homogeneous group order[groupBegin, groupEnd)
     * into segments, promoting the group to per-run streaming form
     * when its maximal contiguous id runs are long enough to amortize
     * kernel dispatch. Shared by the level-major builder here and the
     * per-tile builder (runtime/tiles.hpp), so both execution paths
     * feed the same kernels the same segment shapes.
     */
    static void appendClassSegments(const NodeIdx* order,
                                    uint32_t groupBegin, uint32_t groupEnd,
                                    sem::ClassId cls,
                                    std::vector<Segment>& out);

    const Stats& stats() const { return stats_; }

    uint32_t levelCount() const
    {
        return static_cast<uint32_t>(levels_.size());
    }
    const Level& level(uint32_t i) const { return levels_[i]; }
    const Segment* segments() const { return segments_.data(); }

    /** The stable level-major, class-grouped node permutation. */
    const NodeIdx* order() const { return order_.data(); }

  private:
    std::vector<NodeIdx> order_;
    std::vector<Segment> segments_;
    std::vector<Level> levels_;
    Stats stats_;
};

} // namespace hecate::runtime
