#pragma once

/**
 * @file
 * TreeArena: the execution-oriented tree representation of the runtime
 * subsystem. tree::Tree is the right shape for synthesis (per-node
 * vectors, easy to mutate, easy to enumerate) but wrong for executing
 * schedules at production speed: every attribute read chases two
 * pointers and a std::vector, and node allocation order is whatever
 * the sampler produced.
 *
 * The arena flattens a tree into structure-of-arrays form:
 *
 *  - one contiguous int64_t column per (interface, attribute) pair, so
 *    an attribute read is `column[node]` — the Layout assigns every
 *    attribute of every interface a dense grammar-wide column id;
 *  - CSR-style child indices: each node's scalar children live in one
 *    shared flat array at `scalarBase[node] + slot`, and collection
 *    elements live contiguously in a shared element array addressed by
 *    (begin, count) ranges;
 *  - depth-ordered (BFS) node ids: parents precede children and
 *    siblings are contiguous, which gives sequential passes streaming
 *    access and lets the parallel executor hand out contiguous sibling
 *    chunks.
 *
 * fromTree()/toTree() are lossless up to node renumbering (toTree
 * rebuilds a valid tree::Tree whose node ids equal arena indices), and
 * generate() builds multi-million-node instances directly in arena
 * form without ever materializing a pointer tree.
 */

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sem/grammar.hpp"
#include "support/rng.hpp"
#include "tree/tree.hpp"

namespace hecate::runtime {

/** Arena node index; BFS (depth) order, root is index 0. */
using NodeIdx = uint32_t;

inline constexpr NodeIdx kNone = sem::kInvalidId;

class Layout;
class LevelSegments;
class TileGraph;
struct EditState;

/** One collection slot's contiguous element range (CSR row). */
struct CollRange {
    uint32_t begin = 0;
    uint32_t count = 0;
};

/**
 * Borrowed raw SoA view of an arena — everything the executor and the
 * sweep kernels touch, as plain pointers. TreeArena and ForestArena
 * both produce one, so every execution path is written once against
 * this and runs over single trees and packed forests alike. Columns
 * are mutable (executions write attribute cells in place); structure
 * is not. Views are invalidated by destroying or mutating the owning
 * arena.
 */
struct ArenaView {
    const sem::Grammar* grammar = nullptr;
    const Layout* layout = nullptr;
    uint32_t size = 0;   ///< real node count (excludes the zero row)
    NodeIdx zeroRow = 0; ///< >= size; absent-child reads alias it
    const sem::ClassId* cls = nullptr;
    const uint32_t* scalarBase = nullptr;
    const NodeIdx* scalars = nullptr;
    const uint32_t* collBase = nullptr;
    const CollRange* collRanges = nullptr;
    const NodeIdx* collElems = nullptr;
    int64_t* const* cols = nullptr; ///< raw column bases, by column id
    const NodeIdx* roots = nullptr; ///< per-tree root indices
    uint32_t rootCount = 0;

    /** Element range of collection CSR slot @p slot of @p node. */
    std::pair<const NodeIdx*, const NodeIdx*>
    collection(NodeIdx node, uint32_t slot) const
    {
        const CollRange& range = collRanges[collBase[node] + slot];
        const NodeIdx* begin = collElems + range.begin;
        return {begin, begin + range.count};
    }
};

/** Flattening metadata for one class: child slot -> CSR slot. */
struct ClassLayout {
    /** By ChildId: index into the node's scalar block; -1 = collection. */
    std::vector<int32_t> scalarSlotOf;
    /** By ChildId: index into the node's collection block; -1 = scalar. */
    std::vector<int32_t> collSlotOf;
    uint32_t scalarCount = 0;
    uint32_t collCount = 0;
};

/**
 * Grammar-wide flattening metadata, deterministically derived from a
 * Grammar: per-class slot maps and the dense attribute-column
 * numbering shared by TreeArena and compiled Programs.
 */
class Layout {
  public:
    explicit Layout(const sem::Grammar& grammar);

    const ClassLayout& cls(sem::ClassId id) const { return classes_[id]; }

    /** Dense column id of (interface, attribute). */
    uint32_t column(sem::InterfaceId iface, sem::AttrId attr) const
    {
        return attrColBase_[iface] + attr;
    }

    uint32_t columnCount() const { return columnCount_; }
    bool columnIsInput(uint32_t col) const { return columnIsInput_[col]; }

  private:
    std::vector<ClassLayout> classes_;
    std::vector<uint32_t> attrColBase_; ///< by InterfaceId
    std::vector<bool> columnIsInput_;
    uint32_t columnCount_ = 0;
};

/** Knobs for the bulk random generator. */
struct GenConfig {
    /** Node budget; actual size lands within ~[target, target + frontier]. */
    uint32_t targetNodes = 1000;
    /** Depth cap; 0 = unbounded (the budget alone stops growth). */
    uint32_t maxDepth = 0;
    uint32_t maxCollection = 4;    ///< max elements per collection slot
    int64_t inputLo = 0;           ///< uniform input range low
    int64_t inputHi = 100;         ///< uniform input range high
    uint64_t seed = 1;
};

/** Flattened SoA tree instance. Build via fromTree or generate. */
class TreeArena {
  public:
    /** Flatten @p tree (BFS from its root) losslessly. */
    static TreeArena fromTree(const tree::Tree& tree);

    /**
     * Build a random instance of roughly @p config.targetNodes nodes
     * rooted at an implementer of @p rootIface, directly in arena
     * form. Growth is budget-driven: optional children and collection
     * elements are materialized while budget remains, then the
     * frontier is closed with terminal classes. Throws UserError when
     * the grammar admits no finite tree under the configured depth cap.
     */
    static TreeArena generate(const sem::Grammar& grammar,
                              sem::InterfaceId rootIface,
                              const GenConfig& config);

    /**
     * Rebuild a validated tree::Tree; node ids equal arena indices and
     * every attribute cell (inputs and outputs) is copied back. After
     * structural edits the arena is compacted first (orphans dropped),
     * so node ids equal *compacted* indices instead.
     */
    tree::Tree toTree() const;

    ~TreeArena();
    TreeArena(TreeArena&&) noexcept;
    TreeArena& operator=(TreeArena&&) noexcept;
    TreeArena(const TreeArena&);
    TreeArena& operator=(const TreeArena&);

    const sem::Grammar& grammar() const { return *grammar_; }
    const Layout& layout() const { return layout_; }

    uint32_t size() const { return static_cast<uint32_t>(cls_.size()); }
    NodeIdx root() const { return 0; }

    sem::ClassId classOf(NodeIdx node) const { return cls_[node]; }

    /** Scalar child at class-local CSR slot @p slot; kNone when absent. */
    NodeIdx scalarChild(NodeIdx node, uint32_t slot) const
    {
        const NodeIdx c = scalars_[scalarBase_[node] + 1 + slot];
        return c >= size() ? kNone : c;
    }

    /**
     * Absent scalar children are stored as this index — a row every
     * column keeps at zero — so child attribute loads never branch on
     * presence. Only reads alias it: the executor skips writes whose
     * target child is absent, so parallel workers never share a cell.
     * Equals size() for freshly built arenas; replaceSubtree may push
     * it further out to leave append headroom (rows in between are
     * slack for future appends).
     */
    NodeIdx zeroRow() const { return zeroRow_; }

    /** Element range of collection CSR slot @p slot. */
    std::pair<const NodeIdx*, const NodeIdx*>
    collection(NodeIdx node, uint32_t slot) const
    {
        const CollRange& range = collRanges_[collBase_[node] + slot];
        const NodeIdx* begin = collElems_.data() + range.begin;
        return {begin, begin + range.count};
    }

    int64_t value(NodeIdx node, uint32_t col) const
    {
        return columns_[col][node];
    }
    void setValue(NodeIdx node, uint32_t col, int64_t v)
    {
        columns_[col][node] = v;
    }

    /** Raw column base pointer (the executor's hot-path view). */
    int64_t* columnData(uint32_t col) { return columns_[col].data(); }
    const int64_t* columnData(uint32_t col) const
    {
        return columns_[col].data();
    }

    // Raw CSR views (the executor's hot path). Node @p n's scalar
    // block starts at scalarBaseData()[n]: row 0 is n itself and
    // child slot c is row c + 1, so compiled operands address self
    // and children uniformly; absent children hold zeroRow().
    const uint32_t* scalarBaseData() const { return scalarBase_.data(); }
    const NodeIdx* scalarsData() const { return scalars_.data(); }
    const sem::ClassId* classData() const { return cls_.data(); }
    const uint32_t* collBaseData() const { return collBase_.data(); }
    const CollRange* collRangeData() const { return collRanges_.data(); }
    const NodeIdx* collElemData() const { return collElems_.data(); }

    /** Raw view of this arena (single root = node 0). */
    ArenaView view();

    /**
     * Per-level, per-class index segments of this arena, built on
     * first use and cached (the BFS structure never changes after
     * build, so the cache is shared freely across copies). This is
     * what the segmented sweep strategy executes over.
     */
    const LevelSegments& levelSegments();

    /**
     * Cache-sized subtree blocking of this arena (runtime/tiles.hpp),
     * built on first use for @p tileBytes (0 = kDefaultTileBytes) and
     * cached like levelSegments(); rebuilt when a different byte
     * budget is requested. Structural edits invalidate the cache.
     */
    const TileGraph& tileGraph(uint64_t tileBytes = 0);

    /** Depth of the deepest node (root = 1). */
    uint32_t depth() const;

    /** Zero every output column (inputs preserved). */
    void clearOutputs();

    /** Order-independent checksum over output columns (bench sink).
     *  After structural edits, orphaned rows are excluded. */
    uint64_t checksum() const;

    // --- in-place edit API (incr subsystem) ----------------------------

    /**
     * Overwrite one input attribute cell of a live node. @p attr is
     * the attribute id within the node's interface. A no-op when the
     * value is unchanged; otherwise the cell's dirty bit is set and
     * the node becomes a re-evaluation seed.
     */
    void mutateInput(NodeIdx node, sem::AttrId attr, int64_t value);

    /**
     * Replace the subtree rooted at live non-root @p target with a
     * copy of @p replacement (an unedited arena of the same grammar
     * object whose root class the parent edge admits). The new nodes
     * are appended at the end — BFS order is preserved because every
     * edge, including the repointed parent edge, points forward — and
     * the old subtree is orphaned in place until compact(). Returns
     * the new subtree root's index.
     */
    NodeIdx replaceSubtree(NodeIdx target, const TreeArena& replacement);

    /** False only for rows orphaned by replaceSubtree. */
    bool isLive(NodeIdx node) const;

    /** Node count minus orphaned rows. */
    uint32_t liveCount() const;

    /** Whether structural edits left orphaned rows behind. */
    bool edited() const;

    /**
     * Rebuild a fresh orphan-free arena (BFS renumbering from the
     * root, inputs and outputs both copied). The numbering depends
     * only on the live structure, so two arenas that received the
     * same edit sequence compact to cell-identical arenas regardless
     * of how their outputs were computed.
     */
    TreeArena compact() const;

    /** Edit bookkeeping; null until the first edit. */
    const EditState* edits() const { return edits_.get(); }
    EditState* edits() { return edits_.get(); }

    /** Materialize edit bookkeeping (reverse edges, live set, dirt). */
    EditState& ensureEditState();

    /** Reset all dirt (dirty bits, virgin marks, seeds) in O(touched). */
    void clearDirt();

  private:
    /**
     * Relocate the zero row so at least @p needRows real rows fit:
     * stale zero markers in the CSR arrays are rewritten first (a
     * future append may claim the old zero row's index), then every
     * column and per-cell byte array grows to the new capacity.
     */
    void growRows(uint64_t needRows);


    friend class ArenaBuilder;
    friend class ForestArena; ///< pack() assembles a flat arena directly

    // Out of line: inline member construction would instantiate the
    // unique_ptr<EditState> destructor against the incomplete type.
    explicit TreeArena(const sem::Grammar& grammar);

    const sem::Grammar* grammar_;
    Layout layout_;

    std::vector<sem::ClassId> cls_;     ///< by node
    std::vector<uint32_t> scalarBase_;  ///< by node, into scalars_
    std::vector<uint32_t> collBase_;    ///< by node, into collRanges_
    std::vector<NodeIdx> scalars_;      ///< zeroRow() = absent
    std::vector<CollRange> collRanges_;
    std::vector<NodeIdx> collElems_;
    std::vector<std::vector<int64_t>> columns_; ///< [column][node]
    std::vector<int64_t*> colPtrs_;             ///< view() scratch
    std::shared_ptr<const LevelSegments> segments_; ///< lazy cache
    std::shared_ptr<const TileGraph> tiles_;        ///< lazy cache
    uint64_t tilesBytes_ = 0; ///< budget tiles_ was built for
    NodeIdx zeroRow_ = 0; ///< always-zero row index; >= size()
    std::unique_ptr<EditState> edits_; ///< null until the first edit
};

/**
 * Structural + value equality of two trees up to node renumbering:
 * same classes, same child shapes, and identical attribute values,
 * compared by parallel walk from the roots. The arena round-trip tests
 * are phrased with this (tree::Tree node ids are incidental).
 */
bool treesEquivalent(const tree::Tree& a, const tree::Tree& b);

} // namespace hecate::runtime
