// Portable scalar kernel variant. src/CMakeLists.txt compiles this TU
// with the vectorizer disabled; CI's HECATE_DISABLE_SIMD job runs the
// whole suite against it to differentially check the vector variant.

#define HECATE_KERNEL_NS kern_novec
#define HECATE_SIMD 0
#include "runtime/kernels_impl.inl"
