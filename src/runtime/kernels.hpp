#pragma once

/**
 * @file
 * Class-homogeneous sweep kernels for the segmented execution
 * strategy: one EvalSpec applied to one LevelSegments segment as a
 * tight loop over SoA columns, with dispatch (eval kind, operator,
 * operand shape, target shape) hoisted entirely out of the loop.
 *
 * Every kernel exists in two variants compiled side by side from the
 * same source (kernels_impl.inl): an auto-vectorization-friendly
 * build and a portable scalar build with the vectorizer disabled.
 * ExecOptions::simd selects at run time; the HECATE_DISABLE_SIMD
 * CMake option flips the default so CI can differentially check the
 * scalar kernels against every other path. Both variants share the
 * wrapping int64 semantics of support/arith.hpp, so their results are
 * bit-identical by construction — the flag exists to prove it.
 */

#include "runtime/arena.hpp"
#include "runtime/program.hpp"

namespace hecate::runtime::detail {

/** Everything a kernel needs beyond the spec and the node slice. */
struct KernelCtx {
    ArenaView view;                ///< columns + CSR structure
    const XInst* xcode = nullptr;  ///< expression pool (Bytecode kind)
    const RInst* rcode = nullptr;  ///< register-form pool (strip engine)
};

/**
 * Per-thread expression scratch and counters. One instance per worker
 * slot: the operand stack serves the node-major interpreter fallback,
 * the register scratchpad holds the strip engine's column-major
 * maxRegCount() × kStripWidth lane file, and the counters accumulate
 * strip-engine telemetry the caller drains into RuntimeStats.
 */
struct ExprScratch {
    int64_t* xstack = nullptr; ///< maxExprStack() slots
    int64_t* regs = nullptr;   ///< maxRegCount() * kStripWidth lanes
    bool strip = true;         ///< run register-form strips when present
    uint64_t strips = 0;       ///< strip loops executed
    uint64_t predOps = 0;      ///< predicated (SELECT) lane-ops applied
    uint64_t fallbackNodes = 0; ///< nodes run on the interpreter fallback
};

/**
 * Apply @p spec to a slice of same-class nodes: order[0..count) when
 * @p order is non-null (a permuted segment), else the contiguous id
 * range [first, first + count). @p scratch must be private to the
 * calling thread; Bytecode evals run strip-mined over its register
 * scratchpad when the spec converted (EvalSpec::rcount != 0 and
 * scratch.strip), else per node on its operand stack. Returns the
 * number of cells written (vacuous child-target evals write nothing).
 */
uint64_t runSpecKernel(const KernelCtx& ctx, const EvalSpec& spec,
                       const NodeIdx* order, NodeIdx first, uint32_t count,
                       bool simd, ExprScratch& scratch);

} // namespace hecate::runtime::detail
