// kernels_impl.inl — the body of one kernel variant.
//
// Included exactly once each by kernels_vec.cpp and kernels_scalar.cpp
// with HECATE_KERNEL_NS (namespace name) and HECATE_SIMD (0/1) set.
// Everything lives inside the per-variant namespace, so the two
// translation units share nothing but the types from kernels.hpp; the
// vectorization difference comes from per-source compile flags (see
// src/CMakeLists.txt) plus the ivdep hint below.
//
// Why `ivdep` is sound here: a kernel runs one EvalSpec over nodes of
// a single level wave. A self-target spec writes out[n] for distinct
// ids n and reads rows of {n} ∪ children(n) — the written rows are
// pairwise distinct and never equal another iteration's read row
// (children live one level deeper). A child-target spec writes
// distinct child rows (one parent per node) and reads the parents'
// level. Either way no loop-carried dependence exists, which is
// exactly the within-wave independence argument of DESIGN.md §10.

#include "runtime/eval_detail.hpp"
#include "runtime/kernels.hpp"

#if HECATE_SIMD
#if defined(__clang__)
#define HECATE_KERNEL_LOOP                                                     \
    _Pragma("clang loop vectorize(enable) interleave(enable)")
#else
#define HECATE_KERNEL_LOOP _Pragma("GCC ivdep")
#endif
#else
#if defined(__clang__)
#define HECATE_KERNEL_LOOP _Pragma("clang loop vectorize(disable)")
#else
#define HECATE_KERNEL_LOOP
#endif
#endif

namespace hecate::runtime::detail {
namespace HECATE_KERNEL_NS {

namespace {

/**
 * Blended operand loader. Constants read a dummy row of the target
 * column at the iterating node's own index — always in-bounds, never
 * written by any other lane of the same wave — and mask the load out
 * of the result, so the loop body is branch-free for every operand
 * shape.
 */
struct Ld {
    const int64_t* col = nullptr;
    int64_t imm = 0;
    int64_t mask = 0; ///< -1 selects imm, 0 selects the column read
    uint32_t slot = 0;
};

inline Ld
makeLd(const Operand& op, const ArenaView& v, uint32_t targetCol)
{
    Ld l;
    if (op.slot == Operand::kConst) {
        l.col = v.cols[targetCol];
        l.imm = op.imm;
        l.mask = -1;
        l.slot = 0;
    } else {
        l.col = v.cols[op.col];
        l.slot = static_cast<uint32_t>(op.slot);
    }
    return l;
}

/** Load in stream form; valid only when slot is 0 or the operand is
 *  a constant (the `allSelf` gate below guarantees it). */
inline int64_t
ldSelf(const Ld& l, NodeIdx n)
{
    return (l.imm & l.mask) | (l.col[n] & ~l.mask);
}

/** Load through the node's CSR scalar block (row 0 = self). */
inline int64_t
ldKids(const Ld& l, const NodeIdx* kids)
{
    return (l.imm & l.mask) | (l.col[kids[l.slot]] & ~l.mask);
}

inline bool
selfish(const Operand& op)
{
    return op.slot == Operand::kConst || op.slot == 0;
}

// ---- operator functors ------------------------------------------------

struct AddF {
    static int64_t apply(int64_t x, int64_t y) { return wrapAdd(x, y); }
};
struct SubF {
    static int64_t apply(int64_t x, int64_t y) { return wrapSub(x, y); }
};
struct MulF {
    static int64_t apply(int64_t x, int64_t y) { return wrapMul(x, y); }
};
struct DivF {
    static int64_t apply(int64_t x, int64_t y) { return wrapDiv(x, y); }
};
struct ModF {
    static int64_t apply(int64_t x, int64_t y) { return wrapMod(x, y); }
};
struct LtF {
    static int64_t apply(int64_t x, int64_t y) { return x < y ? 1 : 0; }
};
struct LeF {
    static int64_t apply(int64_t x, int64_t y) { return x <= y ? 1 : 0; }
};
struct GtF {
    static int64_t apply(int64_t x, int64_t y) { return x > y ? 1 : 0; }
};
struct GeF {
    static int64_t apply(int64_t x, int64_t y) { return x >= y ? 1 : 0; }
};
struct EqF {
    static int64_t apply(int64_t x, int64_t y) { return x == y ? 1 : 0; }
};
struct NeF {
    static int64_t apply(int64_t x, int64_t y) { return x != y ? 1 : 0; }
};
struct Max2F {
    static int64_t apply(int64_t x, int64_t y) { return x > y ? x : y; }
};
struct Min2F {
    static int64_t apply(int64_t x, int64_t y) { return x < y ? x : y; }
};

// ---- compute bodies ---------------------------------------------------
// Each body offers the stream form atSelf(n) (all operands self or
// const) and the CSR form atKids(n, kids).

struct CopyC {
    Ld a;
    int64_t atSelf(NodeIdx n) const { return ldSelf(a, n); }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return ldKids(a, kids);
    }
};

struct AbsC {
    Ld a;
    int64_t atSelf(NodeIdx n) const { return wrapAbs(ldSelf(a, n)); }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return wrapAbs(ldKids(a, kids));
    }
};

template <class F> struct BinC {
    Ld a, b;
    int64_t atSelf(NodeIdx n) const
    {
        return F::apply(ldSelf(a, n), ldSelf(b, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return F::apply(ldKids(a, kids), ldKids(b, kids));
    }
};

template <class F1, class F2, bool Left> struct TriC {
    Ld a, b, c;
    static int64_t shape(int64_t x, int64_t y, int64_t z)
    {
        if constexpr (Left)
            return F2::apply(F1::apply(x, y), z);
        else
            return F2::apply(x, F1::apply(y, z));
    }
    int64_t atSelf(NodeIdx n) const
    {
        return shape(ldSelf(a, n), ldSelf(b, n), ldSelf(c, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return shape(ldKids(a, kids), ldKids(b, kids), ldKids(c, kids));
    }
};

/** Generic three-operand body for the (fn1, fn2) pairs not worth a
 *  dedicated instantiation. */
struct TriGenC {
    Ld a, b, c;
    XOp fn1, fn2;
    bool left;
    int64_t shape(int64_t x, int64_t y, int64_t z) const
    {
        return left ? applyWrap(fn2, applyWrap(fn1, x, y), z)
                    : applyWrap(fn2, x, applyWrap(fn1, y, z));
    }
    int64_t atSelf(NodeIdx n) const
    {
        return shape(ldSelf(a, n), ldSelf(b, n), ldSelf(c, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return shape(ldKids(a, kids), ldKids(b, kids), ldKids(c, kids));
    }
};

/** Fallback body: run the expression pool (if/fold/deep nestings). */
struct ByteC {
    const KernelCtx* k;
    uint32_t xbegin;
    int64_t* stack;
    int64_t atSelf(NodeIdx n) const
    {
        return atKids(n, k->view.scalars + k->view.scalarBase[n]);
    }
    int64_t atKids(NodeIdx n, const NodeIdx* kids) const
    {
        return evalExpr(k->xcode, xbegin, k->view.cols, k->view, n, kids,
                        stack);
    }
};

// ---- loop shapes ------------------------------------------------------

/** Contiguous ids, self target, stream operands: the vector shape. */
template <class C>
uint64_t
streamSelf(int64_t* out, NodeIdx first, uint32_t count, C c)
{
    HECATE_KERNEL_LOOP
    for (uint32_t i = 0; i < count; ++i)
        out[first + i] = c.atSelf(first + i);
    return count;
}

/** Contiguous ids, self target, child operands via the CSR block. */
template <class C>
uint64_t
contigSelf(const ArenaView& v, int64_t* out, NodeIdx first, uint32_t count,
           C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    HECATE_KERNEL_LOOP
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = first + i;
        out[n] = c.atKids(n, scalars + base[n]);
    }
    return count;
}

/** Permuted segment, self target. */
template <class C>
uint64_t
orderSelf(const ArenaView& v, int64_t* out, const NodeIdx* order,
          uint32_t count, C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    HECATE_KERNEL_LOOP
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = order[i];
        out[n] = c.atKids(n, scalars + base[n]);
    }
    return count;
}

/** Contiguous ids, child target: skip vacuous (absent-child) evals so
 *  nothing ever writes the shared zero row. */
template <class C>
uint64_t
contigChild(const ArenaView& v, int64_t* out, uint32_t slot, NodeIdx first,
            uint32_t count, C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    const NodeIdx zero = v.zeroRow;
    uint64_t writes = 0;
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = first + i;
        const NodeIdx* kids = scalars + base[n];
        const NodeIdx t = kids[slot];
        if (t == zero)
            continue;
        out[t] = c.atKids(n, kids);
        ++writes;
    }
    return writes;
}

/** Permuted segment, child target. */
template <class C>
uint64_t
orderChild(const ArenaView& v, int64_t* out, uint32_t slot,
           const NodeIdx* order, uint32_t count, C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    const NodeIdx zero = v.zeroRow;
    uint64_t writes = 0;
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = order[i];
        const NodeIdx* kids = scalars + base[n];
        const NodeIdx t = kids[slot];
        if (t == zero)
            continue;
        out[t] = c.atKids(n, kids);
        ++writes;
    }
    return writes;
}

// ---- dispatch ---------------------------------------------------------

template <class C>
uint64_t
dispatchSelf(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
             NodeIdx first, uint32_t count, bool allSelf, C c)
{
    int64_t* out = v.cols[spec.targetCol];
    if (order != nullptr)
        return orderSelf(v, out, order, count, c);
    if (allSelf)
        return streamSelf(out, first, count, c);
    return contigSelf(v, out, first, count, c);
}

template <class C>
uint64_t
dispatchAny(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
            NodeIdx first, uint32_t count, bool allSelf, C c)
{
    if (spec.targetSlot == 0)
        return dispatchSelf(v, spec, order, first, count, allSelf, c);
    int64_t* out = v.cols[spec.targetCol];
    const uint32_t slot = static_cast<uint32_t>(spec.targetSlot);
    if (order != nullptr)
        return orderChild(v, out, slot, order, count, c);
    return contigChild(v, out, slot, first, count, c);
}

uint64_t
runBin(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
       NodeIdx first, uint32_t count)
{
    const Ld a = makeLd(spec.a, v, spec.targetCol);
    const Ld b = makeLd(spec.b, v, spec.targetCol);
    const bool s = selfish(spec.a) && selfish(spec.b);
    switch (spec.fn1) {
    case XOp::Add:
        return dispatchAny(v, spec, order, first, count, s, BinC<AddF>{a, b});
    case XOp::Sub:
        return dispatchAny(v, spec, order, first, count, s, BinC<SubF>{a, b});
    case XOp::Mul:
        return dispatchAny(v, spec, order, first, count, s, BinC<MulF>{a, b});
    case XOp::Div:
        return dispatchAny(v, spec, order, first, count, s, BinC<DivF>{a, b});
    case XOp::Mod:
        return dispatchAny(v, spec, order, first, count, s, BinC<ModF>{a, b});
    case XOp::Lt:
        return dispatchAny(v, spec, order, first, count, s, BinC<LtF>{a, b});
    case XOp::Le:
        return dispatchAny(v, spec, order, first, count, s, BinC<LeF>{a, b});
    case XOp::Gt:
        return dispatchAny(v, spec, order, first, count, s, BinC<GtF>{a, b});
    case XOp::Ge:
        return dispatchAny(v, spec, order, first, count, s, BinC<GeF>{a, b});
    case XOp::Eq:
        return dispatchAny(v, spec, order, first, count, s, BinC<EqF>{a, b});
    case XOp::Ne:
        return dispatchAny(v, spec, order, first, count, s, BinC<NeF>{a, b});
    case XOp::Max2:
        return dispatchAny(v, spec, order, first, count, s, BinC<Max2F>{a, b});
    case XOp::Min2:
        return dispatchAny(v, spec, order, first, count, s, BinC<Min2F>{a, b});
    default:
        internalError("kernels: bad Bin op");
    }
}

template <class F1, bool Left>
uint64_t
runTriOuter(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
            NodeIdx first, uint32_t count, const Ld& a, const Ld& b,
            const Ld& c, bool s)
{
    switch (spec.fn2) {
    case XOp::Add:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, AddF, Left>{a, b, c});
    case XOp::Sub:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, SubF, Left>{a, b, c});
    case XOp::Mul:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, MulF, Left>{a, b, c});
    case XOp::Max2:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, Max2F, Left>{a, b, c});
    case XOp::Min2:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, Min2F, Left>{a, b, c});
    default:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriGenC{a, b, c, spec.fn1, spec.fn2, Left});
    }
}

template <bool Left>
uint64_t
runTri(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
       NodeIdx first, uint32_t count)
{
    const Ld a = makeLd(spec.a, v, spec.targetCol);
    const Ld b = makeLd(spec.b, v, spec.targetCol);
    const Ld c = makeLd(spec.c, v, spec.targetCol);
    const bool s = selfish(spec.a) && selfish(spec.b) && selfish(spec.c);
    if (spec.targetSlot == 0) {
        // The arithmetic / min-max pairs are the shapes the compiler
        // actually emits on hot self-target rules; everything else
        // falls through to the generic body.
        switch (spec.fn1) {
        case XOp::Add:
            return runTriOuter<AddF, Left>(v, spec, order, first, count, a, b,
                                           c, s);
        case XOp::Sub:
            return runTriOuter<SubF, Left>(v, spec, order, first, count, a, b,
                                           c, s);
        case XOp::Mul:
            return runTriOuter<MulF, Left>(v, spec, order, first, count, a, b,
                                           c, s);
        case XOp::Max2:
            return runTriOuter<Max2F, Left>(v, spec, order, first, count, a, b,
                                            c, s);
        case XOp::Min2:
            return runTriOuter<Min2F, Left>(v, spec, order, first, count, a, b,
                                            c, s);
        default:
            break;
        }
    }
    return dispatchAny(v, spec, order, first, count, s,
                       TriGenC{a, b, c, spec.fn1, spec.fn2, Left});
}

} // namespace

uint64_t
runSpec(const KernelCtx& ctx, const EvalSpec& spec, const NodeIdx* order,
        NodeIdx first, uint32_t count, int64_t* xstack)
{
    const ArenaView& v = ctx.view;
    switch (spec.kind) {
    case EvalKind::Copy:
        return dispatchAny(v, spec, order, first, count, selfish(spec.a),
                           CopyC{makeLd(spec.a, v, spec.targetCol)});
    case EvalKind::Un: // Un is always Abs
        return dispatchAny(v, spec, order, first, count, selfish(spec.a),
                           AbsC{makeLd(spec.a, v, spec.targetCol)});
    case EvalKind::Bin:
        return runBin(v, spec, order, first, count);
    case EvalKind::TriL:
        return runTri<true>(v, spec, order, first, count);
    case EvalKind::TriR:
        return runTri<false>(v, spec, order, first, count);
    case EvalKind::Bytecode:
        return dispatchAny(v, spec, order, first, count, false,
                           ByteC{&ctx, spec.xbegin, xstack});
    }
    internalError("kernels: bad eval kind");
}

} // namespace HECATE_KERNEL_NS
} // namespace hecate::runtime::detail

#undef HECATE_KERNEL_LOOP
