// kernels_impl.inl — the body of one kernel variant.
//
// Included exactly once each by kernels_vec.cpp and kernels_scalar.cpp
// with HECATE_KERNEL_NS (namespace name) and HECATE_SIMD (0/1) set.
// Everything lives inside the per-variant namespace, so the two
// translation units share nothing but the types from kernels.hpp; the
// vectorization difference comes from per-source compile flags (see
// src/CMakeLists.txt) plus the ivdep hint below.
//
// Why `ivdep` is sound here: a kernel runs one EvalSpec over nodes of
// a single level wave. A self-target spec writes out[n] for distinct
// ids n and reads rows of {n} ∪ children(n) — the written rows are
// pairwise distinct and never equal another iteration's read row
// (children live one level deeper). A child-target spec writes
// distinct child rows (one parent per node) and reads the parents'
// level. Either way no loop-carried dependence exists, which is
// exactly the within-wave independence argument of DESIGN.md §10.

#include <algorithm>

#include "runtime/eval_detail.hpp"
#include "runtime/kernels.hpp"

#if HECATE_SIMD
#if defined(__clang__)
#define HECATE_KERNEL_LOOP                                                     \
    _Pragma("clang loop vectorize(enable) interleave(enable)")
#else
#define HECATE_KERNEL_LOOP _Pragma("GCC ivdep")
#endif
#else
#if defined(__clang__)
#define HECATE_KERNEL_LOOP _Pragma("clang loop vectorize(disable)")
#else
#define HECATE_KERNEL_LOOP
#endif
#endif

namespace hecate::runtime::detail {
namespace HECATE_KERNEL_NS {

namespace {

/**
 * Blended operand loader. Constants read a dummy row of the target
 * column at the iterating node's own index — always in-bounds, never
 * written by any other lane of the same wave — and mask the load out
 * of the result, so the loop body is branch-free for every operand
 * shape.
 */
struct Ld {
    const int64_t* col = nullptr;
    int64_t imm = 0;
    int64_t mask = 0; ///< -1 selects imm, 0 selects the column read
    uint32_t slot = 0;
};

inline Ld
makeLd(const Operand& op, const ArenaView& v, uint32_t targetCol)
{
    Ld l;
    if (op.slot == Operand::kConst) {
        l.col = v.cols[targetCol];
        l.imm = op.imm;
        l.mask = -1;
        l.slot = 0;
    } else {
        l.col = v.cols[op.col];
        l.slot = static_cast<uint32_t>(op.slot);
    }
    return l;
}

/** Load in stream form; valid only when slot is 0 or the operand is
 *  a constant (the `allSelf` gate below guarantees it). */
inline int64_t
ldSelf(const Ld& l, NodeIdx n)
{
    return (l.imm & l.mask) | (l.col[n] & ~l.mask);
}

/** Load through the node's CSR scalar block (row 0 = self). */
inline int64_t
ldKids(const Ld& l, const NodeIdx* kids)
{
    return (l.imm & l.mask) | (l.col[kids[l.slot]] & ~l.mask);
}

inline bool
selfish(const Operand& op)
{
    return op.slot == Operand::kConst || op.slot == 0;
}

// ---- operator functors ------------------------------------------------

struct AddF {
    static int64_t apply(int64_t x, int64_t y) { return wrapAdd(x, y); }
};
struct SubF {
    static int64_t apply(int64_t x, int64_t y) { return wrapSub(x, y); }
};
struct MulF {
    static int64_t apply(int64_t x, int64_t y) { return wrapMul(x, y); }
};
struct DivF {
    static int64_t apply(int64_t x, int64_t y) { return wrapDiv(x, y); }
};
struct ModF {
    static int64_t apply(int64_t x, int64_t y) { return wrapMod(x, y); }
};
struct LtF {
    static int64_t apply(int64_t x, int64_t y) { return x < y ? 1 : 0; }
};
struct LeF {
    static int64_t apply(int64_t x, int64_t y) { return x <= y ? 1 : 0; }
};
struct GtF {
    static int64_t apply(int64_t x, int64_t y) { return x > y ? 1 : 0; }
};
struct GeF {
    static int64_t apply(int64_t x, int64_t y) { return x >= y ? 1 : 0; }
};
struct EqF {
    static int64_t apply(int64_t x, int64_t y) { return x == y ? 1 : 0; }
};
struct NeF {
    static int64_t apply(int64_t x, int64_t y) { return x != y ? 1 : 0; }
};
struct Max2F {
    static int64_t apply(int64_t x, int64_t y) { return x > y ? x : y; }
};
struct Min2F {
    static int64_t apply(int64_t x, int64_t y) { return x < y ? x : y; }
};

// ---- compute bodies ---------------------------------------------------
// Each body offers the stream form atSelf(n) (all operands self or
// const) and the CSR form atKids(n, kids).

struct CopyC {
    Ld a;
    int64_t atSelf(NodeIdx n) const { return ldSelf(a, n); }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return ldKids(a, kids);
    }
};

struct AbsC {
    Ld a;
    int64_t atSelf(NodeIdx n) const { return wrapAbs(ldSelf(a, n)); }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return wrapAbs(ldKids(a, kids));
    }
};

template <class F> struct BinC {
    Ld a, b;
    int64_t atSelf(NodeIdx n) const
    {
        return F::apply(ldSelf(a, n), ldSelf(b, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return F::apply(ldKids(a, kids), ldKids(b, kids));
    }
};

template <class F1, class F2, bool Left> struct TriC {
    Ld a, b, c;
    static int64_t shape(int64_t x, int64_t y, int64_t z)
    {
        if constexpr (Left)
            return F2::apply(F1::apply(x, y), z);
        else
            return F2::apply(x, F1::apply(y, z));
    }
    int64_t atSelf(NodeIdx n) const
    {
        return shape(ldSelf(a, n), ldSelf(b, n), ldSelf(c, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return shape(ldKids(a, kids), ldKids(b, kids), ldKids(c, kids));
    }
};

/** Generic three-operand body for the (fn1, fn2) pairs not worth a
 *  dedicated instantiation. */
struct TriGenC {
    Ld a, b, c;
    XOp fn1, fn2;
    bool left;
    int64_t shape(int64_t x, int64_t y, int64_t z) const
    {
        return left ? applyWrap(fn2, applyWrap(fn1, x, y), z)
                    : applyWrap(fn2, x, applyWrap(fn1, y, z));
    }
    int64_t atSelf(NodeIdx n) const
    {
        return shape(ldSelf(a, n), ldSelf(b, n), ldSelf(c, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return shape(ldKids(a, kids), ldKids(b, kids), ldKids(c, kids));
    }
};

/** Four-leaf shapes: left chain f3(f2(f1(a,b),c),d) or balanced
 *  f3(f1(a,b), f2(c,d)). */
template <class F1, class F2, class F3, bool Balanced> struct QuadC {
    Ld a, b, c, d;
    static int64_t shape(int64_t w, int64_t x, int64_t y, int64_t z)
    {
        if constexpr (Balanced)
            return F3::apply(F1::apply(w, x), F2::apply(y, z));
        else
            return F3::apply(F2::apply(F1::apply(w, x), y), z);
    }
    int64_t atSelf(NodeIdx n) const
    {
        return shape(ldSelf(a, n), ldSelf(b, n), ldSelf(c, n),
                     ldSelf(d, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return shape(ldKids(a, kids), ldKids(b, kids), ldKids(c, kids),
                     ldKids(d, kids));
    }
};

/** Generic four-operand body for (fn1, fn2, fn3) triples not worth a
 *  dedicated instantiation. */
struct QuadGenC {
    Ld a, b, c, d;
    XOp fn1, fn2, fn3;
    bool balanced;
    int64_t shape(int64_t w, int64_t x, int64_t y, int64_t z) const
    {
        if (balanced)
            return applyWrap(fn3, applyWrap(fn1, w, x),
                             applyWrap(fn2, y, z));
        return applyWrap(fn3, applyWrap(fn2, applyWrap(fn1, w, x), y), z);
    }
    int64_t atSelf(NodeIdx n) const
    {
        return shape(ldSelf(a, n), ldSelf(b, n), ldSelf(c, n),
                     ldSelf(d, n));
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return shape(ldKids(a, kids), ldKids(b, kids), ldKids(c, kids),
                     ldKids(d, kids));
    }
};

/** cmp + select: fn(a, b) ? c : d — the branch-free `if` lowering. */
template <class F> struct CmpSelC {
    Ld a, b, c, d;
    int64_t atSelf(NodeIdx n) const
    {
        return F::apply(ldSelf(a, n), ldSelf(b, n)) != 0 ? ldSelf(c, n)
                                                         : ldSelf(d, n);
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return F::apply(ldKids(a, kids), ldKids(b, kids)) != 0
                   ? ldKids(c, kids)
                   : ldKids(d, kids);
    }
};

/** Generic condition op for CmpSel (max/min/arith conditions). */
struct CmpSelGenC {
    Ld a, b, c, d;
    XOp fn1;
    int64_t atSelf(NodeIdx n) const
    {
        return applyWrap(fn1, ldSelf(a, n), ldSelf(b, n)) != 0
                   ? ldSelf(c, n)
                   : ldSelf(d, n);
    }
    int64_t atKids(NodeIdx, const NodeIdx* kids) const
    {
        return applyWrap(fn1, ldKids(a, kids), ldKids(b, kids)) != 0
                   ? ldKids(c, kids)
                   : ldKids(d, kids);
    }
};

/** Fallback body: run the expression pool (if/fold/deep nestings). */
struct ByteC {
    const KernelCtx* k;
    uint32_t xbegin;
    int64_t* stack;
    int64_t atSelf(NodeIdx n) const
    {
        return atKids(n, k->view.scalars + k->view.scalarBase[n]);
    }
    int64_t atKids(NodeIdx n, const NodeIdx* kids) const
    {
        return evalExpr(k->xcode, xbegin, k->view.cols, k->view, n, kids,
                        stack);
    }
};

// ---- loop shapes ------------------------------------------------------

/** Contiguous ids, self target, stream operands: the vector shape. */
template <class C>
uint64_t
streamSelf(int64_t* out, NodeIdx first, uint32_t count, C c)
{
    HECATE_KERNEL_LOOP
    for (uint32_t i = 0; i < count; ++i)
        out[first + i] = c.atSelf(first + i);
    return count;
}

/** Contiguous ids, self target, child operands via the CSR block. */
template <class C>
uint64_t
contigSelf(const ArenaView& v, int64_t* out, NodeIdx first, uint32_t count,
           C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    HECATE_KERNEL_LOOP
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = first + i;
        out[n] = c.atKids(n, scalars + base[n]);
    }
    return count;
}

/** Permuted segment, self target. */
template <class C>
uint64_t
orderSelf(const ArenaView& v, int64_t* out, const NodeIdx* order,
          uint32_t count, C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    HECATE_KERNEL_LOOP
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = order[i];
        out[n] = c.atKids(n, scalars + base[n]);
    }
    return count;
}

/** Contiguous ids, child target: skip vacuous (absent-child) evals so
 *  nothing ever writes the shared zero row. */
template <class C>
uint64_t
contigChild(const ArenaView& v, int64_t* out, uint32_t slot, NodeIdx first,
            uint32_t count, C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    const NodeIdx zero = v.zeroRow;
    uint64_t writes = 0;
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = first + i;
        const NodeIdx* kids = scalars + base[n];
        const NodeIdx t = kids[slot];
        if (t == zero)
            continue;
        out[t] = c.atKids(n, kids);
        ++writes;
    }
    return writes;
}

/** Permuted segment, child target. */
template <class C>
uint64_t
orderChild(const ArenaView& v, int64_t* out, uint32_t slot,
           const NodeIdx* order, uint32_t count, C c)
{
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    const NodeIdx zero = v.zeroRow;
    uint64_t writes = 0;
    for (uint32_t i = 0; i < count; ++i) {
        const NodeIdx n = order[i];
        const NodeIdx* kids = scalars + base[n];
        const NodeIdx t = kids[slot];
        if (t == zero)
            continue;
        out[t] = c.atKids(n, kids);
        ++writes;
    }
    return writes;
}

// ---- dispatch ---------------------------------------------------------

template <class C>
uint64_t
dispatchSelf(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
             NodeIdx first, uint32_t count, bool allSelf, C c)
{
    int64_t* out = v.cols[spec.targetCol];
    if (order != nullptr)
        return orderSelf(v, out, order, count, c);
    if (allSelf)
        return streamSelf(out, first, count, c);
    return contigSelf(v, out, first, count, c);
}

template <class C>
uint64_t
dispatchAny(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
            NodeIdx first, uint32_t count, bool allSelf, C c)
{
    if (spec.targetSlot == 0)
        return dispatchSelf(v, spec, order, first, count, allSelf, c);
    int64_t* out = v.cols[spec.targetCol];
    const uint32_t slot = static_cast<uint32_t>(spec.targetSlot);
    if (order != nullptr)
        return orderChild(v, out, slot, order, count, c);
    return contigChild(v, out, slot, first, count, c);
}

uint64_t
runBin(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
       NodeIdx first, uint32_t count)
{
    const Ld a = makeLd(spec.a, v, spec.targetCol);
    const Ld b = makeLd(spec.b, v, spec.targetCol);
    const bool s = selfish(spec.a) && selfish(spec.b);
    switch (spec.fn1) {
    case XOp::Add:
        return dispatchAny(v, spec, order, first, count, s, BinC<AddF>{a, b});
    case XOp::Sub:
        return dispatchAny(v, spec, order, first, count, s, BinC<SubF>{a, b});
    case XOp::Mul:
        return dispatchAny(v, spec, order, first, count, s, BinC<MulF>{a, b});
    case XOp::Div:
        return dispatchAny(v, spec, order, first, count, s, BinC<DivF>{a, b});
    case XOp::Mod:
        return dispatchAny(v, spec, order, first, count, s, BinC<ModF>{a, b});
    case XOp::Lt:
        return dispatchAny(v, spec, order, first, count, s, BinC<LtF>{a, b});
    case XOp::Le:
        return dispatchAny(v, spec, order, first, count, s, BinC<LeF>{a, b});
    case XOp::Gt:
        return dispatchAny(v, spec, order, first, count, s, BinC<GtF>{a, b});
    case XOp::Ge:
        return dispatchAny(v, spec, order, first, count, s, BinC<GeF>{a, b});
    case XOp::Eq:
        return dispatchAny(v, spec, order, first, count, s, BinC<EqF>{a, b});
    case XOp::Ne:
        return dispatchAny(v, spec, order, first, count, s, BinC<NeF>{a, b});
    case XOp::Max2:
        return dispatchAny(v, spec, order, first, count, s, BinC<Max2F>{a, b});
    case XOp::Min2:
        return dispatchAny(v, spec, order, first, count, s, BinC<Min2F>{a, b});
    default:
        internalError("kernels: bad Bin op");
    }
}

template <class F1, bool Left>
uint64_t
runTriOuter(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
            NodeIdx first, uint32_t count, const Ld& a, const Ld& b,
            const Ld& c, bool s)
{
    switch (spec.fn2) {
    case XOp::Add:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, AddF, Left>{a, b, c});
    case XOp::Sub:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, SubF, Left>{a, b, c});
    case XOp::Mul:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, MulF, Left>{a, b, c});
    case XOp::Max2:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, Max2F, Left>{a, b, c});
    case XOp::Min2:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriC<F1, Min2F, Left>{a, b, c});
    default:
        return dispatchSelf(v, spec, order, first, count, s,
                            TriGenC{a, b, c, spec.fn1, spec.fn2, Left});
    }
}

template <bool Left>
uint64_t
runTri(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
       NodeIdx first, uint32_t count)
{
    const Ld a = makeLd(spec.a, v, spec.targetCol);
    const Ld b = makeLd(spec.b, v, spec.targetCol);
    const Ld c = makeLd(spec.c, v, spec.targetCol);
    const bool s = selfish(spec.a) && selfish(spec.b) && selfish(spec.c);
    if (spec.targetSlot == 0) {
        // The arithmetic / min-max pairs are the shapes the compiler
        // actually emits on hot self-target rules; everything else
        // falls through to the generic body.
        switch (spec.fn1) {
        case XOp::Add:
            return runTriOuter<AddF, Left>(v, spec, order, first, count, a, b,
                                           c, s);
        case XOp::Sub:
            return runTriOuter<SubF, Left>(v, spec, order, first, count, a, b,
                                           c, s);
        case XOp::Mul:
            return runTriOuter<MulF, Left>(v, spec, order, first, count, a, b,
                                           c, s);
        case XOp::Max2:
            return runTriOuter<Max2F, Left>(v, spec, order, first, count, a, b,
                                            c, s);
        case XOp::Min2:
            return runTriOuter<Min2F, Left>(v, spec, order, first, count, a, b,
                                            c, s);
        default:
            break;
        }
    }
    return dispatchAny(v, spec, order, first, count, s,
                       TriGenC{a, b, c, spec.fn1, spec.fn2, Left});
}

template <bool Balanced>
uint64_t
runQuad(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
        NodeIdx first, uint32_t count)
{
    const Ld a = makeLd(spec.a, v, spec.targetCol);
    const Ld b = makeLd(spec.b, v, spec.targetCol);
    const Ld c = makeLd(spec.c, v, spec.targetCol);
    const Ld d = makeLd(spec.d, v, spec.targetCol);
    const bool s = selfish(spec.a) && selfish(spec.b) && selfish(spec.c) &&
                   selfish(spec.d);
    // Homogeneous reductions (long + / * / max / min chains) are the
    // shapes the AST-style grammars actually produce; mixed triples go
    // through the generic body.
    if (spec.fn1 == spec.fn2 && spec.fn2 == spec.fn3) {
        switch (spec.fn1) {
        case XOp::Add:
            return dispatchAny(v, spec, order, first, count, s,
                               QuadC<AddF, AddF, AddF, Balanced>{a, b, c, d});
        case XOp::Mul:
            return dispatchAny(v, spec, order, first, count, s,
                               QuadC<MulF, MulF, MulF, Balanced>{a, b, c, d});
        case XOp::Max2:
            return dispatchAny(
                v, spec, order, first, count, s,
                QuadC<Max2F, Max2F, Max2F, Balanced>{a, b, c, d});
        case XOp::Min2:
            return dispatchAny(
                v, spec, order, first, count, s,
                QuadC<Min2F, Min2F, Min2F, Balanced>{a, b, c, d});
        default:
            break;
        }
    }
    return dispatchAny(
        v, spec, order, first, count, s,
        QuadGenC{a, b, c, d, spec.fn1, spec.fn2, spec.fn3, Balanced});
}

uint64_t
runCmpSel(const ArenaView& v, const EvalSpec& spec, const NodeIdx* order,
          NodeIdx first, uint32_t count)
{
    const Ld a = makeLd(spec.a, v, spec.targetCol);
    const Ld b = makeLd(spec.b, v, spec.targetCol);
    const Ld c = makeLd(spec.c, v, spec.targetCol);
    const Ld d = makeLd(spec.d, v, spec.targetCol);
    const bool s = selfish(spec.a) && selfish(spec.b) && selfish(spec.c) &&
                   selfish(spec.d);
    switch (spec.fn1) {
    case XOp::Lt:
        return dispatchAny(v, spec, order, first, count, s,
                           CmpSelC<LtF>{a, b, c, d});
    case XOp::Le:
        return dispatchAny(v, spec, order, first, count, s,
                           CmpSelC<LeF>{a, b, c, d});
    case XOp::Gt:
        return dispatchAny(v, spec, order, first, count, s,
                           CmpSelC<GtF>{a, b, c, d});
    case XOp::Ge:
        return dispatchAny(v, spec, order, first, count, s,
                           CmpSelC<GeF>{a, b, c, d});
    case XOp::Eq:
        return dispatchAny(v, spec, order, first, count, s,
                           CmpSelC<EqF>{a, b, c, d});
    case XOp::Ne:
        return dispatchAny(v, spec, order, first, count, s,
                           CmpSelC<NeF>{a, b, c, d});
    default:
        return dispatchAny(v, spec, order, first, count, s,
                           CmpSelGenC{a, b, c, d, spec.fn1});
    }
}

// ---- strip engine -----------------------------------------------------
// The register-form executor: one IR op applied across a whole strip of
// lanes before the next (loop interchange over the node-major
// interpreter), registers laid out column-major as regCount rows of
// kStripWidth lanes in the caller's scratchpad. Every arithmetic op is
// total and the loads are pure, so a predicated lane computes exactly
// the values the interpreter would have computed down whichever arm the
// SELECT keeps — and the values it would not have computed are simply
// discarded, never observable.

/** Element-wise register op; dst may alias either source (same lane). */
template <class F>
inline void
stripBin(int64_t* dst, const int64_t* x, const int64_t* y, uint32_t w)
{
    HECATE_KERNEL_LOOP
    for (uint32_t i = 0; i < w; ++i)
        dst[i] = F::apply(x[i], y[i]);
}

uint64_t
runStrip(const KernelCtx& ctx, const EvalSpec& spec, const NodeIdx* order,
         NodeIdx first, uint32_t count, ExprScratch& sc)
{
    const ArenaView& v = ctx.view;
    const RInst* rc = ctx.rcode + spec.rbegin;
    const uint32_t rn = spec.rcount;
    int64_t* out = v.cols[spec.targetCol];
    const uint32_t* base = v.scalarBase;
    const NodeIdx* scalars = v.scalars;
    const NodeIdx zero = v.zeroRow;
    const bool contig = order == nullptr;
    uint64_t writes = 0;
    for (uint32_t strip = 0; strip < count; strip += kStripWidth) {
        const uint32_t w = std::min(kStripWidth, count - strip);
        const NodeIdx n0 = first + strip;
        NodeIdx nodes[kStripWidth];
        if (contig) {
            for (uint32_t i = 0; i < w; ++i)
                nodes[i] = n0 + i;
        } else {
            for (uint32_t i = 0; i < w; ++i)
                nodes[i] = order[strip + i];
        }
        for (uint32_t k = 0; k < rn; ++k) {
            const RInst& ri = rc[k];
            int64_t* dst = sc.regs + ri.d * kStripWidth;
            switch (ri.op) {
            case ROp::Const: {
                const int64_t imm = ri.imm;
                HECATE_KERNEL_LOOP
                for (uint32_t i = 0; i < w; ++i)
                    dst[i] = imm;
                break;
            }
            case ROp::LoadSelf: {
                const int64_t* col = v.cols[ri.col];
                if (contig) {
                    HECATE_KERNEL_LOOP
                    for (uint32_t i = 0; i < w; ++i)
                        dst[i] = col[n0 + i];
                } else {
                    for (uint32_t i = 0; i < w; ++i)
                        dst[i] = col[nodes[i]];
                }
                break;
            }
            case ROp::LoadChild: {
                // Absent children alias the zero row, which holds 0 in
                // every column — the gather needs no branch.
                const int64_t* col = v.cols[ri.col];
                const uint32_t slot = ri.slot;
                for (uint32_t i = 0; i < w; ++i)
                    dst[i] = col[scalars[base[nodes[i]] + slot]];
                break;
            }
            case ROp::Add:
                stripBin<AddF>(dst, sc.regs + ri.a * kStripWidth,
                               sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Sub:
                stripBin<SubF>(dst, sc.regs + ri.a * kStripWidth,
                               sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Mul:
                stripBin<MulF>(dst, sc.regs + ri.a * kStripWidth,
                               sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Div:
                stripBin<DivF>(dst, sc.regs + ri.a * kStripWidth,
                               sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Mod:
                stripBin<ModF>(dst, sc.regs + ri.a * kStripWidth,
                               sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Lt:
                stripBin<LtF>(dst, sc.regs + ri.a * kStripWidth,
                              sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Le:
                stripBin<LeF>(dst, sc.regs + ri.a * kStripWidth,
                              sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Gt:
                stripBin<GtF>(dst, sc.regs + ri.a * kStripWidth,
                              sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Ge:
                stripBin<GeF>(dst, sc.regs + ri.a * kStripWidth,
                              sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Eq:
                stripBin<EqF>(dst, sc.regs + ri.a * kStripWidth,
                              sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Ne:
                stripBin<NeF>(dst, sc.regs + ri.a * kStripWidth,
                              sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Max2:
                stripBin<Max2F>(dst, sc.regs + ri.a * kStripWidth,
                                sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Min2:
                stripBin<Min2F>(dst, sc.regs + ri.a * kStripWidth,
                                sc.regs + ri.b * kStripWidth, w);
                break;
            case ROp::Abs: {
                const int64_t* x = sc.regs + ri.a * kStripWidth;
                HECATE_KERNEL_LOOP
                for (uint32_t i = 0; i < w; ++i)
                    dst[i] = wrapAbs(x[i]);
                break;
            }
            case ROp::Select: {
                const int64_t* cnd = sc.regs + ri.a * kStripWidth;
                const int64_t* tv = sc.regs + ri.b * kStripWidth;
                const int64_t* ev = sc.regs + ri.c * kStripWidth;
                HECATE_KERNEL_LOOP
                for (uint32_t i = 0; i < w; ++i)
                    dst[i] = cnd[i] != 0 ? tv[i] : ev[i];
                break;
            }
            case ROp::Fold: {
                // The one divergent op: element counts vary per lane, so
                // each lane runs its own reduction (combiner hoisted).
                const int64_t* col = v.cols[ri.col];
                const int64_t* init = sc.regs + ri.a * kStripWidth;
                const uint32_t slot = ri.slot;
                switch (ri.fn) {
                case FoldFn::Add:
                    for (uint32_t i = 0; i < w; ++i) {
                        int64_t acc = init[i];
                        auto [beg, end] = v.collection(nodes[i], slot);
                        for (const NodeIdx* p = beg; p != end; ++p)
                            acc = wrapAdd(acc, col[*p]);
                        dst[i] = acc;
                    }
                    break;
                case FoldFn::Mul:
                    for (uint32_t i = 0; i < w; ++i) {
                        int64_t acc = init[i];
                        auto [beg, end] = v.collection(nodes[i], slot);
                        for (const NodeIdx* p = beg; p != end; ++p)
                            acc = wrapMul(acc, col[*p]);
                        dst[i] = acc;
                    }
                    break;
                case FoldFn::Max:
                    for (uint32_t i = 0; i < w; ++i) {
                        int64_t acc = init[i];
                        auto [beg, end] = v.collection(nodes[i], slot);
                        for (const NodeIdx* p = beg; p != end; ++p)
                            acc = acc > col[*p] ? acc : col[*p];
                        dst[i] = acc;
                    }
                    break;
                case FoldFn::Min:
                    for (uint32_t i = 0; i < w; ++i) {
                        int64_t acc = init[i];
                        auto [beg, end] = v.collection(nodes[i], slot);
                        for (const NodeIdx* p = beg; p != end; ++p)
                            acc = acc < col[*p] ? acc : col[*p];
                        dst[i] = acc;
                    }
                    break;
                }
                break;
            }
            }
        }
        // Writeback from register 0 — the only masked step: vacuous
        // child-target lanes (absent child) skip their store, exactly
        // like the node-major loops above.
        const int64_t* res = sc.regs;
        if (spec.targetSlot == 0) {
            if (contig) {
                HECATE_KERNEL_LOOP
                for (uint32_t i = 0; i < w; ++i)
                    out[n0 + i] = res[i];
            } else {
                for (uint32_t i = 0; i < w; ++i)
                    out[nodes[i]] = res[i];
            }
            writes += w;
        } else {
            const uint32_t slot = static_cast<uint32_t>(spec.targetSlot);
            for (uint32_t i = 0; i < w; ++i) {
                const NodeIdx t = scalars[base[nodes[i]] + slot];
                if (t == zero)
                    continue;
                out[t] = res[i];
                ++writes;
            }
        }
        ++sc.strips;
    }
    sc.predOps += static_cast<uint64_t>(spec.predOps) * count;
    return writes;
}

} // namespace

uint64_t
runSpec(const KernelCtx& ctx, const EvalSpec& spec, const NodeIdx* order,
        NodeIdx first, uint32_t count, ExprScratch& sc)
{
    const ArenaView& v = ctx.view;
    switch (spec.kind) {
    case EvalKind::Copy:
        return dispatchAny(v, spec, order, first, count, selfish(spec.a),
                           CopyC{makeLd(spec.a, v, spec.targetCol)});
    case EvalKind::Un: // Un is always Abs
        return dispatchAny(v, spec, order, first, count, selfish(spec.a),
                           AbsC{makeLd(spec.a, v, spec.targetCol)});
    case EvalKind::Bin:
        return runBin(v, spec, order, first, count);
    case EvalKind::TriL:
        return runTri<true>(v, spec, order, first, count);
    case EvalKind::TriR:
        return runTri<false>(v, spec, order, first, count);
    case EvalKind::QuadL:
        return runQuad<false>(v, spec, order, first, count);
    case EvalKind::QuadB:
        return runQuad<true>(v, spec, order, first, count);
    case EvalKind::CmpSel:
        return runCmpSel(v, spec, order, first, count);
    case EvalKind::Bytecode:
        if (spec.rcount != 0 && sc.strip)
            return runStrip(ctx, spec, order, first, count, sc);
        sc.fallbackNodes += count;
        return dispatchAny(v, spec, order, first, count, false,
                           ByteC{&ctx, spec.xbegin, sc.xstack});
    }
    internalError("kernels: bad eval kind");
}

} // namespace HECATE_KERNEL_NS
} // namespace hecate::runtime::detail

#undef HECATE_KERNEL_LOOP
