#include "runtime/segments.hpp"

#include <algorithm>

namespace hecate::runtime {

namespace {

/**
 * Minimum average run length before a fragmented (level, class) group
 * is split into per-run contiguous segments. Below this the per-kernel
 * dispatch overhead of many tiny segments beats the gather cost of one
 * permuted segment, so the group stays whole in order()-indexed form.
 */
constexpr uint32_t kMinAvgRunLength = 16;

} // namespace

void
LevelSegments::appendClassSegments(const NodeIdx* order, uint32_t groupBegin,
                                   uint32_t groupEnd, sem::ClassId cls,
                                   std::vector<Segment>& out)
{
    const uint32_t groupCount = groupEnd - groupBegin;
    if (groupCount == 0)
        return;
    // Count maximal contiguous id runs inside the group. One run = one
    // streaming segment; many long runs (a packed forest's per-tree
    // blocks) become one segment each; badly fragmented groups stay a
    // single permuted segment.
    uint32_t runs = 1;
    for (uint32_t i = groupBegin + 1; i < groupEnd; ++i) {
        if (order[i] != order[i - 1] + 1)
            ++runs;
    }
    if (runs == 1 || groupCount / runs >= kMinAvgRunLength) {
        uint32_t runBegin = groupBegin;
        for (uint32_t i = groupBegin + 1; i <= groupEnd; ++i) {
            if (i == groupEnd || order[i] != order[i - 1] + 1) {
                Segment seg;
                seg.cls = cls;
                seg.posBegin = runBegin;
                seg.count = i - runBegin;
                seg.first = order[runBegin];
                seg.contiguous = true;
                out.push_back(seg);
                runBegin = i;
            }
        }
    } else {
        Segment seg;
        seg.cls = cls;
        seg.posBegin = groupBegin;
        seg.count = groupCount;
        seg.first = order[groupBegin];
        seg.contiguous = false;
        out.push_back(seg);
    }
}

LevelSegments
LevelSegments::build(const ArenaView& view)
{
    LevelSegments out;
    const uint32_t size = view.size;
    if (size == 0)
        return out;

    // Depth of every node: one forward pass settles it, because BFS
    // ids put every parent before its children (per tree; packed
    // forests place one root at the start of each tree block). Roots
    // stay at the vector's initial depth 0.
    std::vector<uint32_t> depth(size, 0);
    uint32_t deepest = 0;
    for (NodeIdx node = 0; node < size; ++node) {
        const ClassLayout& layout = view.layout->cls(view.cls[node]);
        const uint32_t next = depth[node] + 1;
        const NodeIdx* kids = view.scalars + view.scalarBase[node];
        for (uint32_t s = 1; s <= layout.scalarCount; ++s) {
            if (kids[s] != view.zeroRow)
                depth[kids[s]] = next;
        }
        for (uint32_t c = 0; c < layout.collCount; ++c) {
            auto [begin, end] = view.collection(node, c);
            for (const NodeIdx* it = begin; it != end; ++it)
                depth[*it] = next;
        }
        deepest = std::max(deepest, depth[node]);
    }
    const uint32_t levelCount = deepest + 1;

    // Stable two-pass bucketing: nodes by level, then each level by
    // class — ascending node id within every (level, class) group.
    // levelStart[l] is level l's first position; the extra final entry
    // is size, so [levelStart[l], levelStart[l + 1]) is level l's span.
    std::vector<uint32_t> levelStart(levelCount + 1, 0);
    for (NodeIdx node = 0; node < size; ++node)
        ++levelStart[depth[node] + 1];
    for (uint32_t l = 1; l <= levelCount; ++l)
        levelStart[l] += levelStart[l - 1];
    std::vector<NodeIdx> byLevel(size);
    {
        std::vector<uint32_t> cursor(levelStart.begin(),
                                     levelStart.begin() + levelCount);
        for (NodeIdx node = 0; node < size; ++node)
            byLevel[cursor[depth[node]]++] = node;
    }

    const uint32_t classCount =
        static_cast<uint32_t>(view.grammar->classes().size());
    out.order_.resize(size);
    out.levels_.resize(levelCount);
    std::vector<uint32_t> classPos(classCount + 1);
    for (uint32_t l = 0; l < levelCount; ++l) {
        const uint32_t posBegin = levelStart[l];
        const uint32_t posEnd = levelStart[l + 1];
        const NodeIdx* levelNodes = byLevel.data() + posBegin;
        const uint32_t levelCount = posEnd - posBegin;

        std::fill(classPos.begin(), classPos.end(), 0);
        for (uint32_t i = 0; i < levelCount; ++i)
            ++classPos[view.cls[levelNodes[i]]];
        uint32_t at = posBegin;
        for (uint32_t c = 0; c < classCount; ++c) {
            uint32_t count = classPos[c];
            classPos[c] = at;
            at += count;
        }
        std::vector<uint32_t> cursor(classPos.begin(),
                                     classPos.begin() + classCount);
        for (uint32_t i = 0; i < levelCount; ++i) {
            NodeIdx node = levelNodes[i];
            out.order_[cursor[view.cls[node]]++] = node;
        }

        Level& level = out.levels_[l];
        level.posBegin = posBegin;
        level.posEnd = posEnd;
        level.segBegin = static_cast<uint32_t>(out.segments_.size());
        for (uint32_t c = 0; c < classCount; ++c) {
            const uint32_t groupBegin = classPos[c];
            const uint32_t groupEnd =
                c + 1 < classCount ? classPos[c + 1] : posEnd;
            appendClassSegments(out.order_.data(), groupBegin, groupEnd,
                                static_cast<sem::ClassId>(c),
                                out.segments_);
        }
        level.segEnd = static_cast<uint32_t>(out.segments_.size());
    }

    Stats& st = out.stats_;
    st.levels = levelCount;
    st.nodes = size;
    st.segments = static_cast<uint32_t>(out.segments_.size());
    for (uint32_t l = 0; l < levelCount; ++l) {
        st.maxLevelWidth = std::max(
            st.maxLevelWidth, levelStart[l + 1] - levelStart[l]);
    }
    for (const Segment& seg : out.segments_) {
        if (seg.contiguous)
            st.contiguousNodes += seg.count;
    }
    st.avgSegmentLength =
        st.segments == 0 ? 0.0
                         : static_cast<double>(size) / st.segments;
    st.avgLevelWidth = static_cast<double>(size) / levelCount;
    return out;
}

ArenaView
TreeArena::view()
{
    // colPtrs_ is rebuilt whenever it is stale — in particular after
    // copying an arena, when cached pointers would still reference the
    // source's columns.
    if (colPtrs_.size() != columns_.size() ||
        (!columns_.empty() && colPtrs_[0] != columns_[0].data())) {
        colPtrs_.resize(columns_.size());
        for (size_t col = 0; col < columns_.size(); ++col)
            colPtrs_[col] = columns_[col].data();
    }
    static constexpr NodeIdx kSingleRoot[1] = {0};
    ArenaView v;
    v.grammar = grammar_;
    v.layout = &layout_;
    v.size = size();
    v.zeroRow = zeroRow();
    v.cls = cls_.data();
    v.scalarBase = scalarBase_.data();
    v.scalars = scalars_.data();
    v.collBase = collBase_.data();
    v.collRanges = collRanges_.data();
    v.collElems = collElems_.data();
    v.cols = colPtrs_.data();
    v.roots = kSingleRoot;
    v.rootCount = size() == 0 ? 0 : 1;
    return v;
}

const LevelSegments&
TreeArena::levelSegments()
{
    if (!segments_) {
        segments_ = std::make_shared<const LevelSegments>(
            LevelSegments::build(view()));
    }
    return *segments_;
}

} // namespace hecate::runtime
