#pragma once

/**
 * @file
 * ForestArena: many trees of one grammar packed into a single shared
 * column set, so one compiled Program executes a whole batch in one
 * set of sweeps.
 *
 * Packing concatenates the per-tree arenas block by block — node ids,
 * CSR scalar blocks, collection ranges, and attribute columns all
 * shift by per-tree offsets into one flat TreeArena-shaped store with
 * a single shared zero row at the end. Each tree block keeps its BFS
 * order (parents precede children), and no rule ever reaches across
 * trees, so every execution strategy runs unchanged over the packed
 * form through the same ArenaView the single-tree path uses — the
 * only difference is the root list (one root per tree block).
 *
 * The payoff is batch amortization: per-execution overheads (strategy
 * dispatch, wave scheduling, pool barriers) are paid once per forest
 * instead of once per tree, and the level-synchronous strategy gets
 * longer segments — level L of *every* tree lands in the same wave,
 * so segment kernels stream over batch-sized spans. A forest's
 * LevelSegments are derived from the packed view and cached here,
 * exactly like TreeArena caches its own.
 */

#include <cstdint>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/executor.hpp"

namespace hecate::runtime {

/** A batch of same-grammar trees sharing one column set. */
class ForestArena {
  public:
    /** Pack copies of @p trees (all of one grammar) into one forest. */
    static ForestArena pack(const std::vector<TreeArena>& trees);

    /**
     * Generate @p treeCount independent random instances (per-tree
     * node budget @p config.targetNodes; tree t uses a seed derived
     * from config.seed and t) and pack them.
     */
    static ForestArena generate(const sem::Grammar& grammar,
                                sem::InterfaceId rootIface,
                                const GenConfig& config, uint32_t treeCount);

    const sem::Grammar& grammar() const { return flat_.grammar(); }

    uint32_t treeCount() const
    {
        return static_cast<uint32_t>(bounds_.size()) - 1;
    }
    /** Total node count across the batch. */
    uint32_t size() const { return flat_.size(); }

    /** Global node id of tree @p t's root (its block's first id). */
    NodeIdx treeBegin(uint32_t t) const { return bounds_[t]; }
    uint32_t treeSize(uint32_t t) const
    {
        return bounds_[t + 1] - bounds_[t];
    }

    /** Extract tree @p t as a validated tree::Tree (node ids local). */
    tree::Tree toTree(uint32_t t) const;

    /** The packed flat store (checksums, cell access, clearing). */
    TreeArena& flat() { return flat_; }
    const TreeArena& flat() const { return flat_; }

    /** Raw view of the packed batch (one root per tree). */
    ArenaView view();

    /** Segments of the packed view, built on first use and cached. */
    const LevelSegments& levelSegments();

    /** Tile blocking of the packed view; cached like levelSegments(). */
    const TileGraph& tileGraph(uint64_t tileBytes = 0);

  private:
    explicit ForestArena(const sem::Grammar& grammar) : flat_(grammar) {}

    TreeArena flat_;
    /** Tree block begin offsets; bounds_[treeCount()] == size(). */
    std::vector<NodeIdx> bounds_;
    std::shared_ptr<const LevelSegments> segments_; ///< lazy cache
    std::shared_ptr<const TileGraph> tiles_;        ///< lazy cache
    uint64_t tilesBytes_ = 0; ///< budget tiles_ was built for
};

/**
 * Execute @p program over every tree of @p forest in one batched run.
 * Identical semantics to executing each tree separately; stats are the
 * batch aggregate.
 */
RuntimeStats execute(const Program& program, ForestArena& forest,
                     const ExecOptions& options = {});

} // namespace hecate::runtime
