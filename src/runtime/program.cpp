#include "runtime/program.hpp"

#include <algorithm>
#include <optional>

namespace hecate::runtime {

namespace {

/** Operand-stack depth an expression needs (mirrors the emitter). */
uint32_t
exprDepth(const ast::Expr& expr)
{
    switch (expr.kind) {
      case ast::ExprKind::Const:
      case ast::ExprKind::Select:
        return 1;
      case ast::ExprKind::Binary:
        return std::max(exprDepth(*expr.args[0]),
                        1 + exprDepth(*expr.args[1]));
      case ast::ExprKind::Call:
        if (expr.op == "abs")
            return exprDepth(*expr.args[0]);
        return std::max(exprDepth(*expr.args[0]),
                        1 + exprDepth(*expr.args[1]));
      case ast::ExprKind::If:
        return std::max({exprDepth(*expr.args[0]), exprDepth(*expr.args[1]),
                         exprDepth(*expr.args[2])});
      case ast::ExprKind::Fold:
        return exprDepth(*expr.args[0]); // Fold pops init, pushes result
    }
    internalError("exprDepth: unknown expression kind");
}

XOp
binaryOp(const std::string& op)
{
    if (op == "+") return XOp::Add;
    if (op == "-") return XOp::Sub;
    if (op == "*") return XOp::Mul;
    if (op == "/") return XOp::Div;
    if (op == "%") return XOp::Mod;
    if (op == "<") return XOp::Lt;
    if (op == "<=") return XOp::Le;
    if (op == ">") return XOp::Gt;
    if (op == ">=") return XOp::Ge;
    if (op == "==") return XOp::Eq;
    if (op == "!=") return XOp::Ne;
    internalError("Program: unknown operator '" + op + "'");
}

FoldFn
foldFn(const std::string& fn)
{
    if (fn == "add") return FoldFn::Add;
    if (fn == "mul") return FoldFn::Mul;
    if (fn == "max") return FoldFn::Max;
    if (fn == "min") return FoldFn::Min;
    internalError("Program: unknown fold function '" + fn + "'");
}

/** Register-form opcode of a two-operand stack opcode. */
ROp
regOpOf(XOp op)
{
    switch (op) {
    case XOp::Add: return ROp::Add;
    case XOp::Sub: return ROp::Sub;
    case XOp::Mul: return ROp::Mul;
    case XOp::Div: return ROp::Div;
    case XOp::Mod: return ROp::Mod;
    case XOp::Lt: return ROp::Lt;
    case XOp::Le: return ROp::Le;
    case XOp::Gt: return ROp::Gt;
    case XOp::Ge: return ROp::Ge;
    case XOp::Eq: return ROp::Eq;
    case XOp::Ne: return ROp::Ne;
    case XOp::Max2: return ROp::Max2;
    case XOp::Min2: return ROp::Min2;
    default:
        internalError("Program: no register form for stack op");
    }
}

} // namespace

/** Compilation context: one class case being lowered. */
class Compiler {
  public:
    Compiler(Program& program, const sched::Skeleton& skeleton,
             const sched::Schedule& schedule, const Layout& layout)
        : p_(program), skeleton_(skeleton), schedule_(schedule),
          layout_(layout), grammar_(skeleton.grammar())
    {
    }

    void compileCase(sem::ClassId cls)
    {
        cls_ = cls;
        p_.entry_[cls] = static_cast<uint32_t>(p_.code_.size());
        for (const auto& stmt : skeleton_.caseFor(cls).stmts)
            compileStmt(*stmt);
        p_.code_.push_back({Op::Ret, 0});
        analyzeSweepCase(cls);
    }

  private:
    const sem::ClassInfo& clsInfo() const { return grammar_.cls(cls_); }

    /** Assigned rule of a hole; kInvalidId when the hole is empty. */
    sem::RuleId holeAssignment(const ast::TStmt& stmt) const
    {
        sched::SlotId slot = skeleton_.slotOf(&stmt);
        if (skeleton_.slot(slot).candidates.empty())
            return sem::kInvalidId;
        if (slot >= schedule_.bySlot.size() ||
            !schedule_.bySlot[slot].has_value())
            return sem::kInvalidId;
        return *schedule_.bySlot[slot];
    }

    void compileStmt(const ast::TStmt& stmt)
    {
        switch (stmt.kind) {
          case ast::TStmtKind::Hole: {
            sem::RuleId rule = holeAssignment(stmt);
            if (rule != sem::kInvalidId &&
                skeleton_.slot(skeleton_.slotOf(&stmt)).context ==
                    sched::SlotContext::TopLevel) {
                emitEval(rule);
            }
            return;
          }
          case ast::TStmtKind::Eval:
            emitEval(skeleton_.evalRule(&stmt));
            return;
          case ast::TStmtKind::Recur:
            p_.code_.push_back({Op::Recur, scalarSlot(stmt.child)});
            return;
          case ast::TStmtKind::Iterate:
            compileIterate(stmt);
            return;
          case ast::TStmtKind::Parallel:
            compileParallel(stmt);
            return;
        }
    }

    /**
     * Iterate lowers to one ITERATE op (element visits, only when the
     * body recurs) followed by the body's scheduled folds in body
     * order — the post-loop evaluation the interpreter performs.
     */
    void compileIterate(const ast::TStmt& stmt)
    {
        bool hasRecur = false;
        for (const auto& body : stmt.body)
            hasRecur |= body->kind == ast::TStmtKind::Recur;
        if (hasRecur)
            p_.code_.push_back({Op::Iterate, collSlot(stmt.child)});
        for (const auto& body : stmt.body) {
            if (body->kind == ast::TStmtKind::Hole) {
                sem::RuleId rule = holeAssignment(*body);
                if (rule != sem::kInvalidId)
                    emitEval(rule);
            } else if (body->kind == ast::TStmtKind::Eval) {
                emitEval(skeleton_.evalRule(body.get()));
            }
        }
    }

    void compileParallel(const ast::TStmt& stmt)
    {
        p_.code_.push_back({Op::ParBegin, 0});
        if (!stmt.child.empty()) {
            p_.code_.push_back({Op::ParColl, collSlot(stmt.child)});
        } else {
            // Statement form: only recurs carry work (resolve bans
            // evals, and in-region holes are candidate-free).
            for (const auto& body : stmt.body) {
                if (body->kind == ast::TStmtKind::Recur)
                    p_.code_.push_back(
                        {Op::ParRecur, scalarSlot(body->child)});
            }
        }
        p_.code_.push_back({Op::ParEnd, 0});
    }

    /** CSR scalar-block row of @p child (row 0 is the node itself). */
    uint32_t scalarSlot(const std::string& child) const
    {
        sem::ChildId id = clsInfo().childByName.at(child);
        int32_t slot = layout_.cls(cls_).scalarSlotOf[id];
        checkInvariant(slot >= 0, "Program: recur on a collection child");
        return static_cast<uint32_t>(slot) + 1;
    }

    /**
     * Check whether the case just compiled fits the sandwich sweep
     * shape (Program::sweepable): [eval run] [recur/iterate, each
     * child slot exactly once] [eval run] RET. Any deviation —
     * between-visit evals, repeated or missing child visits, parallel
     * regions — marks the whole program unsweepable.
     */
    void analyzeSweepCase(sem::ClassId cls)
    {
        if (!p_.sweepable_)
            return;
        const ClassLayout& cl = layout_.cls(cls);
        if (cl.scalarCount >= 32 || cl.collCount >= 32) {
            p_.sweepable_ = false;
            return;
        }
        SweepCase sc;
        uint32_t seenScalar = 0;
        uint32_t seenColl = 0;
        bool midSeen = false; // any child visit so far
        for (uint32_t pc = p_.entry_[cls];; ++pc) {
            const Inst& inst = p_.code_[pc];
            if (inst.op == Op::Ret)
                break;
            switch (inst.op) {
              case Op::Eval:
                if (!midSeen) {
                    sc.preBegin = inst.a;
                    sc.preCount = inst.b;
                } else {
                    if (sc.postCount != 0) {
                        p_.sweepable_ = false; // eval between visits
                        return;
                    }
                    sc.postBegin = inst.a;
                    sc.postCount = inst.b;
                }
                break;
              case Op::Recur: {
                uint32_t slot = inst.a - 1; // row -> child slot
                if (sc.postCount != 0 || (seenScalar & (1u << slot))) {
                    p_.sweepable_ = false;
                    return;
                }
                seenScalar |= 1u << slot;
                midSeen = true;
                break;
              }
              case Op::Iterate:
                if (sc.postCount != 0 || (seenColl & (1u << inst.a))) {
                    p_.sweepable_ = false;
                    return;
                }
                seenColl |= 1u << inst.a;
                midSeen = true;
                break;
              default: // parallel region ops
                p_.sweepable_ = false;
                return;
            }
        }
        const uint32_t allScalars =
            cl.scalarCount == 0 ? 0 : (1u << cl.scalarCount) - 1;
        const uint32_t allColls =
            cl.collCount == 0 ? 0 : (1u << cl.collCount) - 1;
        if (seenScalar != allScalars || seenColl != allColls) {
            p_.sweepable_ = false; // an unvisited subtree breaks sweeps
            return;
        }
        p_.sweeps_[cls] = sc;
    }

    uint32_t collSlot(const std::string& child) const
    {
        sem::ChildId id = clsInfo().childByName.at(child);
        int32_t slot = layout_.cls(cls_).collSlotOf[id];
        checkInvariant(slot >= 0, "Program: iterate on a scalar child");
        return static_cast<uint32_t>(slot);
    }

    void emitEval(sem::RuleId ruleId)
    {
        const sem::RuleInfo& rule = grammar_.rule(ruleId);
        EvalSpec spec;
        spec.rule = ruleId;
        if (rule.lhsChild == sem::kInvalidId) {
            spec.targetSlot = 0; // scalar-block row 0 is the node itself
            spec.targetCol = layout_.column(clsInfo().iface, rule.lhs);
        } else {
            const sem::ChildInfo& child = clsInfo().children[rule.lhsChild];
            int32_t slot = layout_.cls(cls_).scalarSlotOf[rule.lhsChild];
            checkInvariant(slot >= 0,
                           "Program: inherited rule targets a collection");
            spec.targetSlot = slot + 1;
            spec.targetCol = layout_.column(child.iface, rule.lhs);
        }
        spec.xbegin = static_cast<uint32_t>(p_.xcode_.size());
        emitExpr(*rule.decl->rhs);
        p_.xcode_.push_back({XOp::Done, FoldFn::Add, 0, 0, 0});
        p_.maxExprStack_ =
            std::max(p_.maxExprStack_, exprDepth(*rule.decl->rhs));
        specialize(spec, *rule.decl->rhs);
        if (spec.kind == EvalKind::Bytecode) {
            // Lower the residual-Bytecode expression to register form
            // so the strip engine can run it data-parallel; an
            // overflowing expression keeps rcount == 0 and stays on
            // the node-major interpreter.
            std::vector<RInst> window;
            uint32_t regs = 0;
            uint32_t preds = 0;
            if (lowerExpr(*rule.decl->rhs, 0, window, regs, preds)) {
                spec.rbegin = static_cast<uint32_t>(p_.rcode_.size());
                spec.rcount = static_cast<uint32_t>(window.size());
                spec.regCount = regs;
                spec.predOps = preds;
                p_.rcode_.insert(p_.rcode_.end(), window.begin(),
                                 window.end());
                p_.maxRegCount_ = std::max(p_.maxRegCount_, regs);
            }
        }
        // Extend the preceding eval run instead of dispatching anew.
        if (!p_.code_.empty() && p_.code_.back().op == Op::Eval &&
            p_.code_.back().a + p_.code_.back().b == p_.evals_.size()) {
            ++p_.code_.back().b;
        } else {
            p_.code_.push_back(
                {Op::Eval, static_cast<uint32_t>(p_.evals_.size()), 1});
        }
        p_.evals_.push_back(spec);
    }

    /** Leaf operand of a specialized eval, when @p expr is one. */
    std::optional<Operand> leafOperand(const ast::Expr& expr) const
    {
        Operand op;
        switch (expr.kind) {
          case ast::ExprKind::Const:
            op.slot = Operand::kConst;
            op.imm = expr.value;
            return op;
          case ast::ExprKind::Select: {
            const ast::Select& sel = expr.select;
            if (sel.isSelf()) {
                const sem::InterfaceInfo& iface =
                    grammar_.iface(clsInfo().iface);
                op.slot = 0; // scalar-block row 0 is the node itself
                op.col = layout_.column(clsInfo().iface,
                                        iface.attrByName.at(sel.attr));
                return op;
            }
            sem::ChildId id = clsInfo().childByName.at(sel.base);
            int32_t slot = layout_.cls(cls_).scalarSlotOf[id];
            if (slot < 0)
                return std::nullopt; // collection select: bytecode only
            const sem::ChildInfo& child = clsInfo().children[id];
            op.slot = slot + 1;
            op.col = layout_.column(
                child.iface,
                grammar_.iface(child.iface).attrByName.at(sel.attr));
            return op;
          }
          default:
            return std::nullopt;
        }
    }

    /** Two-operand op of @p expr (binary or max/min call), if any. */
    std::optional<XOp> binOf(const ast::Expr& expr) const
    {
        if (expr.kind == ast::ExprKind::Binary)
            return binaryOp(expr.op);
        if (expr.kind == ast::ExprKind::Call && expr.op == "max")
            return XOp::Max2;
        if (expr.kind == ast::ExprKind::Call && expr.op == "min")
            return XOp::Min2;
        return std::nullopt;
    }

    /** Pattern-match @p rhs into a superinstruction when it fits. */
    void specialize(EvalSpec& spec, const ast::Expr& rhs) const
    {
        if (auto leaf = leafOperand(rhs)) {
            spec.kind = EvalKind::Copy;
            spec.a = *leaf;
            return;
        }
        if (rhs.kind == ast::ExprKind::Call && rhs.op == "abs") {
            if (auto leaf = leafOperand(*rhs.args[0])) {
                spec.kind = EvalKind::Un;
                spec.fn1 = XOp::Abs;
                spec.a = *leaf;
            }
            return;
        }
        // A side-effect-free `if` whose condition is one two-operand op
        // of leaves and whose arms are leaves becomes cmp + select —
        // branch-free straight-line code, no strip engine needed.
        if (rhs.kind == ast::ExprKind::If) {
            auto cmp = binOf(*rhs.args[0]);
            if (!cmp.has_value())
                return;
            auto ca = leafOperand(*rhs.args[0]->args[0]);
            auto cb = leafOperand(*rhs.args[0]->args[1]);
            auto tv = leafOperand(*rhs.args[1]);
            auto ev = leafOperand(*rhs.args[2]);
            if (ca && cb && tv && ev) {
                spec.kind = EvalKind::CmpSel;
                spec.fn1 = *cmp;
                spec.a = *ca;
                spec.b = *cb;
                spec.c = *tv;
                spec.d = *ev;
            }
            return;
        }
        auto outer = binOf(rhs);
        if (!outer.has_value())
            return;
        const ast::Expr& l = *rhs.args[0];
        const ast::Expr& r = *rhs.args[1];
        auto la = leafOperand(l), ra = leafOperand(r);
        if (la && ra) {
            spec.kind = EvalKind::Bin;
            spec.fn1 = *outer;
            spec.a = *la;
            spec.b = *ra;
            return;
        }
        if (ra) {
            auto inner = binOf(l);
            if (!inner.has_value())
                return;
            auto ia = leafOperand(*l.args[0]), ib = leafOperand(*l.args[1]);
            if (ia && ib) {
                spec.kind = EvalKind::TriL;
                spec.fn1 = *inner;
                spec.fn2 = *outer;
                spec.a = *ia;
                spec.b = *ib;
                spec.c = *ra;
                return;
            }
            // One level deeper on the left: the 4-leaf chain
            // fn3(fn2(fn1(a, b), c), d) that left-associative `+`
            // parses produce (e.g. x0 + c0.v + c1.v + c2.v).
            if (ib) {
                auto inner2 = binOf(*l.args[0]);
                if (!inner2.has_value())
                    return;
                auto ja = leafOperand(*l.args[0]->args[0]);
                auto jb = leafOperand(*l.args[0]->args[1]);
                if (ja && jb) {
                    spec.kind = EvalKind::QuadL;
                    spec.fn1 = *inner2;
                    spec.fn2 = *inner;
                    spec.fn3 = *outer;
                    spec.a = *ja;
                    spec.b = *jb;
                    spec.c = *ib;
                    spec.d = *ra;
                }
            }
            return;
        }
        if (la) {
            auto inner = binOf(r);
            if (!inner.has_value())
                return;
            auto ia = leafOperand(*r.args[0]), ib = leafOperand(*r.args[1]);
            if (ia && ib) {
                spec.kind = EvalKind::TriR;
                spec.fn1 = *inner;
                spec.fn2 = *outer;
                spec.a = *la;
                spec.b = *ia;
                spec.c = *ib;
            }
            return;
        }
        // Neither side is a leaf: the balanced 4-leaf tree
        // fn3(fn1(a, b), fn2(c, d)).
        auto li = binOf(l), ri = binOf(r);
        if (!li.has_value() || !ri.has_value())
            return;
        auto ia = leafOperand(*l.args[0]), ib = leafOperand(*l.args[1]);
        auto ic = leafOperand(*r.args[0]), id = leafOperand(*r.args[1]);
        if (ia && ib && ic && id) {
            spec.kind = EvalKind::QuadB;
            spec.fn1 = *li;
            spec.fn2 = *ri;
            spec.fn3 = *outer;
            spec.a = *ia;
            spec.b = *ib;
            spec.c = *ic;
            spec.d = *id;
        }
    }

    /**
     * Lower @p expr into register form, targeting register @p dst.
     * Stack-discipline allocation: a subexpression at operand depth d
     * lands in register d, an `if` evaluates its condition and both
     * arms into d, d+1, d+2 and blends with SELECT (sound because
     * expressions are pure and every op is total — see ROp). Returns
     * false when the expression needs more than kMaxStripRegs
     * registers; @p out is scratch the caller discards on failure.
     */
    bool lowerExpr(const ast::Expr& expr, uint32_t dst,
                   std::vector<RInst>& out, uint32_t& regCount,
                   uint32_t& predOps) const
    {
        if (dst >= kMaxStripRegs)
            return false;
        regCount = std::max(regCount, dst + 1);
        const uint8_t d = static_cast<uint8_t>(dst);
        switch (expr.kind) {
          case ast::ExprKind::Const:
            out.push_back(
                {ROp::Const, FoldFn::Add, d, 0, 0, 0, 0, 0, expr.value});
            return true;
          case ast::ExprKind::Select: {
            const ast::Select& sel = expr.select;
            if (sel.isSelf()) {
                const sem::InterfaceInfo& iface =
                    grammar_.iface(clsInfo().iface);
                uint32_t col = layout_.column(
                    clsInfo().iface, iface.attrByName.at(sel.attr));
                out.push_back(
                    {ROp::LoadSelf, FoldFn::Add, d, 0, 0, 0, 0, col, 0});
                return true;
            }
            sem::ChildId id = clsInfo().childByName.at(sel.base);
            int32_t slot = layout_.cls(cls_).scalarSlotOf[id];
            if (slot < 0)
                return false; // collection select: interpreter only
            const sem::ChildInfo& child = clsInfo().children[id];
            uint32_t col = layout_.column(
                child.iface,
                grammar_.iface(child.iface).attrByName.at(sel.attr));
            out.push_back({ROp::LoadChild, FoldFn::Add, d, 0, 0, 0,
                           static_cast<uint32_t>(slot) + 1, col, 0});
            return true;
          }
          case ast::ExprKind::Binary:
            if (!lowerExpr(*expr.args[0], dst, out, regCount, predOps) ||
                !lowerExpr(*expr.args[1], dst + 1, out, regCount, predOps))
                return false;
            out.push_back({regOpOf(binaryOp(expr.op)), FoldFn::Add, d, d,
                           static_cast<uint8_t>(d + 1), 0, 0, 0, 0});
            return true;
          case ast::ExprKind::Call:
            if (expr.op == "abs") {
                if (!lowerExpr(*expr.args[0], dst, out, regCount, predOps))
                    return false;
                out.push_back(
                    {ROp::Abs, FoldFn::Add, d, d, 0, 0, 0, 0, 0});
                return true;
            }
            if (!lowerExpr(*expr.args[0], dst, out, regCount, predOps) ||
                !lowerExpr(*expr.args[1], dst + 1, out, regCount, predOps))
                return false;
            out.push_back({expr.op == "max" ? ROp::Max2 : ROp::Min2,
                           FoldFn::Add, d, d, static_cast<uint8_t>(d + 1),
                           0, 0, 0, 0});
            return true;
          case ast::ExprKind::If:
            if (!lowerExpr(*expr.args[0], dst, out, regCount, predOps) ||
                !lowerExpr(*expr.args[1], dst + 1, out, regCount,
                           predOps) ||
                !lowerExpr(*expr.args[2], dst + 2, out, regCount, predOps))
                return false;
            out.push_back({ROp::Select, FoldFn::Add, d, d,
                           static_cast<uint8_t>(d + 1),
                           static_cast<uint8_t>(d + 2), 0, 0, 0});
            ++predOps;
            return true;
          case ast::ExprKind::Fold: {
            if (!lowerExpr(*expr.args[0], dst, out, regCount, predOps))
                return false;
            sem::ChildId id = clsInfo().childByName.at(expr.select.base);
            const sem::ChildInfo& child = clsInfo().children[id];
            int32_t slot = layout_.cls(cls_).collSlotOf[id];
            checkInvariant(slot >= 0, "Program: fold over a scalar child");
            uint32_t col = layout_.column(
                child.iface,
                grammar_.iface(child.iface).attrByName.at(
                    expr.select.attr));
            out.push_back({ROp::Fold, foldFn(expr.op), d, d, 0, 0,
                           static_cast<uint32_t>(slot), col, 0});
            return true;
          }
        }
        internalError("Program: unknown expression kind");
    }

    void emitExpr(const ast::Expr& expr)
    {
        switch (expr.kind) {
          case ast::ExprKind::Const:
            p_.xcode_.push_back(
                {XOp::Const, FoldFn::Add, 0, 0, expr.value});
            return;
          case ast::ExprKind::Select:
            emitSelect(expr.select);
            return;
          case ast::ExprKind::Binary:
            emitExpr(*expr.args[0]);
            emitExpr(*expr.args[1]);
            p_.xcode_.push_back(
                {binaryOp(expr.op), FoldFn::Add, 0, 0, 0});
            return;
          case ast::ExprKind::Call:
            if (expr.op == "abs") {
                emitExpr(*expr.args[0]);
                p_.xcode_.push_back({XOp::Abs, FoldFn::Add, 0, 0, 0});
                return;
            }
            emitExpr(*expr.args[0]);
            emitExpr(*expr.args[1]);
            if (expr.op == "max") {
                p_.xcode_.push_back({XOp::Max2, FoldFn::Add, 0, 0, 0});
            } else if (expr.op == "min") {
                p_.xcode_.push_back({XOp::Min2, FoldFn::Add, 0, 0, 0});
            } else {
                internalError("Program: unknown function '" + expr.op + "'");
            }
            return;
          case ast::ExprKind::If: {
            emitExpr(*expr.args[0]);
            uint32_t jz = static_cast<uint32_t>(p_.xcode_.size());
            p_.xcode_.push_back({XOp::Jz, FoldFn::Add, 0, 0, 0});
            emitExpr(*expr.args[1]);
            uint32_t jmp = static_cast<uint32_t>(p_.xcode_.size());
            p_.xcode_.push_back({XOp::Jmp, FoldFn::Add, 0, 0, 0});
            p_.xcode_[jz].a = static_cast<uint32_t>(p_.xcode_.size());
            emitExpr(*expr.args[2]);
            p_.xcode_[jmp].a = static_cast<uint32_t>(p_.xcode_.size());
            return;
          }
          case ast::ExprKind::Fold: {
            emitExpr(*expr.args[0]); // init
            sem::ChildId id =
                clsInfo().childByName.at(expr.select.base);
            const sem::ChildInfo& child = clsInfo().children[id];
            int32_t slot = layout_.cls(cls_).collSlotOf[id];
            checkInvariant(slot >= 0, "Program: fold over a scalar child");
            uint32_t col = layout_.column(
                child.iface,
                grammar_.iface(child.iface).attrByName.at(
                    expr.select.attr));
            p_.xcode_.push_back({XOp::Fold, foldFn(expr.op),
                                 static_cast<uint32_t>(slot), col, 0});
            return;
          }
        }
        internalError("Program: unknown expression kind");
    }

    void emitSelect(const ast::Select& sel)
    {
        if (sel.isSelf()) {
            const sem::InterfaceInfo& iface =
                grammar_.iface(clsInfo().iface);
            uint32_t col = layout_.column(clsInfo().iface,
                                          iface.attrByName.at(sel.attr));
            p_.xcode_.push_back({XOp::LoadSelf, FoldFn::Add, col, 0, 0});
            return;
        }
        sem::ChildId id = clsInfo().childByName.at(sel.base);
        const sem::ChildInfo& child = clsInfo().children[id];
        int32_t slot = layout_.cls(cls_).scalarSlotOf[id];
        checkInvariant(slot >= 0, "Program: select through a collection");
        uint32_t col = layout_.column(
            child.iface,
            grammar_.iface(child.iface).attrByName.at(sel.attr));
        p_.xcode_.push_back({XOp::LoadChild, FoldFn::Add,
                             static_cast<uint32_t>(slot) + 1, col, 0});
    }

    Program& p_;
    const sched::Skeleton& skeleton_;
    const sched::Schedule& schedule_;
    const Layout& layout_;
    const sem::Grammar& grammar_;
    sem::ClassId cls_ = sem::kInvalidId;
};

Program
Program::compile(const sched::Skeleton& skeleton,
                 const sched::Schedule& schedule)
{
    Program program;
    program.grammar_ = &skeleton.grammar();
    program.entry_.resize(skeleton.grammar().classes().size(), 0);
    program.sweeps_.resize(skeleton.grammar().classes().size());
    program.sweepable_ = true; // analyzeSweepCase clears it on any miss

    Layout layout(skeleton.grammar());
    Compiler compiler(program, skeleton, schedule, layout);
    for (const sem::ClassInfo& cls : skeleton.grammar().classes())
        compiler.compileCase(cls.id);
    if (!program.evals_.empty()) {
        size_t bytecode = 0;
        size_t residual = 0;
        for (const EvalSpec& spec : program.evals_) {
            ++program.kindCounts_[static_cast<uint32_t>(spec.kind)];
            if (spec.kind == EvalKind::Bytecode) {
                ++bytecode;
                residual += spec.rcount == 0;
            }
        }
        program.bytecodeShare_ =
            static_cast<double>(bytecode) / program.evals_.size();
        program.stripResidualShare_ =
            static_cast<double>(residual) / program.evals_.size();
    }
    return program;
}

namespace {

const char*
ropName(ROp op)
{
    switch (op) {
      case ROp::Const: return "const";
      case ROp::LoadSelf: return "ldself";
      case ROp::LoadChild: return "ldchild";
      case ROp::Add: return "add";
      case ROp::Sub: return "sub";
      case ROp::Mul: return "mul";
      case ROp::Div: return "div";
      case ROp::Mod: return "mod";
      case ROp::Lt: return "lt";
      case ROp::Le: return "le";
      case ROp::Gt: return "gt";
      case ROp::Ge: return "ge";
      case ROp::Eq: return "eq";
      case ROp::Ne: return "ne";
      case ROp::Max2: return "max";
      case ROp::Min2: return "min";
      case ROp::Abs: return "abs";
      case ROp::Select: return "select";
      case ROp::Fold: return "fold";
    }
    return "?";
}

const char*
foldName(FoldFn fn)
{
    switch (fn) {
      case FoldFn::Add: return "add";
      case FoldFn::Mul: return "mul";
      case FoldFn::Max: return "max";
      case FoldFn::Min: return "min";
    }
    return "?";
}

} // namespace

std::string
Program::disassemble() const
{
    auto opName = [](Op op) {
        switch (op) {
          case Op::Eval: return "EVAL";
          case Op::Recur: return "RECUR";
          case Op::Iterate: return "ITERATE";
          case Op::ParBegin: return "PAR_BEGIN";
          case Op::ParRecur: return "PAR_RECUR";
          case Op::ParColl: return "PAR_COLL";
          case Op::ParEnd: return "PAR_END";
          case Op::Ret: return "RET";
        }
        return "?";
    };
    // The register-form listing of one Bytecode spec, printed next to
    // the stack form: register file size, predication (mask) count,
    // strip width, then one 3-address line per instruction.
    auto regForm = [this](const EvalSpec& spec) {
        if (spec.rcount == 0)
            return std::string("    ; r-form: none (interpreter)\n");
        std::string out = "    ; r-form: regs=" +
                          std::to_string(spec.regCount) +
                          " masks=" + std::to_string(spec.predOps) +
                          " strip=" + std::to_string(kStripWidth) + "\n";
        for (uint32_t i = spec.rbegin; i < spec.rbegin + spec.rcount;
             ++i) {
            const RInst& r = rcode_[i];
            out += "    ;   r" + std::to_string(r.d) + " = ";
            switch (r.op) {
              case ROp::Const:
                out += "const " + std::to_string(r.imm);
                break;
              case ROp::LoadSelf:
                out += "ldself col" + std::to_string(r.col);
                break;
              case ROp::LoadChild:
                out += "ldchild row" + std::to_string(r.slot) + " col" +
                       std::to_string(r.col);
                break;
              case ROp::Abs:
                out += "abs r" + std::to_string(r.a);
                break;
              case ROp::Select:
                out += "select r" + std::to_string(r.a) + " ? r" +
                       std::to_string(r.b) + " : r" + std::to_string(r.c);
                break;
              case ROp::Fold:
                out += std::string("fold ") + foldName(r.fn) + " init r" +
                       std::to_string(r.a) + " coll" +
                       std::to_string(r.slot) + " col" +
                       std::to_string(r.col);
                break;
              default:
                out += std::string(ropName(r.op)) + " r" +
                       std::to_string(r.a) + ", r" + std::to_string(r.b);
            }
            out += "\n";
        }
        return out;
    };
    std::string out;
    for (const sem::ClassInfo& cls : grammar_->classes()) {
        out += "case " + cls.name + ":  ; entry " +
               std::to_string(entry_[cls.id]) + "\n";
        for (uint32_t pc = entry_[cls.id];; ++pc) {
            const Inst& inst = code_[pc];
            out += "  " + std::to_string(pc) + ": " + opName(inst.op);
            if (inst.op == Op::Eval) {
                static const char* kindNames[] = {
                    "bytecode", "copy", "un",   "bin",   "tri",
                    "tri",      "quad", "quad", "cmpsel"};
                for (uint32_t i = inst.a; i < inst.a + inst.b; ++i)
                    out += " " + grammar_->ruleName(evals_[i].rule) + " [" +
                           kindNames[static_cast<int>(evals_[i].kind)] +
                           "]";
            } else if (inst.op != Op::Ret && inst.op != Op::ParBegin &&
                       inst.op != Op::ParEnd) {
                out += " slot " + std::to_string(inst.a);
            }
            out += "\n";
            if (inst.op == Op::Eval) {
                for (uint32_t i = inst.a; i < inst.a + inst.b; ++i)
                    if (evals_[i].kind == EvalKind::Bytecode)
                        out += regForm(evals_[i]);
            }
            if (inst.op == Op::Ret)
                break;
        }
    }
    return out;
}

} // namespace hecate::runtime
