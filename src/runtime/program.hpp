#pragma once

/**
 * @file
 * Program: a synthesized traversal lowered to flat bytecode.
 *
 * The value interpreter (exec/interp) re-discovers everything on every
 * visit: case dispatch walks an AST, every attribute access resolves a
 * name through an unordered_map, every hole re-checks its
 * std::optional assignment. compile() does all of that once per
 * (skeleton, schedule) pair:
 *
 *  - each class case becomes a run of traversal ops — EVAL (apply one
 *    rule), RECUR (descend a scalar child), ITERATE (visit collection
 *    elements), PAR_BEGIN / PAR_RECUR / PAR_COLL / PAR_END (a
 *    fork-join region's branch list), RET;
 *  - each rule RHS becomes stack-machine expression bytecode whose
 *    operands are pre-resolved arena column ids and CSR child slots —
 *    no name lookups, no AST dispatch, no optionals on the hot path;
 *  - `if` lowers to JZ/JMP so exactly the branch the interpreter would
 *    evaluate executes (divergence-free vs. exec::evalRule by
 *    construction).
 *
 * A Program is immutable and shared: any number of executors can run
 * it concurrently over different arenas.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/arena.hpp"
#include "sched/schedule.hpp"

namespace hecate::runtime {

/**
 * Traversal opcodes. "Row" means an index into the node's CSR scalar
 * block, whose row 0 is the node's own index and whose row c + 1 is
 * scalar child slot c — self and child operands resolve identically,
 * and absent children alias the arena's always-zero row.
 */
enum class Op : uint8_t {
    Eval,     ///< a = eval-spec index
    Recur,    ///< a = scalar-block row; descend if present
    Iterate,  ///< a = collection CSR slot; visit elements in order
    ParBegin, ///< open a fork-join region (collects branch targets)
    ParRecur, ///< region branch: a = scalar-block row
    ParColl,  ///< region branches: a = collection CSR slot (all elements)
    ParEnd,   ///< fork, run branches, join
    Ret,      ///< end of the class case
};

/**
 * One traversal instruction. Consecutive rule applications compile
 * into a single Eval whose `b` counts the run of EvalSpecs starting
 * at `a` — the executor dispatches once and plays the whole run.
 */
struct Inst {
    Op op = Op::Ret;
    uint32_t a = 0;
    uint32_t b = 0; ///< Eval: run length; unused otherwise
};

/** Expression opcodes (stack machine over int64_t). */
enum class XOp : uint8_t {
    Const,     ///< push imm
    LoadSelf,  ///< push column a of the current node
    LoadChild, ///< push column b of scalar-block row a (absent -> 0)
    Add, Sub, Mul, Div, Mod,          ///< x/0 == x%0 == 0
    Lt, Le, Gt, Ge, Eq, Ne,
    Max2, Min2, Abs,
    Fold,      ///< pop init; fold column b over collection slot a with fn
    Jz,        ///< pop cond; jump to a when zero
    Jmp,       ///< jump to a
    Done,      ///< expression result is the top of stack
};

/** Fold combiners (mirrors exec::ExprEval::combine). */
enum class FoldFn : uint8_t { Add, Mul, Max, Min };

/** One expression instruction. Jump targets are absolute pool indices. */
struct XInst {
    XOp op = XOp::Done;
    FoldFn fn = FoldFn::Add;
    uint32_t a = 0;
    uint32_t b = 0;
    int64_t imm = 0;
};

/**
 * Register-form expression opcodes: the stack machine's control flow
 * rewritten into predication. An `if` becomes both arms evaluated into
 * registers plus one SELECT blend — sound because L_a expressions are
 * pure and every arithmetic op is total on int64 (wrapDiv/wrapMod
 * define x/0 == x%0 == 0), so the not-taken arm computes a value that
 * is simply discarded, never a trap. A fold stays a data-dependent
 * loop, executed per lane inside a strip (the one divergent op).
 */
enum class ROp : uint8_t {
    Const,     ///< r[d] = imm
    LoadSelf,  ///< r[d] = column col of the current node
    LoadChild, ///< r[d] = column col of scalar-block row slot (absent -> 0)
    Add, Sub, Mul, Div, Mod,          ///< r[d] = r[a] op r[b] (wrapping)
    Lt, Le, Gt, Ge, Eq, Ne,           ///< r[d] = r[a] cmp r[b] ? 1 : 0
    Max2, Min2,                       ///< r[d] = max/min(r[a], r[b])
    Abs,       ///< r[d] = |r[a]| (wrapping at INT64_MIN)
    Select,    ///< r[d] = r[a] != 0 ? r[b] : r[c] — the predication blend
    Fold,      ///< r[d] = fold(fn, init r[a], column col over coll slot)
};

/**
 * One register-form instruction: 3-address ops over a bounded virtual
 * register file (register indices fit in a byte; kMaxStripRegs bounds
 * the file). The strip executor runs each instruction across a whole
 * strip of lanes before the next — loop interchange over the node-
 * major interpreter — with registers laid out column-major as
 * regCount × strip-width rows.
 */
struct RInst {
    ROp op = ROp::Const;
    FoldFn fn = FoldFn::Add; ///< Fold combiner
    uint8_t d = 0;           ///< destination register
    uint8_t a = 0;           ///< operand registers
    uint8_t b = 0;
    uint8_t c = 0;
    uint32_t slot = 0;       ///< LoadChild scalar row / Fold coll slot
    uint32_t col = 0;        ///< LoadSelf / LoadChild / Fold column
    int64_t imm = 0;         ///< Const value
};

/**
 * Virtual register file bound. Stack-discipline allocation means the
 * register count equals the expression's operand-stack depth (plus the
 * two extra arm registers per `if`), so 16 covers every bundled
 * grammar with headroom; an expression deeper than this stays on the
 * node-major interpreter (EvalSpec::rcount == 0).
 */
inline constexpr uint32_t kMaxStripRegs = 16;

/**
 * Lanes per strip: enough rows that the per-instruction loop amortizes
 * its setup and the autovectorizer sees full vectors at any width,
 * while the whole scratchpad (kMaxStripRegs × 64 × 8 B = 8 KiB) stays
 * L1-resident.
 */
inline constexpr uint32_t kStripWidth = 64;

/** How Bytecode EvalSpecs execute inside the segment/tile kernels. */
enum class ExprEngine : uint8_t {
    Auto,   ///< strip-mined register form when convertible, else interp
    Strip,  ///< same as Auto (the fallback still guards inconvertible)
    Interp, ///< always the node-major stack interpreter
};

/** Leaf operand of a specialized eval: a constant or one column read. */
struct Operand {
    static constexpr int32_t kConst = -2;

    int64_t imm = 0;  ///< value when slot == kConst
    int32_t slot = 0; ///< scalar-block row (0 = self), or kConst
    uint32_t col = 0; ///< column read when slot != kConst
};

/**
 * Shape of an eval's RHS. Almost every L_a rule is a tiny arithmetic
 * expression over self/child attributes, so the compiler pattern-
 * matches the common shapes into superinstructions the executor runs
 * as straight-line code — the generic expression loop (Bytecode) only
 * remains for `if`, folds, and deeper nestings.
 */
enum class EvalKind : uint8_t {
    Bytecode, ///< run the expression pool from xbegin
    Copy,     ///< a
    Un,       ///< fn1(a)
    Bin,      ///< fn1(a, b)
    TriL,     ///< fn2(fn1(a, b), c)
    TriR,     ///< fn2(a, fn1(b, c))
    QuadL,    ///< fn3(fn2(fn1(a, b), c), d) — left-assoc 4-leaf chain
    QuadB,    ///< fn3(fn1(a, b), fn2(c, d)) — balanced 4-leaf tree
    CmpSel,   ///< fn1(a, b) ? c : d — side-effect-free shallow `if`
};

/** Number of EvalKind values (per-kind RuntimeStats counters). */
inline constexpr uint32_t kEvalKindCount = 9;

/** One lowered rule application. */
struct EvalSpec {
    int32_t targetSlot = 0;   ///< scalar-block row of the LHS (0 = self)
    uint32_t targetCol = 0;   ///< arena column written
    uint32_t xbegin = 0;      ///< entry into the expression pool
    sem::RuleId rule = sem::kInvalidId; ///< provenance
    EvalKind kind = EvalKind::Bytecode;
    XOp fn1 = XOp::Done;      ///< inner op of the specialized shape
    XOp fn2 = XOp::Done;      ///< outer op (TriL / TriR / Quad middle)
    XOp fn3 = XOp::Done;      ///< outermost op (Quad shapes)
    Operand a, b, c, d;
    /**
     * Register-form window into Program::regPool() for Bytecode specs:
     * rcount == 0 means the expression did not convert (register file
     * overflow) and stays on the node-major interpreter. The result of
     * the window is always register 0.
     */
    uint32_t rbegin = 0;
    uint32_t rcount = 0;
    uint32_t regCount = 0; ///< registers the window touches
    uint32_t predOps = 0;  ///< SELECT blends per evaluation (telemetry)
};

/**
 * Sweep summary of one sandwich-shaped class case: the eval runs
 * before and after the child visits. Meaningful only when the owning
 * program is sweepable().
 */
struct SweepCase {
    uint32_t preBegin = 0;
    uint32_t preCount = 0;
    uint32_t postBegin = 0;
    uint32_t postCount = 0;
};

/** A compiled traversal. */
class Program {
  public:
    /**
     * Lower @p skeleton completed by @p schedule. Unassigned holes
     * vanish (matching exec::execute); the schedule need not cover
     * every rule. The program keeps a pointer to the skeleton's
     * grammar — executors check it matches their arena's grammar.
     */
    static Program compile(const sched::Skeleton& skeleton,
                           const sched::Schedule& schedule);

    const sem::Grammar& grammar() const { return *grammar_; }

    /** Entry pc of class @p cls's case. */
    uint32_t entryOf(sem::ClassId cls) const { return entry_[cls]; }

    /** Raw case-entry table, by ClassId (the executor's hot-path view). */
    const uint32_t* entryData() const { return entry_.data(); }

    const std::vector<Inst>& code() const { return code_; }
    const std::vector<XInst>& exprPool() const { return xcode_; }
    const std::vector<EvalSpec>& evals() const { return evals_; }

    /** Register-form IR pool (EvalSpec::rbegin windows point here). */
    const std::vector<RInst>& regPool() const { return rcode_; }

    /** Deepest operand stack any expression needs. */
    uint32_t maxExprStack() const { return maxExprStack_; }

    /** Widest virtual register file any converted expression needs. */
    uint32_t maxRegCount() const { return maxRegCount_; }

    /**
     * Whether every case is sandwich-shaped — at most one eval run,
     * then child visits covering every child slot exactly once, then
     * at most one more eval run, with no parallel regions. Because
     * arena ids are BFS-ordered (parents precede children), such a
     * program runs as two linear sweeps over the node array instead
     * of a stack traversal: ascending ids for the pre runs,
     * descending ids for the post runs. That preserves every
     * parent/child dependency the DFS order provides — L_a rules
     * never reach past one parent-child edge — while replacing
     * pointer-chasing dispatch with streaming column access.
     */
    bool sweepable() const { return sweepable_; }

    /** Per-class sweep summaries, by ClassId (valid iff sweepable). */
    const SweepCase* sweepData() const { return sweeps_.data(); }

    /**
     * Fraction of EvalSpecs lowered as general Bytecode rather than a
     * specialized superinstruction. Bytecode specs carry control flow
     * and folds the segmented kernels cannot vectorize — they run the
     * expression interpreter per node — so a high share predicts the
     * spec-major segmented sweep losing to the node-major stack walk
     * (measured: every bundled grammar above ~1/3 share runs 1.3-2x
     * slower segmented; every one below ~1/4 runs 2-4x faster).
     */
    double bytecodeShare() const { return bytecodeShare_; }

    /**
     * Fraction of EvalSpecs that would run the per-node interpreter
     * even with the strip engine on: Bytecode specs whose expression
     * did not convert to register form. This — not bytecodeShare() —
     * is what Auto consults when the strip engine is enabled: a
     * convertible Bytecode spec runs as vectorizable strip loops, so
     * only the residual share still predicts kernel strategies losing
     * to the stack walk.
     */
    double stripResidualShare() const { return stripResidualShare_; }

    /** Static spec count per EvalKind (disassembly / telemetry). */
    uint32_t kindCount(EvalKind kind) const
    {
        return kindCounts_[static_cast<uint32_t>(kind)];
    }

    /** Human-readable listing (debugging / tests). */
    std::string disassemble() const;

  private:
    friend class Compiler;

    Program() = default;

    const sem::Grammar* grammar_ = nullptr;
    std::vector<uint32_t> entry_; ///< by ClassId
    std::vector<Inst> code_;
    std::vector<XInst> xcode_;
    std::vector<RInst> rcode_;
    std::vector<EvalSpec> evals_;
    std::vector<SweepCase> sweeps_; ///< by ClassId
    bool sweepable_ = false;
    uint32_t maxExprStack_ = 1;
    uint32_t maxRegCount_ = 0;
    double bytecodeShare_ = 0.0;
    double stripResidualShare_ = 0.0;
    uint32_t kindCounts_[kEvalKindCount] = {};
};

} // namespace hecate::runtime
