#pragma once

/**
 * @file
 * Executor: runs a compiled Program over a TreeArena.
 *
 * Unlike exec/interp this never uses native recursion — traversal
 * state is an explicit stack of (node, pc) frames, so adversarially
 * deep trees are limited by heap, not by the 8MB thread stack.
 *
 * Sandwich-shaped programs (Program::sweepable) skip the frame stack
 * entirely: the BFS-ordered arena lets their pre-visit eval runs
 * execute as one ascending linear pass over the node array and their
 * post-visit runs as one descending pass, preserving every
 * parent/child dependency of the DFS order with streaming column
 * access. The executor picks this path automatically.
 *
 * Parallelism: a `parallel` region's branch targets (scalar recurs or
 * a whole collection) are chunked by `grain` and submitted to a
 * ThreadPool; the forking thread then *help-joins* — it runs queued
 * tasks itself (ThreadPool::runOne) until its region's pending count
 * drains. That makes nested fork-join safe on a fixed-size pool: a
 * waiting thread is always also a worker, so the pool cannot deadlock
 * with every worker blocked in a join.
 *
 * Narrow regions — statement-form `parallel { recur a; recur b; }`
 * blocks with a handful of branches — never fill a grain-sized chunk,
 * so they fork per branch instead, but only while the region's node
 * index is under `spawnPrefix`: arena ids are BFS-ordered, so a low
 * index means the node sits near the root and each branch is a whole
 * large subtree worth a task (the depth-cutoff idiom of hand-written
 * fork-join code, in O(1) via the index).
 *
 * Race-freedom is inherited from verification, not re-checked here:
 * a verified schedule only places recurs of *disjoint* subtrees inside
 * a region, and L_a rules read only self/child attributes, so branch
 * executions touch disjoint arena cells (DESIGN.md §7).
 */

#include <cstdint>

#include "runtime/arena.hpp"
#include "runtime/program.hpp"
#include "support/thread_pool.hpp"

namespace hecate::runtime {

/** Execution knobs. */
struct ExecOptions {
    /** Pool for `parallel` regions; null runs everything sequentially. */
    ThreadPool* pool = nullptr;
    /** Minimum branch targets per parallel task (chunk size). */
    uint32_t grain = 1024;
    /**
     * Fork narrow (sub-grain) regions per branch while the region's
     * BFS node index is below this; 0 never forks them.
     */
    uint32_t spawnPrefix = 1024;
};

/** Counters from one execution. */
struct RuntimeStats {
    uint64_t nodeVisits = 0;
    uint64_t rulesEvaluated = 0;
    /** Parallel regions that actually forked (≥2 chunks + a pool). */
    uint64_t parallelRegions = 0;
    /** Chunk tasks submitted to the pool. */
    uint64_t tasksSpawned = 0;
    /** Tasks the joining thread ran itself while help-joining. */
    uint64_t helpJoinRuns = 0;
};

/**
 * Execute @p program over @p arena, writing every computed attribute
 * column in place. The arena must be an instance of the program's
 * grammar. Sequential when options.pool is null; otherwise `parallel`
 * regions fork onto the pool under options.grain.
 */
RuntimeStats execute(const Program& program, TreeArena& arena,
                     const ExecOptions& options = {});

} // namespace hecate::runtime
