#pragma once

/**
 * @file
 * Executor: runs a compiled Program over a TreeArena (or a packed
 * ForestArena, through the shared ArenaView entry).
 *
 * Four sweep strategies share one entry point:
 *
 *  - Stack: an explicit (node, pc) frame stack — no native recursion,
 *    so adversarially deep trees are limited by heap, not the 8MB
 *    thread stack. Works for every program; `parallel` regions fork
 *    onto the work-stealing deques (see below).
 *  - Linear: for sandwich-shaped programs (Program::sweepable), the
 *    BFS-ordered arena lets the pre-visit eval runs execute as one
 *    ascending pass over the node array and the post-visit runs as one
 *    descending pass — the historical sweep path, kept as a
 *    differential baseline.
 *  - Segmented: the level-synchronous strategy. The cached
 *    LevelSegments permutation groups each depth level by class; every
 *    (segment, rule) pair becomes one class-homogeneous kernel over
 *    SoA columns (runtime/kernels.hpp), auto-vectorizable and
 *    branch-free on the hot shapes. Levels run as waves — ascending
 *    for pre runs, descending for post runs — and each wave's
 *    contiguous span is chunked onto the ThreadPool with a help-join
 *    barrier per wave. Why barriers per level suffice is the
 *    dependency argument in runtime/segments.hpp / DESIGN.md §10.
 *    Kept as the explicit barrier-per-level baseline.
 *  - Tiled: the cache-blocked strategy (runtime/tiles.hpp). The arena
 *    is partitioned into subtree tiles whose column footprint fits
 *    L2; the pre and post passes fuse per tile — both touch a tile's
 *    cells within one cache residency — and tiles execute barrier-free
 *    on the work-stealing TileScheduler (runtime/steal.hpp). Each
 *    tile's local levels reuse the same class-homogeneous kernels the
 *    segmented strategy runs (TileExec::Kernels), or, for
 *    bytecode-heavy programs where spec-major kernels lose, a
 *    node-major linear two-sweep over the tile span
 *    (TileExec::Sweep).
 *
 * Auto measures instead of guessing: it consults the program's
 * bytecode share and the cached LevelSegments::Stats / tile shape and
 * records which rule fired in RuntimeStats::selection (see
 * StrategyReason; surfaced as exec.strategy / exec.select.* counters).
 *
 * Stack-strategy parallelism: a `parallel` region's branch targets
 * (scalar recurs or a whole collection) are chunked by `grain` and
 * pushed onto the forking worker's own steal deque; the forking thread
 * then drives its deque — running its own chunks, or stealing — until
 * the region's join count drains. A waiting thread is always also a
 * worker, so nested regions on a fixed-size pool cannot deadlock, and
 * chunks stay with the worker that produced them unless another worker
 * actually runs dry (work-first principle; the old implementation
 * bounced every chunk through one global pool queue). Narrow regions —
 * statement-form `parallel { recur a; recur b; }` blocks with a
 * handful of branches — never fill a grain-sized chunk, so they fork
 * per branch instead, but only while the region's node index is under
 * `spawnPrefix`: arena ids are BFS-ordered, so a low index means the
 * node sits near the root and each branch is a whole large subtree
 * worth a task (the depth-cutoff idiom of hand-written fork-join code,
 * in O(1) via the index).
 *
 * Race-freedom is inherited from verification, not re-checked here: a
 * verified schedule only places recurs of *disjoint* subtrees inside a
 * region, and L_a rules read only self/child attributes, so branch
 * executions touch disjoint arena cells (DESIGN.md §7).
 */

#include <cstdint>
#include <functional>

#include "runtime/arena.hpp"
#include "runtime/program.hpp"
#include "support/thread_pool.hpp"

namespace hecate::obs {
class Telemetry;
}

namespace hecate::runtime {

/** How execute() traverses the arena. */
enum class SweepStrategy : uint8_t {
    Auto,      ///< measured-stats selection; see StrategyReason
    Stack,     ///< explicit-stack traversal (any program)
    Linear,    ///< two-pass linear sweep (sweepable programs only)
    Segmented, ///< level-synchronous segment kernels (sweepable only)
    Tiled,     ///< cache-blocked work-stealing tiles (sweepable only)
};

/** How the tiled strategy executes inside one tile. */
enum class TileExec : uint8_t {
    Auto,    ///< Kernels, or Sweep when the program is bytecode-heavy
    Kernels, ///< per-(tile level, segment, rule) class kernels
    Sweep,   ///< node-major linear two-sweep over the tile span
};

/**
 * Why Auto resolved to RuntimeStats::strategy — the provenance record
 * behind exec.select.* counters and the bench `selection` column.
 */
enum class StrategyReason : uint8_t {
    Explicit,      ///< caller named the strategy; Auto never ran
    NotSweepable,  ///< Stack: program is not sandwich-shaped
    NarrowLevels,  ///< Stack: avg level width too small for waves
    BytecodeHeavy, ///< bytecode share defeats spec-major kernels
    CacheResident, ///< Segmented: whole arena is cache-scale
    LargeTree,     ///< Tiled: footprint exceeds the cache-scale pivot
    /**
     * Kernels chosen *despite* a heavy bytecode share: the strip
     * engine converted enough of the pool to register form that the
     * residual interpreter share no longer predicts kernels losing.
     */
    StripConvertible,
};

/**
 * Auto's Segmented-vs-Tiled pivot: while the whole column footprint
 * stays within a couple of L2 slices, whole-level kernels are
 * cache-resident and the segmented sweep's lower dispatch overhead
 * wins; past it, Tiled's fused cache-sized blocks win. The measured
 * crossover on the bundled grammars sits between the 20k-node rows
 * (~2 MiB footprint, segmented 3.6x vs tiled 1.7x over stack) and the
 * 100k rows (~10 MiB, tiled 5.1x vs segmented 3.8x).
 */
inline constexpr uint64_t kAutoSegmentedFootprintBytes = 4u << 20;

/** Stable lowercase names ("tiled", "large-tree") for stats/CLI. */
const char* sweepStrategyName(SweepStrategy strategy);
const char* strategyReasonName(StrategyReason reason);

/** Execution knobs. */
struct ExecOptions {
    /** Pool for parallel work; null runs everything sequentially. */
    ThreadPool* pool = nullptr;
    /**
     * Minimum work items per pool task: branch targets per chunk
     * (Stack) or wave nodes per chunk (Segmented). Clamped to the
     * arena's node count.
     */
    uint32_t grain = 1024;
    /**
     * Stack strategy: fork narrow (sub-grain) regions per branch while
     * the region's BFS node index is below this; 0 never forks them.
     * Clamped to the arena's node count.
     */
    uint32_t spawnPrefix = 1024;
    SweepStrategy strategy = SweepStrategy::Auto;
    /**
     * Tiled strategy: per-tile column-footprint budget in bytes;
     * 0 uses kDefaultTileBytes (runtime/tiles.hpp).
     */
    uint64_t tileBytes = 0;
    /** Tiled strategy: in-tile execution mode. */
    TileExec tileExec = TileExec::Auto;
    /**
     * How Bytecode evals execute inside segment/tile kernels: Auto and
     * Strip run converted expressions strip-mined over the register
     * scratchpad (inconvertible ones still interpret); Interp forces
     * the node-major stack interpreter everywhere — the differential
     * baseline, and what the Auto strategy selector assumes when set.
     */
    ExprEngine exprEngine = ExprEngine::Auto;
    /**
     * Segmented strategy: run the auto-vectorized kernel variant. The
     * scalar variant is compiled alongside either way; building with
     * -DHECATE_DISABLE_SIMD=ON flips this default so CI can
     * differentially check both.
     */
#ifdef HECATE_DISABLE_SIMD
    bool simd = false;
#else
    bool simd = true;
#endif
    /** Optional sink for per-sweep / per-wave spans; null = none. */
    obs::Telemetry* telemetry = nullptr;
};

/** Counters from one execution. */
struct RuntimeStats {
    /** The strategy that actually ran (Auto resolved). */
    SweepStrategy strategy = SweepStrategy::Auto;
    /** Why it was chosen; Explicit unless Auto resolved it. */
    StrategyReason selection = StrategyReason::Explicit;
    uint64_t nodeVisits = 0;
    uint64_t rulesEvaluated = 0;
    /** Parallel regions that actually forked (≥2 chunks + a pool). */
    uint64_t parallelRegions = 0;
    /** Chunk tasks submitted to the pool (regions, waves, roots). */
    uint64_t tasksSpawned = 0;
    /** Tasks the joining thread ran itself while help-joining. */
    uint64_t helpJoinRuns = 0;
    /** Level waves executed by the segmented strategy (both passes). */
    uint64_t levelWaves = 0;
    /** Segment-kernel launches (segmented and tiled strategies). */
    uint64_t segmentKernels = 0;
    /** Tiles executed by the tiled strategy. */
    uint64_t tilesExecuted = 0;
    /** Tile tasks that migrated between workers via stealing. */
    uint64_t tileSteals = 0;
    /** Strip loops the register-form expression engine executed. */
    uint64_t stripsRun = 0;
    /** Predicated lane-ops (SELECT blends × lanes) applied by strips. */
    uint64_t predicatedOps = 0;
    /** Bytecode-eval nodes that fell back to the stack interpreter. */
    uint64_t fallbackNodes = 0;
    /** Rule evaluations by superinstruction kind (Stack/Linear only;
     *  index with static_cast<uint32_t>(EvalKind)). */
    uint64_t evalsByKind[kEvalKindCount] = {};
};

/**
 * Execute @p program over @p arena, writing every computed attribute
 * column in place. The arena must be an instance of the program's
 * grammar. Sequential when options.pool is null. Throws UserError when
 * options.strategy names a sweep strategy the program does not
 * support.
 */
RuntimeStats execute(const Program& program, TreeArena& arena,
                     const ExecOptions& options = {});

namespace detail {

/**
 * Strategy-dispatching entry shared by TreeArena and ForestArena
 * execution. @p segments / @p tiles are invoked only when the
 * corresponding structure is actually consulted, so callers build
 * LevelSegments and TileGraphs lazily (and cache them arena-side).
 * The tiles provider receives the resolved byte budget.
 */
RuntimeStats
executeView(const Program& program, const ArenaView& view,
            const std::function<const LevelSegments&()>& segments,
            const std::function<const TileGraph&(uint64_t)>& tiles,
            const ExecOptions& options);

} // namespace detail

} // namespace hecate::runtime
