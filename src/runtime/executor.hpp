#pragma once

/**
 * @file
 * Executor: runs a compiled Program over a TreeArena (or a packed
 * ForestArena, through the shared ArenaView entry).
 *
 * Three sweep strategies share one entry point:
 *
 *  - Stack: an explicit (node, pc) frame stack — no native recursion,
 *    so adversarially deep trees are limited by heap, not the 8MB
 *    thread stack. Works for every program; `parallel` regions fork
 *    onto the pool (see below).
 *  - Linear: for sandwich-shaped programs (Program::sweepable), the
 *    BFS-ordered arena lets the pre-visit eval runs execute as one
 *    ascending pass over the node array and the post-visit runs as one
 *    descending pass — the historical sweep path, kept as a
 *    differential baseline.
 *  - Segmented: the level-synchronous strategy. The cached
 *    LevelSegments permutation groups each depth level by class; every
 *    (segment, rule) pair becomes one class-homogeneous kernel over
 *    SoA columns (runtime/kernels.hpp), auto-vectorizable and
 *    branch-free on the hot shapes. Levels run as waves — ascending
 *    for pre runs, descending for post runs — and each wave's
 *    contiguous span is chunked onto the ThreadPool with a help-join
 *    barrier per wave. Why barriers per level suffice is the
 *    dependency argument in runtime/segments.hpp / DESIGN.md §10.
 *
 * Auto picks Segmented for sweepable programs and Stack otherwise.
 *
 * Stack-strategy parallelism: a `parallel` region's branch targets
 * (scalar recurs or a whole collection) are chunked by `grain` and
 * submitted to a ThreadPool; the forking thread then *help-joins* — it
 * runs queued tasks itself (ThreadPool::runOne) until its region's
 * pending count drains. That makes nested fork-join safe on a
 * fixed-size pool: a waiting thread is always also a worker, so the
 * pool cannot deadlock with every worker blocked in a join. Narrow
 * regions — statement-form `parallel { recur a; recur b; }` blocks
 * with a handful of branches — never fill a grain-sized chunk, so they
 * fork per branch instead, but only while the region's node index is
 * under `spawnPrefix`: arena ids are BFS-ordered, so a low index means
 * the node sits near the root and each branch is a whole large subtree
 * worth a task (the depth-cutoff idiom of hand-written fork-join code,
 * in O(1) via the index).
 *
 * Race-freedom is inherited from verification, not re-checked here: a
 * verified schedule only places recurs of *disjoint* subtrees inside a
 * region, and L_a rules read only self/child attributes, so branch
 * executions touch disjoint arena cells (DESIGN.md §7).
 */

#include <cstdint>
#include <functional>

#include "runtime/arena.hpp"
#include "runtime/program.hpp"
#include "support/thread_pool.hpp"

namespace hecate::obs {
class Telemetry;
}

namespace hecate::runtime {

/** How execute() traverses the arena. */
enum class SweepStrategy : uint8_t {
    Auto,      ///< Segmented when the program is sweepable, else Stack
    Stack,     ///< explicit-stack traversal (any program)
    Linear,    ///< two-pass linear sweep (sweepable programs only)
    Segmented, ///< level-synchronous segment kernels (sweepable only)
};

/** Execution knobs. */
struct ExecOptions {
    /** Pool for parallel work; null runs everything sequentially. */
    ThreadPool* pool = nullptr;
    /**
     * Minimum work items per pool task: branch targets per chunk
     * (Stack) or wave nodes per chunk (Segmented). Clamped to the
     * arena's node count.
     */
    uint32_t grain = 1024;
    /**
     * Stack strategy: fork narrow (sub-grain) regions per branch while
     * the region's BFS node index is below this; 0 never forks them.
     * Clamped to the arena's node count.
     */
    uint32_t spawnPrefix = 1024;
    SweepStrategy strategy = SweepStrategy::Auto;
    /**
     * Segmented strategy: run the auto-vectorized kernel variant. The
     * scalar variant is compiled alongside either way; building with
     * -DHECATE_DISABLE_SIMD=ON flips this default so CI can
     * differentially check both.
     */
#ifdef HECATE_DISABLE_SIMD
    bool simd = false;
#else
    bool simd = true;
#endif
    /** Optional sink for per-sweep / per-wave spans; null = none. */
    obs::Telemetry* telemetry = nullptr;
};

/** Counters from one execution. */
struct RuntimeStats {
    uint64_t nodeVisits = 0;
    uint64_t rulesEvaluated = 0;
    /** Parallel regions that actually forked (≥2 chunks + a pool). */
    uint64_t parallelRegions = 0;
    /** Chunk tasks submitted to the pool (regions, waves, roots). */
    uint64_t tasksSpawned = 0;
    /** Tasks the joining thread ran itself while help-joining. */
    uint64_t helpJoinRuns = 0;
    /** Level waves executed by the segmented strategy (both passes). */
    uint64_t levelWaves = 0;
    /** Segment-kernel launches by the segmented strategy. */
    uint64_t segmentKernels = 0;
};

/**
 * Execute @p program over @p arena, writing every computed attribute
 * column in place. The arena must be an instance of the program's
 * grammar. Sequential when options.pool is null. Throws UserError when
 * options.strategy names a sweep strategy the program does not
 * support.
 */
RuntimeStats execute(const Program& program, TreeArena& arena,
                     const ExecOptions& options = {});

namespace detail {

/**
 * Strategy-dispatching entry shared by TreeArena and ForestArena
 * execution. @p segments is invoked (once) only when the segmented
 * strategy actually runs, so callers build LevelSegments lazily.
 */
RuntimeStats executeView(const Program& program, const ArenaView& view,
                         const std::function<const LevelSegments&()>& segments,
                         const ExecOptions& options);

} // namespace detail

} // namespace hecate::runtime
