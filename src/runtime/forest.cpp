#include "runtime/forest.hpp"

#include <algorithm>

#include "runtime/segments.hpp"
#include "runtime/tiles.hpp"
#include "support/rng.hpp"

namespace hecate::runtime {

ForestArena
ForestArena::pack(const std::vector<TreeArena>& trees)
{
    if (trees.empty())
        userError("ForestArena::pack: empty batch");
    const sem::Grammar& grammar = trees.front().grammar();
    for (const TreeArena& tree : trees) {
        checkInvariant(&tree.grammar() == &grammar,
                       "ForestArena::pack: mixed grammars in one batch");
        if (tree.edited())
            userError("ForestArena::pack: tree carries structural edits; "
                      "compact() it first");
    }

    ForestArena forest(grammar);
    TreeArena& flat = forest.flat_;

    uint64_t totalNodes = 0;
    uint64_t totalScalars = 0;
    uint64_t totalRanges = 0;
    uint64_t totalElems = 0;
    for (const TreeArena& tree : trees) {
        totalNodes += tree.size();
        totalScalars += tree.scalars_.size();
        totalRanges += tree.collRanges_.size();
        totalElems += tree.collElems_.size();
    }
    if (totalNodes + 1 >= static_cast<uint64_t>(kNone))
        userError("ForestArena::pack: batch overflows 32-bit node indices");

    const NodeIdx zeroRow = static_cast<NodeIdx>(totalNodes);
    flat.zeroRow_ = zeroRow;
    flat.cls_.reserve(totalNodes);
    flat.scalarBase_.reserve(totalNodes);
    flat.collBase_.reserve(totalNodes);
    flat.scalars_.reserve(totalScalars);
    flat.collRanges_.reserve(totalRanges);
    flat.collElems_.reserve(totalElems);
    forest.bounds_.reserve(trees.size() + 1);

    // Every column holds all real rows plus the shared zero row.
    flat.columns_.assign(
        flat.layout_.columnCount(),
        std::vector<int64_t>(totalNodes + 1, 0));

    NodeIdx nodeOff = 0;
    for (const TreeArena& tree : trees) {
        const uint32_t scalarOff =
            static_cast<uint32_t>(flat.scalars_.size());
        const uint32_t rangeOff =
            static_cast<uint32_t>(flat.collRanges_.size());
        const uint32_t elemOff =
            static_cast<uint32_t>(flat.collElems_.size());
        forest.bounds_.push_back(nodeOff);

        flat.cls_.insert(flat.cls_.end(), tree.cls_.begin(),
                         tree.cls_.end());
        for (uint32_t base : tree.scalarBase_)
            flat.scalarBase_.push_back(base + scalarOff);
        for (uint32_t base : tree.collBase_)
            flat.collBase_.push_back(base + rangeOff);
        // Scalar entries are node ids (self rows and present children)
        // or the tree's own zero row; both shift into the shared space.
        const NodeIdx treeZero = tree.zeroRow();
        for (NodeIdx s : tree.scalars_)
            flat.scalars_.push_back(s == treeZero ? zeroRow : s + nodeOff);
        for (const CollRange& range : tree.collRanges_)
            flat.collRanges_.push_back({range.begin + elemOff, range.count});
        for (NodeIdx e : tree.collElems_)
            flat.collElems_.push_back(e + nodeOff);

        // Column copy skips the source's trailing zero row; the shared
        // one at the end of each packed column is already zero.
        for (uint32_t col = 0; col < flat.layout_.columnCount(); ++col) {
            std::copy(tree.columns_[col].begin(),
                      tree.columns_[col].begin() + tree.size(),
                      flat.columns_[col].begin() + nodeOff);
        }
        nodeOff += tree.size();
    }
    forest.bounds_.push_back(nodeOff);
    return forest;
}

ForestArena
ForestArena::generate(const sem::Grammar& grammar, sem::InterfaceId rootIface,
                      const GenConfig& config, uint32_t treeCount)
{
    if (treeCount == 0)
        userError("ForestArena::generate: treeCount must be positive");
    std::vector<TreeArena> trees;
    trees.reserve(treeCount);
    for (uint32_t t = 0; t < treeCount; ++t) {
        GenConfig cfg = config;
        // Independent per-tree streams from one batch seed.
        cfg.seed = splitmix64(config.seed + 0x9e3779b97f4a7c15ull * (t + 1));
        trees.push_back(TreeArena::generate(grammar, rootIface, cfg));
    }
    return pack(trees);
}

tree::Tree
ForestArena::toTree(uint32_t t) const
{
    checkInvariant(t < treeCount(), "ForestArena::toTree: bad tree index");
    const NodeIdx begin = bounds_[t];
    const NodeIdx end = bounds_[t + 1];
    const sem::Grammar& g = grammar();

    tree::Tree out(g);
    for (NodeIdx node = begin; node < end; ++node) {
        tree::NodeId id = out.addNode(flat_.cls_[node]);
        checkInvariant(id == node - begin, "ForestArena::toTree: id mismatch");
    }
    for (NodeIdx node = begin; node < end; ++node) {
        const tree::NodeId local = node - begin;
        const sem::ClassInfo& info = g.cls(flat_.cls_[node]);
        const ClassLayout& layout = flat_.layout_.cls(flat_.cls_[node]);
        for (const sem::ChildInfo& child : info.children) {
            if (child.collection) {
                auto [b, e] = flat_.collection(
                    node,
                    static_cast<uint32_t>(layout.collSlotOf[child.id]));
                for (const NodeIdx* it = b; it != e; ++it)
                    out.addElement(local, child.id, *it - begin);
            } else {
                NodeIdx target = flat_.scalarChild(
                    node,
                    static_cast<uint32_t>(layout.scalarSlotOf[child.id]));
                if (target != kNone)
                    out.setScalar(local, child.id, target - begin);
            }
        }
        const sem::InterfaceInfo& iface = g.iface(info.iface);
        uint32_t base = flat_.layout_.column(info.iface, 0);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr)
            out.node(local).values[attr] = flat_.columns_[base + attr][node];
    }
    out.setRoot(0);
    return out;
}

ArenaView
ForestArena::view()
{
    ArenaView v = flat_.view();
    v.roots = bounds_.data(); // bounds_[t] is tree t's root id
    v.rootCount = treeCount();
    return v;
}

const LevelSegments&
ForestArena::levelSegments()
{
    if (!segments_) {
        segments_ = std::make_shared<const LevelSegments>(
            LevelSegments::build(view()));
    }
    return *segments_;
}

const TileGraph&
ForestArena::tileGraph(uint64_t tileBytes)
{
    if (tileBytes == 0)
        tileBytes = kDefaultTileBytes;
    if (!tiles_ || tilesBytes_ != tileBytes) {
        tiles_ = std::make_shared<const TileGraph>(
            TileGraph::build(view(), tileBytes));
        tilesBytes_ = tileBytes;
    }
    return *tiles_;
}

RuntimeStats
execute(const Program& program, ForestArena& forest,
        const ExecOptions& options)
{
    checkInvariant(&program.grammar() == &forest.grammar(),
                   "runtime::execute: program and forest grammar mismatch");
    return detail::executeView(
        program, forest.view(),
        [&forest]() -> const LevelSegments& {
            return forest.levelSegments();
        },
        [&forest](uint64_t tileBytes) -> const TileGraph& {
            return forest.tileGraph(tileBytes);
        },
        options);
}

} // namespace hecate::runtime
