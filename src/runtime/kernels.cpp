#include "runtime/kernels.hpp"

namespace hecate::runtime::detail {

namespace kern_vec {
uint64_t runSpec(const KernelCtx& ctx, const EvalSpec& spec,
                 const NodeIdx* order, NodeIdx first, uint32_t count,
                 ExprScratch& scratch);
} // namespace kern_vec

namespace kern_novec {
uint64_t runSpec(const KernelCtx& ctx, const EvalSpec& spec,
                 const NodeIdx* order, NodeIdx first, uint32_t count,
                 ExprScratch& scratch);
} // namespace kern_novec

uint64_t
runSpecKernel(const KernelCtx& ctx, const EvalSpec& spec, const NodeIdx* order,
              NodeIdx first, uint32_t count, bool simd, ExprScratch& scratch)
{
    return simd ? kern_vec::runSpec(ctx, spec, order, first, count, scratch)
                : kern_novec::runSpec(ctx, spec, order, first, count,
                                      scratch);
}

} // namespace hecate::runtime::detail
