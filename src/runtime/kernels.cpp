#include "runtime/kernels.hpp"

namespace hecate::runtime::detail {

namespace kern_vec {
uint64_t runSpec(const KernelCtx& ctx, const EvalSpec& spec,
                 const NodeIdx* order, NodeIdx first, uint32_t count,
                 int64_t* xstack);
} // namespace kern_vec

namespace kern_novec {
uint64_t runSpec(const KernelCtx& ctx, const EvalSpec& spec,
                 const NodeIdx* order, NodeIdx first, uint32_t count,
                 int64_t* xstack);
} // namespace kern_novec

uint64_t
runSpecKernel(const KernelCtx& ctx, const EvalSpec& spec, const NodeIdx* order,
              NodeIdx first, uint32_t count, bool simd, int64_t* xstack)
{
    return simd ? kern_vec::runSpec(ctx, spec, order, first, count, xstack)
                : kern_novec::runSpec(ctx, spec, order, first, count, xstack);
}

} // namespace hecate::runtime::detail
