#pragma once

/**
 * @file
 * TileGraph: cache-sized subtree blocking of a TreeArena (or packed
 * ForestArena), the index structure behind the tiled sweep strategy.
 *
 * The level-synchronous strategy streams every attribute column over
 * the whole arena once per wave, so past a few hundred thousand nodes
 * each wave runs at DRAM bandwidth and the per-level barrier throttles
 * parallel scaling. Tiling restores temporal locality: the arena is
 * partitioned into blocks of whole-subtree *prefixes* sized so one
 * block's column footprint fits the L2 cache, and execution fuses the
 * pre and post passes per block — a tile's cells are touched by both
 * passes within a single cache residency instead of two full streams.
 *
 * Construction (BFS over the tile tree, BFS within each tile):
 *
 *  - a queue of pending tiles is seeded with the arena's tree roots,
 *    one tile per root;
 *  - each tile collects nodes breadth-first from its root set until
 *    the per-tile node budget (derived from the byte budget and the
 *    arena's column count) is reached;
 *  - the frontier left over is packed into child tiles: consecutive
 *    frontier subtrees merge into one child tile until their exact
 *    subtree node counts (one O(N) reverse pass, ids are BFS) reach
 *    the budget. Packing matters: one-tile-per-frontier-node
 *    degenerates on bushy trees, whose frontier width is proportional
 *    to tile size, into thousands of few-node fringe tiles.
 *
 * The resulting invariants, which both the scheduler's correctness
 * argument and the tests lean on:
 *
 *  - every node reachable from a root lies in exactly one tile;
 *  - a tile's nodes form a forest of connected subtree prefixes: every
 *    node's parent is either in the same tile, or (for the tile's
 *    rootCount roots) in the tile's parent tile;
 *  - every cross-tile edge goes from a node of tile T to a root node
 *    of a child tile of T (so the tiles themselves form a
 *    tree/forest, stored in CSR form with contiguous child id ranges);
 *  - within a tile, nodes() is ascending by arena id, which by the
 *    arena's BFS numbering is also ascending by depth — so a linear
 *    two-sweep over the span is dependency-correct;
 *  - order() additionally groups each tile level by class, feeding the
 *    same class-homogeneous kernels the segmented strategy uses, one
 *    (tile, segment) launch at a time (segment shapes come from
 *    LevelSegments::appendClassSegments, so streaming promotion is
 *    identical across strategies).
 *
 * Like LevelSegments, a TileGraph depends only on the arena's
 * structure, never on attribute values: it is built once per (arena,
 * tile byte budget) and cached on the arena; structural edits
 * (replaceSubtree) invalidate the cache, value edits (mutateInput) do
 * not. Orphaned rows left behind by structural edits are unreachable
 * from the roots and belong to no tile.
 */

#include <cstdint>
#include <vector>

#include "runtime/segments.hpp"

namespace hecate::runtime {

/** Tile id sentinel: a root tile has no parent tile. */
inline constexpr uint32_t kNoTile = 0xffffffffu;

/**
 * Default per-tile column-footprint budget. A quarter of a typical L2
 * slice: the fused pre+post passes keep a tile's columns plus its
 * child-tile root rows resident, so leaving headroom beats filling L2
 * exactly — and on bushy trees a larger cap pushes the spill frontier
 * into the small-subtree fringe, shattering the graph into many tiny
 * tiles (measured: 1M-node RenderTree yields 1.7k tiles at 512KiB but
 * 13k at 4MiB and runs ~40% slower).
 */
inline constexpr uint64_t kDefaultTileBytes = 1u << 19;

/**
 * Estimated resident bytes per node during a fused pre+post pass: one
 * int64 cell per attribute column plus the CSR structure the kernels
 * chase. Shared by TileGraph::build (per-tile node cap) and the Auto
 * strategy selector (whole-arena footprint vs the tile budget), so
 * "fits one tile" means the same thing in both places.
 */
uint64_t tileBytesPerNode(const ArenaView& view);

/** Subtree-block partition of one arena view; see file comment. */
class TileGraph {
  public:
    using Segment = LevelSegments::Segment;

    /** One local depth level of one tile (a span of segments()). */
    struct Level {
        uint32_t segBegin = 0; ///< into segments()
        uint32_t segEnd = 0;
    };

    struct Tile {
        NodeIdx root = 0;          ///< first of the tile's root nodes
        /**
         * Number of subtree roots the tile grew from — the nodes whose
         * parent lies in the parent tile (1 for a root tile). Spill
         * packing merges sibling frontier subtrees, so interior tiles
         * are generally multi-rooted forests.
         */
        uint32_t rootCount = 1;
        uint32_t parent = kNoTile; ///< parent tile id
        uint32_t nodeBegin = 0;    ///< into nodes(); ascending ids
        uint32_t nodeEnd = 0;
        uint32_t levelBegin = 0;   ///< into levels()
        uint32_t levelEnd = 0;
        /**
         * Child tile ids form the contiguous range
         * [childBegin, childEnd): tiles are numbered in BFS order over
         * the tile tree, and a tile's children are enqueued together.
         */
        uint32_t childBegin = 0;
        uint32_t childEnd = 0;

        uint32_t nodeCount() const { return nodeEnd - nodeBegin; }
        uint32_t childCount() const { return childEnd - childBegin; }
    };

    /** Shape summary; the Auto strategy selector consults this. */
    struct Stats {
        uint32_t tiles = 0;
        uint32_t nodes = 0;
        uint32_t leafTiles = 0;
        uint32_t maxTileNodes = 0;
        /** Levels of the tile tree (1 = everything fit in root tiles). */
        uint32_t tileTreeDepth = 0;
        double avgTileNodes = 0.0;
        /** Mean child tiles per non-leaf tile (steal-side parallelism). */
        double avgFanout = 0.0;
        /** The byte budget the partition was built for. */
        uint64_t tileBytes = 0;
        /** Estimated column + CSR bytes per node used for the budget. */
        uint64_t bytesPerNode = 0;
        /** Node cap per tile derived from the two above. */
        uint32_t nodesPerTile = 0;
    };

    /**
     * Partition @p view into tiles of roughly @p tileBytes column
     * footprint each (0 uses kDefaultTileBytes). Only nodes reachable
     * from view.roots are covered.
     */
    static TileGraph build(const ArenaView& view, uint64_t tileBytes);

    const Stats& stats() const { return stats_; }

    uint32_t tileCount() const
    {
        return static_cast<uint32_t>(tiles_.size());
    }
    const Tile& tile(uint32_t t) const { return tiles_[t]; }
    const Level& level(uint32_t l) const { return levels_[l]; }
    const Segment* segments() const { return segments_.data(); }

    /** Tile-major node list, ascending by id within each tile. */
    const NodeIdx* nodes() const { return nodes_.data(); }

    /** Tile-major, level-major, class-grouped node permutation. */
    const NodeIdx* order() const { return order_.data(); }

    /** Root tiles are ids [0, rootTileCount()). */
    uint32_t rootTileCount() const { return rootTiles_; }

  private:
    std::vector<Tile> tiles_;
    std::vector<Level> levels_;
    std::vector<Segment> segments_;
    std::vector<NodeIdx> nodes_;
    std::vector<NodeIdx> order_;
    Stats stats_;
    uint32_t rootTiles_ = 0;
};

} // namespace hecate::runtime
