#pragma once

/**
 * @file
 * Work-stealing execution substrate for the runtime: per-worker task
 * deques with steal-half balancing (StealDeques), and the tile-tree
 * scheduler built on top of them (TileScheduler).
 *
 * The pre-existing fork-join helper in the executor pushes every chunk
 * through one global pool queue and joins with a per-region barrier;
 * at scale the queue lock and the barrier dominate. StealDeques keeps
 * each worker's work in its own deque: owners push and pop at the back
 * (LIFO — the task just produced is the one whose data is still in
 * cache), idle workers steal the *oldest half* of a victim's deque
 * from the front (the oldest tasks sit highest in the tree, so one
 * steal migrates the biggest available piece of work and further
 * stealing stays rare).
 *
 * Failure semantics: the first exception thrown by a task is captured;
 * after that, pushes become no-ops and queued tasks are drained
 * without running. Every drive() loop also exits once the failure has
 * drained, so join conditions that can no longer be reached do not
 * hang. rethrowIfFailed() surfaces the first error to the caller.
 *
 * The scheduler half (TileScheduler) runs a TileGraph without any
 * global barrier. Race-freedom argument (DESIGN.md §14): pre(T) runs
 * before T's child tiles are pushed, so every tile-root dependency
 * (parent's pre before child-root's pre) is sequenced by the deque
 * happens-before of push → pop/steal; post(T) runs only after an
 * acq_rel countdown of T's children confirms their posts, giving
 * post(child) → post(parent); and two sibling subtrees share no
 * nodes, so concurrently running tiles write disjoint cells.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "support/thread_pool.hpp"

namespace hecate::runtime {

class TileGraph;

/** One unit of stealable work; meaning is owned by the runner. */
struct StealTask {
    uint64_t a = 0;
    uint64_t b = 0;
    uint64_t c = 0;
};

/**
 * Per-worker task deques over an optional ThreadPool. Slot 0 belongs
 * to the calling thread; slots 1..workerCount() are serviced by
 * driver tasks submitted to the pool. With no pool the calling thread
 * drives everything through slot 0.
 */
class StealDeques {
  public:
    /** Runs one task; the slot identifies the executing worker. */
    using Runner = std::function<void(const StealTask&, uint32_t slot)>;

    StealDeques(ThreadPool* pool, Runner runner);
    ~StealDeques();

    StealDeques(const StealDeques&) = delete;
    StealDeques& operator=(const StealDeques&) = delete;

    uint32_t slotCount() const
    {
        return static_cast<uint32_t>(slots_.size());
    }

    /**
     * Enqueue @p task on @p slot's deque (callers push to the slot
     * they are running on). No-op once a task has failed.
     */
    void push(uint32_t slot, const StealTask& task);

    /**
     * Run tasks on @p slot — own deque first, stealing when empty —
     * until @p done returns true, or a failure has occurred and every
     * outstanding task has drained. Re-entrant per slot: a task may
     * push subtasks and drive a nested join condition.
     */
    void drive(uint32_t slot, const std::function<bool()>& done);

    bool failed() const
    {
        return failed_.load(std::memory_order_acquire);
    }

    /** Rethrow the first captured task error, if any. */
    void rethrowIfFailed();

    uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }
    uint64_t executed() const
    {
        return executed_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot {
        std::mutex mutex;
        std::deque<StealTask> tasks;
        /** Lock-free victim pre-screen; exact size is under mutex. */
        std::atomic<uint32_t> approx{0};
    };

    bool runTask(uint32_t slot);
    bool takeOwn(uint32_t slot, StealTask& out);
    bool stealTask(uint32_t thief, StealTask& out);
    void recordFailure() noexcept;
    void driverLoop(uint32_t slot);

    ThreadPool* pool_;
    Runner runner_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::atomic<uint64_t> outstanding_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> executed_{0};
    std::atomic<bool> failed_{false};
    std::atomic<bool> stop_{false};
    std::mutex errorMutex_;
    std::exception_ptr error_;
    uint32_t driversSubmitted_ = 0;
    std::atomic<uint32_t> driversExited_{0};
};

/**
 * Barrier-free tile-tree execution: pre(T) before any descendant work,
 * post(T) after every child tile has posted, depth-first descent on
 * the owning worker for cache locality, steal-half across workers for
 * balance. See the file comment for the race-freedom argument.
 */
class TileScheduler {
  public:
    struct Stats {
        uint64_t tiles = 0;
        uint64_t steals = 0;
    };

    /** Callback per tile; the slot selects per-worker scratch state. */
    using TileFn = std::function<void(uint32_t tile, uint32_t slot)>;

    /**
     * Execute @p graph: @p pre descending, @p post ascending. Runs on
     * the calling thread alone when @p pool is null or has no workers.
     * Throws the first error raised by a callback.
     */
    static Stats run(const TileGraph& graph, ThreadPool* pool,
                     const TileFn& pre, const TileFn& post);
};

} // namespace hecate::runtime
