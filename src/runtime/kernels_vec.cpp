// Auto-vectorized kernel variant. src/CMakeLists.txt compiles this TU
// with the vectorizer forced on (and a non-default cost model) so the
// streaming loop shapes turn into SIMD column sweeps where the target
// supports it.

#define HECATE_KERNEL_NS kern_vec
#define HECATE_SIMD 1
#include "runtime/kernels_impl.inl"
