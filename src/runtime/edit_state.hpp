#pragma once

/**
 * @file
 * EditState: the bookkeeping a TreeArena grows the first time it is
 * edited in place (incr subsystem). A freshly built arena carries no
 * edit state at all — the structures below are materialized lazily by
 * the first mutateInput/replaceSubtree call and then maintained
 * incrementally, so the zero-edit hot path pays nothing.
 *
 * Two kinds of state live here:
 *
 *  - *Structural* state, persistent once created: reverse edges
 *    (parent + the CSR cell the parent uses to reference the node),
 *    per-node depth, and the live set. replaceSubtree appends the new
 *    subtree at the end of the arena (BFS order is preserved because
 *    every edge, including the repointed parent edge, keeps pointing
 *    forward) and orphans the old one in place; orphans stay dead
 *    until compact() rebuilds a fresh arena.
 *
 *  - *Dirt* state, cleared after every incr::reexecute: per-column
 *    dirty bytes over value-changed cells, a per-node any-dirty byte,
 *    a virgin byte per appended node (every cell of a virgin node is
 *    unknown — treating them as all-dirty makes early cutoff sound at
 *    nodes that never held a computed value), the edit seed list the
 *    invalidator grows its frontier from, and exact undo lists so
 *    clearing costs O(touched), not O(arena).
 *
 * The per-cell byte arrays are sized to the arena's row capacity
 * (zeroRow + 1) rather than its node count, so reads through the
 * always-zero row need no bounds branch: the zero row's bytes are
 * never set, exactly like its column cells are never written.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "sem/grammar.hpp"

namespace hecate::runtime {

using NodeIdx = uint32_t;

struct EditState {
    /** parentEdge_ flag: the edge index addresses collElems_, not scalars_. */
    static constexpr uint32_t kCollEdge = 0x80000000u;
    /** parentEdge_ sentinel for roots and orphan subtree roots. */
    static constexpr uint32_t kNoEdge = 0xffffffffu;

    // --- structural state (persists until compact) ---------------------
    std::vector<uint8_t> live;       ///< by node; 1 = reachable from a root
    uint32_t liveCount = 0;
    std::vector<NodeIdx> parent;     ///< by node; kNone for roots/orphans
    std::vector<uint32_t> parentEdge; ///< scalars_/collElems_ index (kCollEdge)
    std::vector<uint32_t> depth;     ///< by node; roots at 0
    uint32_t maxDepth = 0;           ///< max over all nodes ever seen
    bool structural = false;         ///< orphans/appended nodes exist

    // --- dirt state (cleared by TreeArena::clearDirt) ------------------
    std::vector<std::vector<uint8_t>> dirty; ///< [column][row capacity]
    std::vector<uint64_t> dirtyCells;        ///< (col << 32) | node, exact undo
    std::vector<uint8_t> nodeDirt;           ///< by row capacity; any dirty cell
    std::vector<NodeIdx> dirtyNodes;         ///< exact undo for nodeDirt
    std::vector<uint8_t> virgin;             ///< by row capacity; appended node
    std::vector<std::pair<NodeIdx, NodeIdx>> virginRanges; ///< [begin, end)
    std::vector<NodeIdx> seeds; ///< edit roots since the last clear
    uint64_t editsApplied = 0;  ///< edits since the last clear

    uint64_t virginCount() const
    {
        uint64_t n = 0;
        for (const auto& [b, e] : virginRanges)
            n += e - b;
        return n;
    }

    bool hasPendingDirt() const
    {
        return !seeds.empty() || !dirtyCells.empty() || !virginRanges.empty();
    }

    /** True when @p node's @p col cell may differ from its pre-edit value. */
    bool cellDirty(uint32_t col, NodeIdx node) const
    {
        return (virgin[node] | dirty[col][node]) != 0;
    }
};

} // namespace hecate::runtime
