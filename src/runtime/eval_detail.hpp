#pragma once

/**
 * @file
 * Internal evaluation helpers shared by the executor's stack worker
 * and the segmented sweep kernels: the superinstruction binary-op
 * switch and the generic expression-bytecode loop. Both use the
 * wrapping int64 helpers (support/arith.hpp) so every execution path
 * is byte-identical to exec::ExprEval on the full input domain.
 */

#include "runtime/arena.hpp"
#include "runtime/program.hpp"
#include "support/arith.hpp"
#include "support/diagnostics.hpp"

namespace hecate::runtime::detail {

/** One two-operand op of a specialized eval (interp semantics). */
inline int64_t
applyWrap(XOp fn, int64_t x, int64_t y)
{
    switch (fn) {
    case XOp::Add:
        return wrapAdd(x, y);
    case XOp::Sub:
        return wrapSub(x, y);
    case XOp::Mul:
        return wrapMul(x, y);
    case XOp::Div:
        return wrapDiv(x, y);
    case XOp::Mod:
        return wrapMod(x, y);
    case XOp::Lt:
        return x < y ? 1 : 0;
    case XOp::Le:
        return x <= y ? 1 : 0;
    case XOp::Gt:
        return x > y ? 1 : 0;
    case XOp::Ge:
        return x >= y ? 1 : 0;
    case XOp::Eq:
        return x == y ? 1 : 0;
    case XOp::Ne:
        return x != y ? 1 : 0;
    case XOp::Max2:
        return x > y ? x : y;
    case XOp::Min2:
        return x < y ? x : y;
    default:
        internalError("Executor: bad superinstruction op");
    }
}

/**
 * Run expression bytecode from @p pc for @p node. @p stack must hold
 * at least Program::maxExprStack() slots; @p kids is the node's CSR
 * scalar block (row 0 = self). Collections (folds) resolve through
 * @p view.
 */
inline int64_t
evalExpr(const XInst* xcode, uint32_t pc, int64_t* const* cols,
         const ArenaView& view, NodeIdx node, const NodeIdx* kids,
         int64_t* stack)
{
    int64_t* sp = stack;
    for (;; ++pc) {
        const XInst x = xcode[pc];
        switch (x.op) {
        case XOp::Const:
            *sp++ = x.imm;
            break;
        case XOp::LoadSelf:
            *sp++ = cols[x.a][node];
            break;
        case XOp::LoadChild:
            // Absent children alias the always-zero row.
            *sp++ = cols[x.b][kids[x.a]];
            break;
        case XOp::Add:
            sp[-2] = wrapAdd(sp[-2], sp[-1]);
            --sp;
            break;
        case XOp::Sub:
            sp[-2] = wrapSub(sp[-2], sp[-1]);
            --sp;
            break;
        case XOp::Mul:
            sp[-2] = wrapMul(sp[-2], sp[-1]);
            --sp;
            break;
        case XOp::Div:
            sp[-2] = wrapDiv(sp[-2], sp[-1]);
            --sp;
            break;
        case XOp::Mod:
            sp[-2] = wrapMod(sp[-2], sp[-1]);
            --sp;
            break;
        case XOp::Lt:
            sp[-2] = sp[-2] < sp[-1] ? 1 : 0;
            --sp;
            break;
        case XOp::Le:
            sp[-2] = sp[-2] <= sp[-1] ? 1 : 0;
            --sp;
            break;
        case XOp::Gt:
            sp[-2] = sp[-2] > sp[-1] ? 1 : 0;
            --sp;
            break;
        case XOp::Ge:
            sp[-2] = sp[-2] >= sp[-1] ? 1 : 0;
            --sp;
            break;
        case XOp::Eq:
            sp[-2] = sp[-2] == sp[-1] ? 1 : 0;
            --sp;
            break;
        case XOp::Ne:
            sp[-2] = sp[-2] != sp[-1] ? 1 : 0;
            --sp;
            break;
        case XOp::Max2:
            sp[-2] = sp[-2] > sp[-1] ? sp[-2] : sp[-1];
            --sp;
            break;
        case XOp::Min2:
            sp[-2] = sp[-2] < sp[-1] ? sp[-2] : sp[-1];
            --sp;
            break;
        case XOp::Abs:
            sp[-1] = wrapAbs(sp[-1]);
            break;
        case XOp::Fold: {
            int64_t acc = sp[-1];
            auto [beg, end] = view.collection(node, x.a);
            const int64_t* col = cols[x.b];
            switch (x.fn) {
            case FoldFn::Add:
                for (const NodeIdx* p = beg; p != end; ++p)
                    acc = wrapAdd(acc, col[*p]);
                break;
            case FoldFn::Mul:
                for (const NodeIdx* p = beg; p != end; ++p)
                    acc = wrapMul(acc, col[*p]);
                break;
            case FoldFn::Max:
                for (const NodeIdx* p = beg; p != end; ++p)
                    acc = acc > col[*p] ? acc : col[*p];
                break;
            case FoldFn::Min:
                for (const NodeIdx* p = beg; p != end; ++p)
                    acc = acc < col[*p] ? acc : col[*p];
                break;
            }
            sp[-1] = acc;
            break;
        }
        case XOp::Jz:
            if (*--sp == 0)
                pc = x.a - 1; // ++pc lands on the target
            break;
        case XOp::Jmp:
            pc = x.a - 1;
            break;
        case XOp::Done:
            return sp[-1];
        }
    }
}

} // namespace hecate::runtime::detail
