#include <algorithm>
#include <deque>

#include "runtime/arena.hpp"
#include "runtime/edit_state.hpp"
#include "support/diagnostics.hpp"

/**
 * @file
 * TreeArena in-place edit API: mutate-input and replace-subtree
 * operations that keep the SoA/CSR invariants the executors rely on
 * (BFS edge direction, branchless zero-row aliasing, per-tree block
 * order) while recording exactly which cells may have changed — the
 * input the incr subsystem's invalidator consumes.
 */

namespace hecate::runtime {

bool
TreeArena::isLive(NodeIdx node) const
{
    return !edits_ || !edits_->structural || edits_->live[node] != 0;
}

uint32_t
TreeArena::liveCount() const
{
    return edits_ && edits_->structural ? edits_->liveCount : size();
}

bool
TreeArena::edited() const
{
    return edits_ && edits_->structural;
}

EditState&
TreeArena::ensureEditState()
{
    if (edits_)
        return *edits_;
    auto es = std::make_unique<EditState>();
    const uint32_t n = size();
    const uint32_t rows = zeroRow_ + 1;

    es->live.assign(n, 1);
    es->liveCount = n;
    es->parent.assign(n, kNone);
    es->parentEdge.assign(n, EditState::kNoEdge);
    es->depth.assign(n, 0);
    // One forward pass settles parents and depths: BFS ids put every
    // parent before its children. Nodes no edge reaches (the root of
    // a single tree; every tree root of a packed forest) keep the
    // defaults above.
    for (NodeIdx node = 0; node < n; ++node) {
        const ClassLayout& layout = layout_.cls(cls_[node]);
        const uint32_t base = scalarBase_[node];
        const uint32_t next = es->depth[node] + 1;
        for (uint32_t s = 1; s <= layout.scalarCount; ++s) {
            const NodeIdx c = scalars_[base + s];
            if (c < n) {
                es->parent[c] = node;
                es->parentEdge[c] = base + s;
                es->depth[c] = next;
            }
        }
        for (uint32_t slot = 0; slot < layout.collCount; ++slot) {
            const CollRange& range = collRanges_[collBase_[node] + slot];
            for (uint32_t i = 0; i < range.count; ++i) {
                const NodeIdx c = collElems_[range.begin + i];
                es->parent[c] = node;
                es->parentEdge[c] = (range.begin + i) | EditState::kCollEdge;
                es->depth[c] = next;
            }
        }
        es->maxDepth = std::max(es->maxDepth, es->depth[node]);
    }

    es->dirty.assign(layout_.columnCount(),
                     std::vector<uint8_t>(rows, 0));
    es->nodeDirt.assign(rows, 0);
    es->virgin.assign(rows, 0);

    edits_ = std::move(es);
    return *edits_;
}

void
TreeArena::growRows(uint64_t needRows)
{
    const NodeIdx oldZero = zeroRow_;
    const uint64_t target = needRows + needRows / 2 + 1024;
    if (target + 1 >= static_cast<uint64_t>(kNone))
        userError("TreeArena: edit grows past 32-bit node indices");
    const NodeIdx newZero = static_cast<NodeIdx>(target);

    // Rewrite stale zero markers BEFORE any append: a future node may
    // claim index oldZero, and a leftover alias would silently read
    // that node's cells as "absent child".
    for (NodeIdx& s : scalars_) {
        if (s == oldZero)
            s = newZero;
    }
    for (auto& column : columns_)
        column.resize(newZero + 1, 0);
    if (edits_) {
        for (auto& bits : edits_->dirty)
            bits.resize(newZero + 1, 0);
        edits_->nodeDirt.resize(newZero + 1, 0);
        edits_->virgin.resize(newZero + 1, 0);
    }
    zeroRow_ = newZero;
    colPtrs_.clear(); // column bases moved; view() must rebuild
}

void
TreeArena::mutateInput(NodeIdx node, sem::AttrId attr, int64_t value)
{
    if (node >= size())
        userError("TreeArena::mutateInput: node out of range");
    if (!isLive(node))
        userError("TreeArena::mutateInput: node was orphaned by an earlier "
                  "replaceSubtree");
    const sem::ClassInfo& info = grammar_->cls(cls_[node]);
    const sem::InterfaceInfo& iface = grammar_->iface(info.iface);
    if (attr >= iface.attrs.size())
        userError("TreeArena::mutateInput: attribute out of range for the "
                  "node's interface");
    if (!iface.isInput(attr))
        userError("TreeArena::mutateInput: attribute '" +
                  iface.attrs[attr].name + "' is computed, not an input");
    const uint32_t col = layout_.column(info.iface, attr);
    if (columns_[col][node] == value)
        return; // unchanged: not an edit at all
    EditState& es = ensureEditState();
    columns_[col][node] = value;
    if (!es.dirty[col][node]) {
        es.dirty[col][node] = 1;
        es.dirtyCells.push_back((static_cast<uint64_t>(col) << 32) | node);
    }
    if (!es.nodeDirt[node]) {
        es.nodeDirt[node] = 1;
        es.dirtyNodes.push_back(node);
    }
    es.seeds.push_back(node);
    ++es.editsApplied;
}

namespace {

/** The child declaration a parent edge instantiates. */
const sem::ChildInfo&
edgeChildDecl(const sem::Grammar& grammar, const Layout& layout,
              const std::vector<uint32_t>& scalarBase,
              const std::vector<uint32_t>& collBase,
              const std::vector<CollRange>& collRanges,
              sem::ClassId parentCls, NodeIdx parent, uint32_t edge)
{
    const sem::ClassInfo& info = grammar.cls(parentCls);
    const ClassLayout& cl = layout.cls(parentCls);
    if (edge & EditState::kCollEdge) {
        const uint32_t elem = edge & ~EditState::kCollEdge;
        for (const sem::ChildInfo& child : info.children) {
            if (!child.collection)
                continue;
            const CollRange& range =
                collRanges[collBase[parent] +
                           static_cast<uint32_t>(cl.collSlotOf[child.id])];
            if (elem >= range.begin && elem < range.begin + range.count)
                return child;
        }
    } else {
        const int32_t slot =
            static_cast<int32_t>(edge - (scalarBase[parent] + 1));
        for (const sem::ChildInfo& child : info.children) {
            if (!child.collection && cl.scalarSlotOf[child.id] == slot)
                return child;
        }
    }
    internalError("TreeArena: parent edge resolves to no child decl");
}

} // namespace

NodeIdx
TreeArena::replaceSubtree(NodeIdx target, const TreeArena& replacement)
{
    if (target >= size())
        userError("TreeArena::replaceSubtree: node out of range");
    if (&replacement.grammar() != grammar_)
        userError("TreeArena::replaceSubtree: replacement built from a "
                  "different grammar");
    if (replacement.size() == 0)
        userError("TreeArena::replaceSubtree: empty replacement");
    if (replacement.edits_ && (replacement.edited() ||
                               replacement.edits_->hasPendingDirt()))
        userError("TreeArena::replaceSubtree: replacement has edits; "
                  "compact() it first");
    if (!isLive(target))
        userError("TreeArena::replaceSubtree: node was orphaned by an "
                  "earlier replaceSubtree");

    EditState& es = ensureEditState();
    const NodeIdx parent = es.parent[target];
    if (parent == kNone)
        userError("TreeArena::replaceSubtree: cannot replace a root");
    const uint32_t edge = es.parentEdge[target];
    const sem::ChildInfo& decl =
        edgeChildDecl(*grammar_, layout_, scalarBase_, collBase_,
                      collRanges_, cls_[parent], parent, edge);
    const sem::ClassId rcls = replacement.cls_[0];
    if (std::find(decl.allowedClasses.begin(), decl.allowedClasses.end(),
                  rcls) == decl.allowedClasses.end()) {
        userError("TreeArena::replaceSubtree: replacement root class '" +
                  grammar_->cls(rcls).name + "' is not admitted by child '" +
                  decl.name + "'");
    }

    const uint32_t k = replacement.size();
    const uint64_t newSize = static_cast<uint64_t>(size()) + k;
    if (newSize > zeroRow_)
        growRows(newSize);

    const NodeIdx off = size();
    const uint32_t scalarOff = static_cast<uint32_t>(scalars_.size());
    const uint32_t rangeOff = static_cast<uint32_t>(collRanges_.size());
    const uint32_t elemOff = static_cast<uint32_t>(collElems_.size());
    const NodeIdx rzero = replacement.zeroRow_;

    // Append the replacement block, rebased: node ids shift by off,
    // CSR bases by this arena's current array sizes, and the
    // replacement's absent markers map onto our zero row.
    cls_.insert(cls_.end(), replacement.cls_.begin(), replacement.cls_.end());
    for (uint32_t base : replacement.scalarBase_)
        scalarBase_.push_back(base + scalarOff);
    for (uint32_t base : replacement.collBase_)
        collBase_.push_back(base + rangeOff);
    for (NodeIdx s : replacement.scalars_)
        scalars_.push_back(s == rzero ? zeroRow_ : s + off);
    for (const CollRange& range : replacement.collRanges_)
        collRanges_.push_back({range.begin + elemOff, range.count});
    for (NodeIdx e : replacement.collElems_)
        collElems_.push_back(e + off);
    for (uint32_t col = 0; col < layout_.columnCount(); ++col) {
        std::copy(replacement.columns_[col].begin(),
                  replacement.columns_[col].begin() + k,
                  columns_[col].begin() + off);
    }

    // Extend the structural bookkeeping. The new root takes over the
    // old subtree's attachment point; interior edges are settled by
    // one forward pass over the appended block (its children are all
    // appended nodes too).
    const NodeIdx end = static_cast<NodeIdx>(newSize);
    es.live.resize(end, 1);
    es.parent.resize(end, kNone);
    es.parentEdge.resize(end, EditState::kNoEdge);
    es.depth.resize(end, 0);
    es.parent[off] = parent;
    es.parentEdge[off] = edge;
    es.depth[off] = es.depth[target];
    for (NodeIdx node = off; node < end; ++node) {
        const ClassLayout& layout = layout_.cls(cls_[node]);
        const uint32_t base = scalarBase_[node];
        const uint32_t next = es.depth[node] + 1;
        for (uint32_t s = 1; s <= layout.scalarCount; ++s) {
            const NodeIdx c = scalars_[base + s];
            if (c != zeroRow_) {
                es.parent[c] = node;
                es.parentEdge[c] = base + s;
                es.depth[c] = next;
            }
        }
        for (uint32_t slot = 0; slot < layout.collCount; ++slot) {
            const CollRange& range = collRanges_[collBase_[node] + slot];
            for (uint32_t i = 0; i < range.count; ++i) {
                const NodeIdx c = collElems_[range.begin + i];
                es.parent[c] = node;
                es.parentEdge[c] = (range.begin + i) | EditState::kCollEdge;
                es.depth[c] = next;
            }
        }
        es.maxDepth = std::max(es.maxDepth, es.depth[node]);
    }

    // Orphan the old subtree in place (cells keep stale garbage; every
    // consumer skips dead rows), then point the parent edge at the new
    // root.
    std::vector<NodeIdx> stack{target};
    while (!stack.empty()) {
        const NodeIdx node = stack.back();
        stack.pop_back();
        es.live[node] = 0;
        --es.liveCount;
        const ClassLayout& layout = layout_.cls(cls_[node]);
        const uint32_t base = scalarBase_[node];
        for (uint32_t s = 1; s <= layout.scalarCount; ++s) {
            const NodeIdx c = scalars_[base + s];
            if (c != zeroRow_)
                stack.push_back(c);
        }
        for (uint32_t slot = 0; slot < layout.collCount; ++slot) {
            const CollRange& range = collRanges_[collBase_[node] + slot];
            for (uint32_t i = 0; i < range.count; ++i)
                stack.push_back(collElems_[range.begin + i]);
        }
    }
    es.parent[target] = kNone;
    es.parentEdge[target] = EditState::kNoEdge;
    if (edge & EditState::kCollEdge)
        collElems_[edge & ~EditState::kCollEdge] = off;
    else
        scalars_[edge] = off;

    es.liveCount += k;
    std::fill(es.virgin.begin() + off, es.virgin.begin() + end, 1);
    es.virginRanges.emplace_back(off, end);
    es.seeds.push_back(off);
    es.structural = true;
    ++es.editsApplied;

    segments_.reset(); // level structure changed
    tiles_.reset();    // subtree blocking changed with it
    colPtrs_.clear();  // columns may have been reallocated by growRows
    return off;
}

void
TreeArena::clearDirt()
{
    if (!edits_)
        return;
    EditState& es = *edits_;
    for (uint64_t cell : es.dirtyCells)
        es.dirty[cell >> 32][static_cast<NodeIdx>(cell)] = 0;
    for (NodeIdx node : es.dirtyNodes)
        es.nodeDirt[node] = 0;
    for (const auto& [begin, end] : es.virginRanges) {
        std::fill(es.virgin.begin() + begin, es.virgin.begin() + end, 0);
        for (auto& bits : es.dirty)
            std::fill(bits.begin() + begin, bits.begin() + end, 0);
        std::fill(es.nodeDirt.begin() + begin, es.nodeDirt.begin() + end, 0);
    }
    es.dirtyCells.clear();
    es.dirtyNodes.clear();
    es.virginRanges.clear();
    es.seeds.clear();
    es.editsApplied = 0;
}

} // namespace hecate::runtime
