#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "runtime/eval_detail.hpp"
#include "runtime/kernels.hpp"
#include "runtime/segments.hpp"

namespace hecate::runtime {

namespace {

/** State shared by every worker of one execute() call. */
struct SharedCtx {
    const Program* program = nullptr;
    ArenaView view;
    ThreadPool* pool = nullptr;
    size_t grain = 1;
    NodeIdx spawnPrefix = 0;

    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> rules{0};
    std::atomic<uint64_t> regions{0};
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> helps{0};
    std::atomic<uint64_t> waves{0};
    std::atomic<uint64_t> kernels{0};
};

/**
 * Help-join barrier used by every forking site: submit @p count tasks
 * through @p submitOne, then drain the pool's queue from the calling
 * thread until all of them finished. The caller's thread is always
 * also a worker, so nested joins on a fixed-size pool cannot deadlock.
 * The first task failure is captured and rethrown here after the join.
 */
template <class SubmitOne>
void
forkJoin(SharedCtx& ctx, size_t count, SubmitOne&& submitOne)
{
    std::atomic<size_t> pending{count};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    // A task must decrement pending no matter how it exits: the pool
    // catches task exceptions (record-and-continue), so a throw that
    // skipped the decrement would hang the drain loop forever. The
    // first failure is published by the release decrement / acquire
    // load pair.
    auto guard = [&](auto&& body) {
        try {
            body();
        } catch (...) {
            if (!failed.exchange(true))
                firstError = std::current_exception();
        }
        pending.fetch_sub(1, std::memory_order_release);
    };
    size_t submitted = 0;
    try {
        for (; submitted < count; ++submitted) {
            submitOne(submitted, guard);
            ++ctx.tasks;
        }
    } catch (...) {
        // submit itself threw (allocation): account for the tasks that
        // never made it into the queue, join the rest, rethrow.
        if (!failed.exchange(true))
            firstError = std::current_exception();
        pending.fetch_sub(count - submitted, std::memory_order_release);
    }
    uint64_t helps = 0;
    while (pending.load(std::memory_order_acquire) != 0) {
        if (ctx.pool->runOne())
            ++helps;
        else
            std::this_thread::yield();
    }
    ctx.helps += helps;
    if (failed.load(std::memory_order_relaxed))
        std::rethrow_exception(firstError);
}

/**
 * One traversal worker: an explicit (node, pc) frame stack plus a
 * reusable expression operand stack. Chunk tasks construct their own
 * Worker, so workers never share mutable state — only the arena cells
 * a verified schedule already guarantees are disjoint.
 *
 * The dispatch loop keeps the current frame in locals and descends
 * into scalar children in place (saving the parent's resume frame),
 * so a straight run of evals never touches the frame stack, and the
 * per-node `kids` pointer turns every child access into a single
 * load from the CSR scalar array.
 */
class Worker {
  public:
    explicit Worker(SharedCtx& ctx)
        : ctx_(ctx), code_(ctx.program->code().data()),
          xcode_(ctx.program->exprPool().data()),
          evals_(ctx.program->evals().data()),
          entry_(ctx.program->entryData()), cols_(ctx.view.cols),
          cls_(ctx.view.cls), scalarBase_(ctx.view.scalarBase),
          scalars_(ctx.view.scalars), zero_(ctx.view.zeroRow)
    {
        xstack_.resize(ctx.program->maxExprStack());
    }

    ~Worker()
    {
        ctx_.visits += visits_;
        ctx_.rules += rules_;
    }

    void run(NodeIdx root)
    {
        stack_.clear();
        pushFrame(root);
        while (!stack_.empty()) {
            Frame f = stack_.back();
            stack_.pop_back();
            const NodeIdx* kids = scalars_ + scalarBase_[f.node];
            bool live = true;
            while (live) {
                const Inst inst = code_[f.pc];
                ++f.pc;
                switch (inst.op) {
                case Op::Eval:
                    evalRun(inst.a, inst.b, f.node, kids);
                    break;
                case Op::Recur: {
                    NodeIdx child = kids[inst.a];
                    if (child != zero_) {
                        // Tail elision: a parent whose next op is Ret
                        // has nothing left to do — don't save it. This
                        // keeps list-shaped trees (next-sibling chains)
                        // at O(1) stack instead of O(chain).
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f); // parent resumes later
                        f = {child, entry_[cls_[child]]};
                        kids = scalars_ + scalarBase_[child];
                        ++visits_;
                    }
                    break;
                }
                case Op::Iterate: {
                    // Reverse push: the first element runs first,
                    // before the case's post-loop evals (they sit at
                    // later pcs of the parent frame, which resumes
                    // only when every element subtree is done).
                    auto [beg, end] = ctx_.view.collection(f.node, inst.a);
                    if (beg != end) {
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f); // tail elision (Recur)
                        for (const NodeIdx* p = end; p != beg;)
                            pushFrame(*--p);
                        live = false;
                    }
                    break;
                }
                case Op::ParBegin: {
                    branches_.clear();
                    uint32_t pc = f.pc;
                    for (;; ++pc) {
                        const Inst b = code_[pc];
                        if (b.op == Op::ParRecur) {
                            NodeIdx t = kids[b.a];
                            if (t != zero_)
                                branches_.push_back(t);
                        } else if (b.op == Op::ParColl) {
                            auto [beg, end] =
                                ctx_.view.collection(f.node, b.a);
                            branches_.insert(branches_.end(), beg, end);
                        } else {
                            break; // ParEnd
                        }
                    }
                    f.pc = pc + 1;
                    live = dispatchRegion(f);
                    break;
                }
                case Op::Ret:
                    live = false;
                    break;
                case Op::ParRecur:
                case Op::ParColl:
                case Op::ParEnd:
                    internalError("Executor: region op outside a region");
                }
            }
        }
    }

    /**
     * Linear two-sweep execution for sandwich-shaped programs (see
     * Program::sweepable): one ascending pass over the BFS node array
     * runs every pre-visit eval run (parents precede children), one
     * descending pass runs every post-visit run (children precede
     * parents). Every parent/child ordering the DFS traversal
     * guarantees between dependent rule applications is preserved, so
     * the attribute values are identical — but dispatch is a tight
     * loop with streaming column access instead of a frame stack.
     * Valid for packed forests too: each tree block is itself
     * BFS-ordered, and rules never reach across trees.
     */
    void runSweep(const SweepCase* sweeps)
    {
        const NodeIdx count = static_cast<NodeIdx>(ctx_.view.size);
        for (NodeIdx node = 0; node < count; ++node) {
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.preCount != 0)
                evalRun(sc.preBegin, sc.preCount, node,
                        scalars_ + scalarBase_[node]);
        }
        for (NodeIdx node = count; node-- > 0;) {
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.postCount != 0)
                evalRun(sc.postBegin, sc.postCount, node,
                        scalars_ + scalarBase_[node]);
            ++visits_;
        }
    }

  private:
    struct Frame {
        NodeIdx node;
        uint32_t pc;
    };

    /** Play the run of @p count EvalSpecs starting at @p begin. */
    void evalRun(uint32_t begin, uint32_t count, NodeIdx node,
                 const NodeIdx* kids)
    {
        const EvalSpec* s = &evals_[begin];
        for (uint32_t n = count; n != 0; --n, ++s) {
            const EvalSpec& spec = *s;
            // Row 0 is the node itself, so self and child targets
            // resolve identically. A vacuous eval (absent optional
            // target) performs no write at all: parallel workers may
            // evaluate the same inherited rule concurrently, and any
            // shared discard cell would be a data race.
            NodeIdx target = kids[spec.targetSlot];
            if (target == zero_)
                continue;
            if (spec.kind == EvalKind::Bytecode) {
                cols_[spec.targetCol][target] =
                    detail::evalExpr(xcode_, spec.xbegin, cols_, ctx_.view,
                                     node, kids, xstack_.data());
                ++rules_;
                continue;
            }
            int64_t v;
            switch (spec.kind) {
            case EvalKind::Copy:
                v = load(spec.a, kids);
                break;
            case EvalKind::Un:
                v = wrapAbs(load(spec.a, kids)); // Un is always Abs
                break;
            case EvalKind::Bin:
                v = detail::applyWrap(spec.fn1, load(spec.a, kids),
                                      load(spec.b, kids));
                break;
            case EvalKind::TriL:
                v = detail::applyWrap(
                    spec.fn2,
                    detail::applyWrap(spec.fn1, load(spec.a, kids),
                                      load(spec.b, kids)),
                    load(spec.c, kids));
                break;
            case EvalKind::TriR:
                v = detail::applyWrap(
                    spec.fn2, load(spec.a, kids),
                    detail::applyWrap(spec.fn1, load(spec.b, kids),
                                      load(spec.c, kids)));
                break;
            default:
                internalError("Executor: bad eval kind");
            }
            cols_[spec.targetCol][target] = v;
            ++rules_;
        }
    }

    void pushFrame(NodeIdx node)
    {
        stack_.push_back({node, entry_[cls_[node]]});
        ++visits_;
    }

    /**
     * Run the collected region branches. Returns whether the caller's
     * frame stays live: forked regions join before it continues;
     * inline regions stack it under the branch frames instead.
     */
    bool dispatchRegion(const Frame& f)
    {
        size_t grain = ctx_.grain;
        size_t chunkCount = (branches_.size() + grain - 1) / grain;
        if (chunkCount <= 1 && branches_.size() >= 2 &&
            ctx_.pool != nullptr && f.node < ctx_.spawnPrefix) {
            // Narrow region near the root (BFS ids are a depth proxy):
            // each branch is a whole large subtree, so fork per branch
            // even though they never fill a grain-sized chunk.
            grain = 1;
            chunkCount = branches_.size();
        }
        if (ctx_.pool == nullptr || chunkCount <= 1) {
            if (code_[f.pc].op != Op::Ret)
                stack_.push_back(f); // resumes after the branch subtrees
            for (auto it = branches_.rbegin(); it != branches_.rend(); ++it)
                pushFrame(*it);
            return false;
        }
        ++ctx_.regions;
        // beg/end stay valid: this frame owns branches_ and blocks in
        // the help-join until every chunk finished.
        forkJoin(ctx_, chunkCount, [&](size_t chunk, auto& guard) {
            const NodeIdx* beg = branches_.data() + chunk * grain;
            const NodeIdx* end = branches_.data() +
                std::min(branches_.size(), (chunk + 1) * grain);
            ctx_.pool->submit([&ctx = ctx_, beg, end, guard] {
                guard([&] {
                    Worker sub(ctx);
                    for (const NodeIdx* p = beg; p != end; ++p)
                        sub.run(*p);
                });
            });
        });
        return true;
    }

    /** One leaf operand of a specialized eval. */
    int64_t load(const Operand& op, const NodeIdx* kids) const
    {
        if (op.slot == Operand::kConst)
            return op.imm;
        // Row 0 is the node itself; absent children alias the
        // always-zero row — a single unconditional load either way.
        return cols_[op.col][kids[op.slot]];
    }

    SharedCtx& ctx_;
    // Hot-path views, hoisted once per worker.
    const Inst* code_;
    const XInst* xcode_;
    const EvalSpec* evals_;
    const uint32_t* entry_;
    int64_t* const* cols_;
    const sem::ClassId* cls_;
    const uint32_t* scalarBase_;
    const NodeIdx* scalars_;
    const NodeIdx zero_; ///< absent-child sentinel (the zero row)
    std::vector<Frame> stack_;
    std::vector<NodeIdx> branches_;
    std::vector<int64_t> xstack_;
    uint64_t visits_ = 0;
    uint64_t rules_ = 0;
};

/**
 * Segmented level-synchronous execution. Levels run as waves —
 * ascending for the pre pass, descending for the post pass — and each
 * wave dispatches per-(segment, rule) kernels, spec-major. Spec-major
 * is observationally identical to the linear sweep's node-major order:
 * within one wave every rule application at node n touches only
 * {n} ∪ children(n), cells pairwise disjoint from every other
 * same-level node's, so only the per-node spec order matters — and
 * that is preserved (see runtime/segments.hpp).
 */
class SweepRunner {
  public:
    SweepRunner(SharedCtx& ctx, const LevelSegments& segs, bool simd,
                obs::Telemetry& telemetry)
        : ctx_(ctx), segs_(segs), simd_(simd), telemetry_(telemetry),
          evals_(ctx.program->evals().data()),
          sweeps_(ctx.program->sweepData()),
          seqStack_(ctx.program->maxExprStack())
    {
        kctx_.view = ctx.view;
        kctx_.xcode = ctx.program->exprPool().data();
    }

    void run()
    {
        {
            auto span = telemetry_.span("sweep.pre", "runtime");
            for (uint32_t l = 0; l < segs_.levelCount(); ++l)
                wave(l, /*pre=*/true);
        }
        {
            auto span = telemetry_.span("sweep.post", "runtime");
            for (uint32_t l = segs_.levelCount(); l-- > 0;)
                wave(l, /*pre=*/false);
        }
        // Stats parity with the other strategies: one visit per node.
        ctx_.visits += ctx_.view.size;
    }

  private:
    bool waveHasWork(const LevelSegments::Level& lv, bool pre) const
    {
        for (uint32_t s = lv.segBegin; s < lv.segEnd; ++s) {
            const SweepCase& sc = sweeps_[segs_.segments()[s].cls];
            if ((pre ? sc.preCount : sc.postCount) != 0)
                return true;
        }
        return false;
    }

    void wave(uint32_t l, bool pre)
    {
        const LevelSegments::Level& lv = segs_.level(l);
        if (!waveHasWork(lv, pre))
            return;
        auto span = telemetry_.span(pre ? "wave.pre" : "wave.post",
                                    "runtime", l);
        ++ctx_.waves;
        const uint32_t count = lv.posEnd - lv.posBegin;
        const size_t grain = ctx_.grain;
        if (ctx_.pool == nullptr || count < 2 * grain) {
            runSlice(lv, lv.posBegin, lv.posEnd, pre, seqStack_.data());
            return;
        }
        // Fork the wave's node span by grain; the help-join below is
        // the per-level barrier the dependency argument requires.
        const size_t chunkCount = (count + grain - 1) / grain;
        forkJoin(ctx_, chunkCount, [&](size_t chunk, auto& guard) {
            const uint32_t posB =
                lv.posBegin + static_cast<uint32_t>(chunk * grain);
            const uint32_t posE = static_cast<uint32_t>(
                std::min<size_t>(lv.posEnd, posB + grain));
            ctx_.pool->submit([this, &lv, posB, posE, pre, guard] {
                guard([&] {
                    std::vector<int64_t> xstack(
                        ctx_.program->maxExprStack());
                    runSlice(lv, posB, posE, pre, xstack.data());
                });
            });
        });
    }

    /**
     * Run every (segment ∩ [posB, posE), rule) kernel of one wave
     * chunk. Chunks partition a level by position, so concurrent
     * slices touch pairwise-disjoint cells.
     */
    void runSlice(const LevelSegments::Level& lv, uint32_t posB,
                  uint32_t posE, bool pre, int64_t* xstack)
    {
        uint64_t writes = 0;
        uint64_t launched = 0;
        const LevelSegments::Segment* segArr = segs_.segments();
        const NodeIdx* order = segs_.order();
        for (uint32_t s = lv.segBegin; s < lv.segEnd; ++s) {
            const LevelSegments::Segment& seg = segArr[s];
            const uint32_t b = std::max(seg.posBegin, posB);
            const uint32_t e = std::min(seg.posBegin + seg.count, posE);
            if (b >= e)
                continue;
            const SweepCase& sc = sweeps_[seg.cls];
            const uint32_t evBegin = pre ? sc.preBegin : sc.postBegin;
            const uint32_t evCount = pre ? sc.preCount : sc.postCount;
            for (uint32_t i = 0; i < evCount; ++i) {
                const EvalSpec& spec = evals_[evBegin + i];
                if (seg.contiguous)
                    writes += detail::runSpecKernel(
                        kctx_, spec, nullptr,
                        seg.first + (b - seg.posBegin), e - b, simd_,
                        xstack);
                else
                    writes += detail::runSpecKernel(kctx_, spec, order + b,
                                                    0, e - b, simd_,
                                                    xstack);
                ++launched;
            }
        }
        ctx_.rules += writes;
        ctx_.kernels += launched;
    }

    SharedCtx& ctx_;
    const LevelSegments& segs_;
    const bool simd_;
    obs::Telemetry& telemetry_;
    detail::KernelCtx kctx_;
    const EvalSpec* evals_;
    const SweepCase* sweeps_;
    std::vector<int64_t> seqStack_; ///< sequential-path operand stack
};

/** Stack-strategy driver: one traversal per root, forked on a pool. */
void
runStack(SharedCtx& ctx)
{
    const uint32_t rootCount = ctx.view.rootCount;
    if (ctx.pool == nullptr || rootCount < 2) {
        Worker worker(ctx);
        for (uint32_t r = 0; r < rootCount; ++r)
            worker.run(ctx.view.roots[r]);
        return;
    }
    // A packed forest: every tree is an independent traversal.
    forkJoin(ctx, rootCount, [&](size_t r, auto& guard) {
        const NodeIdx root = ctx.view.roots[r];
        ctx.pool->submit([&ctx, root, guard] {
            guard([&] {
                Worker worker(ctx);
                worker.run(root);
            });
        });
    });
}

} // namespace

namespace detail {

RuntimeStats
executeView(const Program& program, const ArenaView& view,
            const std::function<const LevelSegments&()>& segments,
            const ExecOptions& options)
{
    SweepStrategy strategy = options.strategy;
    if (strategy == SweepStrategy::Auto) {
        if (!program.sweepable()) {
            strategy = SweepStrategy::Stack;
        } else {
            // Sweepability alone is necessary, not sufficient. The
            // segmented sweep is spec-major — each rule makes its own
            // pass over a wave — so it pays off only when (a) most
            // specs are vectorizable superinstructions (Bytecode specs
            // drop to the per-node expression interpreter and the
            // extra passes are pure overhead: every bundled grammar
            // above ~1/3 Bytecode share measures 1.3-2x *slower*
            // segmented at 200k-1M nodes, every one below ~1/4
            // measures 2-4x faster), and (b) waves are wide enough to
            // amortize the per-level barrier (a list-shaped tree
            // degenerates to size-1 waves). The segments are cached on
            // the arena, so consulting them here is O(1) after the
            // first execution.
            constexpr double kMaxAutoBytecodeShare = 0.30;
            constexpr double kMinAutoWaveWidth = 64.0;
            const LevelSegments::Stats& shape = segments().stats();
            const bool branchy =
                program.bytecodeShare() > kMaxAutoBytecodeShare;
            const bool narrow = shape.avgLevelWidth < kMinAutoWaveWidth &&
                                shape.nodes >= 2 * kMinAutoWaveWidth;
            strategy = branchy || narrow ? SweepStrategy::Stack
                                         : SweepStrategy::Segmented;
        }
    } else if (strategy != SweepStrategy::Stack && !program.sweepable())
        userError("runtime: the linear and segmented sweep strategies "
                  "require a sweepable (sandwich-shaped) program; use "
                  "the stack strategy");

    obs::Telemetry& telemetry =
        options.telemetry != nullptr ? *options.telemetry
                                     : obs::Telemetry::nil();

    SharedCtx ctx;
    ctx.program = &program;
    ctx.view = view;
    ctx.pool = options.pool;
    // Clamp against the arena: a grain above the node count degenerates
    // to a single chunk, and a spawn prefix above it means "everywhere".
    ctx.grain = std::max<uint32_t>(
        1, std::min<uint32_t>(options.grain, std::max<uint32_t>(view.size, 1)));
    ctx.spawnPrefix = std::min<NodeIdx>(options.spawnPrefix, view.size);

    if (view.size != 0) {
        switch (strategy) {
        case SweepStrategy::Stack: {
            auto span = telemetry.span("sweep.stack", "runtime");
            runStack(ctx);
            break;
        }
        case SweepStrategy::Linear: {
            auto span = telemetry.span("sweep.linear", "runtime");
            Worker worker(ctx);
            worker.runSweep(program.sweepData());
            break;
        }
        case SweepStrategy::Segmented: {
            SweepRunner runner(ctx, segments(), options.simd, telemetry);
            runner.run();
            break;
        }
        case SweepStrategy::Auto:
            internalError("Executor: unresolved Auto strategy");
        }
    }

    RuntimeStats stats;
    stats.nodeVisits = ctx.visits.load();
    stats.rulesEvaluated = ctx.rules.load();
    stats.parallelRegions = ctx.regions.load();
    stats.tasksSpawned = ctx.tasks.load();
    stats.helpJoinRuns = ctx.helps.load();
    stats.levelWaves = ctx.waves.load();
    stats.segmentKernels = ctx.kernels.load();
    return stats;
}

} // namespace detail

RuntimeStats
execute(const Program& program, TreeArena& arena, const ExecOptions& options)
{
    checkInvariant(&program.grammar() == &arena.grammar(),
                   "runtime::execute: program and arena grammar mismatch");
    return detail::executeView(
        program, arena.view(),
        [&arena]() -> const LevelSegments& { return arena.levelSegments(); },
        options);
}

} // namespace hecate::runtime
