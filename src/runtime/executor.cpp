#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "runtime/eval_detail.hpp"
#include "runtime/kernels.hpp"
#include "runtime/segments.hpp"
#include "runtime/steal.hpp"
#include "runtime/tiles.hpp"

namespace hecate::runtime {

namespace {

/**
 * Auto-selection thresholds. Spec-major kernels lose once too many
 * specs drop to the per-node expression interpreter (every bundled
 * grammar above ~1/3 Bytecode share measures slower segmented than
 * stack at 200k-1M nodes, every one below ~1/4 measures 2-4x faster),
 * and level waves must be wide enough to amortize their barrier.
 */
constexpr double kMaxAutoBytecodeShare = 0.30;
constexpr double kMinAutoWaveWidth = 64.0;

/** State shared by every worker of one execute() call. */
struct SharedCtx {
    const Program* program = nullptr;
    ArenaView view;
    ThreadPool* pool = nullptr;
    /** Stack-strategy region substrate; set while runStack is live. */
    StealDeques* deques = nullptr;
    size_t grain = 1;
    NodeIdx spawnPrefix = 0;

    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> rules{0};
    std::atomic<uint64_t> regions{0};
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> helps{0};
    std::atomic<uint64_t> waves{0};
    std::atomic<uint64_t> kernels{0};
    std::atomic<uint64_t> tiles{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> strips{0};
    std::atomic<uint64_t> predOps{0};
    std::atomic<uint64_t> fallback{0};
    std::atomic<uint64_t> kindEvals[kEvalKindCount] = {};
};

/** Drain a kernel scratch's strip counters into the shared totals. */
inline void
drainScratch(SharedCtx& ctx, detail::ExprScratch& sc)
{
    ctx.strips += sc.strips;
    ctx.predOps += sc.predOps;
    ctx.fallback += sc.fallbackNodes;
    sc.strips = 0;
    sc.predOps = 0;
    sc.fallbackNodes = 0;
}

/**
 * Thrown by a region dispatch whose chunks were drained unrun because
 * another task already failed: unwinds this traversal so the recorded
 * first error surfaces at the join root. Never escapes the executor.
 */
struct RegionAborted {};

/** Decrements a join counter however the owning task exits. */
class JoinGuard {
  public:
    explicit JoinGuard(std::atomic<uint32_t>* join) : join_(join) {}
    ~JoinGuard() { join_->fetch_sub(1, std::memory_order_release); }
    JoinGuard(const JoinGuard&) = delete;
    JoinGuard& operator=(const JoinGuard&) = delete;

  private:
    std::atomic<uint32_t>* join_;
};

/**
 * Help-join barrier used by every forking site: submit @p count tasks
 * through @p submitOne, then drain the pool's queue from the calling
 * thread until all of them finished. The caller's thread is always
 * also a worker, so nested joins on a fixed-size pool cannot deadlock.
 * The first task failure is captured and rethrown here after the join.
 */
template <class SubmitOne>
void
forkJoin(SharedCtx& ctx, size_t count, SubmitOne&& submitOne)
{
    std::atomic<size_t> pending{count};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    // A task must decrement pending no matter how it exits: the pool
    // catches task exceptions (record-and-continue), so a throw that
    // skipped the decrement would hang the drain loop forever. The
    // first failure is published by the release decrement / acquire
    // load pair.
    auto guard = [&](auto&& body) {
        try {
            body();
        } catch (...) {
            if (!failed.exchange(true))
                firstError = std::current_exception();
        }
        pending.fetch_sub(1, std::memory_order_release);
    };
    size_t submitted = 0;
    try {
        for (; submitted < count; ++submitted) {
            submitOne(submitted, guard);
            ++ctx.tasks;
        }
    } catch (...) {
        // submit itself threw (allocation): account for the tasks that
        // never made it into the queue, join the rest, rethrow.
        if (!failed.exchange(true))
            firstError = std::current_exception();
        pending.fetch_sub(count - submitted, std::memory_order_release);
    }
    uint64_t helps = 0;
    while (pending.load(std::memory_order_acquire) != 0) {
        if (ctx.pool->runOne())
            ++helps;
        else
            std::this_thread::yield();
    }
    ctx.helps += helps;
    if (failed.load(std::memory_order_relaxed))
        std::rethrow_exception(firstError);
}

/**
 * One traversal worker: an explicit (node, pc) frame stack plus a
 * reusable expression operand stack. Chunk tasks construct their own
 * Worker, so workers never share mutable state — only the arena cells
 * a verified schedule already guarantees are disjoint.
 *
 * The dispatch loop keeps the current frame in locals and descends
 * into scalar children in place (saving the parent's resume frame),
 * so a straight run of evals never touches the frame stack, and the
 * per-node `kids` pointer turns every child access into a single
 * load from the CSR scalar array.
 */
class Worker {
  public:
    explicit Worker(SharedCtx& ctx, uint32_t slot = 0)
        : ctx_(ctx), slot_(slot), code_(ctx.program->code().data()),
          xcode_(ctx.program->exprPool().data()),
          evals_(ctx.program->evals().data()),
          entry_(ctx.program->entryData()), cols_(ctx.view.cols),
          cls_(ctx.view.cls), scalarBase_(ctx.view.scalarBase),
          scalars_(ctx.view.scalars), zero_(ctx.view.zeroRow)
    {
        xstack_.resize(ctx.program->maxExprStack());
    }

    ~Worker()
    {
        ctx_.visits += visits_;
        ctx_.rules += rules_;
        for (uint32_t k = 0; k < kEvalKindCount; ++k)
            if (kinds_[k] != 0)
                ctx_.kindEvals[k] += kinds_[k];
        ctx_.fallback += fallback_;
    }

    void run(NodeIdx root)
    {
        stack_.clear();
        pushFrame(root);
        while (!stack_.empty()) {
            Frame f = stack_.back();
            stack_.pop_back();
            const NodeIdx* kids = scalars_ + scalarBase_[f.node];
            bool live = true;
            while (live) {
                const Inst inst = code_[f.pc];
                ++f.pc;
                switch (inst.op) {
                case Op::Eval:
                    evalRun(inst.a, inst.b, f.node, kids);
                    break;
                case Op::Recur: {
                    NodeIdx child = kids[inst.a];
                    if (child != zero_) {
                        // Tail elision: a parent whose next op is Ret
                        // has nothing left to do — don't save it. This
                        // keeps list-shaped trees (next-sibling chains)
                        // at O(1) stack instead of O(chain).
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f); // parent resumes later
                        f = {child, entry_[cls_[child]]};
                        kids = scalars_ + scalarBase_[child];
                        ++visits_;
                    }
                    break;
                }
                case Op::Iterate: {
                    // Reverse push: the first element runs first,
                    // before the case's post-loop evals (they sit at
                    // later pcs of the parent frame, which resumes
                    // only when every element subtree is done).
                    auto [beg, end] = ctx_.view.collection(f.node, inst.a);
                    if (beg != end) {
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f); // tail elision (Recur)
                        for (const NodeIdx* p = end; p != beg;)
                            pushFrame(*--p);
                        live = false;
                    }
                    break;
                }
                case Op::ParBegin: {
                    branches_.clear();
                    uint32_t pc = f.pc;
                    for (;; ++pc) {
                        const Inst b = code_[pc];
                        if (b.op == Op::ParRecur) {
                            NodeIdx t = kids[b.a];
                            if (t != zero_)
                                branches_.push_back(t);
                        } else if (b.op == Op::ParColl) {
                            auto [beg, end] =
                                ctx_.view.collection(f.node, b.a);
                            branches_.insert(branches_.end(), beg, end);
                        } else {
                            break; // ParEnd
                        }
                    }
                    f.pc = pc + 1;
                    live = dispatchRegion(f);
                    break;
                }
                case Op::Ret:
                    live = false;
                    break;
                case Op::ParRecur:
                case Op::ParColl:
                case Op::ParEnd:
                    internalError("Executor: region op outside a region");
                }
            }
        }
    }

    /**
     * Linear two-sweep execution for sandwich-shaped programs (see
     * Program::sweepable): one ascending pass over the BFS node array
     * runs every pre-visit eval run (parents precede children), one
     * descending pass runs every post-visit run (children precede
     * parents). Every parent/child ordering the DFS traversal
     * guarantees between dependent rule applications is preserved, so
     * the attribute values are identical — but dispatch is a tight
     * loop with streaming column access instead of a frame stack.
     * Valid for packed forests too: each tree block is itself
     * BFS-ordered, and rules never reach across trees.
     */
    void runSweep(const SweepCase* sweeps)
    {
        const NodeIdx count = static_cast<NodeIdx>(ctx_.view.size);
        for (NodeIdx node = 0; node < count; ++node) {
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.preCount != 0)
                evalRun(sc.preBegin, sc.preCount, node,
                        scalars_ + scalarBase_[node]);
        }
        for (NodeIdx node = count; node-- > 0;) {
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.postCount != 0)
                evalRun(sc.postBegin, sc.postCount, node,
                        scalars_ + scalarBase_[node]);
            ++visits_;
        }
    }

    /**
     * Node-major pre pass over an explicit span — the tiled strategy's
     * in-tile sweep mode. @p nodes must be parent-before-child ordered
     * (ascending arena ids within a tile are, by BFS numbering).
     */
    void runSpanPre(const NodeIdx* nodes, uint32_t count,
                    const SweepCase* sweeps)
    {
        for (uint32_t i = 0; i < count; ++i) {
            const NodeIdx node = nodes[i];
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.preCount != 0)
                evalRun(sc.preBegin, sc.preCount, node,
                        scalars_ + scalarBase_[node]);
        }
    }

    /** Node-major post pass: @p nodes walked in reverse. */
    void runSpanPost(const NodeIdx* nodes, uint32_t count,
                     const SweepCase* sweeps)
    {
        for (uint32_t i = count; i-- > 0;) {
            const NodeIdx node = nodes[i];
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.postCount != 0)
                evalRun(sc.postBegin, sc.postCount, node,
                        scalars_ + scalarBase_[node]);
            ++visits_;
        }
    }

  private:
    struct Frame {
        NodeIdx node;
        uint32_t pc;
    };

    /** Play the run of @p count EvalSpecs starting at @p begin. */
    void evalRun(uint32_t begin, uint32_t count, NodeIdx node,
                 const NodeIdx* kids)
    {
        const EvalSpec* s = &evals_[begin];
        for (uint32_t n = count; n != 0; --n, ++s) {
            const EvalSpec& spec = *s;
            // Row 0 is the node itself, so self and child targets
            // resolve identically. A vacuous eval (absent optional
            // target) performs no write at all: parallel workers may
            // evaluate the same inherited rule concurrently, and any
            // shared discard cell would be a data race.
            NodeIdx target = kids[spec.targetSlot];
            if (target == zero_)
                continue;
            if (spec.kind == EvalKind::Bytecode) {
                cols_[spec.targetCol][target] =
                    detail::evalExpr(xcode_, spec.xbegin, cols_, ctx_.view,
                                     node, kids, xstack_.data());
                ++rules_;
                ++kinds_[static_cast<uint32_t>(EvalKind::Bytecode)];
                ++fallback_;
                continue;
            }
            int64_t v;
            switch (spec.kind) {
            case EvalKind::Copy:
                v = load(spec.a, kids);
                break;
            case EvalKind::Un:
                v = wrapAbs(load(spec.a, kids)); // Un is always Abs
                break;
            case EvalKind::Bin:
                v = detail::applyWrap(spec.fn1, load(spec.a, kids),
                                      load(spec.b, kids));
                break;
            case EvalKind::TriL:
                v = detail::applyWrap(
                    spec.fn2,
                    detail::applyWrap(spec.fn1, load(spec.a, kids),
                                      load(spec.b, kids)),
                    load(spec.c, kids));
                break;
            case EvalKind::TriR:
                v = detail::applyWrap(
                    spec.fn2, load(spec.a, kids),
                    detail::applyWrap(spec.fn1, load(spec.b, kids),
                                      load(spec.c, kids)));
                break;
            case EvalKind::QuadL:
                v = detail::applyWrap(
                    spec.fn3,
                    detail::applyWrap(
                        spec.fn2,
                        detail::applyWrap(spec.fn1, load(spec.a, kids),
                                          load(spec.b, kids)),
                        load(spec.c, kids)),
                    load(spec.d, kids));
                break;
            case EvalKind::QuadB:
                v = detail::applyWrap(
                    spec.fn3,
                    detail::applyWrap(spec.fn1, load(spec.a, kids),
                                      load(spec.b, kids)),
                    detail::applyWrap(spec.fn2, load(spec.c, kids),
                                      load(spec.d, kids)));
                break;
            case EvalKind::CmpSel:
                v = detail::applyWrap(spec.fn1, load(spec.a, kids),
                                      load(spec.b, kids)) != 0
                        ? load(spec.c, kids)
                        : load(spec.d, kids);
                break;
            default:
                internalError("Executor: bad eval kind");
            }
            cols_[spec.targetCol][target] = v;
            ++rules_;
            ++kinds_[static_cast<uint32_t>(spec.kind)];
        }
    }

    void pushFrame(NodeIdx node)
    {
        stack_.push_back({node, entry_[cls_[node]]});
        ++visits_;
    }

    /**
     * Run the collected region branches. Returns whether the caller's
     * frame stays live: forked regions join before it continues;
     * inline regions stack it under the branch frames instead.
     */
    bool dispatchRegion(const Frame& f)
    {
        size_t grain = ctx_.grain;
        size_t chunkCount = (branches_.size() + grain - 1) / grain;
        if (chunkCount <= 1 && branches_.size() >= 2 &&
            ctx_.deques != nullptr && f.node < ctx_.spawnPrefix) {
            // Narrow region near the root (BFS ids are a depth proxy):
            // each branch is a whole large subtree, so fork per branch
            // even though they never fill a grain-sized chunk.
            grain = 1;
            chunkCount = branches_.size();
        }
        if (ctx_.deques == nullptr || chunkCount <= 1) {
            if (code_[f.pc].op != Op::Ret)
                stack_.push_back(f); // resumes after the branch subtrees
            for (auto it = branches_.rbegin(); it != branches_.rend(); ++it)
                pushFrame(*it);
            return false;
        }
        ++ctx_.regions;
        ctx_.tasks += chunkCount;
        // Chunks go to this worker's own deque (reversed, so LIFO pops
        // run them left to right): they stay here — and cache-warm —
        // unless another worker actually runs dry and steals from the
        // front. branches_/join stay valid: this frame drives the join
        // to completion before its stack frame unwinds.
        std::atomic<uint32_t> join{static_cast<uint32_t>(chunkCount)};
        for (size_t chunk = chunkCount; chunk-- > 0;) {
            const size_t b = chunk * grain;
            const size_t e = std::min(branches_.size(), b + grain);
            ctx_.deques->push(
                slot_,
                StealTask{
                    reinterpret_cast<uint64_t>(branches_.data() + b),
                    static_cast<uint64_t>(e - b),
                    reinterpret_cast<uint64_t>(&join)});
        }
        ctx_.deques->drive(slot_, [&join] {
            return join.load(std::memory_order_acquire) == 0;
        });
        if (join.load(std::memory_order_acquire) != 0) {
            // A failure elsewhere drained our chunks unrun; unwind
            // this traversal (the first error is already recorded).
            throw RegionAborted{};
        }
        return true;
    }

    /** One leaf operand of a specialized eval. */
    int64_t load(const Operand& op, const NodeIdx* kids) const
    {
        if (op.slot == Operand::kConst)
            return op.imm;
        // Row 0 is the node itself; absent children alias the
        // always-zero row — a single unconditional load either way.
        return cols_[op.col][kids[op.slot]];
    }

    SharedCtx& ctx_;
    const uint32_t slot_; ///< this worker's steal-deque slot
    // Hot-path views, hoisted once per worker.
    const Inst* code_;
    const XInst* xcode_;
    const EvalSpec* evals_;
    const uint32_t* entry_;
    int64_t* const* cols_;
    const sem::ClassId* cls_;
    const uint32_t* scalarBase_;
    const NodeIdx* scalars_;
    const NodeIdx zero_; ///< absent-child sentinel (the zero row)
    std::vector<Frame> stack_;
    std::vector<NodeIdx> branches_;
    std::vector<int64_t> xstack_;
    uint64_t visits_ = 0;
    uint64_t rules_ = 0;
    uint64_t kinds_[kEvalKindCount] = {};
    uint64_t fallback_ = 0; ///< Bytecode evals (always interpreted here)
};

/**
 * Segmented level-synchronous execution. Levels run as waves —
 * ascending for the pre pass, descending for the post pass — and each
 * wave dispatches per-(segment, rule) kernels, spec-major. Spec-major
 * is observationally identical to the linear sweep's node-major order:
 * within one wave every rule application at node n touches only
 * {n} ∪ children(n), cells pairwise disjoint from every other
 * same-level node's, so only the per-node spec order matters — and
 * that is preserved (see runtime/segments.hpp).
 */
class SweepRunner {
  public:
    SweepRunner(SharedCtx& ctx, const LevelSegments& segs, bool simd,
                bool strip, obs::Telemetry& telemetry)
        : ctx_(ctx), segs_(segs), simd_(simd), strip_(strip),
          telemetry_(telemetry), evals_(ctx.program->evals().data()),
          sweeps_(ctx.program->sweepData()),
          seqStack_(ctx.program->maxExprStack()),
          seqRegs_(static_cast<size_t>(ctx.program->maxRegCount()) *
                   kStripWidth)
    {
        kctx_.view = ctx.view;
        kctx_.xcode = ctx.program->exprPool().data();
        kctx_.rcode = ctx.program->regPool().data();
        seqScratch_.xstack = seqStack_.data();
        seqScratch_.regs = seqRegs_.data();
        seqScratch_.strip = strip_;
    }

    void run()
    {
        {
            auto span = telemetry_.span("sweep.pre", "runtime");
            for (uint32_t l = 0; l < segs_.levelCount(); ++l)
                wave(l, /*pre=*/true);
        }
        {
            auto span = telemetry_.span("sweep.post", "runtime");
            for (uint32_t l = segs_.levelCount(); l-- > 0;)
                wave(l, /*pre=*/false);
        }
        // Stats parity with the other strategies: one visit per node.
        ctx_.visits += ctx_.view.size;
    }

  private:
    bool waveHasWork(const LevelSegments::Level& lv, bool pre) const
    {
        for (uint32_t s = lv.segBegin; s < lv.segEnd; ++s) {
            const SweepCase& sc = sweeps_[segs_.segments()[s].cls];
            if ((pre ? sc.preCount : sc.postCount) != 0)
                return true;
        }
        return false;
    }

    void wave(uint32_t l, bool pre)
    {
        const LevelSegments::Level& lv = segs_.level(l);
        if (!waveHasWork(lv, pre))
            return;
        auto span = telemetry_.span(pre ? "wave.pre" : "wave.post",
                                    "runtime", l);
        ++ctx_.waves;
        const uint32_t count = lv.posEnd - lv.posBegin;
        const size_t grain = ctx_.grain;
        if (ctx_.pool == nullptr || count < 2 * grain) {
            runSlice(lv, lv.posBegin, lv.posEnd, pre, seqScratch_);
            return;
        }
        // Fork the wave's node span by grain; the help-join below is
        // the per-level barrier the dependency argument requires.
        const size_t chunkCount = (count + grain - 1) / grain;
        forkJoin(ctx_, chunkCount, [&](size_t chunk, auto& guard) {
            const uint32_t posB =
                lv.posBegin + static_cast<uint32_t>(chunk * grain);
            const uint32_t posE = static_cast<uint32_t>(
                std::min<size_t>(lv.posEnd, posB + grain));
            ctx_.pool->submit([this, &lv, posB, posE, pre, guard] {
                guard([&] {
                    std::vector<int64_t> xstack(
                        ctx_.program->maxExprStack());
                    std::vector<int64_t> regs(
                        static_cast<size_t>(
                            ctx_.program->maxRegCount()) *
                        kStripWidth);
                    detail::ExprScratch sc;
                    sc.xstack = xstack.data();
                    sc.regs = regs.data();
                    sc.strip = strip_;
                    runSlice(lv, posB, posE, pre, sc);
                });
            });
        });
    }

    /**
     * Run every (segment ∩ [posB, posE), rule) kernel of one wave
     * chunk. Chunks partition a level by position, so concurrent
     * slices touch pairwise-disjoint cells.
     */
    void runSlice(const LevelSegments::Level& lv, uint32_t posB,
                  uint32_t posE, bool pre, detail::ExprScratch& scratch)
    {
        uint64_t writes = 0;
        uint64_t launched = 0;
        const LevelSegments::Segment* segArr = segs_.segments();
        const NodeIdx* order = segs_.order();
        for (uint32_t s = lv.segBegin; s < lv.segEnd; ++s) {
            const LevelSegments::Segment& seg = segArr[s];
            const uint32_t b = std::max(seg.posBegin, posB);
            const uint32_t e = std::min(seg.posBegin + seg.count, posE);
            if (b >= e)
                continue;
            const SweepCase& sc = sweeps_[seg.cls];
            const uint32_t evBegin = pre ? sc.preBegin : sc.postBegin;
            const uint32_t evCount = pre ? sc.preCount : sc.postCount;
            for (uint32_t i = 0; i < evCount; ++i) {
                const EvalSpec& spec = evals_[evBegin + i];
                if (seg.contiguous)
                    writes += detail::runSpecKernel(
                        kctx_, spec, nullptr,
                        seg.first + (b - seg.posBegin), e - b, simd_,
                        scratch);
                else
                    writes += detail::runSpecKernel(kctx_, spec, order + b,
                                                    0, e - b, simd_,
                                                    scratch);
                ++launched;
            }
        }
        ctx_.rules += writes;
        ctx_.kernels += launched;
        drainScratch(ctx_, scratch);
    }

    SharedCtx& ctx_;
    const LevelSegments& segs_;
    const bool simd_;
    const bool strip_; ///< strip-mine converted Bytecode specs
    obs::Telemetry& telemetry_;
    detail::KernelCtx kctx_;
    const EvalSpec* evals_;
    const SweepCase* sweeps_;
    std::vector<int64_t> seqStack_; ///< sequential-path operand stack
    std::vector<int64_t> seqRegs_;  ///< sequential-path register file
    detail::ExprScratch seqScratch_;
};

/**
 * Stack-strategy driver. Sequential runs walk every root on one
 * Worker; with a pool, roots and `parallel` regions share one
 * StealDeques instance — each task runs a chunk of traversal roots on
 * a fresh Worker bound to the executing slot, and the pushing side
 * joins by driving its own deque (see Worker::dispatchRegion).
 */
void
runStack(SharedCtx& ctx)
{
    const uint32_t rootCount = ctx.view.rootCount;
    if (ctx.pool == nullptr || ctx.pool->workerCount() == 0) {
        Worker worker(ctx);
        for (uint32_t r = 0; r < rootCount; ++r)
            worker.run(ctx.view.roots[r]);
        return;
    }
    StealDeques deques(
        ctx.pool, [&ctx](const StealTask& task, uint32_t slot) {
            const NodeIdx* beg =
                reinterpret_cast<const NodeIdx*>(task.a);
            const uint32_t count = static_cast<uint32_t>(task.b);
            auto* join =
                reinterpret_cast<std::atomic<uint32_t>*>(task.c);
            JoinGuard guard(join);
            Worker worker(ctx, slot);
            for (uint32_t i = 0; i < count; ++i)
                worker.run(beg[i]);
        });
    ctx.deques = &deques;
    // One task per root (a packed forest's trees are independent
    // traversals); a single-root tree is one task that immediately
    // fans out through its regions.
    std::atomic<uint32_t> rootJoin{rootCount};
    ctx.tasks += rootCount;
    for (uint32_t r = rootCount; r-- > 0;) {
        deques.push(0, StealTask{
                           reinterpret_cast<uint64_t>(ctx.view.roots + r),
                           1, reinterpret_cast<uint64_t>(&rootJoin)});
    }
    deques.drive(0, [&rootJoin] {
        return rootJoin.load(std::memory_order_acquire) == 0;
    });
    ctx.deques = nullptr;
    ctx.steals += deques.steals();
    deques.rethrowIfFailed();
}

/**
 * Tiled execution (see runtime/tiles.hpp and the strategy overview in
 * executor.hpp): tiles run barrier-free on the TileScheduler, fusing
 * the pre and post passes per cache-sized block. In-tile work is
 * either the segmented strategy's class kernels over the tile's local
 * (level, segment) groups, or a node-major two-sweep over the tile
 * span for bytecode-heavy programs where spec-major dispatch loses.
 */
class TileRunner {
  public:
    TileRunner(SharedCtx& ctx, const TileGraph& graph, bool simd,
               bool strip, bool kernels)
        : ctx_(ctx), graph_(graph), simd_(simd), kernels_(kernels),
          evals_(ctx.program->evals().data()),
          sweeps_(ctx.program->sweepData())
    {
        kctx_.view = ctx.view;
        kctx_.xcode = ctx.program->exprPool().data();
        kctx_.rcode = ctx.program->regPool().data();
        const uint32_t slots =
            1 + (ctx.pool != nullptr
                     ? static_cast<uint32_t>(ctx.pool->workerCount())
                     : 0);
        if (kernels_) {
            xstacks_.resize(slots);
            regfiles_.resize(slots);
            scratch_.resize(slots);
            for (uint32_t s = 0; s < slots; ++s) {
                xstacks_[s].resize(ctx.program->maxExprStack());
                regfiles_[s].resize(
                    static_cast<size_t>(ctx.program->maxRegCount()) *
                    kStripWidth);
                scratch_[s].xstack = xstacks_[s].data();
                scratch_[s].regs = regfiles_[s].data();
                scratch_[s].strip = strip;
            }
        } else {
            workers_.reserve(slots);
            for (uint32_t s = 0; s < slots; ++s)
                workers_.push_back(std::make_unique<Worker>(ctx_, s));
        }
    }

    void run()
    {
        TileScheduler::Stats st = TileScheduler::run(
            graph_, ctx_.pool,
            [this](uint32_t t, uint32_t slot) { runTile(t, slot, true); },
            [this](uint32_t t, uint32_t slot) {
                runTile(t, slot, false);
            });
        ctx_.tiles += st.tiles;
        ctx_.steals += st.steals;
        if (kernels_) {
            // Stats parity with the other strategies: one visit per
            // node (sweep-mode Workers count their own visits).
            ctx_.visits += graph_.stats().nodes;
        }
    }

  private:
    void runTile(uint32_t t, uint32_t slot, bool pre)
    {
        const TileGraph::Tile& tile = graph_.tile(t);
        if (!kernels_) {
            Worker& worker = *workers_[slot];
            if (pre)
                worker.runSpanPre(graph_.nodes() + tile.nodeBegin,
                                  tile.nodeCount(), sweeps_);
            else
                worker.runSpanPost(graph_.nodes() + tile.nodeBegin,
                                   tile.nodeCount(), sweeps_);
            return;
        }
        // Kernel mode: the tile's local levels ascending for pre,
        // descending for post — the same wave order the segmented
        // strategy runs, restricted to one cache-resident block.
        uint64_t writes = 0;
        uint64_t launched = 0;
        detail::ExprScratch& scratch = scratch_[slot];
        for (uint32_t l = tile.levelBegin; l < tile.levelEnd; ++l) {
            const uint32_t level =
                pre ? l : tile.levelEnd - 1 - (l - tile.levelBegin);
            const TileGraph::Level& lv = graph_.level(level);
            for (uint32_t s = lv.segBegin; s < lv.segEnd; ++s) {
                const TileGraph::Segment& seg = graph_.segments()[s];
                const SweepCase& sc = sweeps_[seg.cls];
                const uint32_t evBegin = pre ? sc.preBegin : sc.postBegin;
                const uint32_t evCount = pre ? sc.preCount : sc.postCount;
                for (uint32_t i = 0; i < evCount; ++i) {
                    const EvalSpec& spec = evals_[evBegin + i];
                    if (seg.contiguous)
                        writes += detail::runSpecKernel(
                            kctx_, spec, nullptr, seg.first, seg.count,
                            simd_, scratch);
                    else
                        writes += detail::runSpecKernel(
                            kctx_, spec,
                            graph_.order() + seg.posBegin, 0, seg.count,
                            simd_, scratch);
                    ++launched;
                }
            }
        }
        ctx_.rules += writes;
        ctx_.kernels += launched;
        drainScratch(ctx_, scratch);
    }

    SharedCtx& ctx_;
    const TileGraph& graph_;
    const bool simd_;
    const bool kernels_;
    const EvalSpec* evals_;
    const SweepCase* sweeps_;
    detail::KernelCtx kctx_;
    std::vector<std::vector<int64_t>> xstacks_;     ///< kernel mode
    std::vector<std::vector<int64_t>> regfiles_;    ///< kernel mode
    std::vector<detail::ExprScratch> scratch_;      ///< by slot
    std::vector<std::unique_ptr<Worker>> workers_;  ///< sweep mode
};

} // namespace

const char*
sweepStrategyName(SweepStrategy strategy)
{
    switch (strategy) {
    case SweepStrategy::Auto:
        return "auto";
    case SweepStrategy::Stack:
        return "stack";
    case SweepStrategy::Linear:
        return "linear";
    case SweepStrategy::Segmented:
        return "segmented";
    case SweepStrategy::Tiled:
        return "tiled";
    }
    return "unknown";
}

const char*
strategyReasonName(StrategyReason reason)
{
    switch (reason) {
    case StrategyReason::Explicit:
        return "explicit";
    case StrategyReason::NotSweepable:
        return "not-sweepable";
    case StrategyReason::NarrowLevels:
        return "narrow-levels";
    case StrategyReason::BytecodeHeavy:
        return "bytecode-heavy";
    case StrategyReason::CacheResident:
        return "cache-resident";
    case StrategyReason::LargeTree:
        return "large-tree";
    case StrategyReason::StripConvertible:
        return "strip-convertible";
    }
    return "unknown";
}

namespace detail {

RuntimeStats
executeView(const Program& program, const ArenaView& view,
            const std::function<const LevelSegments&()>& segments,
            const std::function<const TileGraph&(uint64_t)>& tiles,
            const ExecOptions& options)
{
    SweepStrategy strategy = options.strategy;
    StrategyReason reason = StrategyReason::Explicit;
    const uint64_t tileBudget =
        options.tileBytes != 0 ? options.tileBytes : kDefaultTileBytes;
    // With the strip engine on, a Bytecode spec that converted to
    // register form runs as vectorizable strip loops inside the
    // kernels — only the residual (inconvertible) share still predicts
    // spec-major strategies losing to the stack walk.
    const bool stripOn = options.exprEngine != ExprEngine::Interp;
    const double residualShare = stripOn ? program.stripResidualShare()
                                         : program.bytecodeShare();
    const bool branchy = residualShare > kMaxAutoBytecodeShare;
    // Kernels chosen *because* the strip engine rescued a program the
    // share heuristic would otherwise have sent to the stack walk.
    const bool stripRescued =
        stripOn && !branchy &&
        program.bytecodeShare() > kMaxAutoBytecodeShare;
    if (strategy == SweepStrategy::Auto) {
        // Measured-shape selection; every exit records its reason in
        // RuntimeStats::selection. Sweepability alone is necessary,
        // not sufficient:
        //  - bytecode-heavy programs defeat spec-major kernels (each
        //    Bytecode spec drops to the per-node expression
        //    interpreter, so per-rule passes are pure overhead) —
        //    Stack wins regardless of size;
        //  - narrow levels (list-shaped trees) degenerate waves to a
        //    handful of nodes and the per-level overhead dominates;
        //  - kernel-friendly arenas whose whole column footprint is
        //    cache-scale (kAutoSegmentedFootprintBytes) stay resident
        //    across level-major passes — Segmented streams them
        //    without tiling overhead;
        //  - past that window, the level-major passes run at DRAM
        //    bandwidth, so Tiled's fused cache-sized blocks win.
        // The consulted structures are cached on the arena, so this is
        // O(1) after the first execution.
        if (!program.sweepable()) {
            strategy = SweepStrategy::Stack;
            reason = StrategyReason::NotSweepable;
        } else {
            const LevelSegments::Stats& shape = segments().stats();
            const bool narrow = shape.avgLevelWidth < kMinAutoWaveWidth &&
                                shape.nodes >= 2 * kMinAutoWaveWidth;
            const uint64_t footprint =
                static_cast<uint64_t>(view.size) * tileBytesPerNode(view);
            if (narrow) {
                strategy = SweepStrategy::Stack;
                reason = StrategyReason::NarrowLevels;
            } else if (branchy) {
                strategy = SweepStrategy::Stack;
                reason = StrategyReason::BytecodeHeavy;
            } else if (footprint <= kAutoSegmentedFootprintBytes) {
                strategy = SweepStrategy::Segmented;
                reason = stripRescued ? StrategyReason::StripConvertible
                                      : StrategyReason::CacheResident;
            } else {
                strategy = SweepStrategy::Tiled;
                reason = stripRescued ? StrategyReason::StripConvertible
                                      : StrategyReason::LargeTree;
            }
        }
    } else if (strategy != SweepStrategy::Stack && !program.sweepable())
        userError("runtime: the linear, segmented, and tiled sweep "
                  "strategies require a sweepable (sandwich-shaped) "
                  "program; use the stack strategy");

    obs::Telemetry& telemetry =
        options.telemetry != nullptr ? *options.telemetry
                                     : obs::Telemetry::nil();

    SharedCtx ctx;
    ctx.program = &program;
    ctx.view = view;
    ctx.pool = options.pool;
    // Clamp against the arena: a grain above the node count degenerates
    // to a single chunk, and a spawn prefix above it means "everywhere".
    ctx.grain = std::max<uint32_t>(
        1, std::min<uint32_t>(options.grain, std::max<uint32_t>(view.size, 1)));
    ctx.spawnPrefix = std::min<NodeIdx>(options.spawnPrefix, view.size);

    if (view.size != 0) {
        switch (strategy) {
        case SweepStrategy::Stack: {
            auto span = telemetry.span("sweep.stack", "runtime");
            runStack(ctx);
            break;
        }
        case SweepStrategy::Linear: {
            auto span = telemetry.span("sweep.linear", "runtime");
            Worker worker(ctx);
            worker.runSweep(program.sweepData());
            break;
        }
        case SweepStrategy::Segmented: {
            SweepRunner runner(ctx, segments(), options.simd, stripOn,
                               telemetry);
            runner.run();
            break;
        }
        case SweepStrategy::Tiled: {
            auto span = telemetry.span("sweep.tiled", "runtime");
            const bool kernelsMode =
                options.tileExec == TileExec::Kernels ||
                (options.tileExec == TileExec::Auto && !branchy);
            TileRunner runner(ctx, tiles(tileBudget), options.simd,
                              stripOn, kernelsMode);
            runner.run();
            break;
        }
        case SweepStrategy::Auto:
            internalError("Executor: unresolved Auto strategy");
        }
    }

    RuntimeStats stats;
    stats.strategy = strategy;
    stats.selection = reason;
    stats.nodeVisits = ctx.visits.load();
    stats.rulesEvaluated = ctx.rules.load();
    stats.parallelRegions = ctx.regions.load();
    stats.tasksSpawned = ctx.tasks.load();
    stats.helpJoinRuns = ctx.helps.load();
    stats.levelWaves = ctx.waves.load();
    stats.segmentKernels = ctx.kernels.load();
    stats.tilesExecuted = ctx.tiles.load();
    stats.tileSteals = ctx.steals.load();
    stats.stripsRun = ctx.strips.load();
    stats.predicatedOps = ctx.predOps.load();
    stats.fallbackNodes = ctx.fallback.load();
    for (uint32_t k = 0; k < kEvalKindCount; ++k)
        stats.evalsByKind[k] = ctx.kindEvals[k].load();
    return stats;
}

} // namespace detail

RuntimeStats
execute(const Program& program, TreeArena& arena, const ExecOptions& options)
{
    checkInvariant(&program.grammar() == &arena.grammar(),
                   "runtime::execute: program and arena grammar mismatch");
    return detail::executeView(
        program, arena.view(),
        [&arena]() -> const LevelSegments& { return arena.levelSegments(); },
        [&arena](uint64_t tileBytes) -> const TileGraph& {
            return arena.tileGraph(tileBytes);
        },
        options);
}

} // namespace hecate::runtime
